package table

import (
	"bytes"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/navsim"
)

func TestAvailRoundTrip(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 25, NumOngoing: 3, MeanRCCsPerAvail: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAvails(&buf, ds.Avails); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAvails(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.Avails) {
		t.Fatalf("%d avails back, want %d", len(back), len(ds.Avails))
	}
	for i := range back {
		if back[i] != ds.Avails[i] {
			t.Fatalf("avail %d mismatch:\n got %+v\nwant %+v", i, back[i], ds.Avails[i])
		}
	}
}

func TestRCCRoundTrip(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 10, NumOngoing: 0, MeanRCCsPerAvail: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRCCs(&buf, ds.RCCs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRCCs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.RCCs) {
		t.Fatalf("%d rccs back, want %d", len(back), len(ds.RCCs))
	}
	for i := range back {
		if back[i] != ds.RCCs[i] {
			t.Fatalf("rcc %d mismatch:\n got %+v\nwant %+v", i, back[i], ds.RCCs[i])
		}
	}
}

func TestOngoingAvailHasEmptyEnd(t *testing.T) {
	a := domain.Avail{ID: 1, ShipID: 2, Status: domain.StatusOngoing,
		PlanStart: 100, PlanEnd: 200, ActStart: 100}
	var buf bytes.Buffer
	if err := WriteAvails(&buf, []domain.Avail{a}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[1], "ongoing") {
		t.Errorf("row missing status: %q", lines[1])
	}
	back, err := ReadAvails(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Status != domain.StatusOngoing || back[0].ActEnd != 0 {
		t.Errorf("ongoing round trip wrong: %+v", back[0])
	}
}

func TestReadRejectsBadData(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"bad header", "x,y\n1,2\n"},
		{"bad status", strings.Join(availHeader, ",") + "\n1,2,unknown,2020-01-01,2020-02-01,2020-01-01,,0,1,5,100,50,0,0,10\n"},
		{"bad date", strings.Join(availHeader, ",") + "\n1,2,closed,NOTADATE,2020-02-01,2020-01-01,2020-02-01,0,1,5,100,50,0,0,10\n"},
		{"inverted plan", strings.Join(availHeader, ",") + "\n1,2,closed,2020-03-01,2020-02-01,2020-01-01,2020-02-05,0,1,5,100,50,0,0,10\n"},
		{"ongoing with end", strings.Join(availHeader, ",") + "\n1,2,ongoing,2020-01-01,2020-02-01,2020-01-01,2020-02-05,0,1,5,100,50,0,0,10\n"},
	}
	for _, c := range cases {
		if _, err := ReadAvails(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestReadRCCRejectsBadData(t *testing.T) {
	head := strings.Join(rccHeader, ",") + "\n"
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"bad type", head + "1,1,XX,434-11-001,2020-01-01,2020-02-01,100\n"},
		{"bad swlin", head + "1,1,G,44-11-001,2020-01-01,2020-02-01,100\n"},
		{"settled before created", head + "1,1,G,434-11-001,2020-03-01,2020-02-01,100\n"},
		{"negative amount", head + "1,1,G,434-11-001,2020-01-01,2020-02-01,-5\n"},
	}
	for _, c := range cases {
		if _, err := ReadRCCs(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRCCWorkspecFormatted(t *testing.T) {
	r := domain.RCC{ID: 1, AvailID: 5, Type: domain.Growth,
		SWLIN: 43411001, Created: 100, Settled: 150, Amount: 8000}
	var buf bytes.Buffer
	if err := WriteRCCs(&buf, []domain.RCC{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "434-11-001") {
		t.Errorf("workspec not in paper format: %s", buf.String())
	}
}

func TestReadAvailsFieldErrors(t *testing.T) {
	head := strings.Join(availHeader, ",") + "\n"
	base := []string{"1", "2", "closed", "2020-01-01", "2020-06-01", "2020-01-01", "2020-06-10",
		"0", "1", "5.5", "100000", "50", "2", "1", "10.5"}
	broken := map[string]int{
		"avail_id":      0,
		"ship_id":       1,
		"plan_end":      4,
		"actual_start":  5,
		"actual_end":    6,
		"ship_class":    7,
		"rmc":           8,
		"ship_age":      9,
		"planned_cost":  10,
		"crew_size":     11,
		"prior_avails":  12,
		"dock_type":     13,
		"homeport_dist": 14,
	}
	for field, idx := range broken {
		rec := append([]string(nil), base...)
		rec[idx] = "xx"
		csv := head + strings.Join(rec, ",") + "\n"
		if _, err := ReadAvails(strings.NewReader(csv)); err == nil {
			t.Errorf("corrupt %s accepted", field)
		}
	}
	// Wrong field count.
	short := head + strings.Join(base[:10], ",") + "\n"
	if _, err := ReadAvails(strings.NewReader(short)); err == nil {
		t.Error("short row accepted")
	}
}

func TestReadRCCFieldErrors(t *testing.T) {
	head := strings.Join(rccHeader, ",") + "\n"
	base := []string{"1", "1", "G", "434-11-001", "2020-01-01", "2020-02-01", "100"}
	for idx, field := range []string{"rcc_id", "avail_id", "type", "workspec", "creation_date", "settled_date", "amount"} {
		rec := append([]string(nil), base...)
		rec[idx] = "zz"
		csv := head + strings.Join(rec, ",") + "\n"
		if _, err := ReadRCCs(strings.NewReader(csv)); err == nil {
			t.Errorf("corrupt %s accepted", field)
		}
	}
	if _, err := ReadRCCs(strings.NewReader(head + "1,2,G\n")); err == nil {
		t.Error("short rcc row accepted")
	}
	// Header with wrong column name.
	badHead := strings.Replace(head, "workspec", "swlin", 1)
	if _, err := ReadRCCs(strings.NewReader(badHead + strings.Join(base, ",") + "\n")); err == nil {
		t.Error("wrong header accepted")
	}
}
