// Package table persists the two NMD tables — avails and RCCs — as CSV, the
// interchange format the framework's deployment story requires (the pipeline
// trains on an obfuscated export, then retrains on raw tables inside the
// Navy environment). Columns mirror the paper's Tables 1 and 3.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"domd/internal/domain"
	"domd/internal/swlin"
)

var availHeader = []string{
	"avail_id", "ship_id", "status", "plan_start", "plan_end",
	"actual_start", "actual_end",
	"ship_class", "rmc", "ship_age", "planned_cost", "crew_size",
	"prior_avails", "dock_type", "homeport_dist",
}

// WriteAvails streams the avail table as CSV.
func WriteAvails(w io.Writer, avails []domain.Avail) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(availHeader); err != nil {
		return fmt.Errorf("table: write avail header: %w", err)
	}
	for i := range avails {
		a := &avails[i]
		actEnd := ""
		if a.Status == domain.StatusClosed {
			actEnd = a.ActEnd.String()
		}
		rec := []string{
			strconv.Itoa(a.ID),
			strconv.Itoa(a.ShipID),
			a.Status.String(),
			a.PlanStart.String(),
			a.PlanEnd.String(),
			a.ActStart.String(),
			actEnd,
			strconv.Itoa(a.ShipClass),
			strconv.Itoa(a.RMC),
			strconv.FormatFloat(a.ShipAge, 'g', -1, 64),
			strconv.FormatFloat(a.PlannedCost, 'g', -1, 64),
			strconv.Itoa(a.CrewSize),
			strconv.Itoa(a.PriorAvails),
			strconv.Itoa(a.DockType),
			strconv.FormatFloat(a.HomeportDist, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: write avail %d: %w", a.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAvails parses a CSV written by WriteAvails.
func ReadAvails(r io.Reader) ([]domain.Avail, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: read avails: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("table: empty avail csv")
	}
	if err := checkHeader(rows[0], availHeader); err != nil {
		return nil, err
	}
	avails := make([]domain.Avail, 0, len(rows)-1)
	for n, rec := range rows[1:] {
		a, err := parseAvail(rec)
		if err != nil {
			return nil, fmt.Errorf("table: avail row %d: %w", n+2, err)
		}
		avails = append(avails, a)
	}
	return avails, nil
}

func parseAvail(rec []string) (domain.Avail, error) {
	var a domain.Avail
	if len(rec) != len(availHeader) {
		return a, fmt.Errorf("%d fields, want %d", len(rec), len(availHeader))
	}
	var err error
	if a.ID, err = strconv.Atoi(rec[0]); err != nil {
		return a, fmt.Errorf("avail_id: %w", err)
	}
	if a.ShipID, err = strconv.Atoi(rec[1]); err != nil {
		return a, fmt.Errorf("ship_id: %w", err)
	}
	switch rec[2] {
	case "ongoing":
		a.Status = domain.StatusOngoing
	case "closed":
		a.Status = domain.StatusClosed
	default:
		return a, fmt.Errorf("unknown status %q", rec[2])
	}
	if a.PlanStart, err = domain.ParseDay(rec[3]); err != nil {
		return a, err
	}
	if a.PlanEnd, err = domain.ParseDay(rec[4]); err != nil {
		return a, err
	}
	if a.ActStart, err = domain.ParseDay(rec[5]); err != nil {
		return a, err
	}
	if a.Status == domain.StatusClosed {
		if a.ActEnd, err = domain.ParseDay(rec[6]); err != nil {
			return a, err
		}
	} else if rec[6] != "" {
		return a, fmt.Errorf("ongoing avail has actual_end %q", rec[6])
	}
	if a.ShipClass, err = strconv.Atoi(rec[7]); err != nil {
		return a, fmt.Errorf("ship_class: %w", err)
	}
	if a.RMC, err = strconv.Atoi(rec[8]); err != nil {
		return a, fmt.Errorf("rmc: %w", err)
	}
	if a.ShipAge, err = strconv.ParseFloat(rec[9], 64); err != nil {
		return a, fmt.Errorf("ship_age: %w", err)
	}
	if a.PlannedCost, err = strconv.ParseFloat(rec[10], 64); err != nil {
		return a, fmt.Errorf("planned_cost: %w", err)
	}
	if a.CrewSize, err = strconv.Atoi(rec[11]); err != nil {
		return a, fmt.Errorf("crew_size: %w", err)
	}
	if a.PriorAvails, err = strconv.Atoi(rec[12]); err != nil {
		return a, fmt.Errorf("prior_avails: %w", err)
	}
	if a.DockType, err = strconv.Atoi(rec[13]); err != nil {
		return a, fmt.Errorf("dock_type: %w", err)
	}
	if a.HomeportDist, err = strconv.ParseFloat(rec[14], 64); err != nil {
		return a, fmt.Errorf("homeport_dist: %w", err)
	}
	return a, a.Validate()
}

var rccHeader = []string{
	"rcc_id", "avail_id", "type", "workspec", "creation_date", "settled_date", "amount",
}

// WriteRCCs streams the RCC table as CSV, formatting SWLINs in the paper's
// "434-11-001" style.
func WriteRCCs(w io.Writer, rccs []domain.RCC) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rccHeader); err != nil {
		return fmt.Errorf("table: write rcc header: %w", err)
	}
	for i := range rccs {
		r := &rccs[i]
		rec := []string{
			strconv.Itoa(r.ID),
			strconv.Itoa(r.AvailID),
			r.Type.String(),
			swlin.Code(r.SWLIN).String(),
			r.Created.String(),
			r.Settled.String(),
			strconv.FormatFloat(r.Amount, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: write rcc %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRCCs parses a CSV written by WriteRCCs.
func ReadRCCs(r io.Reader) ([]domain.RCC, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: read rccs: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("table: empty rcc csv")
	}
	if err := checkHeader(rows[0], rccHeader); err != nil {
		return nil, err
	}
	rccs := make([]domain.RCC, 0, len(rows)-1)
	for n, rec := range rows[1:] {
		rcc, err := parseRCC(rec)
		if err != nil {
			return nil, fmt.Errorf("table: rcc row %d: %w", n+2, err)
		}
		rccs = append(rccs, rcc)
	}
	return rccs, nil
}

func parseRCC(rec []string) (domain.RCC, error) {
	var r domain.RCC
	if len(rec) != len(rccHeader) {
		return r, fmt.Errorf("%d fields, want %d", len(rec), len(rccHeader))
	}
	var err error
	if r.ID, err = strconv.Atoi(rec[0]); err != nil {
		return r, fmt.Errorf("rcc_id: %w", err)
	}
	if r.AvailID, err = strconv.Atoi(rec[1]); err != nil {
		return r, fmt.Errorf("avail_id: %w", err)
	}
	if r.Type, err = domain.ParseRCCType(rec[2]); err != nil {
		return r, err
	}
	code, err := swlin.Parse(rec[3])
	if err != nil {
		return r, err
	}
	r.SWLIN = int(code)
	if r.Created, err = domain.ParseDay(rec[4]); err != nil {
		return r, err
	}
	if r.Settled, err = domain.ParseDay(rec[5]); err != nil {
		return r, err
	}
	if r.Amount, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return r, fmt.Errorf("amount: %w", err)
	}
	return r, r.Validate()
}

func checkHeader(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("table: header has %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("table: header column %d is %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}
