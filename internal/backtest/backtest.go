// Package backtest evaluates the DoMD pipeline with walk-forward
// (rolling-origin) validation: train on all availabilities planned before a
// cutoff, test on the next chronological block, then roll the cutoff
// forward. This extends the paper's single recent-30% holdout (§5.2.1) to
// the evaluation a deployed SMDII back end runs before every model refresh —
// it answers "would this pipeline have worked at every point in the past?",
// not just at one split.
package backtest

import (
	"fmt"
	"math/rand"
	"sort"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/metrics"
)

// Config controls the walk-forward schedule.
type Config struct {
	// Folds is the number of chronological test blocks (>= 1).
	Folds int
	// MinTrain is the minimum number of training avails for the first
	// fold; earlier avails than this are never tested on.
	MinTrain int
	// ValFrac is the share of each fold's training block held out for
	// validation/tuning (as §5.2.1's 25%).
	ValFrac float64
	// Seed drives the validation draw.
	Seed int64
}

// DefaultConfig uses 3 folds with the paper's 25% validation share.
func DefaultConfig() Config {
	return Config{Folds: 3, MinTrain: 30, ValFrac: 0.25, Seed: 1}
}

// Validate rejects degenerate schedules.
func (c Config) Validate() error {
	if c.Folds < 1 {
		return fmt.Errorf("backtest: folds %d < 1", c.Folds)
	}
	if c.MinTrain < 4 {
		return fmt.Errorf("backtest: min train %d < 4", c.MinTrain)
	}
	if c.ValFrac <= 0 || c.ValFrac >= 1 {
		return fmt.Errorf("backtest: val fraction %f outside (0,1)", c.ValFrac)
	}
	return nil
}

// FoldResult is one walk-forward step.
type FoldResult struct {
	// Cutoff is the planned-start date splitting train from test.
	Cutoff domain.Day
	// NumTrain and NumTest count avails on each side.
	NumTrain, NumTest int
	// TrainRows and TestRows are the tensor row indices of each side
	// (train includes the validation draw).
	TrainRows, TestRows []int
	// Reports holds the per-t* quality on the fold's test block.
	Reports []metrics.Report
}

// Summary averages a measure over folds and timestamps.
type Summary struct {
	MAE80, MAE, R2 float64
}

// Run executes the walk-forward schedule with the given pipeline
// configuration over a prebuilt tensor.
func Run(cfg Config, pipeCfg core.Config, tensor *features.Tensor) ([]FoldResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Chronological order by planned start.
	order := make([]int, len(tensor.Avails))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tensor.Avails[order[a]].PlanStart < tensor.Avails[order[b]].PlanStart
	})
	n := len(order)
	testable := n - cfg.MinTrain
	if testable < cfg.Folds {
		return nil, fmt.Errorf("backtest: %d avails leave %d testable rows for %d folds", n, testable, cfg.Folds)
	}
	blockSize := testable / cfg.Folds

	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []FoldResult
	for f := 0; f < cfg.Folds; f++ {
		cut := cfg.MinTrain + f*blockSize
		end := cut + blockSize
		if f == cfg.Folds-1 {
			end = n
		}
		trainAll := append([]int(nil), order[:cut]...)
		test := append([]int(nil), order[cut:end]...)

		// Random validation draw inside the training block.
		rng.Shuffle(len(trainAll), func(i, j int) { trainAll[i], trainAll[j] = trainAll[j], trainAll[i] })
		nVal := int(cfg.ValFrac * float64(len(trainAll)))
		if nVal < 1 {
			nVal = 1
		}
		if nVal >= len(trainAll) {
			nVal = len(trainAll) - 1
		}
		val, train := trainAll[:nVal], trainAll[nVal:]

		p, err := core.Train(pipeCfg, tensor, train, val)
		if err != nil {
			return nil, fmt.Errorf("backtest: fold %d: %w", f, err)
		}
		reports, err := p.EvaluateRows(tensor, test)
		if err != nil {
			return nil, fmt.Errorf("backtest: fold %d: %w", f, err)
		}
		out = append(out, FoldResult{
			Cutoff:    tensor.Avails[order[cut]].PlanStart,
			NumTrain:  len(trainAll),
			NumTest:   len(test),
			TrainRows: trainAll,
			TestRows:  test,
			Reports:   reports,
		})
	}
	return out, nil
}

// Summarize averages MAE-80, MAE and R² across folds and timestamps.
func Summarize(folds []FoldResult) (Summary, error) {
	if len(folds) == 0 {
		return Summary{}, fmt.Errorf("backtest: no folds")
	}
	var s Summary
	count := 0
	for _, f := range folds {
		for _, r := range f.Reports {
			s.MAE80 += r.MAE80
			s.MAE += r.MAE
			s.R2 += r.R2
			count++
		}
	}
	if count == 0 {
		return Summary{}, fmt.Errorf("backtest: folds carry no reports")
	}
	s.MAE80 /= float64(count)
	s.MAE /= float64(count)
	s.R2 /= float64(count)
	return s, nil
}
