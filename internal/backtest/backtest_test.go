package backtest

import (
	"testing"

	"domd/internal/core"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
)

func testTensor(t *testing.T, n int) *features.Tensor {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: n, NumOngoing: 0, MeanRCCsPerAvail: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	return tensor
}

func fastPipe() core.Config {
	cfg := core.BaselineConfig()
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	cfg.GBTParams = &p
	return cfg
}

func TestWalkForward(t *testing.T) {
	tensor := testTensor(t, 70)
	cfg := DefaultConfig()
	cfg.MinTrain = 25
	folds, err := Run(cfg, fastPipe(), tensor)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("%d folds, want 3", len(folds))
	}
	totalTest := 0
	for i, f := range folds {
		if f.NumTrain < cfg.MinTrain {
			t.Errorf("fold %d: train %d < min %d", i, f.NumTrain, cfg.MinTrain)
		}
		if f.NumTest < 1 {
			t.Errorf("fold %d: empty test block", i)
		}
		if len(f.Reports) != len(tensor.Timestamps) {
			t.Errorf("fold %d: %d reports", i, len(f.Reports))
		}
		totalTest += f.NumTest
		// Cutoffs strictly advance.
		if i > 0 && f.Cutoff <= folds[i-1].Cutoff {
			t.Errorf("fold %d cutoff %v not after %v", i, f.Cutoff, folds[i-1].Cutoff)
		}
		// Training sets grow.
		if i > 0 && f.NumTrain <= folds[i-1].NumTrain {
			t.Errorf("fold %d train %d should exceed fold %d's %d", i, f.NumTrain, i-1, folds[i-1].NumTrain)
		}
	}
	if totalTest != 70-25 {
		t.Errorf("test blocks cover %d avails, want 45", totalTest)
	}
	sum, err := Summarize(folds)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MAE80 <= 0 || sum.MAE <= 0 || sum.MAE80 > sum.MAE {
		t.Errorf("summary %+v inconsistent", sum)
	}
}

func TestTemporalIntegrity(t *testing.T) {
	// Every test avail must start no earlier than every training avail of
	// its fold — the property that makes walk-forward honest.
	tensor := testTensor(t, 50)
	cfg := DefaultConfig()
	cfg.MinTrain = 20
	cfg.Folds = 2
	folds, err := Run(cfg, fastPipe(), tensor)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range folds {
		var maxTrain = tensor.Avails[f.TrainRows[0]].PlanStart
		for _, r := range f.TrainRows {
			if s := tensor.Avails[r].PlanStart; s > maxTrain {
				maxTrain = s
			}
		}
		for _, r := range f.TestRows {
			if tensor.Avails[r].PlanStart < maxTrain {
				t.Fatalf("fold %d: test avail starting %v precedes training avail starting %v",
					i, tensor.Avails[r].PlanStart, maxTrain)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Folds: 0, MinTrain: 10, ValFrac: 0.25},
		{Folds: 2, MinTrain: 1, ValFrac: 0.25},
		{Folds: 2, MinTrain: 10, ValFrac: 0},
		{Folds: 2, MinTrain: 10, ValFrac: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestTooFewAvails(t *testing.T) {
	tensor := testTensor(t, 12)
	cfg := DefaultConfig()
	cfg.MinTrain = 10
	cfg.Folds = 5
	if _, err := Run(cfg, fastPipe(), tensor); err == nil {
		t.Error("too few testable rows: want error")
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("no folds: want error")
	}
	if _, err := Summarize([]FoldResult{{}}); err == nil {
		t.Error("empty reports: want error")
	}
}
