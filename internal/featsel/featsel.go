// Package featsel implements Task 2 of the paper: scoring the generated
// feature set and keeping the top k. It provides the five methods evaluated
// in §5.2.2 — Pearson Correlation (the paper's winner), Spearman Rank,
// Mutual Information, Recursive Feature Elimination (model-dependent), and
// Random Selection (control) — behind a single Selector interface.
package featsel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"domd/internal/ml"
	"domd/internal/stats"
)

// Selector ranks the feature columns of a dataset and returns the indices of
// the k most relevant ones, most relevant first.
type Selector interface {
	// Name identifies the method.
	Name() string
	// Select returns up to k column indices of d (d.Y must be set).
	Select(d *ml.Dataset, k int) ([]int, error)
}

// Method names accepted by New, matching the paper's §5.2.1 list.
const (
	MethodPearson  = "pearson"
	MethodSpearman = "spearman"
	MethodMutual   = "mutualinfo"
	MethodRFE      = "rfe"
	MethodRandom   = "random"
)

// Methods lists every selector name in the order the paper reports them.
func Methods() []string {
	return []string{MethodRFE, MethodPearson, MethodSpearman, MethodMutual, MethodRandom}
}

// New constructs a Selector by name. RFE needs a Trainer to refit; Random
// needs a seed; both are taken from opts.
func New(name string, opts Options) (Selector, error) {
	switch name {
	case MethodPearson:
		return Pearson{}, nil
	case MethodSpearman:
		return Spearman{}, nil
	case MethodMutual:
		bins := opts.MIBins
		if bins == 0 {
			bins = 8
		}
		return MutualInfo{Bins: bins}, nil
	case MethodRFE:
		if opts.Trainer == nil {
			return nil, fmt.Errorf("featsel: rfe requires a trainer")
		}
		step := opts.RFEStep
		if step <= 0 {
			step = 0.25
		}
		return &RFE{Trainer: opts.Trainer, Step: step}, nil
	case MethodRandom:
		return &Random{Seed: opts.Seed}, nil
	default:
		return nil, fmt.Errorf("featsel: unknown method %q", name)
	}
}

// Options carries method-specific knobs for New.
type Options struct {
	// Trainer is the base model RFE refits on shrinking feature sets.
	Trainer ml.Trainer
	// Seed drives Random selection.
	Seed int64
	// MIBins is the histogram resolution for MutualInfo (default 8).
	MIBins int
	// RFEStep is the fraction of remaining features RFE drops per
	// iteration (default 0.25).
	RFEStep float64
}

func checkArgs(d *ml.Dataset, k int) error {
	if d.Y == nil {
		return fmt.Errorf("featsel: dataset has no targets")
	}
	if err := d.Validate(); err != nil {
		return err
	}
	if d.NumRows() == 0 || d.NumCols() == 0 {
		return fmt.Errorf("featsel: empty dataset")
	}
	if k < 1 {
		return fmt.Errorf("featsel: k = %d < 1", k)
	}
	return nil
}

// topK returns indices of the k largest scores, descending, with index order
// breaking ties for determinism.
func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Pearson scores each feature by |Pearson correlation| with the target —
// the paper's winning model-agnostic method.
type Pearson struct{}

// Name implements Selector.
func (Pearson) Name() string { return MethodPearson }

// Select implements Selector.
func (Pearson) Select(d *ml.Dataset, k int) ([]int, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	scores := make([]float64, d.NumCols())
	for j := range scores {
		r, err := stats.Pearson(d.Column(j), d.Y)
		if err != nil {
			return nil, fmt.Errorf("featsel: pearson col %d: %w", j, err)
		}
		scores[j] = math.Abs(r)
	}
	return topK(scores, k), nil
}

// Spearman scores by |rank correlation| with the target.
type Spearman struct{}

// Name implements Selector.
func (Spearman) Name() string { return MethodSpearman }

// Select implements Selector.
func (Spearman) Select(d *ml.Dataset, k int) ([]int, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	yRanks := stats.Ranks(d.Y)
	scores := make([]float64, d.NumCols())
	for j := range scores {
		r, err := stats.Pearson(stats.Ranks(d.Column(j)), yRanks)
		if err != nil {
			return nil, fmt.Errorf("featsel: spearman col %d: %w", j, err)
		}
		scores[j] = math.Abs(r)
	}
	return topK(scores, k), nil
}

// MutualInfo scores by histogram mutual information with the target.
type MutualInfo struct{ Bins int }

// Name implements Selector.
func (MutualInfo) Name() string { return MethodMutual }

// Select implements Selector.
func (m MutualInfo) Select(d *ml.Dataset, k int) ([]int, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	scores := make([]float64, d.NumCols())
	for j := range scores {
		mi, err := stats.MutualInformation(d.Column(j), d.Y, m.Bins)
		if err != nil {
			return nil, fmt.Errorf("featsel: mi col %d: %w", j, err)
		}
		scores[j] = mi
	}
	return topK(scores, k), nil
}

// RFE is Recursive Feature Elimination: repeatedly fit the base model on the
// surviving features and drop the least important Step-fraction until k
// remain (model-dependent selection, paper §3.2.1).
type RFE struct {
	Trainer ml.Trainer
	// Step is the fraction of remaining features dropped per iteration.
	Step float64
}

// Name implements Selector.
func (*RFE) Name() string { return MethodRFE }

// Select implements Selector.
func (r *RFE) Select(d *ml.Dataset, k int) ([]int, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	surviving := make([]int, d.NumCols())
	for i := range surviving {
		surviving[i] = i
	}
	for len(surviving) > k {
		sub := d.Select(surviving)
		model, err := r.Trainer.Fit(sub)
		if err != nil {
			return nil, fmt.Errorf("featsel: rfe refit with %d features: %w", len(surviving), err)
		}
		imp := model.Importances()
		if len(imp) != len(surviving) {
			return nil, fmt.Errorf("featsel: model returned %d importances for %d features", len(imp), len(surviving))
		}
		drop := int(r.Step * float64(len(surviving)))
		if drop < 1 {
			drop = 1
		}
		if len(surviving)-drop < k {
			drop = len(surviving) - k
		}
		// Order surviving by importance descending and cut the tail.
		order := topK(imp, len(imp))
		kept := make([]int, 0, len(surviving)-drop)
		for _, pos := range order[:len(order)-drop] {
			kept = append(kept, surviving[pos])
		}
		sort.Ints(kept)
		surviving = kept
	}
	// Final ranking of the survivors by a last fit.
	sub := d.Select(surviving)
	model, err := r.Trainer.Fit(sub)
	if err != nil {
		return nil, err
	}
	order := topK(model.Importances(), len(surviving))
	out := make([]int, len(order))
	for i, pos := range order {
		out[i] = surviving[pos]
	}
	return out, nil
}

// Random selects k features uniformly at random (the paper's control).
type Random struct{ Seed int64 }

// Name implements Selector.
func (*Random) Name() string { return MethodRandom }

// Select implements Selector.
func (r *Random) Select(d *ml.Dataset, k int) ([]int, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(d.NumCols())
	if k > len(perm) {
		k = len(perm)
	}
	return perm[:k], nil
}
