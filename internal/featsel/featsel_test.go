package featsel

import (
	"math/rand"
	"sort"
	"testing"

	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/ml/linear"
)

// synth builds a dataset with 10 features where only columns 2 and 7 carry
// signal: y = 10*x2 - 8*x7 + small noise.
func synth(seed int64, n int) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, 10)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		d.X[i] = row
		d.Y[i] = 10*row[2] - 8*row[7] + 0.1*rng.NormFloat64()
	}
	return d
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestModelAgnosticSelectorsFindSignal(t *testing.T) {
	d := synth(1, 300)
	selectors := []Selector{Pearson{}, Spearman{}, MutualInfo{Bins: 8}}
	for _, s := range selectors {
		got, err := s.Select(d, 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) != 2 || !contains(got, 2) || !contains(got, 7) {
			t.Errorf("%s: Select = %v, want {2,7}", s.Name(), got)
		}
	}
}

func TestPearsonRanksStrongerFirst(t *testing.T) {
	d := synth(2, 500)
	got, err := Pearson{}.Select(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 7 {
		t.Errorf("ranking = %v, want strongest (2) then (7) first", got[:3])
	}
}

func TestRFEWithLinearModel(t *testing.T) {
	d := synth(3, 300)
	sel := &RFE{Trainer: linear.NewTrainer(linear.OLSParams()), Step: 0.3}
	got, err := sel.Select(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, 2) || !contains(got, 7) {
		t.Errorf("RFE(linear) = %v, want {2,7}", got)
	}
}

func TestRFEWithGBT(t *testing.T) {
	d := synth(4, 300)
	p := gbt.DefaultParams()
	p.NumRounds = 30
	sel := &RFE{Trainer: gbt.NewTrainer(p, nil), Step: 0.3}
	got, err := sel.Select(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, 2) || !contains(got, 7) {
		t.Errorf("RFE(gbt) = %v, want {2,7}", got)
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	d := synth(5, 50)
	a, err := (&Random{Seed: 42}).Select(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := (&Random{Seed: 42}).Select(d, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same selection")
		}
	}
	c, _ := (&Random{Seed: 43}).Select(d, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestSelectorsReturnDistinctValidIndices(t *testing.T) {
	d := synth(6, 100)
	selectors := []Selector{
		Pearson{}, Spearman{}, MutualInfo{Bins: 8},
		&Random{Seed: 1},
		&RFE{Trainer: linear.NewTrainer(linear.OLSParams()), Step: 0.25},
	}
	for _, s := range selectors {
		for _, k := range []int{1, 5, 10, 50} {
			got, err := s.Select(d, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", s.Name(), k, err)
			}
			wantLen := k
			if wantLen > 10 {
				wantLen = 10
			}
			if len(got) != wantLen {
				t.Errorf("%s k=%d: returned %d indices", s.Name(), k, len(got))
			}
			seen := map[int]bool{}
			for _, j := range got {
				if j < 0 || j >= 10 {
					t.Errorf("%s: index %d out of range", s.Name(), j)
				}
				if seen[j] {
					t.Errorf("%s: duplicate index %d", s.Name(), j)
				}
				seen[j] = true
			}
		}
	}
}

func TestKLargerThanColumnsReturnsAll(t *testing.T) {
	d := synth(7, 60)
	got, err := Pearson{}.Select(d, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("k > p should return all %d columns, got %d", 10, len(got))
	}
	sorted := append([]int(nil), got...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("selection %v is not a permutation of all columns", got)
		}
	}
}

func TestErrors(t *testing.T) {
	d := synth(8, 20)
	noY := &ml.Dataset{X: d.X}
	for _, s := range []Selector{Pearson{}, Spearman{}, MutualInfo{Bins: 8}, &Random{}} {
		if _, err := s.Select(noY, 2); err == nil {
			t.Errorf("%s: no targets: want error", s.Name())
		}
		if _, err := s.Select(d, 0); err == nil {
			t.Errorf("%s: k=0: want error", s.Name())
		}
	}
	empty := &ml.Dataset{X: [][]float64{}, Y: []float64{}}
	if _, err := (Pearson{}).Select(empty, 1); err == nil {
		t.Error("empty: want error")
	}
}

func TestNewFactory(t *testing.T) {
	for _, name := range Methods() {
		opts := Options{Trainer: linear.NewTrainer(linear.OLSParams())}
		s, err := New(name, opts)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("chi2", Options{}); err == nil {
		t.Error("New(chi2): want error")
	}
	if _, err := New(MethodRFE, Options{}); err == nil {
		t.Error("RFE without trainer: want error")
	}
}

func TestConstantFeatureScoredZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 100
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		s := rng.NormFloat64()
		d.X[i] = []float64{7, s} // col 0 constant, col 1 signal
		d.Y[i] = 3 * s
	}
	for _, s := range []Selector{Pearson{}, Spearman{}, MutualInfo{Bins: 4}} {
		got, err := s.Select(d, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got[0] != 1 {
			t.Errorf("%s: selected constant column", s.Name())
		}
	}
}
