package modelserve

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/statusq"
)

// fixture is the shared navsim world every registry test trains against:
// one dataset, one tensor, one split — built once per test binary.
type fixture struct {
	ds     *navsim.Dataset
	tensor *features.Tensor
	sp     split.Splits
}

var testFixture = sync.OnceValues(func() (*fixture, error) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		return nil, err
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		return nil, err
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		return nil, err
	}
	return &fixture{ds: ds, tensor: tensor, sp: sp}, nil
})

func mustFixture(t *testing.T) *fixture {
	t.Helper()
	fx, err := testFixture()
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// testConfig is the small, fast pipeline config the registry tests train
// with (the same shape the server tests use).
func testConfig(seed int64) core.Config {
	cfg := core.BaselineConfig()
	cfg.Fusion = fusion.MethodAverage
	cfg.Seed = seed
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	cfg.GBTParams = &p
	return cfg
}

// trainTestVersion trains one two-window version per (seed, name); the
// expensive trainings are memoized per test binary.
var versionCache sync.Map // key string -> *TrainedVersion

func trainTestVersion(t *testing.T, seed int64, name string) *TrainedVersion {
	t.Helper()
	key := name
	if v, ok := versionCache.Load(key); ok {
		return v.(*TrainedVersion)
	}
	fx := mustFixture(t)
	tv, err := TrainVersion(fx.tensor, fx.sp.Train, fx.sp.Val, TrainOptions{
		Windows: []Window{{Lo: 0, Hi: 50}, {Lo: 50, Hi: 100}},
		Alpha:   0.2,
		Version: name,
		Config:  testConfig(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	versionCache.Store(key, tv)
	return tv
}

// engineFor builds a throwaway Status Query engine for one avail.
func engineFor(t *testing.T, fx *fixture, a *domain.Avail) *statusq.Engine {
	t.Helper()
	eng, err := statusq.NewEngine(a, fx.ds.RCCsByAvail()[a.ID], index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func ongoingAvail(t *testing.T, fx *fixture) *domain.Avail {
	t.Helper()
	for i := range fx.ds.Avails {
		if fx.ds.Avails[i].Status == domain.StatusOngoing {
			return &fx.ds.Avails[i]
		}
	}
	t.Fatal("fixture has no ongoing avail")
	return nil
}

func TestParseWindows(t *testing.T) {
	ws, err := ParseWindows("0-50, 50-100")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0] != (Window{Lo: 0, Hi: 50}) || ws[1] != (Window{Lo: 50, Hi: 100}) {
		t.Fatalf("windows = %v", ws)
	}
	for _, bad := range []string{"", "50-0", "banana", "0-50,25-75,10-20", "-5-10"} {
		if _, err := ParseWindows(bad); err == nil {
			t.Errorf("ParseWindows(%q) accepted", bad)
		}
	}
}

func TestTrainWriteOpenRoundTrip(t *testing.T) {
	fx := mustFixture(t)
	tv := trainTestVersion(t, 1, "v001")
	dir := t.TempDir()
	name, err := tv.WriteTo(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if name != "v001" {
		t.Fatalf("version = %q", name)
	}

	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.ActiveVersion(); got != "v001" {
		t.Fatalf("active = %q", got)
	}
	if got := reg.Alpha(); got != 0.2 {
		t.Fatalf("alpha = %g", got)
	}

	a := ongoingAvail(t, fx)
	eng := engineFor(t, fx, a)
	at := a.PhysicalTime(60)
	p1, err := reg.Predict(eng, at, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Lo > p1.Delay || p1.Delay > p1.Hi {
		t.Fatalf("band [%g, %g] does not contain delay %g", p1.Lo, p1.Hi, p1.Delay)
	}
	if p1.Version != "v001" || p1.WindowFallback {
		t.Fatalf("provenance = %+v", p1)
	}
	if p1.Alpha != 0.2 {
		t.Fatalf("alpha = %g, want the version default", p1.Alpha)
	}

	// A second independent load must answer bitwise identically: the
	// artifacts round-trip the full model state.
	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := reg2.Predict(eng, at, 0)
	if err != nil {
		t.Fatal(err)
	}
	if *p1 != *p2 {
		t.Fatalf("reload changed the answer: %+v vs %+v", p1, p2)
	}

	// A tighter alpha must widen the band around the same point estimate.
	p3, err := reg.Predict(eng, at, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Delay != p1.Delay {
		t.Fatalf("alpha changed the point estimate: %g vs %g", p3.Delay, p1.Delay)
	}
	if p3.Hi-p3.Lo < p1.Hi-p1.Lo {
		t.Fatalf("95%% band [%g, %g] narrower than 80%% band [%g, %g]", p3.Lo, p3.Hi, p1.Lo, p1.Hi)
	}
}

func TestWindowRoutingAndFallback(t *testing.T) {
	fx := mustFixture(t)
	tv := trainTestVersion(t, 1, "v001")
	dir := t.TempDir()
	if _, err := tv.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := ongoingAvail(t, fx)
	eng := engineFor(t, fx, a)

	cases := []struct {
		ts       float64
		wantLo   float64
		fallback bool
	}{
		{10, 0, false},
		{49, 0, false},
		{50, 0, false}, // boundary slot belongs to the earlier window
		{75, 50, false},
		{100, 50, false},
		{130, 50, true}, // running past plan: nearest window answers, annotated
	}
	for _, c := range cases {
		p, err := reg.Predict(eng, a.PhysicalTime(c.ts), 0)
		if err != nil {
			t.Fatalf("t*=%g: %v", c.ts, err)
		}
		if p.Window.Lo != c.wantLo || p.WindowFallback != c.fallback {
			t.Errorf("t*=%g routed to window %v fallback=%v, want lo=%g fallback=%v",
				c.ts, p.Window, p.WindowFallback, c.wantLo, c.fallback)
		}
	}

	// Before the avail starts there is no t* to route.
	if _, err := reg.Predict(eng, a.ActStart-10, 0); err == nil {
		t.Error("predict before actual start accepted")
	}
}

func TestDigestMismatchKeepsOldVersionServing(t *testing.T) {
	fx := mustFixture(t)
	tv := trainTestVersion(t, 1, "v001")
	dir := t.TempDir()
	if _, err := tv.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one artifact byte. The manifest digest now disagrees, so a
	// reload must fail — and the previously loaded snapshot keeps serving.
	path := filepath.Join(dir, "v001", "window-000.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("reload on corrupt artifact: err = %v", err)
	}
	if got := reg.ActiveVersion(); got != "v001" {
		t.Fatalf("active after failed reload = %q, want v001 still serving", got)
	}
	a := ongoingAvail(t, fx)
	if _, err := reg.Predict(engineFor(t, fx, a), a.PhysicalTime(60), 0); err != nil {
		t.Fatalf("predict after failed reload: %v", err)
	}

	// A fresh Open of the corrupt directory is degraded, not fatal.
	reg2, err := Open(dir)
	if err == nil {
		t.Fatal("Open of corrupt registry reported no error")
	}
	if reg2 == nil {
		t.Fatal("Open returned no registry")
	}
	if _, err := reg2.Predict(engineFor(t, fx, a), a.PhysicalTime(60), 0); err == nil {
		t.Error("degraded registry served a prediction")
	}
	if st := reg2.RegistryStatus(); st.LoadError == "" {
		t.Error("degraded registry reports no load error")
	}
}

func TestHotSwapAdvancesVersion(t *testing.T) {
	tv1 := trainTestVersion(t, 1, "v001")
	tv2 := trainTestVersion(t, 2, "v002")
	dir := t.TempDir()
	if _, err := tv1.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tv2.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Active != "v002" || rep.Versions != 2 {
		t.Fatalf("swap report = %+v", rep)
	}
	// Reloading an unchanged manifest is a no-op swap.
	rep, err = reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped {
		t.Fatalf("idle reload swapped: %+v", rep)
	}

	// Rollback is an Active edit plus a reload.
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Active = "v001"
	if err := man.Write(dir); err != nil {
		t.Fatal(err)
	}
	rep, err = reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Active != "v001" {
		t.Fatalf("rollback report = %+v", rep)
	}
}

func TestEmptyRegistryServesUnavailable(t *testing.T) {
	fx := mustFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("empty dir must open cleanly: %v", err)
	}
	a := ongoingAvail(t, fx)
	if _, err := reg.Predict(engineFor(t, fx, a), a.PhysicalTime(60), 0); err != ErrNoModel {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}
	if v := reg.ActiveVersion(); v != "" {
		t.Fatalf("active = %q", v)
	}
}

func TestContentDerivedVersionNameIsStable(t *testing.T) {
	fx := mustFixture(t)
	opts := TrainOptions{
		Windows: []Window{{Lo: 0, Hi: 100}},
		Alpha:   0.2,
		Config:  testConfig(7),
	}
	tv1, err := TrainVersion(fx.tensor, fx.sp.Train, fx.sp.Val, opts)
	if err != nil {
		t.Fatal(err)
	}
	tv2, err := TrainVersion(fx.tensor, fx.sp.Train, fx.sp.Val, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tv1.Name != tv2.Name {
		t.Fatalf("retraining identical inputs renamed the version: %q vs %q", tv1.Name, tv2.Name)
	}
	if !strings.HasPrefix(tv1.Name, "v") || len(tv1.Name) != 13 {
		t.Fatalf("derived name = %q", tv1.Name)
	}
}

func TestManifestJSONShape(t *testing.T) {
	tv := trainTestVersion(t, 1, "v001")
	dir := t.TempDir()
	if _, err := tv.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Active   string `json:"active"`
		Versions []struct {
			Version   string  `json:"version"`
			Alpha     float64 `json:"alpha"`
			Artifacts []struct {
				File   string  `json:"file"`
				Lo     float64 `json:"lo"`
				Hi     float64 `json:"hi"`
				SHA256 string  `json:"sha256"`
			} `json:"artifacts"`
		} `json:"versions"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Active != "v001" || len(m.Versions) != 1 || len(m.Versions[0].Artifacts) != 2 {
		t.Fatalf("manifest = %+v", m)
	}
	for _, a := range m.Versions[0].Artifacts {
		if len(a.SHA256) != 64 {
			t.Errorf("artifact %s digest %q", a.File, a.SHA256)
		}
		if _, err := os.Stat(filepath.Join(dir, a.File)); err != nil {
			t.Errorf("artifact file: %v", err)
		}
	}
}

// TestConformalCoverageRegression is the serving-band quality gate: the
// empirical coverage of the band the registry serves, measured on the
// held-out navsim test split, must sit at or above the nominal level up
// to finite-sample tolerance. Split conformal guarantees
// P(|y − ŷ| ≤ margin) ≥ 1 − α over the calibration draw; with a small
// calibration set the quantile rank is conservative (ceil((n+1)(1−α))),
// so falling far below nominal signals a broken calibration or
// persistence path, not noise.
func TestConformalCoverageRegression(t *testing.T) {
	fx := mustFixture(t)
	const alpha = 0.2
	tv := trainTestVersion(t, 1, "v001")
	dir := t.TempDir()
	if _, err := tv.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.snap.Load()
	if snap == nil || snap.active == nil {
		t.Fatal("no active version")
	}

	covered, total := 0, 0
	var widthSum float64
	for _, m := range snap.active.windows {
		grid := m.pipe.Timestamps()
		// Slot j of this window model corresponds to the tensor slice at
		// the same timestamp; evaluate every held-out row at every slot.
		slices := make([]*ml.Dataset, len(grid))
		for j, ts := range grid {
			slices[j] = tensorSliceAt(t, fx.tensor, ts)
		}
		for _, row := range fx.sp.Test {
			fulls := make([][]float64, len(grid))
			for j := range grid {
				fulls[j] = slices[j].X[row]
			}
			raw, _, err := m.pipe.Trajectory(fulls, len(grid)-1)
			if err != nil {
				t.Fatal(err)
			}
			for k := range grid {
				lo, _, hi, err := m.conf.Interval(raw, k, alpha)
				if err != nil {
					t.Fatal(err)
				}
				truth := slices[k].Y[row]
				if lo <= truth && truth <= hi {
					covered++
				}
				widthSum += hi - lo
				total++
			}
		}
	}
	coverage := float64(covered) / float64(total)
	meanWidth := widthSum / float64(total)
	t.Logf("empirical coverage = %.3f over %d (row, slot) pairs, nominal %.2f, mean band width %.1f days",
		coverage, total, 1-alpha, meanWidth)
	// Finite-sample tolerance: with a handful of calibration rows the
	// conservative quantile usually over-covers; anything below nominal
	// minus tolerance means the band lost its guarantee in transit.
	const tolerance = 0.10
	if coverage < (1-alpha)-tolerance {
		t.Fatalf("coverage %.3f below nominal %.2f − %.2f", coverage, 1-alpha, tolerance)
	}
	if meanWidth <= 0 || math.IsNaN(meanWidth) {
		t.Fatalf("degenerate band width %g", meanWidth)
	}
}

// tensorSliceAt resolves the tensor slice at one grid timestamp.
func tensorSliceAt(t *testing.T, tensor *features.Tensor, ts float64) *ml.Dataset {
	t.Helper()
	for k, g := range tensor.Timestamps {
		if g == ts {
			return tensor.Slices[k]
		}
	}
	t.Fatalf("no tensor slice at t* = %g", ts)
	return nil
}
