package modelserve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/obs"
	"domd/internal/statusq"
)

// ErrNoModel reports a registry with no loadable active version: the
// serving tier annotates the answer prediction_unavailable instead of
// failing the request (the PR-4 degraded-read contract).
var ErrNoModel = errors.New("modelserve: no model version loaded")

// windowModel is one loaded window artifact: the trained pipeline, its
// conformal calibration, and the window it covers. Read-only once built,
// so any number of Predict calls share it without locking.
type windowModel struct {
	window Window
	sha    string
	file   string
	pipe   *core.Pipeline
	conf   *core.Conformal
}

// loadedVersion is one fully loaded model version, windows ascending.
type loadedVersion struct {
	name    string
	alpha   float64
	windows []*windowModel
}

// route picks the window whose interval covers t*, or the nearest window
// (fallback=true) when none does — e.g. an avail running past plan with
// t* beyond the last trained window.
func (v *loadedVersion) route(ts float64) (m *windowModel, fallback bool) {
	for _, w := range v.windows {
		if w.window.Contains(ts) {
			return w, false
		}
	}
	best := v.windows[0]
	for _, w := range v.windows[1:] {
		if w.window.Distance(ts) < best.window.Distance(ts) {
			best = w
		}
	}
	return best, true
}

// snapshot is the registry state one atomic pointer load observes: the
// manifest as read, the loaded active version (nil when the registry is
// empty or the load failed), and the failure reason operators see on
// GET /models. Snapshots are immutable; a reload builds a fresh one and
// swaps the pointer, so requests that loaded the old snapshot finish on
// the version they started with.
type snapshot struct {
	manifest *Manifest
	active   *loadedVersion
	loadErr  string
}

// Registry serves versioned models from a directory, hot-swappable via
// Reload. The zero value is not usable — construct with Open.
type Registry struct {
	dir string
	ext *features.Extractor

	// reloadMu serializes Reload so concurrent swaps cannot interleave
	// and move the observed version backwards; Predict never takes it.
	reloadMu sync.Mutex
	snap     atomic.Pointer[snapshot]
}

// Open loads the registry at dir. A missing or empty manifest yields a
// usable registry that serves every prediction as unavailable until a
// version is trained and Reload picks it up. A load failure (corrupt
// artifact, digest mismatch) also yields a usable degraded registry —
// the error is returned so the caller can log it, but serving reads must
// not die because a model directory is bad.
func Open(dir string) (*Registry, error) {
	r := &Registry{dir: dir, ext: features.NewExtractor()}
	snap, err := r.buildSnapshot()
	r.snap.Store(snap)
	if snap.active != nil {
		mSwaps.Inc()
	}
	return r, err
}

// Dir reports the model directory the registry serves from.
func (r *Registry) Dir() string { return r.dir }

// SwapReport summarizes one Reload for the /models/reload response.
type SwapReport struct {
	// Active is the serving version after the reload.
	Active string `json:"active"`
	// Swapped reports whether the serving version changed.
	Swapped bool `json:"swapped"`
	// Versions and Windows count the manifest's versions and the active
	// version's loaded window models.
	Versions int `json:"versions"`
	Windows  int `json:"windows"`
}

// Reload re-reads the manifest and artifacts and atomically swaps the
// serving snapshot. On failure the previous snapshot keeps serving and
// the error is returned — a bad rollout cannot take down reads. In-flight
// predictions that already loaded the old snapshot complete on it.
func (r *Registry) Reload() (SwapReport, error) {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	snap, err := r.buildSnapshot()
	if err != nil {
		mLoadFailures.Inc()
		old := r.snap.Load()
		rep := SwapReport{}
		if old != nil && old.active != nil {
			rep.Active = old.active.name
			rep.Windows = len(old.active.windows)
		}
		if old != nil {
			rep.Versions = len(old.manifest.Versions)
		}
		return rep, err
	}
	old := r.snap.Load()
	r.snap.Store(snap)
	rep := SwapReport{Versions: len(snap.manifest.Versions)}
	if snap.active != nil {
		rep.Active = snap.active.name
		rep.Windows = len(snap.active.windows)
	}
	oldName := ""
	if old != nil && old.active != nil {
		oldName = old.active.name
	}
	if rep.Active != oldName {
		rep.Swapped = true
		mSwaps.Inc()
	}
	return rep, nil
}

// buildSnapshot reads the manifest and loads the active version's
// artifacts, verifying each digest. An empty manifest (nothing trained
// yet) is a valid empty snapshot; any read, parse, or digest failure is
// an error and the returned snapshot carries the reason for GET /models.
func (r *Registry) buildSnapshot() (*snapshot, error) {
	man, err := ReadManifest(r.dir)
	if err != nil {
		return &snapshot{manifest: &Manifest{}, loadErr: err.Error()}, err
	}
	mVersions.Set(int64(len(man.Versions)))
	if man.Active == "" {
		return &snapshot{manifest: man}, nil
	}
	mv, ok := man.Version(man.Active)
	if !ok {
		err := fmt.Errorf("modelserve: active version %q is not in the manifest", man.Active)
		return &snapshot{manifest: man, loadErr: err.Error()}, err
	}
	v, err := r.loadVersion(mv)
	if err != nil {
		return &snapshot{manifest: man, loadErr: err.Error()}, err
	}
	return &snapshot{manifest: man, active: v}, nil
}

// loadVersion loads and digest-verifies every window artifact of one
// manifest version.
func (r *Registry) loadVersion(mv *ManifestVersion) (*loadedVersion, error) {
	if len(mv.Artifacts) == 0 {
		return nil, fmt.Errorf("modelserve: version %q has no window artifacts", mv.Version)
	}
	v := &loadedVersion{name: mv.Version, alpha: mv.Alpha}
	if v.alpha <= 0 || v.alpha >= 1 {
		v.alpha = DefaultAlpha
	}
	for _, art := range mv.Artifacts {
		data, err := os.ReadFile(filepath.Join(r.dir, filepath.FromSlash(art.File)))
		if err != nil {
			return nil, fmt.Errorf("modelserve: version %q: %w", mv.Version, err)
		}
		if got := digest(data); got != art.SHA256 {
			return nil, fmt.Errorf("modelserve: version %q: %s digest mismatch (manifest %s, file %s)",
				mv.Version, art.File, art.SHA256, got)
		}
		w, pipe, conf, err := decodeArtifact(data)
		if err != nil {
			return nil, fmt.Errorf("modelserve: version %q: %s: %w", mv.Version, art.File, err)
		}
		//lint:ignore floateq manifest and artifact serialize the same float64s; any inequality is corruption, not rounding
		if w.Lo != art.Lo || w.Hi != art.Hi {
			return nil, fmt.Errorf("modelserve: version %q: %s covers %v, manifest says %v",
				mv.Version, art.File, w, Window{Lo: art.Lo, Hi: art.Hi})
		}
		v.windows = append(v.windows, &windowModel{window: w, sha: art.SHA256, file: art.File, pipe: pipe, conf: conf})
		mLoads.Inc()
	}
	return v, nil
}

// ActiveVersion names the serving version, "" when none is loaded.
func (r *Registry) ActiveVersion() string {
	snap := r.snap.Load()
	if snap == nil || snap.active == nil {
		return ""
	}
	return snap.active.name
}

// Alpha reports the active version's default conformal miscoverage
// level, DefaultAlpha when no version is loaded.
func (r *Registry) Alpha() float64 {
	snap := r.snap.Load()
	if snap == nil || snap.active == nil {
		return DefaultAlpha
	}
	return snap.active.alpha
}

// ArtifactStatus is one window row of GET /models.
type ArtifactStatus struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	File   string  `json:"file"`
	SHA256 string  `json:"sha256"`
}

// VersionStatus is one version row of GET /models.
type VersionStatus struct {
	Version string           `json:"version"`
	Alpha   float64          `json:"alpha"`
	Active  bool             `json:"active"`
	Windows []ArtifactStatus `json:"windows"`
}

// Status is the registry listing GET /models renders.
type Status struct {
	Dir       string          `json:"dir"`
	Active    string          `json:"active,omitempty"`
	LoadError string          `json:"load_error,omitempty"`
	Versions  []VersionStatus `json:"versions"`
}

// RegistryStatus snapshots the registry for operators: every manifest
// version, which one serves, and why none does when serving is degraded.
func (r *Registry) RegistryStatus() Status {
	st := Status{Dir: r.dir, Versions: []VersionStatus{}}
	snap := r.snap.Load()
	if snap == nil {
		return st
	}
	st.LoadError = snap.loadErr
	if snap.active != nil {
		st.Active = snap.active.name
	}
	for _, mv := range snap.manifest.Versions {
		vs := VersionStatus{Version: mv.Version, Alpha: mv.Alpha, Active: mv.Version == st.Active}
		for _, a := range mv.Artifacts {
			vs.Windows = append(vs.Windows, ArtifactStatus{Lo: a.Lo, Hi: a.Hi, File: a.File, SHA256: a.SHA256})
		}
		st.Versions = append(st.Versions, vs)
	}
	return st
}

// Prediction is one model answer: the fused delay estimate, its
// conformal band, and full provenance — which version and window
// produced it and whether window routing had to fall back.
type Prediction struct {
	// Delay is the fused point estimate in days; [Lo, Hi] its conformal
	// band at miscoverage Alpha.
	Delay, Lo, Hi float64
	Alpha         float64
	// Version and Window identify the producing model; WindowFallback
	// reports that no trained window covered t* and the nearest answered.
	Version        string
	Window         Window
	WindowFallback bool
}

// Predict answers one delay prediction for a live avail from its cached
// Status Query engine: route t* to a window model, extract the feature
// trajectory, fuse, and band. alpha <= 0 selects the version's default
// level. Returns ErrNoModel when no version is loaded; the engine is
// read-only here, so concurrent Predict calls share engines and models
// freely.
func (r *Registry) Predict(eng *statusq.Engine, at domain.Day, alpha float64) (*Prediction, error) {
	snap := r.snap.Load()
	if snap == nil || snap.active == nil {
		return nil, ErrNoModel
	}
	v := snap.active
	ts, err := eng.LogicalTime(at)
	if err != nil {
		return nil, err
	}
	if ts < 0 {
		return nil, fmt.Errorf("modelserve: avail %d has not started at %v (t* = %.1f%%)", eng.Avail().ID, at, ts)
	}
	sw := obs.StartTimer()
	m, fallback := v.route(ts)
	if alpha <= 0 {
		alpha = v.alpha
	}
	grid := m.pipe.Timestamps()
	upto := 0
	for k, g := range grid {
		if g <= ts {
			upto = k
		}
	}
	fulls := make([][]float64, upto+1)
	for k := 0; k <= upto; k++ {
		fulls[k], err = r.ext.Vector(eng, grid[k])
		if err != nil {
			return nil, err
		}
	}
	raw, _, err := m.pipe.Trajectory(fulls, upto)
	if err != nil {
		return nil, err
	}
	lo, mid, hi, err := m.conf.Interval(raw, upto, alpha)
	if err != nil {
		return nil, err
	}
	if fallback {
		mFallbacks.Inc()
	}
	mPredictLatency.ObserveSince(sw)
	return &Prediction{
		Delay: mid, Lo: lo, Hi: hi, Alpha: alpha,
		Version: v.name, Window: m.window, WindowFallback: fallback,
	}, nil
}
