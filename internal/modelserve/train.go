package modelserve

import (
	"fmt"
	"os"
	"path/filepath"

	"domd/internal/core"
	"domd/internal/features"
)

// TrainOptions parameterize TrainVersion.
type TrainOptions struct {
	// Windows are the logical-time intervals to train one model per,
	// ascending; every window must cover at least one tensor grid slot.
	Windows []Window
	// Alpha is the version's default conformal miscoverage level;
	// <= 0 selects DefaultAlpha.
	Alpha float64
	// Version names the artifacts; "" derives "v<hash12>" from the
	// artifact content, so retraining identical data under identical
	// config reproduces the same version name.
	Version string
	// Config is the pipeline training configuration (selector, family,
	// fusion, HPT budget, workers, seed).
	Config core.Config
}

// trainedArtifact is one encoded window model awaiting WriteTo.
type trainedArtifact struct {
	window Window
	data   []byte
	sha    string
}

// TrainedVersion is the in-memory result of TrainVersion: encoded,
// digest-stamped window artifacts ready to be published into a model
// directory.
type TrainedVersion struct {
	// Name is the version the manifest will list.
	Name string
	// Alpha is the version's default miscoverage level.
	Alpha float64
	arts  []trainedArtifact
}

// Windows lists the trained windows in training order.
func (tv *TrainedVersion) Windows() []Window {
	out := make([]Window, len(tv.arts))
	for i, a := range tv.arts {
		out[i] = a.window
	}
	return out
}

// TrainVersion fits one pipeline + conformal calibration per window over
// the tensor's grid slots inside that window: training rows fit the
// models, validation rows calibrate the conformal bands (held out from
// fitting, so the bands carry the split-conformal coverage guarantee up
// to HPT optimism — see core.NewConformal).
func TrainVersion(tensor *features.Tensor, trainRows, calibRows []int, opts TrainOptions) (*TrainedVersion, error) {
	if len(opts.Windows) == 0 {
		return nil, fmt.Errorf("modelserve: no training windows")
	}
	alpha := opts.Alpha
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	tv := &TrainedVersion{Name: opts.Version, Alpha: alpha}
	for _, w := range opts.Windows {
		sub, err := windowTensor(tensor, w)
		if err != nil {
			return nil, err
		}
		pipe, err := core.Train(opts.Config, sub, trainRows, calibRows)
		if err != nil {
			return nil, fmt.Errorf("modelserve: train window %v: %w", w, err)
		}
		conf, err := core.NewConformal(pipe, sub, calibRows)
		if err != nil {
			return nil, fmt.Errorf("modelserve: calibrate window %v: %w", w, err)
		}
		data, sha, err := encodeArtifact(w, pipe, conf)
		if err != nil {
			return nil, err
		}
		tv.arts = append(tv.arts, trainedArtifact{window: w, data: data, sha: sha})
	}
	if tv.Name == "" {
		all := make([]byte, 0)
		for _, a := range tv.arts {
			all = append(all, a.sha...)
		}
		tv.Name = "v" + digest(all)[:12]
	}
	return tv, nil
}

// windowTensor restricts a tensor to the grid slots a window covers
// (inclusive bounds; a boundary slot shared by two windows is trained
// into both models).
func windowTensor(t *features.Tensor, w Window) (*features.Tensor, error) {
	sub := &features.Tensor{Avails: t.Avails}
	for k, ts := range t.Timestamps {
		if w.Contains(ts) {
			sub.Timestamps = append(sub.Timestamps, ts)
			sub.Slices = append(sub.Slices, t.Slices[k])
		}
	}
	if len(sub.Timestamps) == 0 {
		return nil, fmt.Errorf("modelserve: window %v covers no grid slot of %v", w, t.Timestamps)
	}
	return sub, nil
}

// WriteTo publishes the version into a model directory: artifacts first
// (write-temp-then-rename), the manifest last, so a reload that races the
// publish sees either the old manifest or a complete new version. When
// activate is true (or the manifest has no active version yet) the new
// version becomes the serving one; an entry with the same name is
// replaced. Returns the version name.
func (tv *TrainedVersion) WriteTo(dir string, activate bool) (string, error) {
	vdir := filepath.Join(dir, tv.Name)
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return "", fmt.Errorf("modelserve: create %s: %w", vdir, err)
	}
	mv := ManifestVersion{Version: tv.Name, Alpha: tv.Alpha}
	for i, a := range tv.arts {
		rel := tv.Name + "/" + fmt.Sprintf("window-%03d.json", i)
		if err := atomicWrite(filepath.Join(dir, filepath.FromSlash(rel)), a.data); err != nil {
			return "", err
		}
		mv.Artifacts = append(mv.Artifacts, ManifestArtifact{File: rel, Lo: a.window.Lo, Hi: a.window.Hi, SHA256: a.sha})
	}
	man, err := ReadManifest(dir)
	if err != nil {
		return "", err
	}
	if existing, ok := man.Version(tv.Name); ok {
		*existing = mv
	} else {
		man.Versions = append(man.Versions, mv)
	}
	if activate || man.Active == "" {
		man.Active = tv.Name
	}
	if err := man.Write(dir); err != nil {
		return "", err
	}
	return tv.Name, nil
}
