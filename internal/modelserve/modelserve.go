// Package modelserve promotes the offline modeling pipeline (core.Train,
// core.NewConformal, core/persist) to a serving surface: a versioned,
// content-hashed model registry on disk, loaded at startup and
// hot-swappable at runtime without dropping a request.
//
// # Artifact layout
//
// A model directory holds one manifest plus one subdirectory per version:
//
//	<model-dir>/manifest.json
//	<model-dir>/<version>/window-000.json
//	<model-dir>/<version>/window-001.json
//
// Each window artifact serializes one trained pipeline (core/persist
// JSON) together with its conformal calibration residuals and the
// logical-time window [lo, hi] it covers — the paper trains one model per
// window of planned-duration percent, and the registry routes each query
// to the model whose window covers its t*. The manifest lists every
// version with per-artifact SHA-256 digests; loads verify the digest
// before trusting an artifact, so a torn copy or bit rot turns into a
// load failure (and degraded serving) instead of silently wrong numbers.
//
// # Lifecycle
//
// `domd train` fits per-window pipelines, calibrates conformal bands on
// the validation split, and writes a new version (TrainVersion +
// TrainedVersion.WriteTo). `domd serve -model-dir` opens the registry at
// startup (Open); POST /models/reload (Registry.Reload) re-reads the
// manifest and atomically swaps the active snapshot — in-flight requests
// finish on the version they started with. Rollback is the same motion:
// point the manifest's "active" field at an older version and reload.
package modelserve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"domd/internal/core"
)

// DefaultAlpha is the conformal miscoverage level served when neither the
// request nor the registry configuration names one: 0.1 ⇒ 90% bands.
const DefaultAlpha = 0.1

// ManifestName is the registry index file inside a model directory.
const ManifestName = "manifest.json"

// Window is one logical-time coverage interval in percent of planned
// duration: a window model answers queries whose t* lies in [Lo, Hi].
type Window struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether t* lies inside the window (inclusive bounds).
func (w Window) Contains(ts float64) bool { return ts >= w.Lo && ts <= w.Hi }

// Distance is the gap between t* and the window, 0 when covered — the
// routing metric for nearest-window fallback.
func (w Window) Distance(ts float64) float64 {
	switch {
	case ts < w.Lo:
		return w.Lo - ts
	case ts > w.Hi:
		return ts - w.Hi
	default:
		return 0
	}
}

// String renders the window the way the -windows flag parses it.
func (w Window) String() string { return fmt.Sprintf("%g-%g", w.Lo, w.Hi) }

// ManifestArtifact is one window artifact row in the manifest: the file
// (relative to the model directory), the window it covers, and the
// SHA-256 digest loads verify against.
type ManifestArtifact struct {
	File   string  `json:"file"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	SHA256 string  `json:"sha256"`
}

// ManifestVersion is one model version: a name, the conformal
// miscoverage level its bands were sized for by default, and its window
// artifacts in ascending window order.
type ManifestVersion struct {
	Version   string             `json:"version"`
	Alpha     float64            `json:"alpha"`
	Artifacts []ManifestArtifact `json:"artifacts"`
}

// Manifest is the registry index: every known version plus the name of
// the one serving. Versions other than the active one stay listed so a
// rollback is an edit of Active plus a reload, not a retrain.
type Manifest struct {
	Active   string            `json:"active"`
	Versions []ManifestVersion `json:"versions"`
}

// Version resolves a version entry by name.
func (m *Manifest) Version(name string) (*ManifestVersion, bool) {
	for i := range m.Versions {
		if m.Versions[i].Version == name {
			return &m.Versions[i], true
		}
	}
	return nil, false
}

// ReadManifest loads <dir>/manifest.json. A missing file is not an
// error: it returns an empty manifest, the state of a registry nothing
// has been trained into yet.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return &Manifest{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("modelserve: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("modelserve: parse manifest: %w", err)
	}
	return &m, nil
}

// Write atomically replaces <dir>/manifest.json (write-temp-then-rename,
// the same torn-write discipline as the WAL snapshots).
func (m *Manifest) Write(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("modelserve: encode manifest: %w", err)
	}
	return atomicWrite(filepath.Join(dir, ManifestName), append(data, '\n'))
}

// artifactJSON is the on-disk window artifact: the window, the pipeline
// in core/persist form, and the sorted conformal calibration residuals
// per grid slot.
type artifactJSON struct {
	Window    Window          `json:"window"`
	Pipeline  json.RawMessage `json:"pipeline"`
	Residuals [][]float64     `json:"residuals"`
}

// encodeArtifact serializes one trained window model and returns the
// bytes plus their SHA-256 digest (the manifest's integrity column).
func encodeArtifact(w Window, pipe *core.Pipeline, conf *core.Conformal) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		return nil, "", fmt.Errorf("modelserve: encode pipeline: %w", err)
	}
	art := artifactJSON{Window: w, Pipeline: bytes.TrimSpace(buf.Bytes()), Residuals: conf.Residuals()}
	data, err := json.Marshal(art)
	if err != nil {
		return nil, "", fmt.Errorf("modelserve: encode artifact: %w", err)
	}
	return data, digest(data), nil
}

// decodeArtifact rebuilds a loaded window model from artifact bytes.
func decodeArtifact(data []byte) (Window, *core.Pipeline, *core.Conformal, error) {
	var art artifactJSON
	if err := json.Unmarshal(data, &art); err != nil {
		return Window{}, nil, nil, fmt.Errorf("modelserve: parse artifact: %w", err)
	}
	pipe, err := core.Load(bytes.NewReader(art.Pipeline))
	if err != nil {
		return Window{}, nil, nil, err
	}
	conf, err := core.NewConformalFromResiduals(pipe, art.Residuals)
	if err != nil {
		return Window{}, nil, nil, err
	}
	return art.Window, pipe, conf, nil
}

// digest is the hex SHA-256 of artifact bytes as the manifest records it.
func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// atomicWrite lands data at path via a temp file and rename so readers
// never observe a half-written artifact.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("modelserve: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("modelserve: publish %s: %w", path, err)
	}
	return nil
}

// ParseWindows parses the -windows flag form "0-50,50-100" into an
// ascending window list. Windows must be well-formed (lo < hi, both in
// ascending order by lo) but may share a boundary point — the shared grid
// slot is trained into both models and routing picks the earlier window.
func ParseWindows(s string) ([]Window, error) {
	var out []Window
	for _, part := range splitComma(s) {
		var w Window
		if _, err := fmt.Sscanf(part, "%f-%f", &w.Lo, &w.Hi); err != nil {
			return nil, fmt.Errorf("modelserve: bad window %q (want lo-hi): %w", part, err)
		}
		if w.Lo < 0 || w.Hi <= w.Lo {
			return nil, fmt.Errorf("modelserve: bad window %q: need 0 <= lo < hi", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("modelserve: no windows in %q", s)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Lo < out[j].Lo }) {
		return nil, fmt.Errorf("modelserve: windows in %q are not ascending", s)
	}
	return out, nil
}

func splitComma(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}
