package modelserve

import "domd/internal/obs"

// Model serving metrics (full catalog: docs/OPERATIONS.md).
var (
	mLoads = obs.NewCounter("domd_model_loads_total",
		"Window artifacts loaded and digest-verified from the model directory.")
	mLoadFailures = obs.NewCounter("domd_model_load_failures_total",
		"Registry load attempts that failed (unreadable manifest, missing artifact, digest mismatch); the previous snapshot keeps serving.")
	mSwaps = obs.NewCounter("domd_model_swaps_total",
		"Hot swaps that changed the serving model version (startup load counts when it activates a version).")
	mVersions = obs.NewGauge("domd_model_versions",
		"Model versions listed in the registry manifest (available for rollback).")
	mFallbacks = obs.NewCounter("domd_model_window_fallbacks_total",
		"Predictions answered by the nearest window because no trained window covered the query's t* (rows carry window_fallback:true).")
	mPredictLatency = obs.NewHistogram("domd_predict_duration_seconds",
		"Model-side prediction latency: feature extraction, trajectory, and conformal band for one avail.", obs.DefBuckets)
)
