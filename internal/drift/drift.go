// Package drift monitors feature distributions between training time and
// serving time. The deployed DoMD pipeline retrains on raw data "without
// human intervention" (paper §1), which is only safe if someone notices when
// the live RCC stream stops resembling the data the model bank was fitted
// on. The detector computes the Population Stability Index (PSI) per feature
// between a reference batch (the training slice) and a live batch, and flags
// features whose PSI crosses the conventional alert thresholds.
package drift

import (
	"fmt"
	"math"
	"sort"
)

// Severity buckets follow the conventional PSI rules of thumb.
type Severity int

// PSI severity levels.
const (
	// Stable: PSI < 0.1 — no meaningful shift.
	Stable Severity = iota
	// Moderate: 0.1 <= PSI < 0.25 — investigate.
	Moderate
	// Severe: PSI >= 0.25 — the feature's distribution has shifted enough
	// to distrust the model until retrained.
	Severe
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Stable:
		return "stable"
	case Moderate:
		return "moderate"
	case Severe:
		return "severe"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// severityOf buckets an excess-PSI value.
func severityOf(psi float64) Severity {
	switch {
	case psi >= 0.25:
		return Severe
	case psi >= 0.1:
		return Moderate
	default:
		return Stable
	}
}

// Detector holds per-feature reference histograms.
type Detector struct {
	names []string
	// edges[f] are the reference quantile bin edges; ref[f] the reference
	// proportions per bin (len(edges)+1 bins).
	edges [][]float64
	ref   [][]float64
	// refN is the reference sample size, needed to correct PSI for
	// finite-sample noise.
	refN int
}

// Config controls binning.
type Config struct {
	// Bins is the histogram resolution (default 10, the PSI convention).
	Bins int
}

// NewDetector fits reference histograms on the training design matrix.
// names may be nil; rows must be non-empty and rectangular.
func NewDetector(cfg Config, X [][]float64, names []string) (*Detector, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, fmt.Errorf("drift: empty reference batch")
	}
	bins := cfg.Bins
	if bins == 0 {
		bins = 10
	}
	if bins < 2 {
		return nil, fmt.Errorf("drift: bins %d < 2", bins)
	}
	p := len(X[0])
	if names != nil && len(names) != p {
		return nil, fmt.Errorf("drift: %d names for %d features", len(names), p)
	}
	d := &Detector{names: names, edges: make([][]float64, p), ref: make([][]float64, p), refN: len(X)}
	vals := make([]float64, len(X))
	for f := 0; f < p; f++ {
		for i := range X {
			if len(X[i]) != p {
				return nil, fmt.Errorf("drift: ragged row %d", i)
			}
			vals[i] = X[i][f]
		}
		sort.Float64s(vals)
		var edges []float64
		for k := 1; k < bins; k++ {
			q := vals[k*(len(vals)-1)/bins]
			if len(edges) == 0 || q > edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		d.edges[f] = edges
		d.ref[f] = proportions(edges, vals)
	}
	return d, nil
}

// proportions buckets sorted-or-not values into edge-defined bins.
func proportions(edges []float64, vals []float64) []float64 {
	counts := make([]float64, len(edges)+1)
	for _, v := range vals {
		counts[binOf(edges, v)]++
	}
	inv := 1.0 / float64(len(vals))
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}

func binOf(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Report is one feature's drift measurement. Severity is judged on the
// PSI in excess of its no-drift expectation E[PSI] ≈ (B−1)(1/n_ref +
// 1/n_live): with small batches the raw PSI is biased upward by sampling
// noise alone, and the conventional 0.1/0.25 thresholds assume that bias is
// negligible.
type Report struct {
	Feature int
	Name    string
	PSI     float64
	// Excess is max(0, PSI − E[PSI under no drift]).
	Excess   float64
	Severity Severity
}

// Check computes per-feature PSI of the live batch against the reference,
// returning reports sorted by descending PSI.
func (d *Detector) Check(live [][]float64) ([]Report, error) {
	if len(live) == 0 {
		return nil, fmt.Errorf("drift: empty live batch")
	}
	p := len(d.edges)
	vals := make([]float64, len(live))
	out := make([]Report, 0, p)
	for f := 0; f < p; f++ {
		for i := range live {
			if len(live[i]) != p {
				return nil, fmt.Errorf("drift: live row %d has %d features, want %d", i, len(live[i]), p)
			}
			vals[i] = live[i][f]
		}
		cur := proportions(d.edges[f], vals)
		psi := 0.0
		const eps = 1e-4 // smooth empty bins, the standard PSI fix
		for b := range cur {
			r := math.Max(d.ref[f][b], eps)
			c := math.Max(cur[b], eps)
			psi += (c - r) * math.Log(c/r)
		}
		// No-drift expectation of PSI from sampling noise alone.
		bins := float64(len(d.ref[f]))
		expected := (bins - 1) * (1/float64(d.refN) + 1/float64(len(live)))
		excess := psi - expected
		if excess < 0 {
			excess = 0
		}
		rep := Report{Feature: f, PSI: psi, Excess: excess, Severity: severityOf(excess)}
		if d.names != nil {
			rep.Name = d.names[f]
		}
		out = append(out, rep)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Excess > out[b].Excess })
	return out, nil
}

// Worst returns the highest-severity report (Check result must be
// non-empty).
func Worst(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	return reports[0]
}
