package drift

import (
	"math/rand"
	"testing"
)

func batch(rng *rand.Rand, n int, shift, scale float64) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{
			rng.NormFloat64()*scale + shift, // drifting feature
			rng.NormFloat64(),               // stable feature
		}
	}
	return X
}

func TestNoDriftOnSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := batch(rng, 2000, 0, 1)
	live := batch(rng, 2000, 0, 1)
	d, err := NewDetector(Config{}, ref, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := d.Check(live)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Severity != Stable {
			t.Errorf("feature %s: PSI %f flagged %v on identical distribution", r.Name, r.PSI, r.Severity)
		}
	}
}

func TestDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := batch(rng, 2000, 0, 1)
	live := batch(rng, 2000, 2, 1) // feature 0 shifted by 2σ
	d, err := NewDetector(Config{}, ref, []string{"shifted", "stable"})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := d.Check(live)
	if err != nil {
		t.Fatal(err)
	}
	worst := Worst(reports)
	if worst.Name != "shifted" {
		t.Fatalf("worst = %q, want shifted (reports %+v)", worst.Name, reports)
	}
	if worst.Excess <= 0 || worst.Excess > worst.PSI {
		t.Errorf("excess %f inconsistent with PSI %f", worst.Excess, worst.PSI)
	}
	if worst.Severity != Severe {
		t.Errorf("2σ mean shift should be severe, got %v (PSI %f)", worst.Severity, worst.PSI)
	}
	// The untouched feature stays quiet.
	for _, r := range reports {
		if r.Name == "stable" && r.Severity == Severe {
			t.Errorf("stable feature flagged severe (PSI %f)", r.PSI)
		}
	}
}

func TestDetectsVarianceShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := batch(rng, 2000, 0, 1)
	live := batch(rng, 2000, 0, 3) // feature 0 variance tripled
	d, err := NewDetector(Config{}, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := d.Check(live)
	if err != nil {
		t.Fatal(err)
	}
	if Worst(reports).Feature != 0 || Worst(reports).Severity == Stable {
		t.Errorf("variance shift missed: %+v", reports)
	}
}

func TestSeverityBuckets(t *testing.T) {
	cases := []struct {
		psi  float64
		want Severity
	}{{0, Stable}, {0.05, Stable}, {0.1, Moderate}, {0.2, Moderate}, {0.25, Severe}, {2, Severe}}
	for _, c := range cases {
		if got := severityOf(c.psi); got != c.want {
			t.Errorf("severityOf(%f) = %v, want %v", c.psi, got, c.want)
		}
	}
	if Stable.String() != "stable" || Severe.String() != "severe" {
		t.Error("severity strings wrong")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewDetector(Config{}, nil, nil); err == nil {
		t.Error("empty reference: want error")
	}
	if _, err := NewDetector(Config{Bins: 1}, [][]float64{{1}}, nil); err == nil {
		t.Error("bins=1: want error")
	}
	if _, err := NewDetector(Config{}, [][]float64{{1}}, []string{"a", "b"}); err == nil {
		t.Error("name mismatch: want error")
	}
	if _, err := NewDetector(Config{}, [][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Error("ragged reference: want error")
	}
	d, err := NewDetector(Config{}, [][]float64{{1, 2}, {3, 4}, {5, 6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Check(nil); err == nil {
		t.Error("empty live: want error")
	}
	if _, err := d.Check([][]float64{{1}}); err == nil {
		t.Error("ragged live: want error")
	}
	if w := Worst(nil); w.PSI != 0 {
		t.Error("Worst(nil) should be zero value")
	}
}

func TestConstantFeatureDoesNotExplode(t *testing.T) {
	ref := [][]float64{{7, 1}, {7, 2}, {7, 3}, {7, 4}}
	live := [][]float64{{7, 1}, {7, 2}, {7, 100}}
	d, err := NewDetector(Config{Bins: 4}, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := d.Check(live)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.PSI != r.PSI || r.PSI < 0 { // NaN or negative
			t.Errorf("feature %d: bad PSI %f", r.Feature, r.PSI)
		}
	}
}
