package split

import (
	"testing"

	"domd/internal/domain"
)

func makeAvails(n int) []domain.Avail {
	avails := make([]domain.Avail, n)
	for i := range avails {
		start := domain.Day(i * 30)
		avails[i] = domain.Avail{
			ID: i, Status: domain.StatusClosed,
			PlanStart: start, PlanEnd: start + 100,
			ActStart: start, ActEnd: start + 110,
		}
	}
	return avails
}

func TestPaperFractions(t *testing.T) {
	avails := makeAvails(100)
	s, err := Make(DefaultConfig(), avails)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Test) != 30 {
		t.Errorf("test size = %d, want 30", len(s.Test))
	}
	if len(s.Val) != 17 { // 25% of 70
		t.Errorf("val size = %d, want 17", len(s.Val))
	}
	if len(s.Train) != 53 {
		t.Errorf("train size = %d, want 53", len(s.Train))
	}
}

func TestPartitionIsDisjointAndComplete(t *testing.T) {
	avails := makeAvails(87)
	s, err := Make(DefaultConfig(), avails)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, i := range s.Train {
		seen[i]++
	}
	for _, i := range s.Val {
		seen[i]++
	}
	for _, i := range s.Test {
		seen[i]++
	}
	if len(seen) != 87 {
		t.Errorf("%d distinct indices, want 87", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d appears %d times", i, c)
		}
	}
}

func TestTestSetIsMostRecent(t *testing.T) {
	avails := makeAvails(50)
	s, err := Make(DefaultConfig(), avails)
	if err != nil {
		t.Fatal(err)
	}
	// Every test avail must start no earlier than every train/val avail.
	minTest := domain.Day(1 << 30)
	for _, i := range s.Test {
		if avails[i].PlanStart < minTest {
			minTest = avails[i].PlanStart
		}
	}
	for _, i := range append(append([]int(nil), s.Train...), s.Val...) {
		if avails[i].PlanStart > minTest {
			t.Errorf("avail %d (start %v) is newer than test minimum %v", i, avails[i].PlanStart, minTest)
		}
	}
}

func TestOngoingAvailsExcluded(t *testing.T) {
	avails := makeAvails(20)
	avails[5].Status = domain.StatusOngoing
	avails[12].Status = domain.StatusOngoing
	s, err := Make(DefaultConfig(), avails)
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.Train) + len(s.Val) + len(s.Test)
	if total != 18 {
		t.Errorf("split covers %d avails, want 18", total)
	}
	for _, set := range [][]int{s.Train, s.Val, s.Test} {
		for _, i := range set {
			if i == 5 || i == 12 {
				t.Errorf("ongoing avail %d included", i)
			}
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	avails := makeAvails(40)
	a, _ := Make(DefaultConfig(), avails)
	b, _ := Make(DefaultConfig(), avails)
	if len(a.Val) != len(b.Val) {
		t.Fatal("same seed must reproduce split")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("same seed must reproduce split")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c, _ := Make(cfg, avails)
	same := len(a.Val) == len(c.Val)
	if same {
		for i := range a.Val {
			if a.Val[i] != c.Val[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should shuffle validation differently")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Make(Config{TestFrac: 0, ValFrac: 0.25}, makeAvails(10)); err == nil {
		t.Error("bad test frac: want error")
	}
	if _, err := Make(Config{TestFrac: 0.3, ValFrac: 1}, makeAvails(10)); err == nil {
		t.Error("bad val frac: want error")
	}
	if _, err := Make(DefaultConfig(), makeAvails(3)); err == nil {
		t.Error("too few avails: want error")
	}
	ongoing := makeAvails(10)
	for i := range ongoing {
		ongoing[i].Status = domain.StatusOngoing
	}
	if _, err := Make(DefaultConfig(), ongoing); err == nil {
		t.Error("all ongoing: want error")
	}
}

func TestTinyDatasetStillSplits(t *testing.T) {
	s, err := Make(DefaultConfig(), makeAvails(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Test) < 1 || len(s.Val) < 1 || len(s.Train) < 1 {
		t.Errorf("tiny split = %d/%d/%d, want all non-empty", len(s.Train), len(s.Val), len(s.Test))
	}
}
