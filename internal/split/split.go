// Package split implements the data-split protocol of paper §5.2.1: the most
// recent 30% of avails (by planned start date) are carved out as a test set;
// of the remaining 70%, a random 25% forms the validation set and 75% the
// training set.
package split

import (
	"fmt"
	"math/rand"
	"sort"

	"domd/internal/domain"
)

// Splits holds index lists into the original avail slice.
type Splits struct {
	Train, Val, Test []int
}

// Config parameterizes the protocol; the zero value is invalid — use
// DefaultConfig for the paper's settings.
type Config struct {
	// TestFrac is the fraction of most-recent avails held out (paper: 0.30).
	TestFrac float64
	// ValFrac is the fraction of the REMAINING avails used for validation
	// (paper: 0.25).
	ValFrac float64
	// Seed drives the random validation draw.
	Seed int64
}

// DefaultConfig matches §5.2.1.
func DefaultConfig() Config { return Config{TestFrac: 0.30, ValFrac: 0.25, Seed: 1} }

// Validate rejects out-of-range fractions.
func (c Config) Validate() error {
	if c.TestFrac <= 0 || c.TestFrac >= 1 {
		return fmt.Errorf("split: test fraction %f outside (0,1)", c.TestFrac)
	}
	if c.ValFrac <= 0 || c.ValFrac >= 1 {
		return fmt.Errorf("split: val fraction %f outside (0,1)", c.ValFrac)
	}
	return nil
}

// Make partitions avails per the protocol. Only closed avails participate
// (ongoing ones have no measurable delay). Recency is by planned start date.
func Make(cfg Config, avails []domain.Avail) (Splits, error) {
	if err := cfg.Validate(); err != nil {
		return Splits{}, err
	}
	var closed []int
	for i := range avails {
		if avails[i].Status == domain.StatusClosed {
			closed = append(closed, i)
		}
	}
	if len(closed) < 4 {
		return Splits{}, fmt.Errorf("split: %d closed avails, need >= 4", len(closed))
	}
	// Oldest first.
	sort.SliceStable(closed, func(a, b int) bool {
		return avails[closed[a]].PlanStart < avails[closed[b]].PlanStart
	})
	nTest := int(cfg.TestFrac * float64(len(closed)))
	if nTest < 1 {
		nTest = 1
	}
	rest := append([]int(nil), closed[:len(closed)-nTest]...)
	test := append([]int(nil), closed[len(closed)-nTest:]...)

	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	nVal := int(cfg.ValFrac * float64(len(rest)))
	if nVal < 1 {
		nVal = 1
	}
	if nVal >= len(rest) {
		nVal = len(rest) - 1
	}
	val := append([]int(nil), rest[:nVal]...)
	train := append([]int(nil), rest[nVal:]...)
	sort.Ints(val)
	sort.Ints(train)
	return Splits{Train: train, Val: val, Test: test}, nil
}
