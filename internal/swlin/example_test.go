package swlin_test

import (
	"fmt"

	"domd/internal/swlin"
)

func ExampleParse() {
	code, err := swlin.Parse("434-11-001")
	if err != nil {
		panic(err)
	}
	fmt.Println(code.Subsystem(), code.Prefix(3), code)
	// Output: 4 434 434-11-001
}

func ExampleTree_Group() {
	tree := swlin.NewTree()
	for i, s := range []string{"434-11-001", "434-22-001", "911-90-001"} {
		code, err := swlin.Parse(s)
		if err != nil {
			panic(err)
		}
		if err := tree.Insert(code, i); err != nil {
			panic(err)
		}
	}
	// All RCCs in subsystem 4 (hull structure).
	fmt.Println(tree.Group([]int{4}))
	// Output: [0 1]
}
