package swlin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"434-11-001", "434-11-001"},
		{"43411001", "434-11-001"},
		{"911-90-001", "911-90-001"},
		{"00000000", "000-00-000"},
		{"983-11-001", "983-11-001"},
	}
	for _, c := range cases {
		code, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := code.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "1234567", "123456789", "12a45678", "434-11-0x1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		}
	}
}

func TestDigitsAndPrefix(t *testing.T) {
	code, err := Parse("434-11-001")
	if err != nil {
		t.Fatal(err)
	}
	wantDigits := []int{4, 3, 4, 1, 1, 0, 0, 1}
	for i, w := range wantDigits {
		if got := code.Digit(i); got != w {
			t.Errorf("Digit(%d) = %d, want %d", i, got, w)
		}
	}
	if code.Subsystem() != 4 {
		t.Errorf("Subsystem = %d, want 4", code.Subsystem())
	}
	prefixes := []int{0, 4, 43, 434, 4341, 43411, 434110, 4341100, 43411001}
	for n, w := range prefixes {
		if got := code.Prefix(n); got != w {
			t.Errorf("Prefix(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestFromParts(t *testing.T) {
	code, err := FromParts(434, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if code.String() != "434-11-001" {
		t.Errorf("FromParts = %v, want 434-11-001", code)
	}
	if _, err := FromParts(1000, 0, 0); err == nil {
		t.Error("FromParts(1000,0,0): want error")
	}
	if _, err := FromParts(0, 100, 0); err == nil {
		t.Error("FromParts(0,100,0): want error")
	}
	if _, err := FromParts(0, 0, -1); err == nil {
		t.Error("FromParts(0,0,-1): want error")
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		c := Code(int(v) % maxCode)
		back, err := Parse(c.String())
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixConsistentWithDigits(t *testing.T) {
	f := func(v uint32, nRaw uint8) bool {
		c := Code(int(v) % maxCode)
		n := int(nRaw) % (Digits + 1)
		want := 0
		for i := 0; i < n; i++ {
			want = want*10 + c.Digit(i)
		}
		return c.Prefix(n) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeGroup(t *testing.T) {
	tr := NewTree()
	codes := []string{"434-11-001", "434-11-002", "434-22-001", "911-90-001", "983-11-001"}
	for i, s := range codes {
		c, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(c, i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(codes) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(codes))
	}

	cases := []struct {
		prefix []int
		want   []int
	}{
		{nil, []int{0, 1, 2, 3, 4}},
		{[]int{4}, []int{0, 1, 2}},
		{[]int{4, 3, 4}, []int{0, 1, 2}},
		{[]int{4, 3, 4, 1, 1}, []int{0, 1}},
		{[]int{9}, []int{3, 4}},
		{[]int{9, 1}, []int{3}},
		{[]int{5}, nil},
		{[]int{4, 9}, nil},
	}
	for _, c := range cases {
		got := tr.Group(c.prefix)
		if !equalInts(got, c.want) {
			t.Errorf("Group(%v) = %v, want %v", c.prefix, got, c.want)
		}
	}
}

func TestTreeGroupRejectsBadDigit(t *testing.T) {
	tr := NewTree()
	c, _ := Parse("434-11-001")
	if err := tr.Insert(c, 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.Group([]int{10}); got != nil {
		t.Errorf("Group with digit 10 = %v, want nil", got)
	}
	if got := tr.Group([]int{-1}); got != nil {
		t.Errorf("Group with digit -1 = %v, want nil", got)
	}
}

func TestTreeInsertInvalidCode(t *testing.T) {
	tr := NewTree()
	if err := tr.Insert(Code(maxCode), 1); err == nil {
		t.Error("Insert of out-of-range code: want error")
	}
	if err := tr.Insert(Code(-1), 1); err == nil {
		t.Error("Insert of negative code: want error")
	}
}

func TestGroupByLevel(t *testing.T) {
	tr := NewTree()
	codes := []string{"434-11-001", "434-11-002", "911-90-001"}
	for i, s := range codes {
		c, _ := Parse(s)
		if err := tr.Insert(c, i); err != nil {
			t.Fatal(err)
		}
	}

	var prefixes []int
	var sizes []int
	tr.GroupByLevel(1, func(prefix int, ids []int) {
		prefixes = append(prefixes, prefix)
		sizes = append(sizes, len(ids))
	})
	if !equalInts(prefixes, []int{4, 9}) || !equalInts(sizes, []int{2, 1}) {
		t.Errorf("level-1 groups = %v sizes %v, want [4 9] sizes [2 1]", prefixes, sizes)
	}

	// Level 0 is the single all-items group.
	count := 0
	tr.GroupByLevel(0, func(prefix int, ids []int) {
		count++
		if prefix != 0 || len(ids) != 3 {
			t.Errorf("level-0 group = prefix %d size %d, want 0/3", prefix, len(ids))
		}
	})
	if count != 1 {
		t.Errorf("level-0 group count = %d, want 1", count)
	}

	// Out-of-range levels yield nothing.
	tr.GroupByLevel(-1, func(int, []int) { t.Error("callback for level -1") })
	tr.GroupByLevel(Digits+1, func(int, []int) { t.Error("callback for level 9") })
}

// TestTreeLevelPartition checks that at every level the groups partition the
// full id set — a structural invariant of the trie.
func TestTreeLevelPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTree()
	n := 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(Code(rng.Intn(maxCode)), i); err != nil {
			t.Fatal(err)
		}
	}
	for level := 0; level <= Digits; level++ {
		var all []int
		tr.GroupByLevel(level, func(_ int, ids []int) {
			all = append(all, ids...)
		})
		if len(all) != n {
			t.Fatalf("level %d: %d ids, want %d", level, len(all), n)
		}
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				t.Fatalf("level %d: ids are not a permutation of 0..%d", level, n-1)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
