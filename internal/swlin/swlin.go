// Package swlin models the Ship Work List Number, the 8-digit hierarchical
// code identifying physical locations on a ship (paper §2, Fig. 1). The first
// digit is the general subsystem; each subsequent digit narrows to a more
// specific module. Codes print in the paper's grouped form "434-11-001".
//
// The package also provides the SWLIN group-by tree of Algorithm 1: a digit
// trie whose nodes correspond to code prefixes (hierarchy levels), supporting
// the subtree retrieval used by Status Queries.
package swlin

import (
	"fmt"
	"strings"
)

// Digits is the number of digits in a full SWLIN code.
const Digits = 8

// Code is an 8-digit SWLIN packed into an int in [0, 10^8).
type Code int

// maxCode is one past the largest valid code.
const maxCode = 100_000_000

// Valid reports whether c is a well-formed 8-digit code.
func (c Code) Valid() bool { return c >= 0 && c < maxCode }

// Digit returns the i-th digit (0 = most significant subsystem digit).
func (c Code) Digit(i int) int {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("swlin: digit index %d out of range", i))
	}
	div := pow10(Digits - 1 - i)
	return int(c) / div % 10
}

// Subsystem returns the first (most significant) digit, the general
// subsystem identifier used to group features like "G1-AVG_SETTLED_AMT".
func (c Code) Subsystem() int { return c.Digit(0) }

// Prefix returns the leading n digits as an integer (the level-n group key).
// Prefix(0) is always 0.
func (c Code) Prefix(n int) int {
	if n < 0 || n > Digits {
		panic(fmt.Sprintf("swlin: prefix length %d out of range", n))
	}
	return int(c) / pow10(Digits-n)
}

// String formats the code in the paper's "434-11-001" style: a 3-2-3 digit
// grouping.
func (c Code) String() string {
	s := fmt.Sprintf("%08d", int(c))
	return s[:3] + "-" + s[3:5] + "-" + s[5:]
}

// Parse parses either a bare 8-digit string or the grouped "434-11-001" form.
func Parse(s string) (Code, error) {
	clean := strings.ReplaceAll(s, "-", "")
	if len(clean) != Digits {
		return 0, fmt.Errorf("swlin: code %q must have %d digits", s, Digits)
	}
	var v int
	for _, r := range clean {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("swlin: code %q contains non-digit %q", s, r)
		}
		v = v*10 + int(r-'0')
	}
	return Code(v), nil
}

// FromParts assembles a code from the paper's three printed groups
// (3, 2 and 3 digits respectively).
func FromParts(a, b, c int) (Code, error) {
	if a < 0 || a > 999 || b < 0 || b > 99 || c < 0 || c > 999 {
		return 0, fmt.Errorf("swlin: parts %d-%d-%d out of range", a, b, c)
	}
	return Code(a*100_000 + b*1000 + c), nil
}

func pow10(n int) int {
	v := 1
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}

// Tree is the SWLIN group-by digit trie of Algorithm 1 (ST). Each node
// represents a code prefix; leaves at depth 8 represent full codes. Nodes
// store the ids of items (RCCs) whose code passes through them, so the
// subtree satisfying a group-by predicate is retrieved by a single
// prefix descent.
type Tree struct {
	root *node
	size int
}

type node struct {
	children [10]*node
	// ids of items inserted at or below this node, in insertion order.
	ids []int
}

// NewTree returns an empty SWLIN trie.
func NewTree() *Tree { return &Tree{root: &node{}} }

// Len reports the number of inserted items.
func (t *Tree) Len() int { return t.size }

// Insert records item id under code c, updating every prefix node on the
// path so group lookups at any level are O(depth) descents.
func (t *Tree) Insert(c Code, id int) error {
	if !c.Valid() {
		return fmt.Errorf("swlin: insert invalid code %d", int(c))
	}
	n := t.root
	n.ids = append(n.ids, id)
	for i := 0; i < Digits; i++ {
		d := c.Digit(i)
		if n.children[d] == nil {
			n.children[d] = &node{}
		}
		n = n.children[d]
		n.ids = append(n.ids, id)
	}
	t.size++
	return nil
}

// Group returns the ids of all items whose code starts with the given
// prefix digits. An empty prefix returns every item. The returned slice is
// shared with the tree and must not be mutated.
func (t *Tree) Group(prefix []int) []int {
	n := t.root
	for _, d := range prefix {
		if d < 0 || d > 9 {
			return nil
		}
		n = n.children[d]
		if n == nil {
			return nil
		}
	}
	return n.ids
}

// GroupByLevel enumerates the non-empty groups at the given hierarchy level
// (prefix length). Level 0 yields a single group of all items. The callback
// receives the prefix value (leading digits as an integer) and the member
// ids; iteration is in ascending prefix order.
func (t *Tree) GroupByLevel(level int, fn func(prefix int, ids []int)) {
	if level < 0 || level > Digits {
		return
	}
	var walk func(n *node, depth, prefix int)
	walk = func(n *node, depth, prefix int) {
		if depth == level {
			fn(prefix, n.ids)
			return
		}
		for d := 0; d < 10; d++ {
			if c := n.children[d]; c != nil {
				walk(c, depth+1, prefix*10+d)
			}
		}
	}
	walk(t.root, 0, 0)
}
