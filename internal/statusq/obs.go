package statusq

import "domd/internal/obs"

// Serving-path metrics, registered process-wide in obs.Default and
// exposed on GET /metrics (catalog: docs/OPERATIONS.md). Counters here
// aggregate across every Catalog in the process; the per-catalog
// EngineBuilds method remains the fine-grained view tests assert on.
var (
	mEngineBuilds = obs.NewCounter("domd_engine_builds_total",
		"Status Query engine constructions (cache misses and post-ingest rebuilds).")
	mEngineBuildFailures = obs.NewCounter("domd_engine_build_failures_total",
		"Engine constructions that failed (bad history or injected fault).")
	mEngineBuildSeconds = obs.NewHistogram("domd_engine_build_duration_seconds",
		"Engine construction latency in seconds.", obs.DefBuckets)
	mEngineCacheHits = obs.NewCounter("domd_engine_cache_hits_total",
		"Engine lookups answered from the catalog's cache without building.")
	mStaleServes = obs.NewCounter("domd_engine_stale_serves_total",
		"Degraded answers served from a stale engine (failed rebuild or racing ingest).")
	mDeltaApplies = obs.NewCounter("domd_engine_delta_applies_total",
		"Ingested RCCs folded into a live cached engine in O(delta) instead of invalidating it.")
	mDeltaFallbacks = obs.NewCounterVec("domd_engine_delta_fallbacks_total",
		"Ingests that invalidated the cached engine instead of delta-applying, by reason.", "reason")

	mIngestAcks = obs.NewCounter("domd_ingest_acks_total",
		"RCC ingests durably logged, applied, and acknowledged.")
	mIngestDuplicates = obs.NewCounter("domd_ingest_duplicates_total",
		"Ingest calls answered as idempotent replays of an earlier acknowledgment.")
	mIngestFailures = obs.NewCounter("domd_ingest_failures_total",
		"Ingest calls that failed without acknowledgment (storage fault, closed WAL, invalid record).")
	mIngestRestored = obs.NewCounterVec("domd_ingest_restored_total",
		"WAL-replayed delta RCCs at startup, by outcome.", "outcome")
	mDedupEvictions = obs.NewCounter("domd_ingest_dedup_evictions_total",
		"Idempotency keys evicted from the bounded dedup index (oldest snapshot-covered keys first).")

	// Shard-labeled serving metrics. Label cardinality is bounded by the
	// -shards flag (one series per shard), so the registry stays small.
	mShardIngests = obs.NewCounterVec("domd_shard_ingests_total",
		"RCC ingests routed to each shard of a sharded catalog.", "shard")
	mShardEngineLookups = obs.NewCounterVec("domd_shard_engine_lookups_total",
		"Engine lookups (point queries, batch rows, fleet sweeps) routed to each shard.", "shard")
	mShardAvails = obs.NewGaugeVec("domd_shard_avails",
		"Avails owned by each shard of a sharded catalog.", "shard")

	// Shard health and resilience metrics (replicated WALs, retrying
	// router). The health gauge encodes the ladder numerically so alert
	// rules can threshold it: 0 healthy, 1 degraded, 2 failed.
	mShardHealth = obs.NewGaugeVec("domd_shard_health",
		"Shard health state: 0 healthy, 1 degraded, 2 failed.", "shard")
	mShardIngestRetries = obs.NewCounter("domd_shard_ingest_retries_total",
		"Ingest attempts retried by the router after a transient shard storage failure.")
	mShardBreakerTrips = obs.NewCounter("domd_shard_breaker_trips_total",
		"Per-shard circuit breakers tripped open after consecutive ingest failures.")
)
