// Package statusq implements the Status Query abstraction of paper §3.1 and
// its efficient processing (§4, Algorithm StatusQ): given an avail, a logical
// timestamp t*, group-by predicates over RCC type and SWLIN hierarchy, and a
// status class (active / settled / created / new), retrieve the qualifying
// RCCs and compute aggregates over their attributes.
//
// The engine composes three structures, as Algorithm 1 does:
//
//   - a type group-by tree (the RCC-Type-Tree 𝒯: one bucket per RCC type),
//   - a SWLIN digit trie (𝒮𝒯, from package swlin),
//   - a pluggable logical-time index ℛ (package index) over the RCC
//     (created, settled) intervals.
//
// Incremental computation (§4.3) comes in two flavours. StatStructure
// maintains the additive per-group aggregates: advancing from one logical
// timestamp to the next touches only the creation/settlement events inside
// the new window instead of re-running the query from scratch. CellSweep
// extends that sweep to the full seven-statistic CellStats lattice feeding
// the ~1500-feature transformation, on a dense CellGrid with ALL margins.
//
// Complexity of the CellSweep over a K-point timestamp grid on n RCCs, with
// e_j events and a_j live active RCCs in window j:
//
//	Σ_j O(e_j + a_j + 1)  =  O(n + Σ_j a_j + K)
//
// versus O(K · n log n) for K independent from-scratch evaluations. The
// Created and Settled classes are append-only under a forward sweep — their
// min/max statistics are monotone under insert-only growth — so they cost
// O(e_j) per step. The Active class is non-monotone (settlements remove
// members), so its min/max must be recomputed from the live active set; the
// sweep keeps that set in an intrusive linked list and rebuilds the Active
// cells in O(a_j), with a_j bounded by the peak number of concurrently open
// RCCs. Margins are O(1) per step (fixed 4 × 11 grid shape).
//
// # Observability
//
// The serving-side types (Catalog, DurableCatalog) are instrumented
// through internal/obs: engine build counts/latency/failures, cache
// hits, degraded-mode stale serves, and ingestion acks/duplicates/
// failures/restores are exported as domd_engine_* and domd_ingest_*
// metrics on GET /metrics (catalog: docs/OPERATIONS.md). Durations use
// obs stopwatches because the walltime lint invariant bans time.Now
// here — logical time t* remains the only clock in query results.
package statusq

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/swlin"
)

// ErrCannotApply reports that an incremental sweep structure cannot fold a
// new RCC without breaking the canonical (date, position) fold order that
// makes incremental state bitwise-identical to from-scratch state — e.g. an
// RCC whose creation or settlement date precedes events the sweep already
// applied. Callers fall back to a full rebuild.
var ErrCannotApply = errors.New("statusq: rcc out of order for incremental apply")

// Aggregate names an aggregation function applied to the retrieved RCC set.
type Aggregate int

// Aggregates over the qualifying RCC set. Duration aggregates consider the
// full created→settled interval (known at settlement); Pct is the group's
// share of all RCCs of the avail; Rate is count per percent of logical time.
const (
	Count Aggregate = iota
	SumAmount
	AvgAmount
	MaxAmount
	MinAmount
	StdAmount
	SumDuration
	AvgDuration
	MaxDuration
	Pct
	Rate

	// NumAggregates counts the aggregate kinds above.
	NumAggregates = 11
)

var aggNames = [...]string{
	"COUNT", "SUM_SETTLED_AMT", "AVG_SETTLED_AMT", "MAX_SETTLED_AMT",
	"MIN_SETTLED_AMT", "STD_SETTLED_AMT", "SUM_DUR", "AVG_DUR", "MAX_DUR",
	"PCT", "RATE",
}

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	if a < 0 || int(a) >= len(aggNames) {
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
	return aggNames[a]
}

// Query is one Status Query (Fig. 3): group-by predicates plus a status
// class and an aggregate.
type Query struct {
	// Type restricts to one RCC type; nil means all types.
	Type *domain.RCCType
	// SWLINPrefix restricts to a subtree of the SWLIN hierarchy (leading
	// digits); nil means the whole ship.
	SWLINPrefix []int
	// Status selects the temporal class at t*.
	Status domain.RCCStatus
	// Agg is the aggregation applied to the qualifying set.
	Agg Aggregate
}

// Engine answers Status Queries for one avail.
//
// Queries are safe for concurrent use; ApplyRCC takes the write side of
// the same lock, so a catalog can fold freshly ingested RCCs into a live
// engine while queries are in flight.
type Engine struct {
	avail *domain.Avail
	mu    sync.RWMutex // guards view
	view  engineView
}

// engineView is the engine's indexed state: the RCC slice plus the three
// structures of Algorithm 1. Its methods never lock — Engine's exported
// entry points take e.mu once and delegate, so helper calls never nest
// read locks.
type engineView struct {
	avail *domain.Avail
	rccs  []domain.RCC
	// typeGroups maps RCCType -> member positions (into rccs).
	typeGroups [domain.NumRCCTypes][]int
	swlinTree  *swlin.Tree
	timeIdx    index.TimeIndex
}

// NewEngine indexes the RCCs of avail a with the chosen time-index design.
// Every RCC must belong to a.
func NewEngine(a *domain.Avail, rccs []domain.RCC, kind index.Kind) (*Engine, error) {
	if a == nil {
		return nil, fmt.Errorf("statusq: nil avail")
	}
	if a.PlannedDuration() <= 0 {
		return nil, fmt.Errorf("statusq: avail %d has non-positive planned duration", a.ID)
	}
	e := &Engine{avail: a, view: engineView{avail: a, rccs: rccs, swlinTree: swlin.NewTree()}}
	idx, err := index.New(kind)
	if err != nil {
		return nil, err
	}
	v := &e.view
	v.timeIdx = idx
	for pos := range rccs {
		r := &rccs[pos]
		if r.AvailID != a.ID {
			return nil, fmt.Errorf("statusq: rcc %d belongs to avail %d, engine is for %d", r.ID, r.AvailID, a.ID)
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		v.typeGroups[r.Type] = append(v.typeGroups[r.Type], pos)
		if err := v.swlinTree.Insert(swlin.Code(r.SWLIN), pos); err != nil {
			return nil, err
		}
		if err := v.timeIdx.Insert(index.Interval{
			Start: int64(r.Created), End: int64(r.Settled), ID: pos,
		}); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Avail returns the engine's avail.
func (e *Engine) Avail() *domain.Avail { return e.avail }

// LogicalTime maps a physical query date to the engine's avail-local
// logical time t* (percent of planned duration; may exceed 100 when the
// avail runs past plan, negative before the actual start). Serving-tier
// feature extraction for live avails — /query trajectories and /predict
// model routing alike — keys off this value.
func (e *Engine) LogicalTime(at domain.Day) (float64, error) {
	return e.avail.LogicalTime(at)
}

// NumRCCs reports the indexed RCC count.
func (e *Engine) NumRCCs() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.view.rccs)
}

// ApplyRCC folds one freshly ingested RCC into the engine's existing
// state in O(delta): an append into the type group and SWLIN trie (both
// store members in position order, and the new RCC takes the largest
// position) and an append into the lazy-sorting time index, whose next
// deferred re-sort is an O(n) append-and-merge rather than a full sort.
//
// The result is bitwise-identical to rebuilding the engine from scratch
// over the extended RCC slice: every query path folds aggregates in
// ascending-position order, which appending preserves. Safe to call
// concurrently with queries. On error the engine may be partially
// updated and must be discarded by the caller.
func (e *Engine) ApplyRCC(r domain.RCC) error {
	if r.AvailID != e.avail.ID {
		return fmt.Errorf("statusq: rcc %d belongs to avail %d, engine is for %d", r.ID, r.AvailID, e.avail.ID)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	v := &e.view
	pos := len(v.rccs)
	if err := v.swlinTree.Insert(swlin.Code(r.SWLIN), pos); err != nil {
		return err
	}
	if err := v.timeIdx.Insert(index.Interval{
		Start: int64(r.Created), End: int64(r.Settled), ID: pos,
	}); err != nil {
		return err
	}
	v.rccs = append(v.rccs, r)
	v.typeGroups[r.Type] = append(v.typeGroups[r.Type], pos)
	return nil
}

// statusSet retrieves the positions in the given temporal class at logical
// time ts (Eqs. 3–5).
func (v *engineView) statusSet(ts float64, status domain.RCCStatus) ([]int, error) {
	day := int64(v.avail.PhysicalTime(ts))
	switch status {
	case domain.Active:
		return v.timeIdx.ActiveAt(day), nil
	case domain.SettledStatus:
		return v.timeIdx.SettledBy(day), nil
	case domain.Created:
		return v.timeIdx.CreatedBy(day), nil
	default:
		return nil, fmt.Errorf("statusq: unknown status %v", status)
	}
}

// Retrieve runs the retrieval part of Algorithm StatusQ: the temporal class
// at ts intersected with the group-by subtrees. The returned positions index
// into the engine's RCC slice, in ascending order.
//
// Both sides of the intersection are sorted position lists — the group-by
// trees store members in insertion (= position) order and the temporal set
// is sorted once here — so the intersection is a linear merge rather than a
// hash-set probe followed by an output sort.
func (e *Engine) Retrieve(ts float64, q Query) ([]int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.view.retrieve(ts, q)
}

// retrieve is Retrieve without the lock; callers hold e.mu (either side).
func (v *engineView) retrieve(ts float64, q Query) ([]int, error) {
	timeSet, err := v.statusSet(ts, q.Status)
	if err != nil {
		return nil, err
	}
	if len(timeSet) == 0 {
		return nil, nil
	}
	// The time index returns fresh slices in index-internal order (the AVL
	// traverses by date); sort by position once for the merge.
	sort.Ints(timeSet)
	// Group-By(𝒯, 𝒮𝒯): the candidate subtree of Algorithm 1.
	var candidates []int
	switch {
	case q.Type == nil && q.SWLINPrefix == nil:
		return timeSet, nil
	case q.SWLINPrefix == nil:
		candidates = v.typeGroups[*q.Type]
	default:
		candidates = v.swlinTree.Group(q.SWLINPrefix)
	}
	return v.intersectMerge(candidates, timeSet, q.Type), nil
}

// intersectMerge intersects two ascending position lists by linear merge,
// applying the optional type filter (needed when candidates come from the
// SWLIN trie, which mixes types).
func (v *engineView) intersectMerge(candidates, timeSet []int, typ *domain.RCCType) []int {
	var out []int
	i, j := 0, 0
	for i < len(candidates) && j < len(timeSet) {
		switch {
		case candidates[i] < timeSet[j]:
			i++
		case candidates[i] > timeSet[j]:
			j++
		default:
			p := candidates[i]
			if typ == nil || v.rccs[p].Type == *typ {
				out = append(out, p)
			}
			i++
			j++
		}
	}
	return out
}

// intersectMap is the superseded hash-set intersection (membership map plus
// output sort). It is retained as the reference implementation the merge
// path is differentially tested against.
func (v *engineView) intersectMap(candidates, timeSet []int, typ *domain.RCCType) []int {
	member := make(map[int]bool, len(timeSet))
	for _, p := range timeSet {
		member[p] = true
	}
	var out []int
	for _, p := range candidates {
		if !member[p] {
			continue
		}
		if typ != nil && v.rccs[p].Type != *typ {
			continue
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// CreatedCount returns |Created(t*)|, the Pct denominator. Using the
// RCCs visible by t* (rather than the avail's all-time total) keeps the
// features causal: information from RCCs not yet created never leaks into
// earlier logical timestamps.
func (e *Engine) CreatedCount(ts float64) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.view.createdCount(ts)
}

// createdCount is CreatedCount without the lock; callers hold e.mu.
func (v *engineView) createdCount(ts float64) int {
	day := int64(v.avail.PhysicalTime(ts))
	return v.timeIdx.CountActiveAt(day) + v.timeIdx.CountSettledBy(day)
}

// Eval runs the full Status Query: retrieval plus aggregation. Empty result
// sets evaluate to 0 for every aggregate.
func (e *Engine) Eval(ts float64, q Query) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	set, err := e.view.retrieve(ts, q)
	if err != nil {
		return 0, err
	}
	return e.view.aggregate(ts, q, set), nil
}

func (v *engineView) aggregate(ts float64, q Query, set []int) float64 {
	n := float64(len(set))
	if len(set) == 0 {
		return 0
	}
	switch q.Agg {
	case Count:
		return n
	case Pct:
		created := v.createdCount(ts)
		if created == 0 {
			return 0
		}
		return n / float64(created)
	case Rate:
		if ts <= 0 {
			return n
		}
		return n / ts
	}
	var sumA, maxA, minA, sumSqA float64
	var sumD, maxD float64
	minA = math.Inf(1)
	for _, p := range set {
		r := &v.rccs[p]
		sumA += r.Amount
		sumSqA += r.Amount * r.Amount
		if r.Amount > maxA {
			maxA = r.Amount
		}
		if r.Amount < minA {
			minA = r.Amount
		}
		d := float64(r.Duration())
		sumD += d
		if d > maxD {
			maxD = d
		}
	}
	switch q.Agg {
	case SumAmount:
		return sumA
	case AvgAmount:
		return sumA / n
	case MaxAmount:
		return maxA
	case MinAmount:
		return minA
	case StdAmount:
		mean := sumA / n
		v := sumSqA/n - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	case SumDuration:
		return sumD
	case AvgDuration:
		return sumD / n
	case MaxDuration:
		return maxD
	default:
		return 0
	}
}
