// walcodec.go is the compact wire format for individual WAL records.
//
// Every acknowledged ingest marshals one walEntry onto the log, so the
// codec sits on the hot path of the durable ingest tier: a JSON marshal
// there costs more CPU than the catalog apply itself and, on a sharded
// tier whose fsyncs overlap, becomes a visible slice of the per-core
// throughput ceiling. Records are varint-packed and then base64-wrapped
// because the log is line-framed (payloads must be newline-free; see
// wal.Log.Append). Snapshots (cold path, written once per compaction)
// stay JSON. Decoding accepts both formats — logs written by older
// builds replay byte-for-byte — by sniffing the first byte: JSON
// records always start with '{', packed records with walEntryV1.
package statusq

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"domd/internal/domain"
)

// walEntryV1 tags a packed walEntry: the tag byte followed by the
// base64 (RawStdEncoding) of the varint-packed fields. The alphabet is
// newline-free and the tag must never collide with '{' (0x7b), the
// first byte of every legacy JSON record.
const walEntryV1 = 'B'

var walB64 = base64.RawStdEncoding

// encodeWALEntry marshals e in the packed record format.
func encodeWALEntry(e walEntry) []byte {
	body := make([]byte, 0, 56+len(e.Key))
	body = binary.AppendUvarint(body, uint64(len(e.Key)))
	body = append(body, e.Key...)
	body = binary.AppendVarint(body, int64(e.RCC.ID))
	body = binary.AppendVarint(body, int64(e.RCC.AvailID))
	body = binary.AppendVarint(body, int64(e.RCC.Type))
	body = binary.AppendVarint(body, int64(e.RCC.SWLIN))
	body = binary.AppendVarint(body, int64(e.RCC.Created))
	body = binary.AppendVarint(body, int64(e.RCC.Settled))
	body = binary.LittleEndian.AppendUint64(body, math.Float64bits(e.RCC.Amount))

	out := make([]byte, 1+walB64.EncodedLen(len(body)))
	out[0] = walEntryV1
	walB64.Encode(out[1:], body)
	return out
}

// decodeWALEntry unmarshals a WAL record in either the packed format
// or the legacy JSON format.
func decodeWALEntry(raw []byte) (walEntry, error) {
	if len(raw) == 0 {
		return walEntry{}, fmt.Errorf("statusq: empty WAL record")
	}
	if raw[0] == '{' {
		var e walEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return walEntry{}, err
		}
		return e, nil
	}
	if raw[0] != walEntryV1 {
		return walEntry{}, fmt.Errorf("statusq: unknown WAL record version 0x%02x", raw[0])
	}
	b := make([]byte, walB64.DecodedLen(len(raw)-1))
	n, err := walB64.Decode(b, raw[1:])
	if err != nil {
		return walEntry{}, fmt.Errorf("statusq: unwrap WAL record: %w", err)
	}
	b = b[:n]
	klen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < klen {
		return walEntry{}, fmt.Errorf("statusq: truncated WAL record key")
	}
	b = b[n:]
	e := walEntry{Key: string(b[:klen])}
	b = b[klen:]
	var id, availID, typ, swlin, created, settled int
	for i, dst := range []*int{&id, &availID, &typ, &swlin, &created, &settled} {
		v, n := binary.Varint(b)
		if n <= 0 {
			return walEntry{}, fmt.Errorf("statusq: truncated WAL record field %d", i)
		}
		*dst = int(v)
		b = b[n:]
	}
	if len(b) != 8 {
		return walEntry{}, fmt.Errorf("statusq: WAL record has %d trailing bytes, want 8", len(b))
	}
	e.RCC = domain.RCC{
		ID: id, AvailID: availID, Type: domain.RCCType(typ),
		SWLIN: swlin, Created: domain.Day(created), Settled: domain.Day(settled),
		Amount: math.Float64frombits(binary.LittleEndian.Uint64(b)),
	}
	return e, nil
}
