package statusq

import (
	"encoding/json"
	"math"
	"testing"

	"domd/internal/domain"
)

func TestWALCodecRoundTrip(t *testing.T) {
	cases := []walEntry{
		{},
		{Key: "k-1", RCC: domain.RCC{
			ID: 42, AvailID: 7, Type: domain.Growth, SWLIN: 43411001,
			Created: 100, Settled: 250, Amount: 1234.5,
		}},
		{Key: "", RCC: domain.RCC{ID: -3, AvailID: 1, Created: -10, Settled: 0, Amount: math.Inf(1)}},
		{Key: "unicode-κλειδί", RCC: domain.RCC{ID: 1 << 40, AvailID: 9, Amount: -0.0}},
	}
	for i, e := range cases {
		raw := encodeWALEntry(e)
		if len(raw) == 0 || raw[0] != walEntryV1 {
			t.Fatalf("case %d: bad frame %v", i, raw)
		}
		got, err := decodeWALEntry(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Key != e.Key || got.RCC != e.RCC {
			// NaN never compares equal; none of the cases uses it.
			t.Fatalf("case %d: round trip mismatch: got %+v want %+v", i, got, e)
		}
	}
}

// TestWALCodecLegacyJSON proves logs written by builds that marshalled
// records as JSON still replay: the decoder sniffs the leading '{'.
func TestWALCodecLegacyJSON(t *testing.T) {
	want := walEntry{Key: "legacy", RCC: domain.RCC{
		ID: 9, AvailID: 3, Type: domain.Growth, SWLIN: 43411001,
		Created: 50, Settled: 80, Amount: 900,
	}}
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeWALEntry(raw)
	if err != nil {
		t.Fatalf("decode legacy JSON record: %v", err)
	}
	if got.Key != want.Key || got.RCC != want.RCC {
		t.Fatalf("legacy decode mismatch: got %+v want %+v", got, want)
	}
}

func TestWALCodecRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{0x7f},                                  // unknown version byte
		{walEntryV1},                            // missing key length
		{walEntryV1, 0xff},                      // truncated varint
		{walEntryV1, 0x05, 'a'},                 // key shorter than its declared length
		encodeWALEntry(walEntry{Key: "x"})[:10], // truncated mid-fields
		append(encodeWALEntry(walEntry{Key: "x"}), 0x00), // trailing junk
	}
	for i, raw := range bad {
		if _, err := decodeWALEntry(raw); err == nil {
			t.Fatalf("case %d: decode %v succeeded, want error", i, raw)
		}
	}
}
