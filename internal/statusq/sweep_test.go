package statusq

import (
	"math/rand"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
)

// randomAvailRCCs builds a random avail and RCC set for differential tests.
// Some RCCs settle instantly (Created == Settled), some never overlap the
// plan window, and amounts include exact duplicates to exercise min/max
// tie-breaking.
func randomAvailRCCs(seed int64, n int) (*domain.Avail, []domain.RCC) {
	rng := rand.New(rand.NewSource(seed))
	a := &domain.Avail{ID: 7, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 150, ActStart: 0, ActEnd: 200}
	rccs := make([]domain.RCC, n)
	for i := range rccs {
		created := domain.Day(rng.Intn(220))
		dur := domain.Day(rng.Intn(80))
		if rng.Intn(10) == 0 {
			dur = 0 // same-day settlement
		}
		amount := float64(rng.Intn(50)) * 100.5 // deliberate duplicates
		rccs[i] = domain.RCC{
			ID: i + 1, AvailID: 7,
			Type:    domain.RCCType(rng.Intn(domain.NumRCCTypes)),
			SWLIN:   rng.Intn(100_000_000),
			Created: created,
			Settled: created + dur,
			Amount:  amount,
		}
	}
	return a, rccs
}

// TestCellSweepMatchesScratchBitwise advances a sweep over an ascending
// grid and checks every cell (concrete and margin) of every status class is
// bitwise-equal to the from-scratch grid fill at the same timestamp —
// including the ts=0 and ts=100 boundaries, timestamps where whole groups
// are settled, and empty windows (consecutive grid points with no events).
func TestCellSweepMatchesScratchBitwise(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		a, rccs := randomAvailRCCs(seed, 300)
		sw, err := NewCellSweep(a, rccs)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(a, rccs, index.KindAVL)
		if err != nil {
			t.Fatal(err)
		}
		// 0.5-percent spacing yields many empty windows on 300 RCCs.
		var scratch GridSet
		for ts := 0.0; ts <= 100; ts += 0.5 {
			if err := sw.AdvanceTo(ts); err != nil {
				t.Fatal(err)
			}
			if err := eng.CellGridsAt(ts, &scratch); err != nil {
				t.Fatal(err)
			}
			got := sw.Grids()
			for st := domain.RCCStatus(0); st < domain.NumRCCStatuses; st++ {
				for ti := 0; ti <= TypeAll; ti++ {
					for si := 0; si <= SubsystemAll; si++ {
						if got[st][ti][si] != scratch[st][ti][si] {
							t.Fatalf("seed %d ts=%g status=%v cell[%d][%d]: sweep %+v != scratch %+v",
								seed, ts, st, ti, si, got[st][ti][si], scratch[st][ti][si])
						}
					}
				}
			}
			if sw.CreatedCount() != eng.CreatedCount(ts) {
				t.Fatalf("seed %d ts=%g: created count %d != %d", seed, ts, sw.CreatedCount(), eng.CreatedCount(ts))
			}
		}
	}
}

// TestCellSweepAllSettled checks the Active min/max edge case where every
// group has fully settled: all Active cells must be zero-valued, and the
// Settled grid must equal the Created grid.
func TestCellSweepAllSettled(t *testing.T) {
	a, rccs := randomAvailRCCs(4, 120)
	// Clamp all settlements inside the plan so everything settles by 100%.
	for i := range rccs {
		if rccs[i].Created > 60 {
			rccs[i].Created = domain.Day(int(rccs[i].Created) % 60)
		}
		rccs[i].Settled = rccs[i].Created + domain.Day(i%20)
	}
	sw, err := NewCellSweep(a, rccs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	gs := sw.Grids()
	var zero CellStats
	for ti := 0; ti <= TypeAll; ti++ {
		for si := 0; si <= SubsystemAll; si++ {
			if gs[domain.Active][ti][si] != zero {
				t.Fatalf("active cell [%d][%d] not empty after full settlement: %+v", ti, si, gs[domain.Active][ti][si])
			}
			if gs[domain.SettledStatus][ti][si] != gs[domain.Created][ti][si] {
				t.Fatalf("settled != created at cell [%d][%d] after full settlement", ti, si)
			}
		}
	}
}

// TestCellSweepBackwardsAndReset checks forward-only enforcement and that
// Reset rewinds to a reusable pristine state.
func TestCellSweepBackwardsAndReset(t *testing.T) {
	a, rccs := randomAvailRCCs(5, 50)
	sw, err := NewCellSweep(a, rccs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AdvanceTo(60); err != nil {
		t.Fatal(err)
	}
	if err := sw.AdvanceTo(30); err == nil {
		t.Fatal("backwards advance must error")
	}
	want := *sw.Grids() // snapshot at 60
	sw.Reset()
	if got := sw.Grids().CreatedCount(); got != 0 {
		t.Fatalf("created count after Reset = %d", got)
	}
	if err := sw.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if err := sw.AdvanceTo(60); err != nil {
		t.Fatal(err)
	}
	if *sw.Grids() != want {
		t.Fatal("replay after Reset diverged from the direct advance")
	}
}

// TestCellSweepEmptyRCCs checks the degenerate no-events sweep.
func TestCellSweepEmptyRCCs(t *testing.T) {
	a := &domain.Avail{ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 100}
	sw, err := NewCellSweep(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []float64{0, 50, 100} {
		if err := sw.AdvanceTo(ts); err != nil {
			t.Fatal(err)
		}
		if sw.CreatedCount() != 0 {
			t.Fatalf("empty sweep created count %d at ts=%g", sw.CreatedCount(), ts)
		}
	}
}

// TestCellSweepValidation mirrors the engine's construction checks.
func TestCellSweepValidation(t *testing.T) {
	if _, err := NewCellSweep(nil, nil); err == nil {
		t.Error("nil avail: want error")
	}
	flat := &domain.Avail{ID: 2, PlanStart: 5, PlanEnd: 5}
	if _, err := NewCellSweep(flat, nil); err == nil {
		t.Error("zero-duration plan: want error")
	}
	a := &domain.Avail{ID: 3, Status: domain.StatusClosed, PlanStart: 0, PlanEnd: 10, ActStart: 0, ActEnd: 10}
	stray := []domain.RCC{{ID: 9, AvailID: 99, Created: 1, Settled: 2}}
	if _, err := NewCellSweep(a, stray); err == nil {
		t.Error("foreign-avail RCC: want error")
	}
	bad := []domain.RCC{{ID: 9, AvailID: 3, Created: 5, Settled: 2}}
	if _, err := NewCellSweep(a, bad); err == nil {
		t.Error("settled-before-created RCC: want error")
	}
}

// TestRetrieveMergeMatchesMap differentially tests the linear
// merge-intersection retrieval against the superseded hash-set path on
// randomized data, across status classes and group-by selections.
func TestRetrieveMergeMatchesMap(t *testing.T) {
	for _, seed := range []int64{10, 11, 12} {
		a, rccs := randomAvailRCCs(seed, 250)
		eng, err := NewEngine(a, rccs, index.KindAVL)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 60; trial++ {
			ts := rng.Float64() * 110
			st := domain.RCCStatus(rng.Intn(domain.NumRCCStatuses))
			q := Query{Status: st}
			if rng.Intn(2) == 0 {
				typ := domain.RCCType(rng.Intn(domain.NumRCCTypes))
				q.Type = &typ
			}
			if rng.Intn(2) == 0 {
				q.SWLINPrefix = []int{rng.Intn(10)}
			}
			got, err := eng.Retrieve(ts, q)
			if err != nil {
				t.Fatal(err)
			}
			timeSet, err := eng.view.statusSet(ts, q.Status)
			if err != nil {
				t.Fatal(err)
			}
			var candidates []int
			switch {
			case q.Type == nil && q.SWLINPrefix == nil:
				candidates = timeSet
			case q.SWLINPrefix == nil:
				candidates = eng.view.typeGroups[*q.Type]
			default:
				candidates = eng.view.swlinTree.Group(q.SWLINPrefix)
			}
			want := eng.view.intersectMap(candidates, timeSet, q.Type)
			if len(got) != len(want) {
				t.Fatalf("seed %d trial %d: merge %v != map %v (q=%+v ts=%g)", seed, trial, got, want, q, ts)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d trial %d pos %d: merge %v != map %v", seed, trial, i, got, want)
				}
			}
		}
	}
}
