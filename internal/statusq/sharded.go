package statusq

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/obs"
)

// ringReplicas is the number of virtual points each shard places on the
// consistent-hash ring. 128 keeps the largest/smallest shard's arc share
// within a few percent of each other while the ring stays small enough
// to rebuild on every open.
const ringReplicas = 128

// topologyFile is the metadata file written at the WAL root that pins
// the shard layout. Records are routed to per-shard WAL directories by
// avail id, so reopening the same root with a different shard count
// would silently orphan durable records; OpenSharded refuses instead.
const topologyFile = "topology.json"

// shardTopology is the persisted shard layout of a WAL root. Replicas
// is the consistent-hash ring's virtual-node count; WALReplicas is the
// per-shard WAL replica count (0 in topologies written before
// replication existed, read as 1).
type shardTopology struct {
	Version     int `json:"version"`
	Shards      int `json:"shards"`
	Replicas    int `json:"replicas"`
	WALReplicas int `json:"wal_replicas,omitempty"`
}

// ringPoint is one virtual node: a shard's position on the hash ring.
type ringPoint struct {
	hash  uint32
	shard int
}

// shardRing maps avail ids to shards by consistent hashing: each shard
// owns ringReplicas points on a uint32 ring, and an id belongs to the
// shard owning the first point at or after the id's hash (wrapping).
// The mapping depends only on (shards, replicas), never on process
// state, so it is stable across restarts — a requirement for per-shard
// WAL directories to reattach to their records.
type shardRing struct {
	points []ringPoint
}

func newShardRing(shards, replicas int) *shardRing {
	r := &shardRing{points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			// The high bit domain-separates point inputs from avail-id
			// inputs: without it, shard 0's points are the raw values
			// 0..replicas-1, and any avail id in that range would hash
			// exactly onto its own ring point — pinning every small id
			// to shard 0.
			r.points = append(r.points, ringPoint{hash: ringHash(1<<63 | uint64(s)<<32 | uint64(v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on shard id so the ring is a deterministic function
		// of (shards, replicas) even on hash collisions.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// shardOf routes one avail id. Any int routes somewhere — unknown
// avails are rejected by the owning shard, mirroring the single-catalog
// contract.
func (r *shardRing) shardOf(id int) int {
	h := ringHash(uint64(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ringHash maps a 64-bit input onto the uint32 ring through the
// splitmix64 finalizer — a full-avalanche bijection, so the small dense
// integer spaces fed to it (avail ids, shard/replica indices) spread
// uniformly instead of clustering the way byte-wise string hashes do on
// short sequential decimals.
func ringHash(x uint64) uint32 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x >> 32)
}

// ShardRestore is one shard's slice of a sharded restore report.
type ShardRestore struct {
	// Shard is the shard index (also the WAL subdirectory suffix).
	Shard int
	// Dir is the shard's WAL directory.
	Dir string
	// Avails is how many avails the ring assigned to this shard.
	Avails int
	// Info is the shard's own restore report.
	Info RestoreInfo
}

// ShardedRestoreInfo aggregates the per-shard restore reports produced
// by OpenSharded, in shard order.
type ShardedRestoreInfo struct {
	// Shards holds one report per shard, indexed by shard id.
	Shards []ShardRestore
}

// Totals sums the per-shard restore counts into one RestoreInfo. The
// embedded Recovery sums replayed record counts and ORs the torn-tail
// flags; per-shard sequence numbers are only meaningful per shard and
// are left zero.
func (s *ShardedRestoreInfo) Totals() RestoreInfo {
	var t RestoreInfo
	for _, sh := range s.Shards {
		t.Restored += sh.Info.Restored
		t.Duplicates += sh.Info.Duplicates
		t.Skipped += sh.Info.Skipped
		t.Recovery.Records += sh.Info.Recovery.Records
		if sh.Info.Recovery.TornTail {
			t.Recovery.TornTail = true
		}
	}
	return t
}

// ShardedCatalog partitions a DurableCatalog into N shards keyed by
// avail id via consistent hashing. Each shard owns its own WAL
// directory, engine cache, idempotency-key index, and compaction cycle,
// so ingest acknowledgments on different shards never serialize on a
// shared lock or a shared fsync. The router implements the same query
// surface as *Catalog and the server's Ingester contract, so the
// serving handlers are unchanged: point lookups route to the owning
// shard and fleet scans merge every shard's ids into one
// deterministically ordered (ascending) sweep.
//
// Per-shard semantics are exactly the single-catalog semantics:
// log-before-ack, exactly-once under idempotency keys, stale/asOf
// provenance from the shard's own engine cache. Cross-shard, a failing
// shard degrades only its own avails — the others keep serving fresh.
type ShardedCatalog struct {
	kind   index.Kind
	ring   *shardRing
	shards []*DurableCatalog
	dirs   []string

	// ingests/lookups are the per-shard metric counters, resolved once
	// at open so the hot paths never take the registry lock.
	ingests []*obs.Counter
	lookups []*obs.Counter

	// health/breakers are the per-shard health state machines and
	// circuit breakers driving the router's retry/fail-fast envelope;
	// healthG are their resolved gauges.
	health   []*healthTracker
	breakers []*breaker
	healthG  []*obs.Gauge

	// jitter seeds retry-backoff jitter: a counter hashed through
	// splitmix instead of global math/rand, keeping statusq free of
	// ambient randomness.
	jitter atomic.Uint64
}

// OpenSharded builds an N-shard sharded catalog over the base tables,
// laying per-shard WALs out as <root>/shard-0000, <root>/shard-0001, …
// and restoring each shard from its own snapshot + log. The shard
// layout is pinned in <root>/topology.json; reopening a root with a
// different shard count fails rather than silently orphaning records
// (re-sharding an existing root is not supported). Every shard gets its
// own copy of opts (WAL fsync policy, compaction cadence, dedup
// budget).
func OpenSharded(root string, shards int, avails []domain.Avail, rccs []domain.RCC, kind index.Kind, opts DurableOptions) (*ShardedCatalog, *ShardedRestoreInfo, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("statusq: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, nil, fmt.Errorf("statusq: create WAL root: %w", err)
	}
	if err := pinTopology(root, shards, opts.Replicas); err != nil {
		return nil, nil, err
	}
	ring := newShardRing(shards, ringReplicas)

	shardAvails := make([][]domain.Avail, shards)
	for _, a := range avails {
		s := ring.shardOf(a.ID)
		shardAvails[s] = append(shardAvails[s], a)
	}
	shardRCCs := make([][]domain.RCC, shards)
	for _, r := range rccs {
		s := ring.shardOf(r.AvailID)
		shardRCCs[s] = append(shardRCCs[s], r)
	}

	sc := &ShardedCatalog{
		kind:     kind,
		ring:     ring,
		shards:   make([]*DurableCatalog, shards),
		dirs:     make([]string, shards),
		ingests:  make([]*obs.Counter, shards),
		lookups:  make([]*obs.Counter, shards),
		health:   make([]*healthTracker, shards),
		breakers: make([]*breaker, shards),
		healthG:  make([]*obs.Gauge, shards),
	}
	info := &ShardedRestoreInfo{Shards: make([]ShardRestore, shards)}
	for i := 0; i < shards; i++ {
		dir := filepath.Join(root, fmt.Sprintf("shard-%04d", i))
		d, ri, err := OpenDurable(dir, shardAvails[i], shardRCCs[i], kind, opts)
		if err != nil {
			for j := 0; j < i; j++ {
				closeBestEffort(sc.shards[j].log)
			}
			return nil, nil, fmt.Errorf("statusq: open shard %d: %w", i, err)
		}
		sc.shards[i] = d
		sc.dirs[i] = dir
		label := strconv.Itoa(i)
		sc.ingests[i] = mShardIngests.With(label)
		sc.lookups[i] = mShardEngineLookups.With(label)
		sc.health[i] = &healthTracker{}
		sc.breakers[i] = &breaker{}
		sc.healthG[i] = mShardHealth.With(label)
		mShardAvails.With(label).Set(int64(len(shardAvails[i])))
		info.Shards[i] = ShardRestore{Shard: i, Dir: dir, Avails: len(shardAvails[i]), Info: *ri}
	}
	return sc, info, nil
}

// pinTopology creates or verifies the root's topology metadata,
// including the per-shard WAL replica count: reopening a root with a
// different replica count would abandon (or invent) replica
// directories, so it fails like a shard-count change does.
func pinTopology(root string, shards, walReplicas int) error {
	if walReplicas < 1 {
		walReplicas = 1
	}
	path := filepath.Join(root, topologyFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var top shardTopology
		if derr := json.Unmarshal(raw, &top); derr != nil {
			return fmt.Errorf("statusq: decode %s: %w", path, derr)
		}
		if top.WALReplicas < 1 {
			top.WALReplicas = 1 // pre-replication topology: single log per shard
		}
		if top.Shards != shards || top.Replicas != ringReplicas {
			return fmt.Errorf("statusq: WAL root %s is laid out for %d shards (ring replicas %d), got -shards %d (replicas %d): re-sharding an existing root is not supported",
				root, top.Shards, top.Replicas, shards, ringReplicas)
		}
		if top.WALReplicas != walReplicas {
			return fmt.Errorf("statusq: WAL root %s is laid out with %d WAL replicas per shard, got -repl %d: changing replication of an existing root is not supported",
				root, top.WALReplicas, walReplicas)
		}
		return nil
	case os.IsNotExist(err):
		raw, merr := json.Marshal(shardTopology{Version: 1, Shards: shards, Replicas: ringReplicas, WALReplicas: walReplicas})
		if merr != nil {
			return fmt.Errorf("statusq: encode topology: %w", merr)
		}
		tmp := path + ".tmp"
		if werr := os.WriteFile(tmp, raw, 0o644); werr != nil {
			return fmt.Errorf("statusq: write topology: %w", werr)
		}
		if rerr := os.Rename(tmp, path); rerr != nil {
			return fmt.Errorf("statusq: pin topology: %w", rerr)
		}
		return nil
	default:
		return fmt.Errorf("statusq: read %s: %w", path, err)
	}
}

// ShardCount reports the number of shards.
func (s *ShardedCatalog) ShardCount() int { return len(s.shards) }

// ShardOf reports which shard owns an avail id. Exported so tests and
// the loadgen harness can target (or avoid) a specific shard.
func (s *ShardedCatalog) ShardOf(id int) int { return s.ring.shardOf(id) }

// ShardDir reports shard i's WAL directory.
func (s *ShardedCatalog) ShardDir(i int) string { return s.dirs[i] }

// Kind reports the TimeIndex implementation every shard was built with.
func (s *ShardedCatalog) Kind() index.Kind { return s.kind }

// shardFor routes an avail id to its owning shard.
func (s *ShardedCatalog) shardFor(id int) *DurableCatalog {
	return s.shards[s.ring.shardOf(id)]
}

// Avail routes a point lookup to the owning shard.
func (s *ShardedCatalog) Avail(id int) (*domain.Avail, bool) {
	return s.shardFor(id).Avail(id)
}

// AvailIDs merges every shard's (already sorted) id list into one
// ascending list — the deterministic cross-shard ordering the fleet
// surface relies on.
func (s *ShardedCatalog) AvailIDs() []int {
	return s.mergedIDs((*DurableCatalog).AvailIDs)
}

// OngoingIDs merges every shard's ongoing avails in ascending id order.
func (s *ShardedCatalog) OngoingIDs() []int {
	return s.mergedIDs((*DurableCatalog).OngoingIDs)
}

// mergedIDs gathers ids shard by shard (shard order is a slice sweep,
// never a map range) and sorts the union ascending.
func (s *ShardedCatalog) mergedIDs(get func(*DurableCatalog) []int) []int {
	ids := []int{}
	for _, sh := range s.shards {
		ids = append(ids, get(sh)...)
	}
	sort.Ints(ids)
	return ids
}

// RCCs routes to the owning shard's RCC history.
func (s *ShardedCatalog) RCCs(id int) []domain.RCC {
	return s.shardFor(id).RCCs(id)
}

// Engine routes to the owning shard's engine cache.
func (s *ShardedCatalog) Engine(id int) (*Engine, error) {
	s.lookups[s.ring.shardOf(id)].Inc()
	return s.shardFor(id).Engine(id)
}

// EngineAsOf routes to the owning shard, preserving the single-catalog
// stale/asOf provenance contract per shard — with one router-level
// addition: answers from a shard in the failed health state are forced
// stale=true, because a shard that cannot durably accept writes is by
// definition serving a frozen view (the circuit breaker's
// stale-serving mode).
func (s *ShardedCatalog) EngineAsOf(id int) (eng *Engine, asOf int64, stale bool, err error) {
	shard := s.ring.shardOf(id)
	s.lookups[shard].Inc()
	eng, asOf, stale, err = s.shards[shard].EngineAsOf(id)
	if err == nil && !stale && s.HealthOf(shard) == ShardFailed {
		stale = true
		mStaleServes.Inc()
	}
	return eng, asOf, stale, err
}

// Eval routes one Status Query evaluation to the owning shard.
func (s *ShardedCatalog) Eval(id int, ts float64, q Query) (float64, error) {
	return s.shardFor(id).Eval(id, ts, q)
}

const (
	// ingestRetries is the number of times the router re-attempts a
	// transient shard storage failure before surfacing it.
	ingestRetries = 2
	// ingestRetryBase is the first retry's backoff; each further retry
	// doubles it, jittered into [base/2, base].
	ingestRetryBase = 2 * time.Millisecond
)

// Ingest routes one RCC to the owning shard's durable ingest path,
// wrapped in the router's resilience envelope: transient storage
// failures are retried with jittered exponential backoff, consecutive
// failures trip the shard's circuit breaker (fail-fast with periodic
// probes), and every outcome drives the shard's health state machine.
// The per-shard log-before-ack and idempotency contracts are exactly
// DurableCatalog.Ingest's; shards never share a WAL or an ingest lock,
// and a retried append that already reached disk is collapsed by the
// idempotency key exactly as a client retry would be.
func (s *ShardedCatalog) Ingest(key string, r domain.RCC) (dup bool, err error) {
	shard := s.ring.shardOf(r.AvailID)
	s.ingests[shard].Inc()
	// Reject bad requests before touching the breaker or the shard:
	// validation failures are the client's problem, not health signals.
	if verr := r.Validate(); verr != nil {
		return false, verr
	}
	if !s.breakers[shard].allow() {
		return false, fmt.Errorf("statusq: shard %d: %w", shard, ErrShardUnavailable)
	}
	dup, err = s.shards[shard].Ingest(key, r)
	for attempt := 0; err != nil && ingestRetryable(err) && attempt < ingestRetries; attempt++ {
		mShardIngestRetries.Inc()
		time.Sleep(s.backoff(attempt))
		dup, err = s.shards[shard].Ingest(key, r)
	}
	if err == nil || !ingestRetryable(err) {
		// Success, or a request-level rejection (unknown avail, closed
		// catalog): the shard's storage is not implicated.
		s.breakers[shard].note(true)
		s.health[shard].noteIngest(true)
	} else {
		s.breakers[shard].note(false)
		s.health[shard].noteIngest(false)
	}
	s.healthG[shard].Set(int64(s.HealthOf(shard)))
	return dup, err
}

// ingestRetryable distinguishes transient storage failures (worth a
// retry, and a health signal) from request-level rejections that no
// retry can fix.
func ingestRetryable(err error) bool {
	return err != nil && !errors.Is(err, ErrUnknownAvail) && !errors.Is(err, ErrNotReady)
}

// backoff computes the attempt'th retry delay: exponential from
// ingestRetryBase, jittered into [d/2, d] by a splitmix-hashed counter
// (no ambient randomness in statusq).
func (s *ShardedCatalog) backoff(attempt int) time.Duration {
	d := ingestRetryBase << attempt
	frac := float64(ringHash(s.jitter.Add(1))) / float64(1<<32)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Ready reports readiness of the whole tier: every shard must be able
// to acknowledge ingests. The first unready shard is named.
func (s *ShardedCatalog) Ready() error {
	for i, sh := range s.shards {
		if err := sh.Ready(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Compact snapshots and truncates every shard's WAL. All shards are
// attempted; failures are joined.
func (s *ShardedCatalog) Compact() error {
	var errs []error
	for i, sh := range s.shards {
		if err := sh.Compact(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close closes every shard's WAL. All shards are attempted; failures
// are joined.
func (s *ShardedCatalog) Close() error {
	var errs []error
	for i, sh := range s.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// LastCompactError surfaces the first shard's pending auto-compaction
// failure, annotated with its shard id (nil when all shards are clean).
func (s *ShardedCatalog) LastCompactError() error {
	for i, sh := range s.shards {
		if err := sh.LastCompactError(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// IngestedCount sums the applied delta across shards.
func (s *ShardedCatalog) IngestedCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.IngestedCount()
	}
	return n
}

// DedupTracked sums the live idempotency-key index sizes across shards.
func (s *ShardedCatalog) DedupTracked() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.DedupTracked()
	}
	return n
}

// EngineBuilds sums engine constructions across shards.
func (s *ShardedCatalog) EngineBuilds() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.EngineBuilds()
	}
	return n
}

// DeltaApplies sums O(delta) engine folds across shards.
func (s *ShardedCatalog) DeltaApplies() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.DeltaApplies()
	}
	return n
}

// DeltaFallbacks sums delta-fold fallbacks (engine invalidations)
// across shards.
func (s *ShardedCatalog) DeltaFallbacks() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.DeltaFallbacks()
	}
	return n
}

// SetDeltaApply toggles O(delta) engine maintenance on every shard.
func (s *ShardedCatalog) SetDeltaApply(enabled bool) {
	for _, sh := range s.shards {
		sh.SetDeltaApply(enabled)
	}
}

// WALSeq reports shard i's WAL sequence number — a cheap proxy for
// appended records used by tests asserting per-shard isolation.
func (s *ShardedCatalog) WALSeq(i int) uint64 { return s.shards[i].log.Seq() }

// HealthOf reports shard i's current health: the failure-streak state
// machine folded with the shard's live replica status, so a quorum loss
// is visible even before the next ingest attempt.
func (s *ShardedCatalog) HealthOf(i int) ShardHealth {
	repl, replicated := s.shards[i].ReplHealth()
	h := s.health[i].state(repl, replicated)
	s.healthG[i].Set(int64(h))
	return h
}

// HealthForAvail reports the health of the shard owning an avail id —
// the hook /fleet uses to annotate rows from degraded shards.
func (s *ShardedCatalog) HealthForAvail(id int) ShardHealth {
	return s.HealthOf(s.ring.shardOf(id))
}

// ShardHealths reports every shard's health, replica census, and
// replication lag, in shard order — the /readyz per-shard body.
func (s *ShardedCatalog) ShardHealths() []ShardHealthStatus {
	out := make([]ShardHealthStatus, len(s.shards))
	for i := range s.shards {
		repl, replicated := s.shards[i].ReplHealth()
		st := ShardHealthStatus{
			Shard:       i,
			State:       s.HealthOf(i),
			Replicas:    1,
			Live:        1,
			BreakerOpen: s.breakers[i].isOpen(),
		}
		if replicated {
			st.Replicas = repl.Replicas
			st.Live = repl.Live
			st.Lag = repl.Lag
			st.Promotable = repl.QuorumOK
		}
		if !replicated && st.State == ShardFailed {
			st.Live = 0
		}
		out[i] = st
	}
	return out
}
