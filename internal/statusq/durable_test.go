package statusq

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"domd/internal/domain"
	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/wal"
)

// durableFixture opens a DurableCatalog over the navsim fleet in dir.
func durableFixture(t *testing.T, dir string, opts DurableOptions) (*DurableCatalog, *RestoreInfo, *navsim.Dataset) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 15, NumOngoing: 3, MeanRCCsPerAvail: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, info, ds
}

// deltaRCC builds a valid runtime RCC for the avail, unique per n.
func deltaRCC(t *testing.T, c *Catalog, availID, n int) domain.RCC {
	t.Helper()
	a, ok := c.Avail(availID)
	if !ok {
		t.Fatalf("avail %d missing", availID)
	}
	return domain.RCC{
		ID: 2_000_000 + n, AvailID: availID, Type: domain.Growth,
		SWLIN:   43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 20, Amount: float64(100 + n),
	}
}

// evalSurface is the query surface evalFingerprint sweeps — satisfied
// by *Catalog, *DurableCatalog, and *ShardedCatalog alike.
type evalSurface interface {
	AvailIDs() []int
	Eval(id int, ts float64, q Query) (float64, error)
}

// evalFingerprint evaluates a grid of Status Queries over every avail and
// returns the raw float bits, so two catalogs can be compared for
// bitwise-identical answers.
func evalFingerprint(t *testing.T, c evalSurface) []uint64 {
	t.Helper()
	var out []uint64
	queries := []Query{
		{Status: domain.Created, Agg: Count},
		{Status: domain.Active, Agg: SumAmount},
		{Status: domain.SettledStatus, Agg: AvgDuration},
	}
	for _, id := range c.AvailIDs() {
		for _, q := range queries {
			for _, ts := range []float64{10, 50, 90} {
				v, err := c.Eval(id, ts, q)
				if err != nil {
					t.Fatalf("Eval(%d, %.0f): %v", id, ts, err)
				}
				out = append(out, math.Float64bits(v))
			}
		}
	}
	return out
}

func sameFingerprint(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDurableRestoreEquivalence is the snapshot+log replay equivalence
// gate: a catalog restored from WAL answers bitwise-identical Eval to
// the never-restarted one, across plain-log, snapshot-only, and
// snapshot+suffix layouts.
func TestDurableRestoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{})
	ids := d.AvailIDs()
	for n := 0; n < 12; n++ {
		if dup, err := d.Ingest(fmt.Sprintf("k%d", n), deltaRCC(t, d.Catalog, ids[n%len(ids)], n)); err != nil || dup {
			t.Fatalf("ingest %d: dup=%v err=%v", n, dup, err)
		}
	}
	// Snapshot mid-stream, then keep appending so replay must combine both.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	for n := 12; n < 20; n++ {
		if _, err := d.Ingest(fmt.Sprintf("k%d", n), deltaRCC(t, d.Catalog, ids[n%len(ids)], n)); err != nil {
			t.Fatal(err)
		}
	}
	want := evalFingerprint(t, d.Catalog)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Restored != 20 || info.Duplicates != 0 || info.Skipped != 0 {
		t.Fatalf("restore info = %+v, want 20 restored", info)
	}
	if info.Recovery.SnapshotSeq != 12 || info.Recovery.Records != 8 {
		t.Fatalf("recovery = %+v, want snapshot@12 + 8 log records", info.Recovery)
	}
	if got := evalFingerprint(t, d2.Catalog); !sameFingerprint(got, want) {
		t.Fatal("restored catalog answers differ from the never-restarted one")
	}
}

// TestDurableCrashBetweenAppendAndApply simulates a kill in the window
// after the WAL append and before the in-memory apply: the record is
// durable, the process dies, and the restart must surface it.
func TestDurableCrashBetweenAppendAndApply(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{})
	id := d.AvailIDs()[0]
	if _, err := d.Ingest("before", deltaRCC(t, d.Catalog, id, 0)); err != nil {
		t.Fatal(err)
	}
	baseline, err := d.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(FailDurableApply, func() error { panic("simulated kill mid-ingest") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("armed kill hook did not fire")
			}
		}()
		// The armed hook panics, so there is no return value to observe.
		d.Ingest("crashed", deltaRCC(t, d.Catalog, id, 1))
	}()
	faultinject.Reset()
	// The dying process never applied it (and, having not returned, never
	// acknowledged it either).
	after, err := d.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(after) != math.Float64bits(baseline) {
		t.Fatal("un-applied record visible before restart")
	}

	// "Restart": reopen the same WAL dir. The logged record must replay.
	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Restored != 2 {
		t.Fatalf("restored %d records, want 2 (incl. the crash-window one)", info.Restored)
	}
	restored, err := d2.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(restored) != math.Float64bits(baseline+1) {
		t.Fatalf("after restart count = %f, want %f", restored, baseline+1)
	}
	// The client's retry (same idempotency key) dedups, making the
	// at-least-once replay exactly-once.
	dup, err := d2.Ingest("crashed", deltaRCC(t, d2.Catalog, id, 1))
	if err != nil || !dup {
		t.Fatalf("retry after crash: dup=%v err=%v, want dup=true", dup, err)
	}
}

func TestDurableIdempotency(t *testing.T) {
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{})
	id := d.AvailIDs()[0]
	r := deltaRCC(t, d.Catalog, id, 0)
	if dup, err := d.Ingest("same-key", r); err != nil || dup {
		t.Fatalf("first ingest: dup=%v err=%v", dup, err)
	}
	if dup, err := d.Ingest("same-key", r); err != nil || !dup {
		t.Fatalf("second ingest: dup=%v err=%v, want dup", dup, err)
	}
	if got := d.IngestedCount(); got != 1 {
		t.Fatalf("ingested count = %d, want 1", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay must also dedup duplicated keys (here: none duplicated on
	// disk, but the seen-set survives via restore).
	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Restored != 1 || info.Duplicates != 0 {
		t.Fatalf("restore info = %+v", info)
	}
	if dup, err := d2.Ingest("same-key", r); err != nil || !dup {
		t.Fatalf("ingest after restore: dup=%v err=%v, want dup", dup, err)
	}
}

// TestDurableReplayDedupsDuplicateRecords covers a WAL that physically
// contains two records with one idempotency key — the shape a crash
// between append and acknowledgment plus a client retry produces.
func TestDurableReplayDedupsDuplicateRecords(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{})
	id := d.AvailIDs()[0]
	r := deltaRCC(t, d.Catalog, id, 0)
	if _, err := d.Ingest("dup-key", r); err != nil {
		t.Fatal(err)
	}
	// Crash before the apply marked the key seen…
	faultinject.Arm(FailDurableApply, func() error { panic("kill") })
	func() {
		defer func() { recover() }() // the recovered panic is the expected simulated kill
		d.seen = map[string]bool{}   // pretend the key was never applied (post-crash memory)
		d.Ingest("dup-key", r)       // the armed hook panics; no return to observe
	}()
	faultinject.Reset()

	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Restored != 1 || info.Duplicates != 1 {
		t.Fatalf("restore info = %+v, want 1 restored + 1 duplicate", info)
	}
}

func TestDurableUnknownAvailAndValidation(t *testing.T) {
	d, _, _ := durableFixture(t, t.TempDir(), DurableOptions{})
	defer d.Close()
	seqBefore := d.IngestedCount()
	_, err := d.Ingest("k", domain.RCC{ID: 7, AvailID: 99999, Created: 0, Settled: 1})
	if !errors.Is(err, ErrUnknownAvail) {
		t.Fatalf("unknown avail ingest = %v, want ErrUnknownAvail", err)
	}
	id := d.AvailIDs()[0]
	if _, err := d.Ingest("k2", domain.RCC{ID: 8, AvailID: id, Created: 10, Settled: 5}); err == nil {
		t.Fatal("invalid rcc accepted")
	}
	if d.IngestedCount() != seqBefore {
		t.Fatal("rejected ingest left state behind")
	}
	// Neither rejection may have reached the WAL.
	if got := d.log.Seq(); got != 0 {
		t.Fatalf("rejected ingests appended %d WAL records", got)
	}
}

func TestDurableWALFaultNotAcknowledged(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{})
	id := d.AvailIDs()[0]
	baseline, err := d.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	errDisk := errors.New("disk gone")
	faultinject.EnableTimes(wal.FailAppendWrite, errDisk, 1)
	if _, err := d.Ingest("k", deltaRCC(t, d.Catalog, id, 0)); !errors.Is(err, errDisk) {
		t.Fatalf("ingest under disk fault = %v", err)
	}
	after, err := d.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(after) != math.Float64bits(baseline) {
		t.Fatal("failed ingest mutated the catalog")
	}
	// Transient fault: the retry succeeds and survives restart.
	if dup, err := d.Ingest("k", deltaRCC(t, d.Catalog, id, 0)); err != nil || dup {
		t.Fatalf("retry: dup=%v err=%v", dup, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Restored != 1 {
		t.Fatalf("restored %d, want 1", info.Restored)
	}
}

func TestDurableAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{CompactEvery: 5})
	ids := d.AvailIDs()
	for n := 0; n < 13; n++ {
		if _, err := d.Ingest(fmt.Sprintf("k%d", n), deltaRCC(t, d.Catalog, ids[n%len(ids)], n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.LastCompactError(); err != nil {
		t.Fatal(err)
	}
	want := evalFingerprint(t, d.Catalog)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// 13 ingests with CompactEvery=5: snapshots at 5 and 10, then 3 log
	// records ride behind the second snapshot.
	if info.Recovery.SnapshotSeq != 10 || info.Recovery.Records != 3 || info.Restored != 13 {
		t.Fatalf("restore info = %+v / recovery %+v", info, info.Recovery)
	}
	if got := evalFingerprint(t, d2.Catalog); !sameFingerprint(got, want) {
		t.Fatal("compacted restore answers differ")
	}
}

func TestDurableDirectAddRCCRefused(t *testing.T) {
	d, _, _ := durableFixture(t, t.TempDir(), DurableOptions{})
	defer d.Close()
	if err := d.AddRCC(deltaRCC(t, d.Catalog, d.AvailIDs()[0], 0)); err == nil {
		t.Fatal("direct AddRCC on a durable catalog must fail")
	}
}

func TestDurableReadyAndClose(t *testing.T) {
	d, _, _ := durableFixture(t, t.TempDir(), DurableOptions{})
	if err := d.Ready(); err != nil {
		t.Fatalf("fresh catalog not ready: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil no-op", err)
	}
	if err := d.Ready(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("closed catalog Ready = %v", err)
	}
	if _, err := d.Ingest("k", deltaRCC(t, d.Catalog, d.AvailIDs()[0], 0)); !errors.Is(err, ErrNotReady) {
		t.Fatalf("ingest after close = %v", err)
	}
	// Queries still serve from memory after Close (drain semantics).
	if _, err := d.Eval(d.AvailIDs()[0], 50, Query{Status: domain.Created, Agg: Count}); err != nil {
		t.Fatalf("query after close: %v", err)
	}
}

// TestDurableConcurrentIngest is the -race gate for the ingestion path:
// parallel Ingest + Eval, then a restart that must see every
// acknowledged record exactly once.
func TestDurableConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	d, _, ds := durableFixture(t, dir, DurableOptions{CompactEvery: 16})
	ids := d.AvailIDs()
	var wg sync.WaitGroup
	var acked atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				n := w*25 + i
				dup, err := d.Ingest(fmt.Sprintf("w%d-%d", w, i), deltaRCC(t, d.Catalog, ids[n%len(ids)], n))
				if err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				if !dup {
					acked.Add(1)
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := d.Eval(ids[(w+i)%len(ids)], 50, Query{Status: domain.Created, Agg: Count}); err != nil {
					t.Errorf("eval: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if int64(info.Restored) != acked.Load() || info.Duplicates != 0 {
		t.Fatalf("restored %d of %d acknowledged (dups %d)", info.Restored, acked.Load(), info.Duplicates)
	}
}
