package statusq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"domd/internal/domain"
	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/obs"
)

// ErrUnknownAvail is the sentinel wrapped by every catalog operation that
// references an avail id absent from the table (referential integrity, as
// the NMD enforces). Servers map it to 404; test with errors.Is.
var ErrUnknownAvail = errors.New("unknown avail")

// FailEngineBuild is the faultinject site fired at the top of every
// engine construction; arming it makes builds fail without touching the
// RCC history, which is how the chaos suite drives degraded-mode serving.
const FailEngineBuild = "statusq.engine.build"

// FailDeltaApply is the faultinject site fired just before an ingested RCC
// would be delta-applied into a live cached engine. Arming it with an error
// forces the fallback path (invalidate + rebuild on next query), which is
// how tests pin the pre-incremental behaviour; arming it with a panic
// models a crash between the durable log append and the in-memory apply.
const FailDeltaApply = "statusq.engine.deltaapply"

// Catalog manages Status Query engines for a whole avails table — the "A"
// of Algorithm 1. It owns one Engine per avail (built lazily or eagerly) so
// fleet-wide services answer repeated DoMD queries without re-indexing RCC
// history on every request.
//
// Concurrency contract: every method is safe for concurrent use. The avail
// table is immutable after construction, so lookups (Avail, AvailIDs,
// OngoingIDs, Kind) are lock-free. RCC histories and the engine cache are
// guarded by an RWMutex; engine construction is single-flight per avail, so
// N concurrent first queries build one engine, not N. AddRCC appends to the
// history and, when the avail has a live built engine, folds the new RCC
// into it in O(delta) (Engine.ApplyRCC) instead of invalidating it; only
// when no engine is cached, a build is in flight or failed, or the delta
// path is disabled/faulted does it fall back to invalidation and a full
// rebuild on the next query. Queries racing an AddRCC may still be answered
// from the pre-append snapshot, but any Engine call that starts after
// AddRCC returns observes the new RCC.
//
// Degraded mode: the catalog remembers the last successfully built engine
// per avail. When a rebuild fails (bad history, injected fault), EngineAsOf
// keeps answering from that engine, flagged stale, instead of erroring —
// and the failed slot is dropped so the next call retries the build.
type Catalog struct {
	kind   index.Kind
	avails map[int]*domain.Avail // immutable after NewCatalog

	mu       sync.RWMutex // guards rccs, engines, lastGood, and deltaApply
	rccs     map[int][]domain.RCC
	engines  map[int]*engineSlot
	lastGood map[int]*engineSlot
	// deltaApply gates the O(delta) ingest path; disabled the catalog
	// behaves as the pre-incremental invalidate-and-rebuild design
	// (benchmark and A/B baseline).
	deltaApply bool

	builds         atomic.Int64
	deltaApplies   atomic.Int64
	deltaFallbacks atomic.Int64
}

// engineSlot is the single-flight construction cell for one avail's engine.
// The slot snapshots the RCC history at reservation time; sync.Once
// guarantees exactly one NewEngine call per slot no matter how many
// goroutines race on the first query. A delta-applying AddRCC advances the
// slot's rev in place; a falling-back AddRCC replaces the slot wholesale,
// so a stale slot keeps serving its consistent snapshot until dropped.
type engineSlot struct {
	once  sync.Once
	avail *domain.Avail
	rccs  []domain.RCC
	// rev is the RCC-history length folded into the slot's engine — the
	// revision its answers are as-of. It starts at the snapshot length and
	// advances by one per successful delta apply.
	rev atomic.Int64
	// done flips once the single-flight build has finished (either way),
	// making eng/err safe to read without entering the build.
	done atomic.Bool
	eng  *Engine
	err  error
}

func (s *engineSlot) build(c *Catalog) {
	s.once.Do(func() {
		c.builds.Add(1)
		mEngineBuilds.Inc()
		sw := obs.StartTimer()
		defer s.done.Store(true)
		if err := faultinject.Fire(FailEngineBuild); err != nil {
			s.err = fmt.Errorf("statusq: build engine for avail %d: %w", s.avail.ID, err)
			mEngineBuildFailures.Inc()
			return
		}
		s.eng, s.err = NewEngine(s.avail, s.rccs, c.kind)
		mEngineBuildSeconds.ObserveSince(sw)
		if s.err != nil {
			mEngineBuildFailures.Inc()
		}
	})
}

// NewCatalog indexes the avails table. RCCs referencing unknown avails are
// rejected (referential integrity, as the NMD enforces).
func NewCatalog(avails []domain.Avail, rccs []domain.RCC, kind index.Kind) (*Catalog, error) {
	if _, err := index.New(kind); err != nil {
		return nil, err
	}
	c := &Catalog{
		kind:       kind,
		avails:     make(map[int]*domain.Avail, len(avails)),
		rccs:       make(map[int][]domain.RCC),
		engines:    make(map[int]*engineSlot),
		lastGood:   make(map[int]*engineSlot),
		deltaApply: true,
	}
	for i := range avails {
		a := &avails[i]
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.avails[a.ID]; dup {
			return nil, fmt.Errorf("statusq: duplicate avail id %d", a.ID)
		}
		c.avails[a.ID] = a
	}
	for _, r := range rccs {
		if _, ok := c.avails[r.AvailID]; !ok {
			return nil, fmt.Errorf("statusq: rcc %d references %w %d", r.ID, ErrUnknownAvail, r.AvailID)
		}
		c.rccs[r.AvailID] = append(c.rccs[r.AvailID], r)
	}
	return c, nil
}

// Kind reports the time-index design the catalog builds engines with.
func (c *Catalog) Kind() index.Kind { return c.kind }

// Avail returns the avail record by id.
func (c *Catalog) Avail(id int) (*domain.Avail, bool) {
	a, ok := c.avails[id]
	return a, ok
}

// AvailIDs lists all avail ids in ascending order.
func (c *Catalog) AvailIDs() []int {
	ids := make([]int, 0, len(c.avails))
	for id := range c.avails {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// OngoingIDs lists ids of avails still executing, ascending. It derives
// from AvailIDs rather than sweeping the map directly, so the order is
// deterministic by construction (no map-iteration randomness to undo).
func (c *Catalog) OngoingIDs() []int {
	ids := []int{}
	for _, id := range c.AvailIDs() {
		if c.avails[id].Status == domain.StatusOngoing {
			ids = append(ids, id)
		}
	}
	return ids
}

// RCCs returns the avail's RCC history (shared slice; do not mutate).
func (c *Catalog) RCCs(id int) []domain.RCC {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rccs[id]
}

// slotFor returns the avail's engine slot, building it single-flight on
// first use. After the build it maintains the degraded-mode bookkeeping:
// a successful slot becomes the avail's last-good engine; a failed slot
// is dropped from the cache so the next call retries instead of pinning
// the failure until the next AddRCC.
func (c *Catalog) slotFor(id int) (*engineSlot, error) {
	c.mu.RLock()
	slot := c.engines[id]
	c.mu.RUnlock()
	if slot != nil {
		mEngineCacheHits.Inc()
	}
	if slot == nil {
		a, ok := c.avails[id]
		if !ok {
			return nil, fmt.Errorf("statusq: %w %d", ErrUnknownAvail, id)
		}
		c.mu.Lock()
		slot = c.engines[id]
		if slot == nil {
			// Snapshot the history: AddRCC only ever appends past the
			// snapshot's length (or reallocates), so the engine's view
			// stays consistent without holding the lock during the build.
			slot = &engineSlot{avail: a, rccs: c.rccs[id]}
			slot.rev.Store(int64(len(c.rccs[id])))
			c.engines[id] = slot
		}
		c.mu.Unlock()
	}
	slot.build(c)
	c.mu.RLock()
	settled := (slot.err == nil && c.lastGood[id] == slot) ||
		(slot.err != nil && c.engines[id] != slot)
	c.mu.RUnlock()
	if !settled {
		c.mu.Lock()
		if slot.err == nil {
			c.lastGood[id] = slot
		} else if c.engines[id] == slot {
			delete(c.engines, id)
		}
		c.mu.Unlock()
	}
	return slot, nil
}

// Engine returns (building on first use) the avail's Status Query engine.
// Construction is single-flight: concurrent callers for the same avail
// share one build, and the losers block until it finishes. A build
// failure is returned as-is; degraded serving paths that prefer a stale
// answer over an error use EngineAsOf.
func (c *Catalog) Engine(id int) (*Engine, error) {
	slot, err := c.slotFor(id)
	if err != nil {
		return nil, err
	}
	return slot.eng, slot.err
}

// EngineAsOf is the degraded-mode variant of Engine: it returns the
// avail's current engine plus the history revision (the number of RCCs
// folded in) the engine's answers are as-of. When the current build
// fails but an earlier build succeeded, it falls back to that last good
// engine with stale=true instead of returning the error; the failed
// build is retried on the next call. stale is also true when the engine
// predates RCCs appended since it was built (a racing AddRCC).
func (c *Catalog) EngineAsOf(id int) (eng *Engine, asOf int64, stale bool, err error) {
	slot, err := c.slotFor(id)
	if err != nil {
		return nil, 0, false, err
	}
	c.mu.RLock()
	cur := int64(len(c.rccs[id]))
	lg := c.lastGood[id]
	c.mu.RUnlock()
	if slot.err != nil {
		if lg != nil {
			mStaleServes.Inc()
			return lg.eng, lg.rev.Load(), true, nil
		}
		return nil, 0, false, slot.err
	}
	rev := slot.rev.Load()
	if rev < cur {
		mStaleServes.Inc()
	}
	return slot.eng, rev, rev < cur, nil
}

// EngineBuilds reports how many engine constructions this catalog has
// performed — the observable that serving paths reuse cached engines
// instead of re-indexing per request. The same increments feed the
// process-wide domd_engine_builds_total counter in obs.Default (which
// aggregates across catalogs and is what GET /metrics serves); this
// method remains the per-catalog view.
func (c *Catalog) EngineBuilds() int64 { return c.builds.Load() }

// Eval answers a Status Query for one avail at logical time ts.
func (c *Catalog) Eval(id int, ts float64, q Query) (float64, error) {
	e, err := c.Engine(id)
	if err != nil {
		return 0, err
	}
	return e.Eval(ts, q)
}

// SetDeltaApply toggles the O(delta) ingest path. Disabled, AddRCC always
// invalidates the cached engine (the pre-incremental design), which is the
// baseline the loadgen rebuild-storm scenario and the ingest benchmarks
// measure against. Enabled is the default.
func (c *Catalog) SetDeltaApply(enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deltaApply = enabled
}

// DeltaApplies reports how many ingested RCCs this catalog folded into a
// live engine in O(delta); DeltaFallbacks counts the ingests that
// invalidated instead. The same increments feed the process-wide
// domd_engine_delta_* counters on GET /metrics.
func (c *Catalog) DeltaApplies() int64 { return c.deltaApplies.Load() }

// DeltaFallbacks reports how many AddRCC calls fell back to invalidating
// the cached engine (no cache, build in flight or failed, delta disabled,
// or an armed failpoint).
func (c *Catalog) DeltaFallbacks() int64 { return c.deltaFallbacks.Load() }

// AddRCC appends a newly created RCC (e.g. an approved contract change) to
// its avail — the mutation path a deployed SMDII back end needs as RCCs
// stream in. When the avail has a live built engine, the RCC is folded
// into it in place in O(delta) (Engine.ApplyRCC), so the engine stays warm
// across ingests and the next query pays no rebuild; the engine's answers
// are bitwise-identical to a from-scratch rebuild over the extended
// history. Otherwise the cached engine is invalidated and the next Engine
// call rebuilds; in-flight queries holding the old engine keep their
// consistent pre-append snapshot either way.
func (c *Catalog) AddRCC(r domain.RCC) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := r.AvailID
	if _, ok := c.avails[id]; !ok {
		return fmt.Errorf("statusq: rcc %d references %w %d", r.ID, ErrUnknownAvail, id)
	}
	// Decide delta eligibility before appending: the slot must hold a
	// successfully built engine that is exactly up to date with the
	// history, or folding r would skip (or double-apply) earlier RCCs.
	slot := c.engines[id]
	reason := ""
	switch {
	case !c.deltaApply:
		reason = "disabled"
	case slot == nil:
		reason = "nocache"
	case !slot.done.Load():
		reason = "building"
	case slot.err != nil:
		reason = "failed"
	case slot.rev.Load() != int64(len(c.rccs[id])):
		reason = "behind"
	}
	if reason == "" {
		// Fired before the append: an armed error forces the fallback, an
		// armed panic models a crash between the durable log append and
		// the in-memory apply (the record is replayed on restart).
		if err := faultinject.Fire(FailDeltaApply); err != nil {
			reason = "failpoint"
		}
	}
	c.rccs[id] = append(c.rccs[id], r)
	if reason == "" {
		if err := slot.eng.ApplyRCC(r); err != nil {
			// The engine may be partially updated; drop it from both the
			// cache and the last-good table so it can never serve again.
			delete(c.engines, id)
			if c.lastGood[id] == slot {
				delete(c.lastGood, id)
			}
			c.deltaFallbacks.Add(1)
			mDeltaFallbacks.With("error").Inc()
			return nil
		}
		slot.rev.Add(1)
		c.deltaApplies.Add(1)
		mDeltaApplies.Inc()
		return nil
	}
	// Invalidate the cached engine but keep lastGood: if the rebuild over
	// the extended history fails, EngineAsOf still has a consistent
	// (pre-append) engine to serve, marked stale.
	delete(c.engines, id)
	c.deltaFallbacks.Add(1)
	mDeltaFallbacks.With(reason).Inc()
	return nil
}
