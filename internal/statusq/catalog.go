package statusq

import (
	"fmt"
	"sort"

	"domd/internal/domain"
	"domd/internal/index"
)

// Catalog manages Status Query engines for a whole avails table — the "A"
// of Algorithm 1. It owns one Engine per avail (built lazily or eagerly) so
// fleet-wide services answer repeated DoMD queries without re-indexing RCC
// history on every request.
type Catalog struct {
	kind    index.Kind
	avails  map[int]*domain.Avail
	rccs    map[int][]domain.RCC
	engines map[int]*Engine
}

// NewCatalog indexes the avails table. RCCs referencing unknown avails are
// rejected (referential integrity, as the NMD enforces).
func NewCatalog(avails []domain.Avail, rccs []domain.RCC, kind index.Kind) (*Catalog, error) {
	if _, err := index.New(kind); err != nil {
		return nil, err
	}
	c := &Catalog{
		kind:    kind,
		avails:  make(map[int]*domain.Avail, len(avails)),
		rccs:    make(map[int][]domain.RCC),
		engines: make(map[int]*Engine),
	}
	for i := range avails {
		a := &avails[i]
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.avails[a.ID]; dup {
			return nil, fmt.Errorf("statusq: duplicate avail id %d", a.ID)
		}
		c.avails[a.ID] = a
	}
	for _, r := range rccs {
		if _, ok := c.avails[r.AvailID]; !ok {
			return nil, fmt.Errorf("statusq: rcc %d references unknown avail %d", r.ID, r.AvailID)
		}
		c.rccs[r.AvailID] = append(c.rccs[r.AvailID], r)
	}
	return c, nil
}

// Avail returns the avail record by id.
func (c *Catalog) Avail(id int) (*domain.Avail, bool) {
	a, ok := c.avails[id]
	return a, ok
}

// AvailIDs lists all avail ids in ascending order.
func (c *Catalog) AvailIDs() []int {
	ids := make([]int, 0, len(c.avails))
	for id := range c.avails {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// OngoingIDs lists ids of avails still executing, ascending.
func (c *Catalog) OngoingIDs() []int {
	var ids []int
	for id, a := range c.avails {
		if a.Status == domain.StatusOngoing {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// RCCs returns the avail's RCC history (shared slice; do not mutate).
func (c *Catalog) RCCs(id int) []domain.RCC { return c.rccs[id] }

// Engine returns (building on first use) the avail's Status Query engine.
func (c *Catalog) Engine(id int) (*Engine, error) {
	if e, ok := c.engines[id]; ok {
		return e, nil
	}
	a, ok := c.avails[id]
	if !ok {
		return nil, fmt.Errorf("statusq: unknown avail %d", id)
	}
	e, err := NewEngine(a, c.rccs[id], c.kind)
	if err != nil {
		return nil, err
	}
	c.engines[id] = e
	return e, nil
}

// Eval answers a Status Query for one avail at logical time ts.
func (c *Catalog) Eval(id int, ts float64, q Query) (float64, error) {
	e, err := c.Engine(id)
	if err != nil {
		return 0, err
	}
	return e.Eval(ts, q)
}

// AddRCC appends a newly created RCC (e.g. an approved contract change) to
// its avail, updating the live engine if one exists — the mutation path a
// deployed SMDII back end needs as RCCs stream in.
func (c *Catalog) AddRCC(r domain.RCC) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, ok := c.avails[r.AvailID]; !ok {
		return fmt.Errorf("statusq: rcc %d references unknown avail %d", r.ID, r.AvailID)
	}
	c.rccs[r.AvailID] = append(c.rccs[r.AvailID], r)
	// Rebuild the engine lazily on next use; dropping it is simpler and
	// safe because engines hold positional indexes into the old slice.
	delete(c.engines, r.AvailID)
	return nil
}
