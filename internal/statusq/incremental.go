package statusq

import (
	"fmt"
	"math"
	"sort"

	"domd/internal/domain"
	"domd/internal/swlin"
)

// GroupKey identifies one (RCC type × SWLIN subsystem) cell of the group-by
// lattice maintained incrementally.
type GroupKey struct {
	Type      domain.RCCType
	Subsystem int // SWLIN first digit
}

// GroupStats are the additively-maintainable aggregates of one group at the
// current sweep position. Created counts/dollars are Active + Settled.
type GroupStats struct {
	ActiveCount      int
	SettledCount     int
	ActiveSumAmount  float64
	SettledSumAmount float64
	// SettledSumDuration accumulates created→settled day spans.
	SettledSumDuration float64
}

// CreatedCount is the union cardinality (Eq. 5).
func (g GroupStats) CreatedCount() int { return g.ActiveCount + g.SettledCount }

// CreatedSumAmount is the union dollar volume.
func (g GroupStats) CreatedSumAmount() float64 { return g.ActiveSumAmount + g.SettledSumAmount }

// StatStructure is the incremental Status Query state of §4.3
// ("StatStructure(t*_xj)"): a forward sweep over creation and settlement
// events that maintains per-group aggregates. Advancing from t*_j to
// t*_{j+1} costs only the events falling inside that window, rather than a
// full re-scan.
//
// The structure only moves forward; Reset rewinds to t* = -inf.
type StatStructure struct {
	avail *domain.Avail
	rccs  []domain.RCC
	// creations/settlements are event orders (positions into rccs) sorted
	// by the respective date.
	creations   []int
	settlements []int
	ci, si      int
	groups      map[GroupKey]*GroupStats
	// current sweep position in physical days (exclusive upper bound
	// semantics match StatusAt: events with date <= pos are applied).
	pos int64
}

// NewStatStructure prepares the event sweep for one avail.
func NewStatStructure(a *domain.Avail, rccs []domain.RCC) (*StatStructure, error) {
	if a == nil {
		return nil, fmt.Errorf("statusq: nil avail")
	}
	if a.PlannedDuration() <= 0 {
		return nil, fmt.Errorf("statusq: avail %d has non-positive planned duration", a.ID)
	}
	s := &StatStructure{avail: a, rccs: rccs, groups: make(map[GroupKey]*GroupStats)}
	for pos := range rccs {
		if rccs[pos].AvailID != a.ID {
			return nil, fmt.Errorf("statusq: rcc %d belongs to avail %d, structure is for %d",
				rccs[pos].ID, rccs[pos].AvailID, a.ID)
		}
		if err := rccs[pos].Validate(); err != nil {
			return nil, err
		}
		s.creations = append(s.creations, pos)
		s.settlements = append(s.settlements, pos)
	}
	sort.SliceStable(s.creations, func(i, j int) bool {
		return rccs[s.creations[i]].Created < rccs[s.creations[j]].Created
	})
	sort.SliceStable(s.settlements, func(i, j int) bool {
		return rccs[s.settlements[i]].Settled < rccs[s.settlements[j]].Settled
	})
	s.Reset()
	return s, nil
}

// Reset rewinds the sweep to before all events.
func (s *StatStructure) Reset() {
	s.ci, s.si = 0, 0
	s.pos = math.MinInt64
	for k := range s.groups {
		delete(s.groups, k)
	}
}

// key computes the group cell of an RCC.
func key(r *domain.RCC) GroupKey {
	return GroupKey{Type: r.Type, Subsystem: swlin.Code(r.SWLIN).Subsystem()}
}

func (s *StatStructure) group(k GroupKey) *GroupStats {
	g := s.groups[k]
	if g == nil {
		g = &GroupStats{}
		s.groups[k] = g
	}
	return g
}

// AdvanceTo moves the sweep to logical time ts (percent of planned
// duration). It returns an error on attempts to move backwards — callers
// wanting a rewind must Reset first.
func (s *StatStructure) AdvanceTo(ts float64) error {
	day := int64(s.avail.PhysicalTime(ts))
	if day < s.pos {
		return fmt.Errorf("statusq: cannot sweep backwards from %d to %d", s.pos, day)
	}
	// Apply creations with Created <= day: the RCC becomes active.
	for s.ci < len(s.creations) {
		r := &s.rccs[s.creations[s.ci]]
		if int64(r.Created) > day {
			break
		}
		g := s.group(key(r))
		g.ActiveCount++
		g.ActiveSumAmount += r.Amount
		s.ci++
	}
	// Apply settlements with Settled <= day: active -> settled.
	for s.si < len(s.settlements) {
		r := &s.rccs[s.settlements[s.si]]
		if int64(r.Settled) > day {
			break
		}
		// Created <= Settled is validated at construction, so every RCC
		// settling here has already been counted active above.
		g := s.group(key(r))
		g.ActiveCount--
		g.ActiveSumAmount -= r.Amount
		g.SettledCount++
		g.SettledSumAmount += r.Amount
		g.SettledSumDuration += float64(r.Duration())
		s.si++
	}
	s.pos = day
	return nil
}

// ApplyRCC folds one freshly ingested RCC into the structure in O(delta):
// its events are spliced into the date-sorted event orders and, when they
// fall inside the already-swept region, folded immediately — in the exact
// position a from-scratch structure advanced to the same sweep position
// would fold them (last, since the new RCC takes the largest position).
// Returns ErrCannotApply, leaving the structure unchanged, when an event
// predates ones already applied; the caller must rebuild.
func (s *StatStructure) ApplyRCC(r domain.RCC) error {
	if r.AvailID != s.avail.ID {
		return fmt.Errorf("statusq: rcc %d belongs to avail %d, structure is for %d", r.ID, r.AvailID, s.avail.ID)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	applyCreate := int64(r.Created) <= s.pos
	applySettle := int64(r.Settled) <= s.pos
	if applyCreate && s.ci > 0 && r.Created < s.rccs[s.creations[s.ci-1]].Created {
		return ErrCannotApply
	}
	if applySettle && s.si > 0 && r.Settled < s.rccs[s.settlements[s.si-1]].Settled {
		return ErrCannotApply
	}
	// A from-scratch sweep folds r's creation before every settlement of its
	// group, but an in-place apply can only fold it after the settlements
	// already applied — a float reordering of ActiveSumAmount. Reject when
	// the group has applied settlements so success stays bitwise-exact.
	if applyCreate {
		if g := s.groups[key(&r)]; g != nil && g.SettledCount > 0 {
			return ErrCannotApply
		}
	}
	p := len(s.rccs)
	s.rccs = append(s.rccs, r)
	s.creations = insertEventSorted(s.creations, p,
		func(pos int) int64 { return int64(s.rccs[pos].Created) }, int64(r.Created))
	s.settlements = insertEventSorted(s.settlements, p,
		func(pos int) int64 { return int64(s.rccs[pos].Settled) }, int64(r.Settled))
	// Fold in the same creation-then-settlement order AdvanceTo uses, so
	// the float accumulators see the identical operation sequence.
	if applyCreate {
		g := s.group(key(&r))
		g.ActiveCount++
		g.ActiveSumAmount += r.Amount
		s.ci++
	}
	if applySettle {
		g := s.group(key(&r))
		g.ActiveCount--
		g.ActiveSumAmount -= r.Amount
		g.SettledCount++
		g.SettledSumAmount += r.Amount
		g.SettledSumDuration += float64(r.Duration())
		s.si++
	}
	return nil
}

// Group returns a copy of the stats for one cell (zero stats if absent).
func (s *StatStructure) Group(k GroupKey) GroupStats {
	if g := s.groups[k]; g != nil {
		return *g
	}
	return GroupStats{}
}

// Totals sums the stats across cells matching the optional type and
// subsystem filters (nil = all). This evaluates the additive Status Query
// aggregates (counts, dollar and duration sums) from the incremental state.
// Cells fold in canonical (type ascending, subsystem ascending) order, not
// map order, so equal group states always yield bitwise-equal float sums.
func (s *StatStructure) Totals(typ *domain.RCCType, subsystem *int) GroupStats {
	var out GroupStats
	for t := 0; t < domain.NumRCCTypes; t++ {
		if typ != nil && domain.RCCType(t) != *typ {
			continue
		}
		for sub := 0; sub < NumSubsystems; sub++ {
			if subsystem != nil && sub != *subsystem {
				continue
			}
			g := s.groups[GroupKey{Type: domain.RCCType(t), Subsystem: sub}]
			if g == nil {
				continue
			}
			out.ActiveCount += g.ActiveCount
			out.SettledCount += g.SettledCount
			out.ActiveSumAmount += g.ActiveSumAmount
			out.SettledSumAmount += g.SettledSumAmount
			out.SettledSumDuration += g.SettledSumDuration
		}
	}
	return out
}
