package statusq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"domd/internal/domain"
	"domd/internal/index"
)

// randomCells builds a CellStats from n random RCC-like observations plus
// the raw observations for oracle checks.
func randomCells(rng *rand.Rand, n int) (CellStats, []float64, []float64) {
	var c CellStats
	amounts := make([]float64, n)
	durs := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 1e5
		d := float64(rng.Intn(200))
		amounts[i], durs[i] = a, d
		if c.Count == 0 {
			c.MinAmount, c.MaxAmount, c.MaxDuration = a, a, d
		} else {
			c.MinAmount = math.Min(c.MinAmount, a)
			c.MaxAmount = math.Max(c.MaxAmount, a)
			c.MaxDuration = math.Max(c.MaxDuration, d)
		}
		c.Count++
		c.SumAmount += a
		c.SumSqAmount += a * a
		c.SumDuration += d
	}
	return c, amounts, durs
}

// TestQuickCellMergeEquivalence: merging two cells must equal building one
// cell from the concatenated observations.
func TestQuickCellMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(20), rng.Intn(20)
		c1, a1, d1 := randomCells(rng, n1)
		c2, a2, d2 := randomCells(rng, n2)
		merged := c1.Merge(c2)

		var whole CellStats
		for i, a := range append(append([]float64(nil), a1...), a2...) {
			d := append(append([]float64(nil), d1...), d2...)[i]
			if whole.Count == 0 {
				whole.MinAmount, whole.MaxAmount, whole.MaxDuration = a, a, d
			} else {
				whole.MinAmount = math.Min(whole.MinAmount, a)
				whole.MaxAmount = math.Max(whole.MaxAmount, a)
				whole.MaxDuration = math.Max(whole.MaxDuration, d)
			}
			whole.Count++
			whole.SumAmount += a
			whole.SumSqAmount += a * a
			whole.SumDuration += d
		}
		eq := func(x, y float64) bool { return math.Abs(x-y) <= 1e-6*(1+math.Abs(x)) }
		return merged.Count == whole.Count &&
			eq(merged.SumAmount, whole.SumAmount) &&
			eq(merged.SumSqAmount, whole.SumSqAmount) &&
			eq(merged.MinAmount, whole.MinAmount) &&
			eq(merged.MaxAmount, whole.MaxAmount) &&
			eq(merged.SumDuration, whole.SumDuration) &&
			eq(merged.MaxDuration, whole.MaxDuration)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCellMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, _, _ := randomCells(rng, 7)
	var zero CellStats
	if got := c.Merge(zero); got != c {
		t.Error("merge with empty must be identity")
	}
	if got := zero.Merge(c); got != c {
		t.Error("empty merge must be identity")
	}
}

// TestCellStatsAtMatchesEval cross-checks the batched cell path against the
// per-query Eval path for every aggregate on random data.
func TestCellStatsAtMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := &domain.Avail{ID: 5, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 150, ActStart: 0, ActEnd: 200}
	var rccs []domain.RCC
	for i := 0; i < 250; i++ {
		created := domain.Day(rng.Intn(200))
		rccs = append(rccs, domain.RCC{
			ID: i + 1, AvailID: 5,
			Type:    domain.RCCType(rng.Intn(domain.NumRCCTypes)),
			SWLIN:   rng.Intn(100_000_000),
			Created: created,
			Settled: created + domain.Day(rng.Intn(60)),
			Amount:  rng.Float64() * 1e5,
		})
	}
	e, err := NewEngine(a, rccs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []float64{0, 25, 60, 110} {
		for _, st := range []domain.RCCStatus{domain.Active, domain.SettledStatus, domain.Created} {
			cells, err := e.CellStatsAt(ts, st)
			if err != nil {
				t.Fatal(err)
			}
			var all CellStats
			for _, c := range cells {
				all = all.Merge(c)
			}
			created := e.CreatedCount(ts)
			for agg := Aggregate(0); agg < NumAggregates; agg++ {
				want, err := e.Eval(ts, Query{Status: st, Agg: agg})
				if err != nil {
					t.Fatal(err)
				}
				got := all.Aggregate(agg, created, ts)
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Fatalf("ts=%g status=%v agg=%v: cells %f vs eval %f", ts, st, agg, got, want)
				}
			}
		}
	}
}
