package statusq

import (
	"math"
	"math/rand"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/swlin"
)

func TestStatStructureMatchesFixture(t *testing.T) {
	s, err := NewStatStructure(fixtureAvail(), fixtureRCCs(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(30); err != nil { // day 30
		t.Fatal(err)
	}
	all := s.Totals(nil, nil)
	if all.ActiveCount != 3 || all.SettledCount != 1 {
		t.Errorf("@30%%: active %d settled %d, want 3/1", all.ActiveCount, all.SettledCount)
	}
	if math.Abs(all.ActiveSumAmount-700) > 1e-9 {
		t.Errorf("active sum = %f, want 700", all.ActiveSumAmount)
	}
	if math.Abs(all.SettledSumAmount-800) > 1e-9 {
		t.Errorf("settled sum = %f, want 800", all.SettledSumAmount)
	}
	if math.Abs(all.SettledSumDuration-10) > 1e-9 {
		t.Errorf("settled duration = %f, want 10", all.SettledSumDuration)
	}
	if all.CreatedCount() != 4 {
		t.Errorf("created = %d, want 4", all.CreatedCount())
	}

	g := domain.Growth
	growth := s.Totals(&g, nil)
	if growth.ActiveCount != 2 || growth.SettledCount != 0 {
		t.Errorf("growth: %+v", growth)
	}
	sub4 := 4
	hull := s.Totals(nil, &sub4)
	if hull.ActiveCount != 2 || hull.SettledCount != 1 {
		t.Errorf("subsystem 4: %+v", hull)
	}
	cell := s.Group(GroupKey{Type: domain.NewWork, Subsystem: 9})
	if cell.ActiveCount != 1 || cell.ActiveSumAmount != 400 {
		t.Errorf("NW/9 cell: %+v", cell)
	}
	if z := s.Group(GroupKey{Type: domain.Growth, Subsystem: 7}); z != (GroupStats{}) {
		t.Errorf("absent cell should be zero: %+v", z)
	}
}

func TestStatStructureForwardOnly(t *testing.T) {
	s, err := NewStatStructure(fixtureAvail(), fixtureRCCs(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(20); err == nil {
		t.Error("backward sweep: want error")
	}
	s.Reset()
	if err := s.AdvanceTo(20); err != nil {
		t.Errorf("advance after reset: %v", err)
	}
}

func TestStatStructureIdempotentAdvance(t *testing.T) {
	s, err := NewStatStructure(fixtureAvail(), fixtureRCCs(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(40); err != nil {
		t.Fatal(err)
	}
	before := s.Totals(nil, nil)
	if err := s.AdvanceTo(40); err != nil {
		t.Fatal(err)
	}
	if s.Totals(nil, nil) != before {
		t.Error("re-advancing to same position must be a no-op")
	}
}

// TestIncrementalMatchesDirect sweeps random data over the logical timeline
// and cross-checks every additive aggregate against the index-based engine,
// at every step and for every group filter.
func TestIncrementalMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := &domain.Avail{ID: 3, Status: domain.StatusClosed,
		PlanStart: 100, PlanEnd: 400, ActStart: 110, ActEnd: 520}
	var rccs []domain.RCC
	for i := 0; i < 500; i++ {
		created := a.ActStart + domain.Day(rng.Intn(400))
		sub := rng.Intn(10)
		code, err := swlin.FromParts(sub*100+11, 11, 1+rng.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		rccs = append(rccs, domain.RCC{
			ID: i + 1, AvailID: 3,
			Type:    domain.RCCType(rng.Intn(domain.NumRCCTypes)),
			SWLIN:   int(code),
			Created: created,
			Settled: created + domain.Day(rng.Intn(150)),
			Amount:  10 + float64(rng.Intn(50000)),
		})
	}
	e, err := NewEngine(a, rccs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStatStructure(a, rccs)
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0.0; ts <= 140; ts += 7 {
		if err := s.AdvanceTo(ts); err != nil {
			t.Fatal(err)
		}
		for typ := -1; typ < domain.NumRCCTypes; typ++ {
			var typPtr *domain.RCCType
			var qTyp *domain.RCCType
			if typ >= 0 {
				tv := domain.RCCType(typ)
				typPtr, qTyp = &tv, &tv
			}
			for sub := -1; sub < 10; sub++ {
				var subPtr *int
				var prefix []int
				if sub >= 0 {
					sv := sub
					subPtr = &sv
					prefix = []int{sub}
				}
				inc := s.Totals(typPtr, subPtr)
				activeCount, err := e.Eval(ts, Query{Type: qTyp, SWLINPrefix: prefix, Status: domain.Active, Agg: Count})
				if err != nil {
					t.Fatal(err)
				}
				if float64(inc.ActiveCount) != activeCount {
					t.Fatalf("ts=%g typ=%d sub=%d: active count inc=%d direct=%f", ts, typ, sub, inc.ActiveCount, activeCount)
				}
				settledSum, _ := e.Eval(ts, Query{Type: qTyp, SWLINPrefix: prefix, Status: domain.SettledStatus, Agg: SumAmount})
				if math.Abs(inc.SettledSumAmount-settledSum) > 1e-6 {
					t.Fatalf("ts=%g typ=%d sub=%d: settled sum inc=%f direct=%f", ts, typ, sub, inc.SettledSumAmount, settledSum)
				}
				activeSum, _ := e.Eval(ts, Query{Type: qTyp, SWLINPrefix: prefix, Status: domain.Active, Agg: SumAmount})
				if math.Abs(inc.ActiveSumAmount-activeSum) > 1e-6 {
					t.Fatalf("ts=%g typ=%d sub=%d: active sum inc=%f direct=%f", ts, typ, sub, inc.ActiveSumAmount, activeSum)
				}
				settledDur, _ := e.Eval(ts, Query{Type: qTyp, SWLINPrefix: prefix, Status: domain.SettledStatus, Agg: SumDuration})
				if math.Abs(inc.SettledSumDuration-settledDur) > 1e-6 {
					t.Fatalf("ts=%g typ=%d sub=%d: settled dur inc=%f direct=%f", ts, typ, sub, inc.SettledSumDuration, settledDur)
				}
			}
		}
	}
}

func TestStatStructureValidation(t *testing.T) {
	if _, err := NewStatStructure(nil, nil); err == nil {
		t.Error("nil avail: want error")
	}
	flat := &domain.Avail{ID: 1, PlanStart: 5, PlanEnd: 5}
	if _, err := NewStatStructure(flat, nil); err == nil {
		t.Error("flat plan: want error")
	}
	wrong := fixtureRCCs(t)
	wrong[0].AvailID = 42
	if _, err := NewStatStructure(fixtureAvail(), wrong); err == nil {
		t.Error("foreign rcc: want error")
	}
	bad := fixtureRCCs(t)
	bad[0].Settled = bad[0].Created - 1
	if _, err := NewStatStructure(fixtureAvail(), bad); err == nil {
		t.Error("invalid rcc: want error")
	}
}

func TestAggregateString(t *testing.T) {
	if Count.String() != "COUNT" || AvgAmount.String() != "AVG_SETTLED_AMT" {
		t.Error("aggregate names wrong")
	}
	if Aggregate(99).String() == "" {
		t.Error("out-of-range aggregate should still print")
	}
}
