package statusq

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"domd/internal/domain"
	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/wal"
)

// FailDurableApply is the faultinject site fired between the WAL append
// and the in-memory apply of an ingested RCC — the crash window a
// kill-mid-ingest test targets. A hook that panics here simulates the
// process dying with the record durable but not yet applied; replay at
// the next OpenDurable must surface it.
const FailDurableApply = "statusq.durable.apply"

// walEntry is the WAL record and snapshot element for one ingested RCC.
// The base tables (avails, historical RCCs) are reloaded from their CSVs
// at startup; the WAL persists only the delta ingested at runtime.
type walEntry struct {
	// Key is the idempotency key the record was ingested under ("" when
	// the client supplied none, which disables dedup for that record).
	Key string     `json:"key,omitempty"`
	RCC domain.RCC `json:"rcc"`
}

// walState is the snapshot payload: every applied delta entry, in
// acknowledgment order.
type walState struct {
	Entries []walEntry `json:"entries"`
}

// DefaultDedupCap is the idempotency-key budget applied when
// DurableOptions.DedupCap is zero: roughly 65k keys, a few MiB of
// strings at typical key lengths, per catalog (per shard when sharded).
const DefaultDedupCap = 1 << 16

// durableLog is the durability surface Ingest acknowledges through —
// either a single write-ahead log (*wal.Log) or a quorum-acked replica
// set (*wal.ReplicatedLog). Append-before-ack semantics are identical;
// the replicated form simply requires a quorum of disks instead of one.
type durableLog interface {
	Append(payload []byte) (seq uint64, err error)
	Snapshot(payload []byte) error
	Seq() uint64
	Close() error
}

// replProbe is the read-only replication status surface a replicated
// log exposes (nil on a single-log catalog). Split from durableLog so
// the health plumbing cannot accidentally become a second append path.
type replProbe interface {
	Status() []wal.ReplicaStatus
	Lag() uint64
	QuorumLive() bool
}

// DurableOptions tune a DurableCatalog.
type DurableOptions struct {
	// WAL configures the underlying log, most importantly the fsync
	// policy (wal.SyncAlways for crash-proof acknowledgments).
	WAL wal.Options
	// Replicas is the number of WAL replica directories per catalog
	// (per shard when sharded); values <= 1 mean a single unreplicated
	// log. With N > 1, appends fan out to <dir>/replica-00 ..
	// <dir>/replica-0(N-1) and acknowledge at ReplQuorum.
	Replicas int
	// ReplQuorum is the replica acks required before Ingest
	// acknowledges; 0 means majority.
	ReplQuorum int
	// ReplMaxLag bounds the in-memory catch-up window per replica set;
	// 0 means wal.DefaultReplMaxLag.
	ReplMaxLag int
	// CompactEvery writes a snapshot and truncates the log after this
	// many ingested records since the last snapshot; <= 0 disables
	// auto-compaction (Compact can still be called manually).
	CompactEvery int
	// DedupCap bounds the in-memory idempotency-key index so sustained
	// unique-key traffic is not a slow memory leak. When more than
	// DedupCap keys are live, the oldest snapshot-covered keys are
	// evicted in acknowledgment order. Keys whose records still sit in
	// the un-snapshotted log suffix are never evicted, so exactly-once
	// holds for every key still in the WAL window; an evicted (ancient,
	// already-snapshotted) key retried later is accepted as a fresh
	// record — the documented idempotency window is
	// min(DedupCap acknowledgments, age of the last snapshot).
	// 0 applies DefaultDedupCap; negative disables the bound.
	DedupCap int
}

// dedupCap resolves the configured idempotency-key budget.
func (o DurableOptions) dedupCap() int {
	switch {
	case o.DedupCap < 0:
		return 0 // unbounded
	case o.DedupCap == 0:
		return DefaultDedupCap
	default:
		return o.DedupCap
	}
}

// RestoreInfo reports what OpenDurable reconstructed on top of the base
// tables.
type RestoreInfo struct {
	// Recovery is the raw WAL-level recovery report (snapshot sequence,
	// replayed records, torn-tail cut). Under replication it is the
	// authoritative replica's report.
	Recovery wal.RecoveryInfo
	// Repl reports how a replicated WAL reconciled its replica set on
	// open (nil on a single-log catalog).
	Repl *wal.ReplRecovery
	// Restored counts delta RCCs re-applied from snapshot + log.
	Restored int
	// Duplicates counts replayed entries skipped because their
	// idempotency key had already been applied.
	Duplicates int
	// Skipped counts replayed entries that no longer apply to the base
	// tables (unknown avail after a table edit, failed validation). They
	// are dropped with a count rather than failing startup: refusing to
	// serve the whole fleet over one orphaned record is the worse
	// failure mode.
	Skipped int
}

// DurableCatalog is a Catalog whose ingestion path is write-ahead
// logged: Ingest acknowledges an RCC only after it is on the log (per
// the configured fsync policy), and OpenDurable restores every
// acknowledged RCC from snapshot + log replay after a crash or restart.
// Read and query methods are the embedded Catalog's.
type DurableCatalog struct {
	*Catalog
	log  durableLog
	repl replProbe // non-nil iff the log is replicated
	opts DurableOptions

	// open flips false on Close; Ready gates /readyz on it.
	open atomic.Bool

	mu   sync.Mutex // guards seen, keyq, snapKeys, applied, sinceSnap, and compactErr
	seen map[string]bool
	// keyq holds the live idempotency keys in acknowledgment order; its
	// prefix of snapKeys entries is covered by the last snapshot and
	// therefore evictable once the index exceeds the DedupCap budget.
	// Keys after that prefix belong to the un-snapshotted log suffix
	// and are pinned (see DurableOptions.DedupCap).
	keyq      []string
	snapKeys  int
	applied   []walEntry
	sinceSnap int
	// compactErr is the most recent auto-compaction failure (nil when
	// the last one succeeded). Compaction failures do not fail Ingest —
	// the record is already durable — but operators can surface them.
	compactErr error
}

// OpenDurable builds a catalog over the base tables, then restores the
// ingested delta from the WAL in dir (snapshot first, then log replay),
// creating the log if absent. Replayed duplicates (by idempotency key)
// and entries orphaned by base-table edits are skipped and counted in
// RestoreInfo.
func OpenDurable(dir string, avails []domain.Avail, rccs []domain.RCC, kind index.Kind, opts DurableOptions) (*DurableCatalog, *RestoreInfo, error) {
	cat, err := NewCatalog(avails, rccs, kind)
	if err != nil {
		return nil, nil, err
	}
	if err := checkReplLayout(dir, opts.Replicas); err != nil {
		return nil, nil, err
	}
	var (
		log  durableLog
		repl replProbe
		rec  *wal.Recovered
		rep  *wal.ReplRecovery
	)
	if opts.Replicas > 1 {
		rl, r, rp, rerr := wal.OpenReplicated(wal.ReplicaDirs(dir, opts.Replicas), wal.ReplicatedOptions{
			Quorum: opts.ReplQuorum,
			MaxLag: opts.ReplMaxLag,
			Name:   filepath.Base(dir),
			Log:    opts.WAL,
		})
		if rerr != nil {
			return nil, nil, rerr
		}
		log, repl, rec, rep = rl, rl, r, rp
	} else {
		l, r, oerr := wal.Open(dir, opts.WAL)
		if oerr != nil {
			return nil, nil, oerr
		}
		log, rec = l, r
	}
	d := &DurableCatalog{
		Catalog: cat,
		log:     log,
		repl:    repl,
		opts:    opts,
		seen:    make(map[string]bool),
	}
	info := &RestoreInfo{Recovery: rec.Info, Repl: rep}

	var entries []walEntry
	if rec.Snapshot != nil {
		var st walState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			closeBestEffort(log)
			return nil, nil, fmt.Errorf("statusq: decode WAL snapshot: %w", err)
		}
		entries = st.Entries
	}
	snapCount := len(entries)
	for _, raw := range rec.Entries {
		e, err := decodeWALEntry(raw)
		if err != nil {
			// The CRC already vouched for the bytes, so this is a format
			// mismatch (version skew), not disk damage: refuse to guess.
			closeBestEffort(log)
			return nil, nil, fmt.Errorf("statusq: decode WAL record: %w", err)
		}
		entries = append(entries, e)
	}
	// Replay dedups through the same bounded index live ingestion uses,
	// evicting as it goes. That reproduces the live process's decisions
	// exactly: crash-window duplicate records sit close together on the
	// log and still collapse to one apply, while a re-accepted evicted
	// key (two records with the same key, by construction separated by
	// at least DedupCap unique keys) is correctly applied twice — an
	// acknowledged record never disappears across a restart.
	for i, e := range entries {
		if e.Key != "" && d.seen[e.Key] {
			info.Duplicates++
			mIngestRestored.With("duplicate").Inc()
			continue
		}
		if err := cat.AddRCC(e.RCC); err != nil {
			info.Skipped++
			mIngestRestored.With("orphaned").Inc()
			continue
		}
		if e.Key != "" {
			d.seen[e.Key] = true
			d.keyq = append(d.keyq, e.Key)
			if i < snapCount {
				d.snapKeys++
			}
			d.evictExcess()
		}
		d.applied = append(d.applied, e)
		info.Restored++
		mIngestRestored.With("applied").Inc()
	}
	d.open.Store(true)
	return d, info, nil
}

// evictExcess trims the idempotency-key index down to the configured
// budget, oldest acknowledgment first, never dipping past the
// snapshot-covered prefix (keys still in the un-snapshotted log suffix
// stay dedupable until a compaction folds them into a snapshot).
// Callers hold d.mu (or, in OpenDurable, exclusive ownership).
func (d *DurableCatalog) evictExcess() {
	budget := d.opts.dedupCap()
	if budget <= 0 {
		return
	}
	for len(d.seen) > budget && d.snapKeys > 0 {
		delete(d.seen, d.keyq[0])
		d.keyq = d.keyq[1:]
		d.snapKeys--
		mDedupEvictions.Inc()
	}
	// Reclaim the queue's backing array once eviction has walked far
	// enough into it that more than half the capacity is dead prefix.
	if cap(d.keyq) > 64 && len(d.keyq)*2 < cap(d.keyq) {
		d.keyq = append(make([]string, 0, len(d.keyq)), d.keyq...)
	}
}

// DedupTracked reports the number of idempotency keys currently held in
// the bounded dedup index — the quantity DedupCap caps.
func (d *DurableCatalog) DedupTracked() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}

// closeBestEffort closes a log whose contents we are abandoning anyway.
func closeBestEffort(log durableLog) {
	log.Close() //lint:ignore droppederr best-effort close on an already-failing open path
}

// checkReplLayout refuses to open a WAL directory whose on-disk layout
// disagrees with the requested replica count: a single-log directory
// reopened with -repl would silently abandon wal.log, and a replicated
// directory reopened without -repl would abandon every replica. Changing
// the replica count of a populated root is an operator migration, not a
// flag flip.
func checkReplLayout(dir string, replicas int) error {
	singleLog := fileExists(filepath.Join(dir, "wal.log")) || fileExists(filepath.Join(dir, "snapshot.wal"))
	replicated := fileExists(filepath.Join(dir, "replica-00"))
	if replicas > 1 && singleLog {
		return fmt.Errorf("statusq: WAL dir %s holds an unreplicated log; enabling replication on it would orphan its records (migrate to a fresh root)", dir)
	}
	if replicas <= 1 && replicated {
		return fmt.Errorf("statusq: WAL dir %s holds a replicated log; opening it unreplicated would orphan its replicas (pass the original -repl)", dir)
	}
	return nil
}

// fileExists reports whether path exists (file or directory).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// ErrNotReady is returned by Ready once the durable catalog is closed.
var ErrNotReady = errors.New("statusq: durable catalog is closed")

// Ready reports whether the catalog can acknowledge ingestion: restore
// completed (OpenDurable returned) and the WAL is open. This is the
// /readyz gate, distinct from process liveness.
func (d *DurableCatalog) Ready() error {
	if !d.open.Load() {
		return ErrNotReady
	}
	return nil
}

// LastCompactError returns the most recent auto-compaction failure, or
// nil. A failing compaction leaves serving and durability intact (the
// log just keeps growing), so it is reported out-of-band instead of
// failing Ingest.
func (d *DurableCatalog) LastCompactError() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactErr
}

// Ingest validates, durably logs, and applies one RCC. The contract:
//
//   - A nil error means the record is on the WAL (per the fsync policy)
//     and visible to subsequent Engine/Eval calls — acknowledged.
//   - dup=true means the idempotency key was already applied; the call
//     is a no-op acknowledgment of the earlier ingest.
//   - A non-nil error means the record must NOT be considered ingested;
//     nothing was acknowledged. (A crash between append and apply can
//     still surface the record after restart — WAL replay is
//     at-least-once, which idempotency keys make exactly-once.)
//
// An empty key disables deduplication for this record.
func (d *DurableCatalog) Ingest(key string, r domain.RCC) (dup bool, err error) {
	if err := r.Validate(); err != nil {
		return false, err
	}
	if _, ok := d.Avail(r.AvailID); !ok {
		return false, fmt.Errorf("statusq: rcc %d references %w %d", r.ID, ErrUnknownAvail, r.AvailID)
	}
	if err := d.Ready(); err != nil {
		return false, err
	}
	payload := encodeWALEntry(walEntry{Key: key, RCC: r})

	d.mu.Lock()
	defer d.mu.Unlock()
	if key != "" && d.seen[key] {
		mIngestDuplicates.Inc()
		return true, nil
	}
	if _, err := d.log.Append(payload); err != nil {
		// Not acknowledged: the client must retry (the server maps this
		// to 503). If the OS got the bytes down anyway, replay surfaces
		// the record and the retry's idempotency key dedups it.
		mIngestFailures.Inc()
		return false, err
	}
	// Crash window: durable but not yet applied. A kill here (the armed
	// hook panics) is recovered by replay at the next OpenDurable.
	if err := faultinject.Fire(FailDurableApply); err != nil {
		mIngestFailures.Inc()
		return false, fmt.Errorf("statusq: apply ingested rcc %d: %w", r.ID, err)
	}
	if err := d.Catalog.AddRCC(r); err != nil {
		mIngestFailures.Inc()
		return false, err
	}
	if key != "" {
		d.seen[key] = true
		d.keyq = append(d.keyq, key)
		d.evictExcess()
	}
	d.applied = append(d.applied, walEntry{Key: key, RCC: r})
	d.sinceSnap++
	mIngestAcks.Inc()
	if d.opts.CompactEvery > 0 && d.sinceSnap >= d.opts.CompactEvery {
		// Auto-compaction failure must not fail the already-durable
		// ingest; record it for LastCompactError instead. The applied
		// slice corresponds exactly to the log's sequence here because
		// the ingest lock is held.
		if payload, merr := json.Marshal(walState{Entries: d.applied}); merr != nil {
			d.compactErr = fmt.Errorf("statusq: encode WAL snapshot: %w", merr)
		} else if serr := d.log.Snapshot(payload); serr != nil {
			d.compactErr = serr
		} else {
			d.compactErr = nil
			d.sinceSnap = 0
			// Every live key is now snapshot-covered, which unpins the
			// whole queue for capacity eviction.
			d.snapKeys = len(d.keyq)
			d.evictExcess()
		}
	}
	return false, nil
}

// Compact writes a snapshot of the ingested delta and truncates the
// log — bounding replay time after long uptimes. Safe to call at any
// time; concurrent Ingests serialize around it.
func (d *DurableCatalog) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	payload, err := json.Marshal(walState{Entries: d.applied})
	if err != nil {
		return fmt.Errorf("statusq: encode WAL snapshot: %w", err)
	}
	if err := d.log.Snapshot(payload); err != nil {
		return err
	}
	d.sinceSnap = 0
	d.snapKeys = len(d.keyq)
	d.evictExcess()
	return nil
}

// AddRCC shadows the embedded Catalog's mutation path: on a durable
// catalog every write must go through Ingest, or it would vanish on
// restart. It always fails.
func (d *DurableCatalog) AddRCC(r domain.RCC) error {
	return fmt.Errorf("statusq: direct AddRCC on a durable catalog (rcc %d); use Ingest", r.ID)
}

// IngestedCount reports how many delta RCCs are applied (restored +
// ingested this run) — an observability hook for tests and /readyz
// payloads.
func (d *DurableCatalog) IngestedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.applied)
}

// Close flushes and closes the WAL; subsequent Ingests fail and Ready
// reports not-ready. Queries keep working from memory.
func (d *DurableCatalog) Close() error {
	if !d.open.CompareAndSwap(true, false) {
		return nil
	}
	return d.log.Close()
}

// ReplHealth summarizes a replicated catalog's replica set.
type ReplHealth struct {
	// Replicas is the configured replica count.
	Replicas int
	// Live, Lagging, and Failed count replicas in each state.
	Live    int
	Lagging int
	Failed  int
	// Lag is the records the most-behind non-failed replica is missing.
	Lag uint64
	// QuorumOK reports whether enough replicas are live to acknowledge
	// an append right now.
	QuorumOK bool
}

// ReplHealth reports the replica set's state; ok is false on an
// unreplicated catalog.
func (d *DurableCatalog) ReplHealth() (h ReplHealth, ok bool) {
	if d.repl == nil {
		return ReplHealth{}, false
	}
	for _, st := range d.repl.Status() {
		h.Replicas++
		switch st.State {
		case wal.ReplLive:
			h.Live++
		case wal.ReplLagging:
			h.Lagging++
		default:
			h.Failed++
		}
	}
	h.Lag = d.repl.Lag()
	h.QuorumOK = d.repl.QuorumLive()
	return h, true
}
