package statusq

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/wal"
)

// The delta differential suite proves the tentpole claim of the
// incremental ingest path: an engine (or sweep structure) maintained by
// ApplyRCC across a randomized ingest stream is bitwise-identical, under
// every query, to one rebuilt from scratch over the same history — after
// every prefix of the stream, and across a WAL-replay restore.

// randRCC draws a random RCC for avail a. Creation dates are drawn
// uniformly, so the stream arrives out of creation order — the regime the
// engine-level delta path must still handle exactly.
func randRCC(rng *rand.Rand, a *domain.Avail, id int) domain.RCC {
	span := int(a.PlannedDuration()) * 2
	created := a.ActStart + domain.Day(rng.Intn(span))
	return domain.RCC{
		ID:      id,
		AvailID: a.ID,
		Type:    domain.RCCType(rng.Intn(domain.NumRCCTypes)),
		SWLIN:   rng.Intn(100_000_000),
		Created: created,
		Settled: created + domain.Day(rng.Intn(120)),
		Amount:  math.Trunc(rng.Float64()*1e6) / 100,
	}
}

// randQuery draws one Status Query covering the filter × status × aggregate
// space.
func randQuery(rng *rand.Rand) Query {
	q := Query{
		Status: domain.RCCStatus(rng.Intn(domain.NumRCCStatuses)),
		Agg:    Aggregate(rng.Intn(NumAggregates)),
	}
	switch rng.Intn(3) {
	case 1:
		typ := domain.RCCType(rng.Intn(domain.NumRCCTypes))
		q.Type = &typ
	case 2:
		q.SWLINPrefix = []int{rng.Intn(10)}
	}
	return q
}

// diffEngines asserts that two engines answer a randomized query battery
// bitwise-identically.
func diffEngines(t *testing.T, rng *rand.Rand, inc, scratch *Engine, tag string) {
	t.Helper()
	if inc.NumRCCs() != scratch.NumRCCs() {
		t.Fatalf("%s: NumRCCs %d != %d", tag, inc.NumRCCs(), scratch.NumRCCs())
	}
	for i := 0; i < 4; i++ {
		ts := rng.Float64() * 120
		q := randQuery(rng)
		got, err := inc.Eval(ts, q)
		if err != nil {
			t.Fatalf("%s: incremental Eval: %v", tag, err)
		}
		want, err := scratch.Eval(ts, q)
		if err != nil {
			t.Fatalf("%s: scratch Eval: %v", tag, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: Eval(ts=%g, q=%+v) = %v (incremental) != %v (scratch)", tag, ts, q, got, want)
		}
	}
}

// TestDeltaEngineDifferential streams 1000 randomized ingests into one
// engine via ApplyRCC and, after every prefix, checks it against a
// from-scratch NewEngine over the same extended history — for each time
// index design the catalog can be configured with.
func TestDeltaEngineDifferential(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 120
	}
	for _, kind := range []index.Kind{index.KindNaive, index.KindAVL, index.KindSorted} {
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			a := &domain.Avail{
				ID: 1, ShipID: 1, Status: domain.StatusOngoing,
				PlanStart: 0, PlanEnd: 300, ActStart: 0,
			}
			base := make([]domain.RCC, 0, 40)
			for i := 0; i < 40; i++ {
				base = append(base, randRCC(rng, a, i))
			}
			inc, err := NewEngine(a, base, kind)
			if err != nil {
				t.Fatal(err)
			}
			history := append([]domain.RCC(nil), base...)
			for i := 0; i < n; i++ {
				r := randRCC(rng, a, 10_000+i)
				if err := inc.ApplyRCC(r); err != nil {
					t.Fatalf("ApplyRCC #%d: %v", i, err)
				}
				history = append(history, r)
				scratch, err := NewEngine(a, history, kind)
				if err != nil {
					t.Fatal(err)
				}
				diffEngines(t, rng, inc, scratch, fmt.Sprintf("prefix %d", i+1))
			}
		})
	}
}

// TestDeltaCatalogWALReplayDifferential is the serving-tier half of the
// differential: a DurableCatalog ingests a randomized 1000-RCC stream into
// a warm engine (so every ingest takes the O(delta) path), the engine is
// checked against a from-scratch build after every prefix, and after a
// close/reopen the WAL-replayed catalog must agree with both.
func TestDeltaCatalogWALReplayDifferential(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	rng := rand.New(rand.NewSource(71))
	ds, err := navsim.Generate(navsim.Config{NumClosed: 8, NumOngoing: 2, MeanRCCsPerAvail: 25, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dc, _, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	var avail *domain.Avail
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			avail = &ds.Avails[i]
			break
		}
	}
	id := avail.ID
	history := append([]domain.RCC(nil), ds.RCCsByAvail()[id]...)

	// Warm the engine so the stream hits the delta path, not rebuilds.
	warm, err := dc.Catalog.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	buildsBefore := dc.Catalog.EngineBuilds()

	for i := 0; i < n; i++ {
		r := randRCC(rng, avail, 20_000+i)
		if dup, err := dc.Ingest(fmt.Sprintf("key-%d", i), r); err != nil || dup {
			t.Fatalf("ingest #%d: dup=%v err=%v", i, dup, err)
		}
		history = append(history, r)
		eng, asOf, stale, err := dc.Catalog.EngineAsOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if stale || asOf != int64(len(history)) {
			t.Fatalf("ingest #%d: stale=%v asOf=%d, want fresh asOf=%d", i, stale, asOf, len(history))
		}
		if eng != warm {
			t.Fatalf("ingest #%d: engine was rebuilt, want in-place delta apply", i)
		}
		scratch, err := NewEngine(avail, history, index.KindAVL)
		if err != nil {
			t.Fatal(err)
		}
		diffEngines(t, rng, eng, scratch, fmt.Sprintf("prefix %d", i+1))
	}
	if got := dc.Catalog.DeltaApplies(); got != int64(n) {
		t.Errorf("DeltaApplies = %d, want %d (every ingest on the warm engine)", got, n)
	}
	if got := dc.Catalog.EngineBuilds(); got != buildsBefore {
		t.Errorf("EngineBuilds = %d, want %d (no rebuild during the stream)", got, buildsBefore)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the WAL replay restores every acked ingest; the rebuilt
	// engine must agree bitwise with a from-scratch engine over the full
	// history (and therefore with the delta-applied engine checked above).
	dc2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer dc2.Close()
	if info.Restored != n {
		t.Fatalf("replay restored %d RCCs, want %d", info.Restored, n)
	}
	restored, err := dc2.Catalog.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := NewEngine(avail, history, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	diffEngines(t, rng, restored, scratch, "post-replay")
	diffEngines(t, rng, warm, scratch, "pre-close delta engine vs post-replay history")
}

// TestDeltaSweepDifferential checks CellSweep.ApplyRCC: after advancing a
// sweep to a random position and folding a new RCC in, the grid state must
// equal (bitwise, via struct equality on the float fields) a fresh sweep
// over the extended set advanced to the same position — and stay equal
// after both advance further.
func TestDeltaSweepDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := &domain.Avail{ID: 5, ShipID: 1, Status: domain.StatusOngoing, PlanStart: 0, PlanEnd: 200, ActStart: 0}
	applied, rejected := 0, 0
	for trial := 0; trial < 300; trial++ {
		base := make([]domain.RCC, 0, 30)
		for i := 0; i < rng.Intn(30); i++ {
			base = append(base, randRCC(rng, a, trial*1000+i))
		}
		inc, err := NewCellSweep(a, base)
		if err != nil {
			t.Fatal(err)
		}
		ts1 := rng.Float64() * 100
		if err := inc.AdvanceTo(ts1); err != nil {
			t.Fatal(err)
		}
		before := *inc.Grids()
		r := randRCC(rng, a, trial*1000+999)
		if err := inc.ApplyRCC(r); err != nil {
			if !errors.Is(err, ErrCannotApply) {
				t.Fatalf("trial %d: ApplyRCC: %v", trial, err)
			}
			if *inc.Grids() != before {
				t.Fatalf("trial %d: rejected ApplyRCC mutated the grids", trial)
			}
			rejected++
			continue
		}
		applied++
		fresh, err := NewCellSweep(a, append(append([]domain.RCC(nil), base...), r))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.AdvanceTo(ts1); err != nil {
			t.Fatal(err)
		}
		if *inc.Grids() != *fresh.Grids() {
			t.Fatalf("trial %d: grids diverge after ApplyRCC at ts=%g", trial, ts1)
		}
		ts2 := ts1 + rng.Float64()*(120-ts1)
		if err := inc.AdvanceTo(ts2); err != nil {
			t.Fatal(err)
		}
		if err := fresh.AdvanceTo(ts2); err != nil {
			t.Fatal(err)
		}
		if *inc.Grids() != *fresh.Grids() {
			t.Fatalf("trial %d: grids diverge after advancing to ts=%g", trial, ts2)
		}
	}
	if applied == 0 || rejected == 0 {
		t.Fatalf("trial mix did not cover both outcomes: applied=%d rejected=%d", applied, rejected)
	}
}

// TestDeltaStatStructureDifferential is the same differential for the
// additive §4.3 StatStructure.
func TestDeltaStatStructureDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := &domain.Avail{ID: 6, ShipID: 1, Status: domain.StatusOngoing, PlanStart: 0, PlanEnd: 200, ActStart: 0}
	diff := func(t *testing.T, trial int, inc, fresh *StatStructure) {
		t.Helper()
		for typ := 0; typ < domain.NumRCCTypes; typ++ {
			for sub := 0; sub < NumSubsystems; sub++ {
				k := GroupKey{Type: domain.RCCType(typ), Subsystem: sub}
				if inc.Group(k) != fresh.Group(k) {
					t.Fatalf("trial %d: group %+v diverges: %+v != %+v", trial, k, inc.Group(k), fresh.Group(k))
				}
			}
		}
		if inc.Totals(nil, nil) != fresh.Totals(nil, nil) {
			t.Fatalf("trial %d: totals diverge", trial)
		}
	}
	applied := 0
	for trial := 0; trial < 300; trial++ {
		base := make([]domain.RCC, 0, 30)
		for i := 0; i < rng.Intn(30); i++ {
			base = append(base, randRCC(rng, a, trial*1000+i))
		}
		inc, err := NewStatStructure(a, base)
		if err != nil {
			t.Fatal(err)
		}
		ts1 := rng.Float64() * 100
		if err := inc.AdvanceTo(ts1); err != nil {
			t.Fatal(err)
		}
		r := randRCC(rng, a, trial*1000+999)
		if err := inc.ApplyRCC(r); err != nil {
			if !errors.Is(err, ErrCannotApply) {
				t.Fatalf("trial %d: ApplyRCC: %v", trial, err)
			}
			continue
		}
		applied++
		fresh, err := NewStatStructure(a, append(append([]domain.RCC(nil), base...), r))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.AdvanceTo(ts1); err != nil {
			t.Fatal(err)
		}
		diff(t, trial, inc, fresh)
		ts2 := ts1 + rng.Float64()*(120-ts1)
		if err := inc.AdvanceTo(ts2); err != nil {
			t.Fatal(err)
		}
		if err := fresh.AdvanceTo(ts2); err != nil {
			t.Fatal(err)
		}
		diff(t, trial, inc, fresh)
	}
	if applied == 0 {
		t.Fatal("no trial exercised a successful ApplyRCC")
	}
}

// TestDeltaSweepCannotApply pins the designed fallback trigger: an RCC
// whose creation (or settlement) date precedes events the sweep already
// folded is rejected with ErrCannotApply, leaving the sweep fully usable.
func TestDeltaSweepCannotApply(t *testing.T) {
	a := &domain.Avail{ID: 7, ShipID: 1, Status: domain.StatusOngoing, PlanStart: 0, PlanEnd: 100, ActStart: 0}
	base := []domain.RCC{
		{ID: 1, AvailID: 7, Type: domain.Growth, SWLIN: 43411001, Created: 10, Settled: 90, Amount: 1},
		{ID: 2, AvailID: 7, Type: domain.Growth, SWLIN: 43411002, Created: 20, Settled: 95, Amount: 2},
	}
	s, err := NewCellSweep(a, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(30); err != nil { // both creations applied
		t.Fatal(err)
	}
	// Created=15 is inside the swept region but before the last applied
	// creation (day 20): folding it now would break the canonical order.
	outOfOrder := domain.RCC{ID: 3, AvailID: 7, Type: domain.NewGrowth, SWLIN: 43411003, Created: 15, Settled: 80, Amount: 3}
	if err := s.ApplyRCC(outOfOrder); !errors.Is(err, ErrCannotApply) {
		t.Fatalf("out-of-order ApplyRCC = %v, want ErrCannotApply", err)
	}
	if s.NumRCCs() != 2 {
		t.Fatalf("rejected apply changed NumRCCs to %d", s.NumRCCs())
	}
	// In-order (or future-dated) RCCs still apply, and the sweep advances.
	ok := domain.RCC{ID: 4, AvailID: 7, Type: domain.NewGrowth, SWLIN: 43411004, Created: 25, Settled: 80, Amount: 4}
	if err := s.ApplyRCC(ok); err != nil {
		t.Fatalf("in-order ApplyRCC: %v", err)
	}
	if err := s.AdvanceTo(90); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCellSweep(a, append(append([]domain.RCC(nil), base...), ok))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AdvanceTo(90); err != nil {
		t.Fatal(err)
	}
	if *s.Grids() != *fresh.Grids() {
		t.Fatal("sweep state diverges from scratch after rejected + accepted applies")
	}
}
