package statusq

import (
	"fmt"
	"math"
	"sort"

	"domd/internal/domain"
)

// CellSweep extends the StatStructure event sweep of §4.3 to the full
// seven-statistic CellStats lattice the feature transformation 𝒯 consumes:
// it maintains a dense GridSet (one CellGrid per status class, with ALL
// margins) while moving forward over the avail's creation and settlement
// events.
//
// Complexity of one AdvanceTo step from t*_j to t*_{j+1} (see the package
// comment in statusq.go for the full argument):
//
//   - Created and Settled classes are append-only under a forward sweep, so
//     all seven sufficient statistics — including min/max, which are
//     monotone under insert-only growth — update in O(e_j) where e_j is the
//     number of creation/settlement events inside the (t*_j, t*_{j+1}]
//     window. Amortized over the whole grid this is O(n) total, not
//     O(n · K).
//   - The Active class is non-monotone (settlements remove members), so its
//     min/max cannot be maintained incrementally. The sweep keeps the live
//     active set in an intrusive linked list ordered by (created, position)
//     and rebuilds the Active cells from it in O(a_j), where a_j is the
//     number of RCCs open at t*_{j+1} — bounded by the peak concurrent RCC
//     count, which is far below n on real workloads. Rebuilding all seven
//     statistics (rather than only min/max) from the list costs the same
//     O(a_j) and keeps every cell a pure fold over an ordered observation
//     sequence, which is what makes the sweep bitwise-reproducible against
//     the scratch path Engine.CellGridsAt.
//   - Margin finalization is O(1): the grid has a fixed 4 × 11 shape.
//
// The structure only moves forward; Reset rewinds to t* = -inf. A CellSweep
// is not safe for concurrent use — the parallel tensor build gives each
// worker its own.
type CellSweep struct {
	avail *domain.Avail
	rccs  []domain.RCC
	// creations/settlements are positions into rccs sorted by the
	// respective (date, position) key — the canonical event order.
	creations   []int
	settlements []int
	ci, si      int
	// pos is the sweep position in physical days; events with date <= pos
	// have been applied (matching domain.RCC.StatusAt semantics).
	pos int64

	// Intrusive doubly-linked list over the live active set, threaded
	// through next/prev by RCC position and ordered by (created, position):
	// creations append at the tail (events arrive in that order),
	// settlements unlink in O(1). Index len(rccs) is the sentinel.
	next, prev []int32

	grids GridSet
}

// NewCellSweep prepares the full-statistics event sweep for one avail.
func NewCellSweep(a *domain.Avail, rccs []domain.RCC) (*CellSweep, error) {
	if a == nil {
		return nil, fmt.Errorf("statusq: nil avail")
	}
	if a.PlannedDuration() <= 0 {
		return nil, fmt.Errorf("statusq: avail %d has non-positive planned duration", a.ID)
	}
	s := &CellSweep{
		avail:       a,
		rccs:        rccs,
		creations:   make([]int, len(rccs)),
		settlements: make([]int, len(rccs)),
		next:        make([]int32, len(rccs)+1),
		prev:        make([]int32, len(rccs)+1),
	}
	for pos := range rccs {
		if rccs[pos].AvailID != a.ID {
			return nil, fmt.Errorf("statusq: rcc %d belongs to avail %d, sweep is for %d",
				rccs[pos].ID, rccs[pos].AvailID, a.ID)
		}
		if err := rccs[pos].Validate(); err != nil {
			return nil, err
		}
		s.creations[pos] = pos
		s.settlements[pos] = pos
	}
	sort.Slice(s.creations, func(i, j int) bool {
		a, b := s.creations[i], s.creations[j]
		if rccs[a].Created != rccs[b].Created {
			return rccs[a].Created < rccs[b].Created
		}
		return a < b
	})
	sort.Slice(s.settlements, func(i, j int) bool {
		a, b := s.settlements[i], s.settlements[j]
		if rccs[a].Settled != rccs[b].Settled {
			return rccs[a].Settled < rccs[b].Settled
		}
		return a < b
	})
	s.Reset()
	return s, nil
}

// Avail returns the sweep's avail.
func (s *CellSweep) Avail() *domain.Avail { return s.avail }

// NumRCCs reports the swept RCC count.
func (s *CellSweep) NumRCCs() int { return len(s.rccs) }

// Reset rewinds the sweep to before all events. No allocation: the
// preallocated state is reused, so a sweep can revisit the grid many times
// (benchmarks, repeated tensor builds).
func (s *CellSweep) Reset() {
	s.ci, s.si = 0, 0
	s.pos = math.MinInt64
	sentinel := int32(len(s.rccs))
	s.next[sentinel] = sentinel
	s.prev[sentinel] = sentinel
	s.grids.Reset()
}

// link appends position p at the tail of the active list.
func (s *CellSweep) link(p int) {
	sentinel := int32(len(s.rccs))
	tail := s.prev[sentinel]
	s.next[tail] = int32(p)
	s.prev[p] = tail
	s.next[p] = sentinel
	s.prev[sentinel] = int32(p)
}

// unlink removes position p from the active list.
func (s *CellSweep) unlink(p int) {
	s.next[s.prev[p]] = s.next[p]
	s.prev[s.next[p]] = s.prev[p]
}

// AdvanceTo moves the sweep to logical time ts (percent of planned
// duration) and refreshes the grids. Only the creation/settlement events
// inside the new window are applied to the append-only classes; the Active
// class is rebuilt from the live list. Moving backwards is an error —
// callers wanting a rewind must Reset first.
func (s *CellSweep) AdvanceTo(ts float64) error {
	day := int64(s.avail.PhysicalTime(ts))
	if day < s.pos {
		return fmt.Errorf("statusq: cannot sweep backwards from %d to %d", s.pos, day)
	}
	createdGrid := s.grids.Grid(domain.Created)
	settledGrid := s.grids.Grid(domain.SettledStatus)
	// Creations with Created <= day: the RCC enters Created and the live
	// active list.
	for s.ci < len(s.creations) {
		p := s.creations[s.ci]
		r := &s.rccs[p]
		if int64(r.Created) > day {
			break
		}
		cellOf(createdGrid, r).add(r.Amount, float64(r.Duration()))
		s.link(p)
		s.ci++
	}
	// Settlements with Settled <= day: active -> settled. Created <= Settled
	// is validated at construction, so every RCC settling here is already
	// linked above.
	for s.si < len(s.settlements) {
		p := s.settlements[s.si]
		r := &s.rccs[p]
		if int64(r.Settled) > day {
			break
		}
		cellOf(settledGrid, r).add(r.Amount, float64(r.Duration()))
		s.unlink(p)
		s.si++
	}
	createdGrid.finalizeMargins()
	settledGrid.finalizeMargins()
	// Rebuild the non-monotone Active class from the live list, which walks
	// in (created, position) order — the same order the scratch path sorts
	// into, so the fold is bitwise-identical.
	activeGrid := s.grids.Grid(domain.Active)
	activeGrid.clearConcrete()
	sentinel := int32(len(s.rccs))
	for p := s.next[sentinel]; p != sentinel; p = s.next[p] {
		r := &s.rccs[p]
		cellOf(activeGrid, r).add(r.Amount, float64(r.Duration()))
	}
	activeGrid.finalizeMargins()
	s.pos = day
	return nil
}

// insertEventSorted inserts position p into the (date, position)-sorted
// event order at its upper bound by date. p is always the largest position,
// so the upper bound by date alone is the correct (date, position) slot.
func insertEventSorted(events []int, p int, date func(pos int) int64, d int64) []int {
	k := sort.Search(len(events), func(i int) bool { return date(events[i]) > d })
	events = append(events, 0)
	copy(events[k+1:], events[k:])
	events[k] = p
	return events
}

// ApplyRCC folds one freshly ingested RCC into the sweep state in O(delta)
// without rewinding: the new events are spliced into the sorted event
// orders, and any event already inside the swept region is folded exactly
// where a from-scratch sweep advanced to the same position would fold it —
// last, since the new RCC takes the largest position. If that fold order
// cannot be preserved (the new RCC's creation or settlement predates events
// the sweep already applied), ApplyRCC returns ErrCannotApply and leaves
// the sweep unchanged; the caller must rebuild.
func (s *CellSweep) ApplyRCC(r domain.RCC) error {
	if r.AvailID != s.avail.ID {
		return fmt.Errorf("statusq: rcc %d belongs to avail %d, sweep is for %d", r.ID, r.AvailID, s.avail.ID)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	applyCreate := int64(r.Created) <= s.pos
	applySettle := int64(r.Settled) <= s.pos
	if applyCreate && s.ci > 0 && r.Created < s.rccs[s.creations[s.ci-1]].Created {
		return ErrCannotApply
	}
	if applySettle && s.si > 0 && r.Settled < s.rccs[s.settlements[s.si-1]].Settled {
		return ErrCannotApply
	}
	p := len(s.rccs)

	// Relocate the sentinel from index p to p+1: the live list's links are
	// preserved, and slot p becomes the new RCC's slot.
	s.next = append(s.next, 0)
	s.prev = append(s.prev, 0)
	oldS, newS := int32(p), int32(p+1)
	if s.next[oldS] == oldS {
		s.next[newS], s.prev[newS] = newS, newS
	} else {
		s.next[newS], s.prev[newS] = s.next[oldS], s.prev[oldS]
		s.prev[s.next[newS]] = newS
		s.next[s.prev[newS]] = newS
	}

	s.rccs = append(s.rccs, r)
	created := func(pos int) int64 { return int64(s.rccs[pos].Created) }
	settled := func(pos int) int64 { return int64(s.rccs[pos].Settled) }
	s.creations = insertEventSorted(s.creations, p, created, int64(r.Created))
	s.settlements = insertEventSorted(s.settlements, p, settled, int64(r.Settled))

	if applyCreate {
		g := s.grids.Grid(domain.Created)
		cellOf(g, &r).add(r.Amount, float64(r.Duration()))
		g.finalizeMargins()
		s.ci++
	}
	if applySettle {
		g := s.grids.Grid(domain.SettledStatus)
		cellOf(g, &r).add(r.Amount, float64(r.Duration()))
		g.finalizeMargins()
		s.si++
	}
	// Active membership changes only when the RCC is created but not yet
	// settled inside the swept region; the non-monotone Active class is then
	// rebuilt from the live list, as AdvanceTo does.
	if applyCreate && !applySettle {
		s.link(p)
		activeGrid := s.grids.Grid(domain.Active)
		activeGrid.clearConcrete()
		for q := s.next[newS]; q != newS; q = s.next[q] {
			rr := &s.rccs[q]
			cellOf(activeGrid, rr).add(rr.Amount, float64(rr.Duration()))
		}
		activeGrid.finalizeMargins()
	}
	return nil
}

// Grids exposes the current grid state (valid until the next AdvanceTo or
// Reset; do not mutate).
func (s *CellSweep) Grids() *GridSet { return &s.grids }

// CreatedCount is |Created(t*)| at the current sweep position.
func (s *CellSweep) CreatedCount() int { return s.grids.CreatedCount() }
