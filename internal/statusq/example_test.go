package statusq_test

import (
	"fmt"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/statusq"
)

// A Status Query (paper Fig. 3): at 30% of planned duration, how many
// Growth RCCs are active, and what do the settled ones total in dollars?
func ExampleEngine_Eval() {
	avail := &domain.Avail{
		ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 120,
	}
	rccs := []domain.RCC{
		{ID: 1, AvailID: 1, Type: domain.Growth, SWLIN: 43411001, Created: 10, Settled: 50, Amount: 8000},
		{ID: 2, AvailID: 1, Type: domain.Growth, SWLIN: 43422001, Created: 20, Settled: 90, Amount: 34520},
		{ID: 3, AvailID: 1, Type: domain.NewWork, SWLIN: 91190001, Created: 5, Settled: 25, Amount: 56724},
	}
	eng, err := statusq.NewEngine(avail, rccs, index.KindAVL)
	if err != nil {
		panic(err)
	}
	g := domain.Growth
	activeGrowth, err := eng.Eval(30, statusq.Query{
		Type: &g, Status: domain.Active, Agg: statusq.Count,
	})
	if err != nil {
		panic(err)
	}
	settledDollars, err := eng.Eval(30, statusq.Query{
		Status: domain.SettledStatus, Agg: statusq.SumAmount,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("active growth RCCs: %.0f, settled dollars: %.0f\n", activeGrowth, settledDollars)
	// Output: active growth RCCs: 2, settled dollars: 56724
}

// Incremental computation (paper §4.3): advance the sweep instead of
// re-querying from scratch.
func ExampleStatStructure() {
	avail := &domain.Avail{
		ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 120,
	}
	rccs := []domain.RCC{
		{ID: 1, AvailID: 1, Type: domain.Growth, SWLIN: 43411001, Created: 10, Settled: 50, Amount: 8000},
		{ID: 2, AvailID: 1, Type: domain.NewWork, SWLIN: 91190001, Created: 5, Settled: 25, Amount: 56724},
	}
	ss, err := statusq.NewStatStructure(avail, rccs)
	if err != nil {
		panic(err)
	}
	for _, ts := range []float64{10, 30, 60} {
		if err := ss.AdvanceTo(ts); err != nil {
			panic(err)
		}
		all := ss.Totals(nil, nil)
		fmt.Printf("t*=%2.0f%%: active %d settled %d\n", ts, all.ActiveCount, all.SettledCount)
	}
	// Output:
	// t*=10%: active 2 settled 0
	// t*=30%: active 1 settled 1
	// t*=60%: active 0 settled 2
}
