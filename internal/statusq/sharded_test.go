package statusq

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/navsim"
)

// shardedFixture opens a ShardedCatalog over the navsim fleet in root.
func shardedFixture(t *testing.T, root string, shards int, opts DurableOptions) (*ShardedCatalog, *ShardedRestoreInfo, *navsim.Dataset) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 15, NumOngoing: 5, MeanRCCsPerAvail: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sc, info, err := OpenSharded(root, shards, ds.Avails, ds.RCCs, index.KindAVL, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sc, info, ds
}

// TestShardedRoutingStable pins the consistent-hash contract: the
// id→shard mapping is a pure function of the shard count, identical
// across ring instances (and therefore across restarts), and spreads a
// fleet-sized id space over every shard.
func TestShardedRoutingStable(t *testing.T) {
	a := newShardRing(4, ringReplicas)
	b := newShardRing(4, ringReplicas)
	owned := make(map[int]int)
	for id := 0; id < 2000; id++ {
		sa, sb := a.shardOf(id), b.shardOf(id)
		if sa != sb {
			t.Fatalf("id %d routed to shard %d then %d", id, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("id %d routed to out-of-range shard %d", id, sa)
		}
		owned[sa]++
	}
	for s := 0; s < 4; s++ {
		if owned[s] == 0 {
			t.Fatalf("shard %d owns no ids out of 2000: ring is unbalanced", s)
		}
	}
}

// TestShardedTopologyPinned proves a WAL root cannot be silently
// re-sharded: records were routed to per-shard directories under one
// layout, so reopening with a different -shards must refuse.
func TestShardedTopologyPinned(t *testing.T) {
	root := t.TempDir()
	sc, _, ds := shardedFixture(t, root, 4, DurableOptions{})
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenSharded(root, 3, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err == nil {
		t.Fatal("reopening a 4-shard root with 3 shards succeeded; want refusal")
	}
	if !strings.Contains(err.Error(), "re-sharding") {
		t.Fatalf("topology mismatch error %q does not name re-sharding", err)
	}
	// Same shard count reattaches fine.
	sc2, _, err := OpenSharded(root, 4, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMergedIDs pins the cross-shard fleet surface: AvailIDs and
// OngoingIDs are the exact union of the shards' sets, ascending — the
// deterministic ordering /fleet renders in.
func TestShardedMergedIDs(t *testing.T) {
	sc, info, ds := shardedFixture(t, t.TempDir(), 4, DurableOptions{})
	defer sc.Close()

	single, err := NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		got, want []int
	}{
		{"AvailIDs", sc.AvailIDs(), single.AvailIDs()},
		{"OngoingIDs", sc.OngoingIDs(), single.OngoingIDs()},
	} {
		if !sort.IntsAreSorted(tc.got) {
			t.Fatalf("%s not ascending: %v", tc.name, tc.got)
		}
		if len(tc.got) != len(tc.want) {
			t.Fatalf("%s: got %d ids, want %d", tc.name, len(tc.got), len(tc.want))
		}
		for i := range tc.got {
			if tc.got[i] != tc.want[i] {
				t.Fatalf("%s[%d] = %d, want %d", tc.name, i, tc.got[i], tc.want[i])
			}
		}
	}
	// Per-shard ownership covers the whole fleet exactly once.
	totalOwned := 0
	for _, sh := range info.Shards {
		totalOwned += sh.Avails
	}
	if totalOwned != len(ds.Avails) {
		t.Fatalf("shards own %d avails, fleet has %d", totalOwned, len(ds.Avails))
	}
}

// TestDurableShardedRestoreEquivalence is the sharded restart gate:
// ingests spread over every shard survive a full close/reopen with
// bitwise-identical Eval answers and per-shard restore accounting.
func TestDurableShardedRestoreEquivalence(t *testing.T) {
	root := t.TempDir()
	sc, _, ds := shardedFixture(t, root, 4, DurableOptions{})
	ids := sc.AvailIDs()
	const n = 24
	for i := 0; i < n; i++ {
		r := deltaRCC(t, sc.shards[sc.ShardOf(ids[i%len(ids)])].Catalog, ids[i%len(ids)], i)
		if dup, err := sc.Ingest(fmt.Sprintf("k%d", i), r); err != nil || dup {
			t.Fatalf("ingest %d: dup=%v err=%v", i, dup, err)
		}
	}
	if got := sc.IngestedCount(); got != n {
		t.Fatalf("IngestedCount = %d, want %d", got, n)
	}
	want := evalFingerprint(t, sc)
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	sc2, info, err := OpenSharded(root, 4, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if tot := info.Totals(); tot.Restored != n {
		t.Fatalf("restored %d records across shards, want %d", tot.Restored, n)
	}
	perShard := 0
	for _, sh := range info.Shards {
		perShard += sh.Info.Restored
	}
	if perShard != n {
		t.Fatalf("per-shard restore counts sum to %d, want %d", perShard, n)
	}
	if got := evalFingerprint(t, sc2); !sameFingerprint(got, want) {
		t.Fatal("restored sharded catalog answers differ from pre-restart answers")
	}
}

// TestDeltaShardedEquivalence is the sharded differential gate: a
// stream ingested through the 4-shard router (delta-applied per shard)
// answers bitwise-identically to a single in-memory catalog fed the
// same stream directly.
func TestDeltaShardedEquivalence(t *testing.T) {
	sc, _, ds := shardedFixture(t, t.TempDir(), 4, DurableOptions{})
	defer sc.Close()
	single, err := NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every engine so the sharded side exercises the O(delta) fold
	// rather than first-touch rebuilds.
	evalFingerprint(t, sc)
	ids := sc.AvailIDs()
	for i := 0; i < 40; i++ {
		id := ids[i%len(ids)]
		r := deltaRCC(t, single, id, i)
		if dup, err := sc.Ingest(fmt.Sprintf("dk%d", i), r); err != nil || dup {
			t.Fatalf("sharded ingest %d: dup=%v err=%v", i, dup, err)
		}
		if err := single.AddRCC(r); err != nil {
			t.Fatalf("single AddRCC %d: %v", i, err)
		}
	}
	if sc.DeltaApplies() == 0 {
		t.Fatal("sharded stream never took the delta-apply path")
	}
	got, want := evalFingerprint(t, sc), evalFingerprint(t, single)
	if !sameFingerprint(got, want) {
		t.Fatal("sharded delta-applied answers differ from single-catalog answers")
	}
}

// TestShardedIngestSemantics pins the routed ingest contract: unknown
// avails are refused with the sentinel, retries of the same key on the
// same avail dedup (they always route to the same shard), and keys are
// scoped per shard — the documented sharded semantics.
func TestShardedIngestSemantics(t *testing.T) {
	sc, _, _ := shardedFixture(t, t.TempDir(), 4, DurableOptions{})
	defer sc.Close()
	ids := sc.AvailIDs()
	id := ids[0]
	r := deltaRCC(t, sc.shards[sc.ShardOf(id)].Catalog, id, 1)

	if _, err := sc.Ingest("", domain.RCC{ID: 1, AvailID: 999_999, Type: domain.Growth, SWLIN: 43411001, Created: 1, Settled: 2, Amount: 1}); !errors.Is(err, ErrUnknownAvail) {
		t.Fatalf("unknown-avail ingest error = %v, want ErrUnknownAvail", err)
	}
	if dup, err := sc.Ingest("same-key", r); err != nil || dup {
		t.Fatalf("first ingest: dup=%v err=%v", dup, err)
	}
	if dup, err := sc.Ingest("same-key", r); err != nil || !dup {
		t.Fatalf("retry on same shard: dup=%v err=%v, want dup=true", dup, err)
	}
	// A different avail on a different shard does not see the key: dedup
	// state is per shard (retries of one logical request always carry
	// the same avail id, so they route to the same shard).
	other := -1
	for _, cand := range ids[1:] {
		if sc.ShardOf(cand) != sc.ShardOf(id) {
			other = cand
			break
		}
	}
	if other < 0 {
		t.Skip("fixture fleet landed on one shard; no cross-shard pair to test")
	}
	r2 := deltaRCC(t, sc.shards[sc.ShardOf(other)].Catalog, other, 2)
	if dup, err := sc.Ingest("same-key", r2); err != nil || dup {
		t.Fatalf("same key on another shard: dup=%v err=%v, want fresh apply", dup, err)
	}
}

// TestShardedCloseReady pins lifecycle fan-out: a closed tier reports
// not-ready naming the shard, refuses ingests, and tolerates double
// Close.
func TestShardedCloseReady(t *testing.T) {
	sc, _, _ := shardedFixture(t, t.TempDir(), 4, DurableOptions{})
	if err := sc.Ready(); err != nil {
		t.Fatalf("fresh tier not ready: %v", err)
	}
	if err := sc.Compact(); err != nil {
		t.Fatalf("compact fan-out: %v", err)
	}
	if err := sc.LastCompactError(); err != nil {
		t.Fatalf("LastCompactError after clean compact: %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	err := sc.Ready()
	if err == nil {
		t.Fatal("closed tier reports ready")
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("unready error %q does not name the shard", err)
	}
	ids := sc.AvailIDs()
	r := deltaRCC(t, sc.shards[sc.ShardOf(ids[0])].Catalog, ids[0], 3)
	if _, err := sc.Ingest("post-close", r); err == nil {
		t.Fatal("ingest on closed tier succeeded")
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
