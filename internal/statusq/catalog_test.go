package statusq

import (
	"sync"
	"sync/atomic"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/navsim"
)

func catalogFixture(t *testing.T) (*Catalog, *navsim.Dataset) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 15, NumOngoing: 3, MeanRCCsPerAvail: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	return c, ds
}

func TestCatalogLookupAndIDs(t *testing.T) {
	c, ds := catalogFixture(t)
	if got := len(c.AvailIDs()); got != 18 {
		t.Errorf("AvailIDs = %d, want 18", got)
	}
	if got := len(c.OngoingIDs()); got != 3 {
		t.Errorf("OngoingIDs = %d, want 3", got)
	}
	a, ok := c.Avail(ds.Avails[0].ID)
	if !ok || a.ID != ds.Avails[0].ID {
		t.Error("Avail lookup failed")
	}
	if _, ok := c.Avail(99999); ok {
		t.Error("lookup of unknown id succeeded")
	}
	// Ascending order.
	ids := c.AvailIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not ascending")
		}
	}
}

func TestCatalogEngineCachedAndCorrect(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	e1, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("engine should be cached")
	}
	// Eval through the catalog equals direct engine eval.
	q := Query{Status: domain.Created, Agg: Count}
	got, err := c.Eval(id, 50, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e1.Eval(50, q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("catalog eval %f != engine eval %f", got, want)
	}
	if _, err := c.Engine(99999); err == nil {
		t.Error("engine for unknown avail: want error")
	}
	if _, err := c.Eval(99999, 10, q); err == nil {
		t.Error("eval for unknown avail: want error")
	}
}

func TestCatalogAddRCC(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	before, err := c.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Avail(id)
	add := domain.RCC{
		ID: 1_000_000, AvailID: id, Type: domain.Growth,
		SWLIN:   43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 30, Amount: 5000,
	}
	if err := c.AddRCC(add); err != nil {
		t.Fatal(err)
	}
	after, err := c.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Errorf("count after AddRCC = %f, want %f", after, before+1)
	}
	// Errors.
	if err := c.AddRCC(domain.RCC{ID: 2, AvailID: 99999, Created: 0, Settled: 1}); err == nil {
		t.Error("unknown avail: want error")
	}
	if err := c.AddRCC(domain.RCC{ID: 3, AvailID: id, Created: 10, Settled: 5}); err == nil {
		t.Error("invalid rcc: want error")
	}
}

func TestCatalogValidation(t *testing.T) {
	avails := []domain.Avail{
		{ID: 1, Status: domain.StatusClosed, PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 100},
		{ID: 1, Status: domain.StatusClosed, PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 100},
	}
	if _, err := NewCatalog(avails, nil, index.KindAVL); err == nil {
		t.Error("duplicate avail ids: want error")
	}
	orphan := []domain.RCC{{ID: 1, AvailID: 42, Created: 0, Settled: 1}}
	if _, err := NewCatalog(avails[:1], orphan, index.KindAVL); err == nil {
		t.Error("orphan rcc: want error")
	}
	if _, err := NewCatalog(avails[:1], nil, index.Kind("zzz")); err == nil {
		t.Error("bad index kind: want error")
	}
	bad := []domain.Avail{{ID: 1, PlanStart: 10, PlanEnd: 5}}
	if _, err := NewCatalog(bad, nil, index.KindAVL); err == nil {
		t.Error("invalid avail: want error")
	}
}

func TestCatalogEngineSingleFlight(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	const n = 32
	engines := make([]*Engine, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, err := c.Engine(id)
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}(i)
	}
	close(start)
	wg.Wait()
	if got := c.EngineBuilds(); got != 1 {
		t.Errorf("%d concurrent first queries built %d engines, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent callers got different engines")
		}
	}
}

// TestCatalogConcurrentMix is the package-level -race gate: Engine, Eval,
// RCCs, and AddRCC from many goroutines at once. The pre-fix Catalog fails
// here with a concurrent-map-write panic.
func TestCatalogConcurrentMix(t *testing.T) {
	c, ds := catalogFixture(t)
	ids := c.AvailIDs()
	q := Query{Status: domain.Created, Agg: Count}
	var wg sync.WaitGroup
	var nextID atomic.Int64
	nextID.Store(5_000_000)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ids[(w+i)%len(ids)]
				if _, err := c.Eval(id, float64(10+(i%9)*10), q); err != nil {
					t.Errorf("Eval(%d): %v", id, err)
					return
				}
				_ = c.RCCs(id)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := ids[(w+i)%len(ids)]
				a, _ := c.Avail(id)
				r := domain.RCC{
					ID: int(nextID.Add(1)), AvailID: id, Type: domain.Growth,
					SWLIN:   43411001,
					Created: a.ActStart + 1, Settled: a.ActStart + 20, Amount: 100,
				}
				if err := c.AddRCC(r); err != nil {
					t.Errorf("AddRCC(%d): %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_ = ds
}

// TestCatalogAddRCCInvalidatesEngine pins the read-your-writes guarantee:
// an Engine call that starts after AddRCC returns sees the new RCC.
func TestCatalogAddRCCInvalidatesEngine(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	e1, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Avail(id)
	add := domain.RCC{
		ID: 9_000_000, AvailID: id, Type: domain.Growth, SWLIN: 43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 30, Amount: 1,
	}
	if err := c.AddRCC(add); err != nil {
		t.Fatal(err)
	}
	e2, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Fatal("AddRCC did not invalidate the cached engine")
	}
	if e2.NumRCCs() != e1.NumRCCs()+1 {
		t.Errorf("rebuilt engine has %d RCCs, want %d", e2.NumRCCs(), e1.NumRCCs()+1)
	}
}
