package statusq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"domd/internal/domain"
	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/navsim"
)

func catalogFixture(t *testing.T) (*Catalog, *navsim.Dataset) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 15, NumOngoing: 3, MeanRCCsPerAvail: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	return c, ds
}

func TestCatalogLookupAndIDs(t *testing.T) {
	c, ds := catalogFixture(t)
	if got := len(c.AvailIDs()); got != 18 {
		t.Errorf("AvailIDs = %d, want 18", got)
	}
	if got := len(c.OngoingIDs()); got != 3 {
		t.Errorf("OngoingIDs = %d, want 3", got)
	}
	a, ok := c.Avail(ds.Avails[0].ID)
	if !ok || a.ID != ds.Avails[0].ID {
		t.Error("Avail lookup failed")
	}
	if _, ok := c.Avail(99999); ok {
		t.Error("lookup of unknown id succeeded")
	}
	// Ascending order.
	ids := c.AvailIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not ascending")
		}
	}
}

func TestCatalogEngineCachedAndCorrect(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	e1, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("engine should be cached")
	}
	// Eval through the catalog equals direct engine eval.
	q := Query{Status: domain.Created, Agg: Count}
	got, err := c.Eval(id, 50, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e1.Eval(50, q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("catalog eval %f != engine eval %f", got, want)
	}
	if _, err := c.Engine(99999); err == nil {
		t.Error("engine for unknown avail: want error")
	}
	if _, err := c.Eval(99999, 10, q); err == nil {
		t.Error("eval for unknown avail: want error")
	}
}

func TestCatalogAddRCC(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	before, err := c.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Avail(id)
	add := domain.RCC{
		ID: 1_000_000, AvailID: id, Type: domain.Growth,
		SWLIN:   43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 30, Amount: 5000,
	}
	if err := c.AddRCC(add); err != nil {
		t.Fatal(err)
	}
	after, err := c.Eval(id, 100, Query{Status: domain.Created, Agg: Count})
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Errorf("count after AddRCC = %f, want %f", after, before+1)
	}
	// Errors.
	if err := c.AddRCC(domain.RCC{ID: 2, AvailID: 99999, Created: 0, Settled: 1}); err == nil {
		t.Error("unknown avail: want error")
	}
	if err := c.AddRCC(domain.RCC{ID: 3, AvailID: id, Created: 10, Settled: 5}); err == nil {
		t.Error("invalid rcc: want error")
	}
}

func TestCatalogValidation(t *testing.T) {
	avails := []domain.Avail{
		{ID: 1, Status: domain.StatusClosed, PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 100},
		{ID: 1, Status: domain.StatusClosed, PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 100},
	}
	if _, err := NewCatalog(avails, nil, index.KindAVL); err == nil {
		t.Error("duplicate avail ids: want error")
	}
	orphan := []domain.RCC{{ID: 1, AvailID: 42, Created: 0, Settled: 1}}
	if _, err := NewCatalog(avails[:1], orphan, index.KindAVL); err == nil {
		t.Error("orphan rcc: want error")
	}
	if _, err := NewCatalog(avails[:1], nil, index.Kind("zzz")); err == nil {
		t.Error("bad index kind: want error")
	}
	bad := []domain.Avail{{ID: 1, PlanStart: 10, PlanEnd: 5}}
	if _, err := NewCatalog(bad, nil, index.KindAVL); err == nil {
		t.Error("invalid avail: want error")
	}
}

func TestCatalogEngineSingleFlight(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	const n = 32
	engines := make([]*Engine, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, err := c.Engine(id)
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}(i)
	}
	close(start)
	wg.Wait()
	if got := c.EngineBuilds(); got != 1 {
		t.Errorf("%d concurrent first queries built %d engines, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent callers got different engines")
		}
	}
}

// TestCatalogConcurrentMix is the package-level -race gate: Engine, Eval,
// RCCs, and AddRCC from many goroutines at once. The pre-fix Catalog fails
// here with a concurrent-map-write panic.
func TestCatalogConcurrentMix(t *testing.T) {
	c, ds := catalogFixture(t)
	ids := c.AvailIDs()
	q := Query{Status: domain.Created, Agg: Count}
	var wg sync.WaitGroup
	var nextID atomic.Int64
	nextID.Store(5_000_000)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ids[(w+i)%len(ids)]
				if _, err := c.Eval(id, float64(10+(i%9)*10), q); err != nil {
					t.Errorf("Eval(%d): %v", id, err)
					return
				}
				_ = c.RCCs(id)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := ids[(w+i)%len(ids)]
				a, _ := c.Avail(id)
				r := domain.RCC{
					ID: int(nextID.Add(1)), AvailID: id, Type: domain.Growth,
					SWLIN:   43411001,
					Created: a.ActStart + 1, Settled: a.ActStart + 20, Amount: 100,
				}
				if err := c.AddRCC(r); err != nil {
					t.Errorf("AddRCC(%d): %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_ = ds
}

// TestCatalogAddRCCDeltaApplies pins the read-your-writes guarantee under
// the incremental ingest path: an Engine call that starts after AddRCC
// returns sees the new RCC, and the cached engine was folded in place
// (same engine, no rebuild) rather than invalidated.
func TestCatalogAddRCCDeltaApplies(t *testing.T) {
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID
	e1, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	builds := c.EngineBuilds()
	a, _ := c.Avail(id)
	add := domain.RCC{
		ID: 9_000_000, AvailID: id, Type: domain.Growth, SWLIN: 43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 30, Amount: 1,
	}
	if err := c.AddRCC(add); err != nil {
		t.Fatal(err)
	}
	e2, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("AddRCC rebuilt the engine instead of delta-applying in place")
	}
	if want := len(ds.RCCsByAvail()[id]) + 1; e2.NumRCCs() != want {
		t.Errorf("engine has %d RCCs, want %d", e2.NumRCCs(), want)
	}
	if got := c.DeltaApplies(); got != 1 {
		t.Errorf("DeltaApplies = %d, want 1", got)
	}
	if got := c.EngineBuilds(); got != builds {
		t.Errorf("EngineBuilds = %d, want %d (no rebuild)", got, builds)
	}
}

// TestCatalogAddRCCInvalidatesWithoutDelta pins the fallback: with the
// delta path disabled (and for any ineligible slot) AddRCC invalidates the
// cached engine and the next Engine call rebuilds over the extended
// history — the pre-incremental behaviour.
func TestCatalogAddRCCInvalidatesWithoutDelta(t *testing.T) {
	c, ds := catalogFixture(t)
	c.SetDeltaApply(false)
	id := ds.Avails[0].ID
	e1, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Avail(id)
	add := domain.RCC{
		ID: 9_000_000, AvailID: id, Type: domain.Growth, SWLIN: 43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 30, Amount: 1,
	}
	if err := c.AddRCC(add); err != nil {
		t.Fatal(err)
	}
	e2, err := c.Engine(id)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Fatal("AddRCC did not invalidate the cached engine")
	}
	if e2.NumRCCs() != e1.NumRCCs()+1 {
		t.Errorf("rebuilt engine has %d RCCs, want %d", e2.NumRCCs(), e1.NumRCCs()+1)
	}
	if got := c.DeltaFallbacks(); got != 1 {
		t.Errorf("DeltaFallbacks = %d, want 1", got)
	}
}

// TestCatalogUnknownAvailSentinel pins the previously undocumented
// failure mode: every unknown-avail path wraps ErrUnknownAvail so
// callers (the server's 404 mapping) can test with errors.Is.
func TestCatalogUnknownAvailSentinel(t *testing.T) {
	c, _ := catalogFixture(t)
	if err := c.AddRCC(domain.RCC{ID: 1, AvailID: 99999, Created: 0, Settled: 1}); !errors.Is(err, ErrUnknownAvail) {
		t.Errorf("AddRCC unknown avail = %v, want ErrUnknownAvail", err)
	}
	if _, err := c.Engine(99999); !errors.Is(err, ErrUnknownAvail) {
		t.Errorf("Engine unknown avail = %v, want ErrUnknownAvail", err)
	}
	if _, err := c.Eval(99999, 10, Query{Status: domain.Created, Agg: Count}); !errors.Is(err, ErrUnknownAvail) {
		t.Errorf("Eval unknown avail = %v, want ErrUnknownAvail", err)
	}
	if _, _, _, err := c.EngineAsOf(99999); !errors.Is(err, ErrUnknownAvail) {
		t.Errorf("EngineAsOf unknown avail = %v, want ErrUnknownAvail", err)
	}
}

// TestCatalogEngineBuildFaultServesLastGood drives the degraded-serving
// contract: with the engine build failing, EngineAsOf answers from the
// last successfully built engine marked stale; once the fault clears,
// the next call rebuilds fresh.
func TestCatalogEngineBuildFaultServesLastGood(t *testing.T) {
	defer faultinject.Reset()
	c, ds := catalogFixture(t)
	id := ds.Avails[0].ID

	good, asOf, stale, err := c.EngineAsOf(id)
	if err != nil || stale {
		t.Fatalf("healthy EngineAsOf: stale=%v err=%v", stale, err)
	}
	if asOf != int64(good.NumRCCs()) {
		t.Fatalf("asOf = %d, want history length %d", asOf, good.NumRCCs())
	}

	// Force the ingest down the invalidation path (the armed failpoint
	// suppresses the in-place delta apply), then make every rebuild fail.
	a, _ := c.Avail(id)
	add := domain.RCC{
		ID: 7_000_000, AvailID: id, Type: domain.Growth, SWLIN: 43411001,
		Created: a.ActStart + 1, Settled: a.ActStart + 30, Amount: 1,
	}
	faultinject.EnableTimes(FailDeltaApply, errors.New("force rebuild path"), 1)
	if err := c.AddRCC(add); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected build failure")
	faultinject.Enable(FailEngineBuild, boom)

	if _, err := c.Engine(id); !errors.Is(err, boom) {
		t.Fatalf("strict Engine under fault = %v, want the build error", err)
	}
	eng, asOf2, stale2, err := c.EngineAsOf(id)
	if err != nil {
		t.Fatalf("EngineAsOf under fault = %v, want stale fallback", err)
	}
	if !stale2 || eng != good || asOf2 != asOf {
		t.Fatalf("fallback = (%p stale=%v asOf=%d), want last good (%p stale=true asOf=%d)",
			eng, stale2, asOf2, good, asOf)
	}

	// Fault clears: the failed slot was dropped, so the rebuild runs and
	// folds in the appended RCC.
	faultinject.Reset()
	fresh, asOf3, stale3, err := c.EngineAsOf(id)
	if err != nil || stale3 {
		t.Fatalf("post-fault EngineAsOf: stale=%v err=%v", stale3, err)
	}
	if fresh == good || asOf3 != asOf+1 {
		t.Fatalf("post-fault engine not rebuilt: asOf=%d want %d", asOf3, asOf+1)
	}
	if fresh.NumRCCs() != good.NumRCCs()+1 {
		t.Fatalf("rebuilt engine has %d RCCs, want %d", fresh.NumRCCs(), good.NumRCCs()+1)
	}
}

// TestCatalogEngineBuildFaultNoLastGood: with no prior good engine the
// build error must propagate — degraded mode cannot invent answers.
func TestCatalogEngineBuildFaultNoLastGood(t *testing.T) {
	defer faultinject.Reset()
	c, ds := catalogFixture(t)
	id := ds.Avails[1].ID
	boom := errors.New("injected build failure")
	faultinject.EnableTimes(FailEngineBuild, boom, 1)
	if _, _, _, err := c.EngineAsOf(id); !errors.Is(err, boom) {
		t.Fatalf("EngineAsOf with no last-good = %v, want build error", err)
	}
	// The failed slot must not be pinned: the next call retries and succeeds.
	if _, _, stale, err := c.EngineAsOf(id); err != nil || stale {
		t.Fatalf("retry after transient fault: stale=%v err=%v", stale, err)
	}
}
