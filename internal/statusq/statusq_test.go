package statusq

import (
	"math"
	"math/rand"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/swlin"
)

// fixtureAvail: planned 2000-01-01 .. 2000-04-10 (100 days), started on time.
func fixtureAvail() *domain.Avail {
	return &domain.Avail{
		ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 120,
	}
}

func code(t *testing.T, s string) int {
	t.Helper()
	c, err := swlin.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return int(c)
}

// fixtureRCCs: hand-checkable set.
//
//	pos 0: G,  434-..., [10, 50),  $100
//	pos 1: G,  434-..., [20, 90),  $200
//	pos 2: NW, 911-..., [30, 60),  $400
//	pos 3: NG, 434-..., [ 0, 10),  $800
func fixtureRCCs(t *testing.T) []domain.RCC {
	return []domain.RCC{
		{ID: 101, AvailID: 1, Type: domain.Growth, SWLIN: code(t, "434-11-001"), Created: 10, Settled: 50, Amount: 100},
		{ID: 102, AvailID: 1, Type: domain.Growth, SWLIN: code(t, "434-22-001"), Created: 20, Settled: 90, Amount: 200},
		{ID: 103, AvailID: 1, Type: domain.NewWork, SWLIN: code(t, "911-90-001"), Created: 30, Settled: 60, Amount: 400},
		{ID: 104, AvailID: 1, Type: domain.NewGrowth, SWLIN: code(t, "434-33-001"), Created: 0, Settled: 10, Amount: 800},
	}
}

func engine(t *testing.T, kind index.Kind) *Engine {
	t.Helper()
	e, err := NewEngine(fixtureAvail(), fixtureRCCs(t), kind)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRetrieveByStatus(t *testing.T) {
	for _, kind := range index.Kinds() {
		e := engine(t, kind)
		// t* = 30% => day 30. Active: pos 0 ([10,50)), 1 ([20,90)), 2 ([30,60)).
		// Settled: pos 3 ([0,10)). Created: all.
		got, err := e.Retrieve(30, Query{Status: domain.Active})
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(got, []int{0, 1, 2}) {
			t.Errorf("%s: active @30%% = %v, want [0 1 2]", kind, got)
		}
		got, _ = e.Retrieve(30, Query{Status: domain.SettledStatus})
		if !equalInts(got, []int{3}) {
			t.Errorf("%s: settled @30%% = %v, want [3]", kind, got)
		}
		got, _ = e.Retrieve(30, Query{Status: domain.Created})
		if !equalInts(got, []int{0, 1, 2, 3}) {
			t.Errorf("%s: created @30%% = %v, want all", kind, got)
		}
	}
}

func TestRetrieveWithGroupBys(t *testing.T) {
	e := engine(t, index.KindAVL)
	g := domain.Growth
	// Growth + active @ day 30: positions 0, 1.
	got, err := e.Retrieve(30, Query{Type: &g, Status: domain.Active})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, []int{0, 1}) {
		t.Errorf("G active = %v, want [0 1]", got)
	}
	// SWLIN subtree 4 + created: positions 0, 1, 3.
	got, _ = e.Retrieve(30, Query{SWLINPrefix: []int{4}, Status: domain.Created})
	if !equalInts(got, []int{0, 1, 3}) {
		t.Errorf("swlin-4 created = %v, want [0 1 3]", got)
	}
	// Combined: Growth in subtree 4, active: 0, 1.
	got, _ = e.Retrieve(30, Query{Type: &g, SWLINPrefix: []int{4}, Status: domain.Active})
	if !equalInts(got, []int{0, 1}) {
		t.Errorf("G+swlin4 active = %v, want [0 1]", got)
	}
	// Deeper prefix 4,3,4,2: only pos 1.
	got, _ = e.Retrieve(30, Query{SWLINPrefix: []int{4, 3, 4, 2}, Status: domain.Created})
	if !equalInts(got, []int{1}) {
		t.Errorf("deep prefix = %v, want [1]", got)
	}
	// Empty subtree.
	got, _ = e.Retrieve(30, Query{SWLINPrefix: []int{7}, Status: domain.Created})
	if len(got) != 0 {
		t.Errorf("empty subtree = %v", got)
	}
}

func TestEvalAggregates(t *testing.T) {
	e := engine(t, index.KindAVL)
	// Active @30%: amounts {100,200,400}, durations {40,70,30}.
	cases := []struct {
		agg  Aggregate
		want float64
	}{
		{Count, 3},
		{SumAmount, 700},
		{AvgAmount, 700.0 / 3},
		{MaxAmount, 400},
		{MinAmount, 100},
		{SumDuration, 140},
		{AvgDuration, 140.0 / 3},
		{MaxDuration, 70},
		{Pct, 0.75},
		{Rate, 0.1}, // 3 / 30%
	}
	for _, c := range cases {
		got, err := e.Eval(30, Query{Status: domain.Active, Agg: c.agg})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%v = %f, want %f", c.agg, got, c.want)
		}
	}
	// StdAmount of {100,200,400}: mean 233.33, var = (17777.8+1111.1+27777.8)/3.
	std, _ := e.Eval(30, Query{Status: domain.Active, Agg: StdAmount})
	want := math.Sqrt((100*100+200*200+400*400)/3.0 - (700.0/3)*(700.0/3))
	if math.Abs(std-want) > 1e-9 {
		t.Errorf("StdAmount = %f, want %f", std, want)
	}
}

func TestEvalEmptySetIsZero(t *testing.T) {
	e := engine(t, index.KindAVL)
	for agg := Aggregate(0); agg < NumAggregates; agg++ {
		// Before anything is created (t* negative => day -5).
		got, err := e.Eval(-5, Query{Status: domain.Active, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("%v on empty set = %f, want 0", agg, got)
		}
	}
}

func TestRateAtZeroFallsBackToCount(t *testing.T) {
	e := engine(t, index.KindAVL)
	got, err := e.Eval(0, Query{Status: domain.Created, Agg: Rate})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 { // only pos 3 created at day 0
		t.Errorf("Rate @0 = %f, want count fallback 1", got)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, nil, index.KindAVL); err == nil {
		t.Error("nil avail: want error")
	}
	flat := &domain.Avail{ID: 1, PlanStart: 5, PlanEnd: 5}
	if _, err := NewEngine(flat, nil, index.KindAVL); err == nil {
		t.Error("zero plan: want error")
	}
	wrong := fixtureRCCs(t)
	wrong[0].AvailID = 99
	if _, err := NewEngine(fixtureAvail(), wrong, index.KindAVL); err == nil {
		t.Error("foreign rcc: want error")
	}
	bad := fixtureRCCs(t)
	bad[1].Settled = bad[1].Created - 1
	if _, err := NewEngine(fixtureAvail(), bad, index.KindAVL); err == nil {
		t.Error("invalid rcc: want error")
	}
	if _, err := NewEngine(fixtureAvail(), nil, index.Kind("nope")); err == nil {
		t.Error("bad index kind: want error")
	}
}

func TestUnknownStatusErrors(t *testing.T) {
	e := engine(t, index.KindAVL)
	if _, err := e.Retrieve(10, Query{Status: domain.RCCStatus(9)}); err == nil {
		t.Error("unknown status: want error")
	}
}

func TestAllIndexKindsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := &domain.Avail{ID: 7, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 200, ActStart: 0, ActEnd: 260}
	var rccs []domain.RCC
	for i := 0; i < 400; i++ {
		created := domain.Day(rng.Intn(260))
		rccs = append(rccs, domain.RCC{
			ID: i + 1, AvailID: 7,
			Type:    domain.RCCType(rng.Intn(domain.NumRCCTypes)),
			SWLIN:   rng.Intn(100_000_000),
			Created: created,
			Settled: created + domain.Day(rng.Intn(80)),
			Amount:  float64(rng.Intn(100000)),
		})
	}
	engines := map[index.Kind]*Engine{}
	for _, kind := range index.Kinds() {
		e, err := NewEngine(a, rccs, kind)
		if err != nil {
			t.Fatal(err)
		}
		engines[kind] = e
	}
	g := domain.Growth
	queries := []Query{
		{Status: domain.Active, Agg: Count},
		{Status: domain.SettledStatus, Agg: SumAmount},
		{Status: domain.Created, Agg: AvgDuration},
		{Type: &g, Status: domain.Active, Agg: SumAmount},
		{SWLINPrefix: []int{3}, Status: domain.Created, Agg: Count},
		{Type: &g, SWLINPrefix: []int{5}, Status: domain.SettledStatus, Agg: MaxAmount},
	}
	for ts := 0.0; ts <= 130; ts += 10 {
		for qi, q := range queries {
			ref, err := engines[index.KindNaive].Eval(ts, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []index.Kind{index.KindAVL, index.KindInterval} {
				got, err := engines[kind].Eval(ts, q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-ref) > 1e-9 {
					t.Fatalf("query %d @%g: %s = %f, naive = %f", qi, ts, kind, got, ref)
				}
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
