package statusq

import (
	"fmt"
	"math/rand"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
)

// The ingest benchmarks compare the two ways a serving process can absorb a
// freshly ingested RCC and then answer a warm-avail query: folding it into
// the live engine in O(delta) (Engine.ApplyRCC, the incremental path
// Catalog.AddRCC takes by default) versus rebuilding the engine over the
// extended history (the pre-incremental invalidate-and-rebuild design).
// Sizes start at the README scalability fixture's ≥1k RCCs per avail, where
// the rebuild cost dominates post-ingest query latency.

// benchIngestFixture builds one ongoing avail with n RCCs drawn by the same
// generator the differential suite uses.
func benchIngestFixture(n int) (*domain.Avail, []domain.RCC, *rand.Rand) {
	a := &domain.Avail{ID: 1, ShipID: 1, Status: domain.StatusOngoing, PlanStart: 0, PlanEnd: 400, ActStart: 0}
	rng := rand.New(rand.NewSource(41))
	rccs := make([]domain.RCC, 0, n)
	for i := 0; i < n; i++ {
		rccs = append(rccs, randRCC(rng, a, i))
	}
	return a, rccs, rng
}

// benchQuery is a fixed mid-avail Status Query evaluated after every ingest,
// so both benchmarks time the identical "ingest one RCC, answer one warm
// query" unit of work.
var benchQuery = Query{Status: domain.Active, Agg: SumAmount}

// BenchmarkApplyRCC times the incremental path: one Engine.ApplyRCC fold
// plus one query against the still-warm engine.
func BenchmarkApplyRCC(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a, rccs, rng := benchIngestFixture(n)
			eng, err := NewEngine(a, rccs, index.KindAVL)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.ApplyRCC(randRCC(rng, a, n+i)); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Eval(60, benchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebuildAfterIngest times the fallback path the incremental
// design replaces: append to the history, rebuild the engine from scratch,
// answer the same query.
func BenchmarkRebuildAfterIngest(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a, rccs, rng := benchIngestFixture(n)
			history := append([]domain.RCC(nil), rccs...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				history = append(history, randRCC(rng, a, n+i))
				eng, err := NewEngine(a, history, index.KindAVL)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Eval(60, benchQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
