package statusq

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/wal"
)

// replicaDir returns shard s's n'th WAL replica directory.
func replicaDir(sc *ShardedCatalog, s, n int) string {
	return filepath.Join(sc.ShardDir(s), fmt.Sprintf("replica-%02d", n))
}

// waitReplConverged polls until shard s's replica set is fully live.
func waitReplConverged(t *testing.T, sc *ShardedCatalog, s int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, ok := sc.shards[s].ReplHealth()
		if !ok {
			t.Fatal("shard is not replicated")
		}
		if h.Live == h.Replicas && h.Lag == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d replicas never converged: %+v", s, h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosReplKillPrimaryMidIngest is the headline failover proof: a
// persistent fault on (then total loss of) the primary replica's disk
// mid-ingest must lose zero acknowledged records — appends keep acking
// on the surviving quorum, and after a restart the set repairs from the
// most-caught-up replica.
func TestChaosReplKillPrimaryMidIngest(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	sc, _, ds := shardedFixture(t, root, 2, DurableOptions{Replicas: 3})
	ids := sc.AvailIDs()
	victim := sc.ShardOf(ids[0])

	acked := 0
	ingestOne := func(i int) {
		t.Helper()
		id := ids[i%len(ids)]
		r := deltaRCC(t, sc.shards[sc.ShardOf(id)].Catalog, id, i)
		if dup, err := sc.Ingest(fmt.Sprintf("kp%d", i), r); err != nil || dup {
			t.Fatalf("ingest %d: dup=%v err=%v", i, dup, err)
		}
		acked++
	}
	for i := 0; i < 10; i++ {
		ingestOne(i)
	}

	// Kill the victim shard's primary replica mid-stream: every
	// subsequent append to it faults, the followers keep the quorum, and
	// acknowledgments continue.
	faultinject.Enable(wal.ReplicaFailpoint(replicaDir(sc, victim, 0)), errors.New("primary disk dead"))
	for i := 10; i < 30; i++ {
		ingestOne(i)
	}
	if h := sc.HealthOf(victim); h == ShardFailed {
		t.Fatalf("victim shard failed despite quorum: %v", h)
	}
	want := evalFingerprint(t, sc)
	// The faulted replica was rewound to its watermark after each fault,
	// so its file handle is healthy and the close is clean.
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart-with-total-loss: the primary replica's directory is gone.
	faultinject.Reset()
	if err := os.RemoveAll(replicaDir(sc, victim, 0)); err != nil {
		t.Fatal(err)
	}
	sc2, info, err := OpenSharded(root, 2, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if tot := info.Totals(); tot.Restored != acked {
		t.Fatalf("restored %d records, acked %d: lost acknowledged data", tot.Restored, acked)
	}
	repl := info.Shards[victim].Info.Repl
	if repl == nil {
		t.Fatal("victim shard restore has no replication report")
	}
	rebuilt := false
	for _, r := range repl.Replicas {
		if r.Rebuilt || r.CaughtUp > 0 {
			rebuilt = true
		}
	}
	if !rebuilt {
		t.Fatalf("lost replica was not repaired: %+v", repl)
	}
	if got := evalFingerprint(t, sc2); !sameFingerprint(got, want) {
		t.Fatal("answers after failover + restart differ from pre-crash answers")
	}
}

// TestChaosReplFollowerLagStillAcks proves a lagging follower never
// blocks acknowledgment: a transient follower fault demotes it, quorum
// acks continue, and background catch-up converges the set.
func TestChaosReplFollowerLagStillAcks(t *testing.T) {
	defer faultinject.Reset()
	sc, _, _ := shardedFixture(t, t.TempDir(), 2, DurableOptions{Replicas: 3})
	defer sc.Close()
	ids := sc.AvailIDs()
	shard := sc.ShardOf(ids[0])

	faultinject.EnableTimes(wal.ReplicaFailpoint(replicaDir(sc, shard, 1)), errors.New("follower hiccup"), 1)
	for i := 0; i < 6; i++ {
		id := ids[i%len(ids)]
		if sc.ShardOf(id) != shard {
			continue
		}
		r := deltaRCC(t, sc.shards[shard].Catalog, id, i)
		if dup, err := sc.Ingest(fmt.Sprintf("fl%d", i), r); err != nil || dup {
			t.Fatalf("ingest %d during follower lag: dup=%v err=%v", i, dup, err)
		}
	}
	waitReplConverged(t, sc, shard)
	if h := sc.HealthOf(shard); h != ShardHealthy {
		t.Fatalf("converged shard health = %v, want healthy", h)
	}
}

// TestChaosReplQuorumLostFailsShard drives the full health ladder: with
// every replica of a shard faulted, ingests stop acknowledging, the
// shard goes failed (not promotable), its reads are forced stale, the
// breaker trips to fail-fast — and when the fault clears, a probe
// ingest restores it to healthy.
func TestChaosReplQuorumLostFailsShard(t *testing.T) {
	defer faultinject.Reset()
	sc, _, _ := shardedFixture(t, t.TempDir(), 2, DurableOptions{Replicas: 2})
	defer sc.Close()
	ids := sc.AvailIDs()
	shard := sc.ShardOf(ids[0])
	id := ids[0]

	r := deltaRCC(t, sc.shards[shard].Catalog, id, 0)
	if _, err := sc.Ingest("pre", r); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(wal.ReplicaFailpoint(replicaDir(sc, shard, 0)), errors.New("disk 0 gone"))
	faultinject.Enable(wal.ReplicaFailpoint(replicaDir(sc, shard, 1)), errors.New("disk 1 gone"))
	failures := 0
	for i := 1; i <= breakerTripAfter+2; i++ {
		rr := deltaRCC(t, sc.shards[shard].Catalog, id, i)
		if _, err := sc.Ingest(fmt.Sprintf("q%d", i), rr); err != nil {
			failures++
		} else {
			t.Fatalf("ingest %d acked with every replica faulted", i)
		}
	}
	if failures < breakerTripAfter {
		t.Fatalf("only %d failures recorded", failures)
	}
	if h := sc.HealthOf(shard); h != ShardFailed {
		t.Fatalf("quorum-lost shard health = %v, want failed", h)
	}
	rows := sc.ShardHealths()
	if rows[shard].State != ShardFailed || rows[shard].Promotable {
		t.Fatalf("health row for failed shard: %+v", rows[shard])
	}
	if !rows[shard].BreakerOpen {
		t.Fatalf("breaker not open after %d consecutive failures: %+v", failures, rows[shard])
	}
	// Reads still answer, marked stale by the router.
	if _, _, stale, err := sc.EngineAsOf(id); err != nil || !stale {
		t.Fatalf("failed-shard read: stale=%v err=%v, want stale=true", stale, err)
	}
	// The healthy shard is unaffected.
	other := 1 - shard
	if h := sc.HealthOf(other); h != ShardHealthy {
		t.Fatalf("unaffected shard health = %v", h)
	}

	// Fault clears: breaker probes let an ingest through, which revives
	// the replicas inline and restores health.
	faultinject.Reset()
	recovered := false
	for i := 0; i < 4*breakerProbeEvery && !recovered; i++ {
		rr := deltaRCC(t, sc.shards[shard].Catalog, id, 1000+i)
		if _, err := sc.Ingest(fmt.Sprintf("rec%d", i), rr); err == nil {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("shard never recovered after fault cleared")
	}
	if h := sc.HealthOf(shard); h != ShardHealthy {
		t.Fatalf("recovered shard health = %v, want healthy", h)
	}
	if _, _, stale, err := sc.EngineAsOf(id); err != nil || stale {
		t.Fatalf("recovered-shard read: stale=%v err=%v, want fresh", stale, err)
	}
}

// TestChaosReplLayoutGuards pins the replication layout guards: a root
// opened unreplicated cannot silently reopen replicated (and vice
// versa), at both the topology and WAL-directory levels.
func TestChaosReplLayoutGuards(t *testing.T) {
	root := t.TempDir()
	sc, _, ds := shardedFixture(t, root, 2, DurableOptions{})
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSharded(root, 2, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{Replicas: 3}); err == nil {
		t.Fatal("unreplicated root reopened with -repl 3")
	}

	root2 := t.TempDir()
	sc2, _, _ := shardedFixture(t, root2, 2, DurableOptions{Replicas: 3})
	if err := sc2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSharded(root2, 2, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{}); err == nil {
		t.Fatal("replicated root reopened unreplicated")
	}
	if _, _, err := OpenSharded(root2, 2, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{Replicas: 2}); err == nil {
		t.Fatal("3-replica root reopened with -repl 2")
	}
}

// TestDeltaReplicatedEquivalence is the replicated differential gate: a
// stream ingested through a replicated sharded router answers
// bitwise-identically to a single in-memory catalog fed the same
// stream — before and after a close/reopen cycle.
func TestDeltaReplicatedEquivalence(t *testing.T) {
	root := t.TempDir()
	sc, _, ds := shardedFixture(t, root, 2, DurableOptions{Replicas: 3})
	single, err := NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	evalFingerprint(t, sc) // warm engines so ingests take the delta path
	ids := sc.AvailIDs()
	for i := 0; i < 40; i++ {
		id := ids[i%len(ids)]
		r := deltaRCC(t, single, id, i)
		if dup, err := sc.Ingest(fmt.Sprintf("rk%d", i), r); err != nil || dup {
			t.Fatalf("replicated ingest %d: dup=%v err=%v", i, dup, err)
		}
		if err := single.AddRCC(r); err != nil {
			t.Fatalf("single AddRCC %d: %v", i, err)
		}
	}
	got, want := evalFingerprint(t, sc), evalFingerprint(t, single)
	if !sameFingerprint(got, want) {
		t.Fatal("replicated sharded answers differ from single-catalog answers")
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	sc2, _, err := OpenSharded(root, 2, ds.Avails, ds.RCCs, index.KindAVL, DurableOptions{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if got := evalFingerprint(t, sc2); !sameFingerprint(got, want) {
		t.Fatal("replicated answers after reopen differ from single-catalog answers")
	}
}
