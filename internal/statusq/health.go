package statusq

import (
	"errors"
	"sync"
)

// Per-shard health machinery for the sharded router: a three-state
// health ladder (healthy → degraded → failed) driven by ingest/storage
// outcomes and replica-set status, plus a count-based circuit breaker
// that stops hammering a failed shard's disks while still probing for
// recovery. Everything here is deliberately wall-clock-free (counts,
// not timers): the statusq pipeline must stay deterministic under test
// and replay, so recovery is driven by traffic, not elapsed time.

// ShardHealth is a shard's position on the healthy → degraded → failed
// ladder.
type ShardHealth int

const (
	// ShardHealthy means ingests acknowledge normally and (when
	// replicated) every replica is live.
	ShardHealthy ShardHealth = iota
	// ShardDegraded means the shard still acknowledges but something is
	// off: recent storage errors, or a replica lagging/failed.
	ShardDegraded
	// ShardFailed means the shard cannot acknowledge ingests (quorum
	// lost, or persistent storage errors); reads serve from memory,
	// marked stale.
	ShardFailed
)

// String names the state for logs, metrics, and /readyz rows.
func (h ShardHealth) String() string {
	switch h {
	case ShardHealthy:
		return "healthy"
	case ShardDegraded:
		return "degraded"
	case ShardFailed:
		return "failed"
	default:
		return "unknown"
	}
}

const (
	// DegradeAfterFailures consecutive storage failures demote a shard
	// to degraded.
	DegradeAfterFailures = 2
	// FailAfterFailures consecutive storage failures demote a shard to
	// failed even when quorum is nominally intact.
	FailAfterFailures = 5
)

// healthTracker is one shard's health state machine. Transitions are
// driven by noteIngest outcomes; the current replica-set status is
// folded in on every read so /readyz sees a quorum loss even on an idle
// shard.
type healthTracker struct {
	mu          sync.Mutex // guards consecFails
	consecFails int
}

// noteIngest records one ingest storage outcome (ok=false only for
// storage-level failures — validation rejects are not health signals).
func (t *healthTracker) noteIngest(ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ok {
		t.consecFails = 0
	} else {
		t.consecFails++
	}
}

// state folds the failure streak and the shard's current replica status
// into a health state.
func (t *healthTracker) state(repl ReplHealth, replicated bool) ShardHealth {
	t.mu.Lock()
	fails := t.consecFails
	t.mu.Unlock()
	if replicated && !repl.QuorumOK {
		return ShardFailed
	}
	if fails >= FailAfterFailures {
		return ShardFailed
	}
	if fails >= DegradeAfterFailures {
		return ShardDegraded
	}
	if replicated && (repl.Failed > 0 || repl.Lagging > 0) {
		return ShardDegraded
	}
	return ShardHealthy
}

const (
	// breakerTripAfter consecutive ingest failures open a shard's
	// circuit breaker.
	breakerTripAfter = 5
	// breakerProbeEvery admits every Nth request through an open
	// breaker as a recovery probe.
	breakerProbeEvery = 8
)

// ErrShardUnavailable is returned (wrapped) by the router when a
// shard's circuit breaker is open and the request was not selected as a
// recovery probe. The server maps it to 503 + Retry-After.
var ErrShardUnavailable = errors.New("statusq: shard circuit breaker open")

// breaker is a count-based per-shard circuit breaker: after
// breakerTripAfter consecutive failures it fails fast without touching
// the shard's storage, admitting every breakerProbeEvery-th request as
// a probe; one probe success closes it. Count-based (not time-based) so
// behavior is deterministic under test and independent of wall clocks.
type breaker struct {
	mu          sync.Mutex // guards open, consecFails, and sinceProbe
	open        bool
	consecFails int
	sinceProbe  int
}

// allow reports whether the request may proceed to the shard (closed
// breaker, or selected as a recovery probe).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	b.sinceProbe++
	if b.sinceProbe >= breakerProbeEvery {
		b.sinceProbe = 0
		return true
	}
	return false
}

// note records the outcome of an allowed request, tripping or closing
// the breaker.
func (b *breaker) note(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.open = false
		b.consecFails = 0
		return
	}
	b.consecFails++
	if !b.open && b.consecFails >= breakerTripAfter {
		b.open = true
		b.sinceProbe = 0
		mShardBreakerTrips.Inc()
	}
}

// isOpen reports the breaker's current state (observability hook).
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// ShardHealthStatus is one shard's row in the router's health report
// (the /readyz per-shard JSON body).
type ShardHealthStatus struct {
	// Shard is the shard index.
	Shard int
	// State is the shard's current health.
	State ShardHealth
	// Replicas and Live describe the shard's WAL replica set (1/1 when
	// unreplicated and healthy-by-construction).
	Replicas int
	Live     int
	// Lag is the replica set's catch-up lag in records (0 when
	// unreplicated).
	Lag uint64
	// Promotable reports whether the shard can still acknowledge
	// appends: a quorum of live replicas remains. Always false when
	// unreplicated — there is no replica to promote.
	Promotable bool
	// BreakerOpen reports whether the router's circuit breaker is
	// currently failing fast for this shard.
	BreakerOpen bool
}
