package statusq

import (
	"fmt"
	"testing"

	"domd/internal/index"
)

// TestDurableDedupBounded is the regression gate for the idempotency-key
// memory leak: sustained unique-key traffic must not grow the dedup
// index past the configured budget (plus the pinned un-snapshotted
// suffix), while recently acknowledged keys keep deduplicating.
func TestDurableDedupBounded(t *testing.T) {
	d, _, _ := durableFixture(t, t.TempDir(), DurableOptions{DedupCap: 8, CompactEvery: 4})
	defer d.Close()
	ids := d.AvailIDs()
	const n = 40
	for i := 0; i < n; i++ {
		if dup, err := d.Ingest(fmt.Sprintf("leak%d", i), deltaRCC(t, d.Catalog, ids[i%len(ids)], i)); err != nil || dup {
			t.Fatalf("ingest %d: dup=%v err=%v", i, dup, err)
		}
	}
	// Budget 8 plus at most CompactEvery-1 pinned keys awaiting the next
	// snapshot.
	if got := d.DedupTracked(); got > 8+4 {
		t.Fatalf("dedup index holds %d keys after %d unique ingests; budget is 8 (+4 pinned)", got, n)
	}
	// The newest key is inside the window: its retry must dedup.
	lastID := ids[(n-1)%len(ids)]
	if dup, err := d.Ingest(fmt.Sprintf("leak%d", n-1), deltaRCC(t, d.Catalog, lastID, n-1)); err != nil || !dup {
		t.Fatalf("retry of newest key: dup=%v err=%v, want dup=true", dup, err)
	}
	// The oldest key fell out of the window: a retry is accepted as a
	// fresh record — the documented capacity trade-off.
	before := d.IngestedCount()
	if dup, err := d.Ingest("leak0", deltaRCC(t, d.Catalog, ids[0], 0)); err != nil || dup {
		t.Fatalf("retry of evicted key: dup=%v err=%v, want fresh apply", dup, err)
	}
	if got := d.IngestedCount(); got != before+1 {
		t.Fatalf("evicted-key retry applied %d records, want 1", got-before)
	}
}

// TestDurableDedupPinnedUntilSnapshot pins the exactly-once guarantee
// for the WAL window: keys whose records are still in the un-snapshotted
// log suffix are never evicted, no matter how far past the budget the
// index grows, until a compaction folds them into a snapshot.
func TestDurableDedupPinnedUntilSnapshot(t *testing.T) {
	d, _, _ := durableFixture(t, t.TempDir(), DurableOptions{DedupCap: 4, CompactEvery: 0})
	defer d.Close()
	ids := d.AvailIDs()
	const n = 20
	for i := 0; i < n; i++ {
		if dup, err := d.Ingest(fmt.Sprintf("pin%d", i), deltaRCC(t, d.Catalog, ids[i%len(ids)], i)); err != nil || dup {
			t.Fatalf("ingest %d: dup=%v err=%v", i, dup, err)
		}
	}
	if got := d.DedupTracked(); got != n {
		t.Fatalf("dedup index holds %d keys, want all %d pinned (no snapshot yet)", got, n)
	}
	// Every key is still in the WAL window, so every retry dedups.
	for i := 0; i < n; i++ {
		if dup, err := d.Ingest(fmt.Sprintf("pin%d", i), deltaRCC(t, d.Catalog, ids[i%len(ids)], i)); err != nil || !dup {
			t.Fatalf("retry %d inside WAL window: dup=%v err=%v, want dup=true", i, dup, err)
		}
	}
	// Compaction unpins: the index snaps down to the budget.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.DedupTracked(); got != 4 {
		t.Fatalf("dedup index holds %d keys after compaction, want budget 4", got)
	}
}

// TestDurableDedupRestoreEquivalence proves bounded dedup does not
// break restart semantics: an evicted key that was legitimately
// re-accepted as a fresh record is applied twice on replay too — no
// acknowledged record disappears across a restart. (Replay evicts
// through the same bounded index as live ingest; the crash-window
// duplicate-pair direction is covered by
// TestDurableReplayDedupsDuplicateRecords.)
func TestDurableDedupRestoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{DedupCap: 4, CompactEvery: 2}
	d, _, ds := durableFixture(t, dir, opts)
	ids := d.AvailIDs()

	// Acknowledge "victim", push it out of the window with 12 unique
	// keys (budget 4), then re-ingest it: accepted as fresh.
	if dup, err := d.Ingest("victim", deltaRCC(t, d.Catalog, ids[0], 0)); err != nil || dup {
		t.Fatalf("victim ingest: dup=%v err=%v", dup, err)
	}
	for i := 1; i <= 12; i++ {
		if dup, err := d.Ingest(fmt.Sprintf("fill%d", i), deltaRCC(t, d.Catalog, ids[i%len(ids)], i)); err != nil || dup {
			t.Fatalf("fill %d: dup=%v err=%v", i, dup, err)
		}
	}
	if dup, err := d.Ingest("victim", deltaRCC(t, d.Catalog, ids[0], 13)); err != nil || dup {
		t.Fatalf("re-accepted victim: dup=%v err=%v, want fresh apply", dup, err)
	}
	want := evalFingerprint(t, d.Catalog)
	applied := d.IngestedCount()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, info, err := OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Restored != applied {
		t.Fatalf("restored %d records, want %d (re-accepted key must not collapse)", info.Restored, applied)
	}
	if info.Duplicates != 0 {
		t.Fatalf("replay counted %d duplicates, want 0", info.Duplicates)
	}
	if got := evalFingerprint(t, d2.Catalog); !sameFingerprint(got, want) {
		t.Fatal("restored catalog answers differ from pre-restart answers")
	}
}
