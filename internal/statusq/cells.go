package statusq

import (
	"math"
	"sort"

	"domd/internal/domain"
	"domd/internal/swlin"
)

// CellStats are one-pass sufficient statistics for every aggregate the
// feature transformation 𝒯 emits, collected per (type × subsystem) cell.
// They merge associatively, so any union of cells (all types, whole-ship,
// …) is computable without revisiting RCCs — the batching that makes
// generating ~1500 features per logical timestamp affordable.
type CellStats struct {
	Count       int
	SumAmount   float64
	SumSqAmount float64
	MaxAmount   float64
	MinAmount   float64
	SumDuration float64
	MaxDuration float64
}

// add folds one RCC observation into the cell. Every code path that builds
// cells (scratch grid fill, incremental sweep, map-based CellStatsAt) must
// go through this method: identical per-cell operation sequences are what
// make the sweep and scratch paths bitwise-reproducible against each other.
func (c *CellStats) add(amount, dur float64) {
	if c.Count == 0 {
		c.MinAmount, c.MaxAmount, c.MaxDuration = amount, amount, dur
	} else {
		if amount < c.MinAmount {
			c.MinAmount = amount
		}
		if amount > c.MaxAmount {
			c.MaxAmount = amount
		}
		if dur > c.MaxDuration {
			c.MaxDuration = dur
		}
	}
	c.Count++
	c.SumAmount += amount
	c.SumSqAmount += amount * amount
	c.SumDuration += dur
}

// Merge combines two cells.
func (c CellStats) Merge(o CellStats) CellStats {
	if c.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return c
	}
	out := CellStats{
		Count:       c.Count + o.Count,
		SumAmount:   c.SumAmount + o.SumAmount,
		SumSqAmount: c.SumSqAmount + o.SumSqAmount,
		MaxAmount:   math.Max(c.MaxAmount, o.MaxAmount),
		MinAmount:   math.Min(c.MinAmount, o.MinAmount),
		SumDuration: c.SumDuration + o.SumDuration,
		MaxDuration: math.Max(c.MaxDuration, o.MaxDuration),
	}
	return out
}

// Aggregate evaluates one aggregate from the cell. createdTotal (the
// |Created(t*)| denominator, see Engine.CreatedCount) and ts feed Pct and
// Rate respectively. Empty cells evaluate to 0.
func (c CellStats) Aggregate(agg Aggregate, createdTotal int, ts float64) float64 {
	if c.Count == 0 {
		return 0
	}
	n := float64(c.Count)
	switch agg {
	case Count:
		return n
	case SumAmount:
		return c.SumAmount
	case AvgAmount:
		return c.SumAmount / n
	case MaxAmount:
		return c.MaxAmount
	case MinAmount:
		return c.MinAmount
	case StdAmount:
		mean := c.SumAmount / n
		v := c.SumSqAmount/n - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	case SumDuration:
		return c.SumDuration
	case AvgDuration:
		return c.SumDuration / n
	case MaxDuration:
		return c.MaxDuration
	case Pct:
		if createdTotal == 0 {
			return 0
		}
		return n / float64(createdTotal)
	case Rate:
		if ts <= 0 {
			return n
		}
		return n / ts
	default:
		return 0
	}
}

// AggregateAll evaluates every aggregate kind into dst[0:NumAggregates] in
// Aggregate declaration order, sharing the intermediate terms (n, mean) the
// per-kind Aggregate recomputes. Each dst entry is bitwise-identical to the
// corresponding single-aggregate call.
func (c *CellStats) AggregateAll(dst []float64, createdTotal int, ts float64) {
	_ = dst[NumAggregates-1]
	if c.Count == 0 {
		for i := range dst[:NumAggregates] {
			dst[i] = 0
		}
		return
	}
	n := float64(c.Count)
	mean := c.SumAmount / n
	dst[Count] = n
	dst[SumAmount] = c.SumAmount
	dst[AvgAmount] = mean
	dst[MaxAmount] = c.MaxAmount
	dst[MinAmount] = c.MinAmount
	v := c.SumSqAmount/n - mean*mean
	if v < 0 {
		v = 0
	}
	dst[StdAmount] = math.Sqrt(v)
	dst[SumDuration] = c.SumDuration
	dst[AvgDuration] = c.SumDuration / n
	dst[MaxDuration] = c.MaxDuration
	if createdTotal == 0 {
		dst[Pct] = 0
	} else {
		dst[Pct] = n / float64(createdTotal)
	}
	if ts <= 0 {
		dst[Rate] = n
	} else {
		dst[Rate] = n / ts
	}
}

// CellStatsAt computes per-(type × subsystem) cells for one status class at
// logical time ts in a single pass over the qualifying RCCs.
func (e *Engine) CellStatsAt(ts float64, status domain.RCCStatus) (map[GroupKey]CellStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v := &e.view
	set, err := v.statusSet(ts, status)
	if err != nil {
		return nil, err
	}
	cells := make(map[GroupKey]CellStats)
	for _, p := range set {
		r := &v.rccs[p]
		k := GroupKey{Type: r.Type, Subsystem: swlin.Code(r.SWLIN).Subsystem()}
		c := cells[k]
		c.add(r.Amount, float64(r.Duration()))
		cells[k] = c
	}
	return cells, nil
}

// NumSubsystems is the number of concrete SWLIN subsystem digits (0–9).
const NumSubsystems = 10

// Dense-grid margin indices: the last row/column of a CellGrid holds the
// ALL-types / ALL-subsystems unions.
const (
	TypeAll      = domain.NumRCCTypes
	SubsystemAll = NumSubsystems
)

// CellGrid is the dense replacement for map[GroupKey]CellStats on the
// feature hot path: one CellStats per (type × subsystem) cell plus
// prefix-merged margins, so every one of the 4 × 11 group-by selections the
// feature registry enumerates resolves to a single array access — no map
// lookups, no per-call allocations.
//
// Layout: [t][s] for t in 0..NumRCCTypes-1, s in 0..9 are the concrete
// cells; [t][SubsystemAll] is the union over subsystems of type t,
// [TypeAll][s] the union over types of subsystem s, and
// [TypeAll][SubsystemAll] the whole-ship cell.
type CellGrid [domain.NumRCCTypes + 1][NumSubsystems + 1]CellStats

// At returns the cell for the given selection; typ == -1 selects the
// all-types margin and sub == -1 the all-subsystems margin.
func (g *CellGrid) At(typ, sub int) *CellStats {
	if typ < 0 {
		typ = TypeAll
	}
	if sub < 0 {
		sub = SubsystemAll
	}
	return &g[typ][sub]
}

// finalizeMargins recomputes the ALL margins from the concrete cells in a
// fixed canonical order (types ascending, then subsystems ascending). Both
// the scratch and sweep fill paths call this, so equal concrete cells yield
// bitwise-equal margins.
func (g *CellGrid) finalizeMargins() {
	for t := 0; t < domain.NumRCCTypes; t++ {
		m := CellStats{}
		for s := 0; s < NumSubsystems; s++ {
			m = m.Merge(g[t][s])
		}
		g[t][SubsystemAll] = m
	}
	for s := 0; s < NumSubsystems; s++ {
		m := CellStats{}
		for t := 0; t < domain.NumRCCTypes; t++ {
			m = m.Merge(g[t][s])
		}
		g[TypeAll][s] = m
	}
	m := CellStats{}
	for s := 0; s < NumSubsystems; s++ {
		m = m.Merge(g[TypeAll][s])
	}
	g[TypeAll][SubsystemAll] = m
}

// clearConcrete zeroes the concrete (non-margin) cells.
func (g *CellGrid) clearConcrete() {
	for t := 0; t < domain.NumRCCTypes; t++ {
		for s := 0; s < NumSubsystems; s++ {
			g[t][s] = CellStats{}
		}
	}
}

// GridSet bundles one CellGrid per status class — the complete Status Query
// state a feature vector evaluation needs at one logical timestamp.
type GridSet [domain.NumRCCStatuses]CellGrid

// Grid returns the grid of one status class.
func (gs *GridSet) Grid(st domain.RCCStatus) *CellGrid { return &gs[st] }

// CreatedCount is |Created(t*)|, the Pct denominator, read off the
// whole-ship margin of the Created grid.
func (gs *GridSet) CreatedCount() int {
	return gs[domain.Created][TypeAll][SubsystemAll].Count
}

// Reset zeroes every cell.
func (gs *GridSet) Reset() { *gs = GridSet{} }

// cellOf locates the concrete grid cell of an RCC.
func cellOf(g *CellGrid, r *domain.RCC) *CellStats {
	return &g[r.Type][swlin.Code(r.SWLIN).Subsystem()]
}

// sortByDatePos orders positions by an RCC date then position — the
// canonical accumulation order shared with the event sweep, which applies
// creation (resp. settlement) events in exactly this order. Sorting here is
// what the scratch path pays per timestamp and the sweep does not.
func sortByDatePos(set []int, date func(r *domain.RCC) domain.Day, rccs []domain.RCC) {
	sort.Slice(set, func(i, j int) bool {
		di, dj := date(&rccs[set[i]]), date(&rccs[set[j]])
		if di != dj {
			return di < dj
		}
		return set[i] < set[j]
	})
}

// CellGridsAt fills gs with the dense per-(type × subsystem) cells of all
// three status classes at logical time ts, from scratch. Accumulation
// follows the canonical event order (date, then position), making the
// result bitwise-identical to a CellSweep advanced to the same timestamp.
func (e *Engine) CellGridsAt(ts float64, gs *GridSet) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v := &e.view
	gs.Reset()
	created := func(r *domain.RCC) domain.Day { return r.Created }
	settled := func(r *domain.RCC) domain.Day { return r.Settled }
	for st := domain.RCCStatus(0); st < domain.NumRCCStatuses; st++ {
		set, err := v.statusSet(ts, st)
		if err != nil {
			return err
		}
		key := created
		if st == domain.SettledStatus {
			key = settled
		}
		sortByDatePos(set, key, v.rccs)
		g := gs.Grid(st)
		for _, p := range set {
			r := &v.rccs[p]
			cellOf(g, r).add(r.Amount, float64(r.Duration()))
		}
		g.finalizeMargins()
	}
	return nil
}
