package statusq

import (
	"math"

	"domd/internal/domain"
	"domd/internal/swlin"
)

// CellStats are one-pass sufficient statistics for every aggregate the
// feature transformation 𝒯 emits, collected per (type × subsystem) cell.
// They merge associatively, so any union of cells (all types, whole-ship,
// …) is computable without revisiting RCCs — the batching that makes
// generating ~1500 features per logical timestamp affordable.
type CellStats struct {
	Count       int
	SumAmount   float64
	SumSqAmount float64
	MaxAmount   float64
	MinAmount   float64
	SumDuration float64
	MaxDuration float64
}

// Merge combines two cells.
func (c CellStats) Merge(o CellStats) CellStats {
	if c.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return c
	}
	out := CellStats{
		Count:       c.Count + o.Count,
		SumAmount:   c.SumAmount + o.SumAmount,
		SumSqAmount: c.SumSqAmount + o.SumSqAmount,
		MaxAmount:   math.Max(c.MaxAmount, o.MaxAmount),
		MinAmount:   math.Min(c.MinAmount, o.MinAmount),
		SumDuration: c.SumDuration + o.SumDuration,
		MaxDuration: math.Max(c.MaxDuration, o.MaxDuration),
	}
	return out
}

// Aggregate evaluates one aggregate from the cell. createdTotal (the
// |Created(t*)| denominator, see Engine.CreatedCount) and ts feed Pct and
// Rate respectively. Empty cells evaluate to 0.
func (c CellStats) Aggregate(agg Aggregate, createdTotal int, ts float64) float64 {
	if c.Count == 0 {
		return 0
	}
	n := float64(c.Count)
	switch agg {
	case Count:
		return n
	case SumAmount:
		return c.SumAmount
	case AvgAmount:
		return c.SumAmount / n
	case MaxAmount:
		return c.MaxAmount
	case MinAmount:
		return c.MinAmount
	case StdAmount:
		mean := c.SumAmount / n
		v := c.SumSqAmount/n - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	case SumDuration:
		return c.SumDuration
	case AvgDuration:
		return c.SumDuration / n
	case MaxDuration:
		return c.MaxDuration
	case Pct:
		if createdTotal == 0 {
			return 0
		}
		return n / float64(createdTotal)
	case Rate:
		if ts <= 0 {
			return n
		}
		return n / ts
	default:
		return 0
	}
}

// CellStatsAt computes per-(type × subsystem) cells for one status class at
// logical time ts in a single pass over the qualifying RCCs.
func (e *Engine) CellStatsAt(ts float64, status domain.RCCStatus) (map[GroupKey]CellStats, error) {
	set, err := e.statusSet(ts, status)
	if err != nil {
		return nil, err
	}
	cells := make(map[GroupKey]CellStats)
	for _, p := range set {
		r := &e.rccs[p]
		k := GroupKey{Type: r.Type, Subsystem: swlin.Code(r.SWLIN).Subsystem()}
		c := cells[k]
		if c.Count == 0 {
			c.MinAmount = r.Amount
			c.MaxAmount = r.Amount
			c.MaxDuration = float64(r.Duration())
		} else {
			c.MinAmount = math.Min(c.MinAmount, r.Amount)
			c.MaxAmount = math.Max(c.MaxAmount, r.Amount)
			c.MaxDuration = math.Max(c.MaxDuration, float64(r.Duration()))
		}
		c.Count++
		c.SumAmount += r.Amount
		c.SumSqAmount += r.Amount * r.Amount
		c.SumDuration += float64(r.Duration())
		cells[k] = c
	}
	return cells, nil
}
