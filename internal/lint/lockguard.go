package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces comment-declared mutex guards, the convention
// statusq.Catalog documents as
//
//	mu      sync.RWMutex // guards rccs and engines
//	rccs    map[int][]domain.RCC
//
// (equivalently, a guarded field may carry `// guarded by mu`). Every
// function that reads or writes a guarded field must contain a Lock or
// RLock call on the declared mutex. Functions that construct the owning
// struct with a composite literal are exempt — a value that has not
// escaped its constructor cannot race. This machine-checks the exact
// class of unlocked-Catalog access the PR-2 race fixes removed.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields documented as `guards X` / `guarded by mu` must only be accessed under that mutex",
	Run:  runLockguard,
}

var (
	guardsRe    = regexp.MustCompile(`\bguards\s+(.+)`)
	guardedByRe = regexp.MustCompile(`\bguarded by\s+(\w+)`)
)

// guardDecl records one guarded field: which mutex protects it and which
// struct owns both.
type guardDecl struct {
	mutex *types.Var
	owner *types.TypeName
}

func runLockguard(p *Pass) {
	guards := map[*types.Var]guardDecl{}
	mutexes := map[*types.Var]bool{}
	for _, f := range p.Pkg.Files {
		collectGuards(p, f, guards, mutexes)
	}
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if callerHoldsRe.MatchString(fn.Doc.Text()) {
				// A lock-held helper: its doc transfers the locking
				// obligation to the call sites, which the analyzer does
				// check (they contain the Lock call or the constructor).
				continue
			}
			checkGuardedAccesses(p, fn, guards, mutexes)
		}
	}
}

// callerHoldsRe recognizes the doc-comment annotation that marks a
// helper as requiring its caller to hold the guarding mutex, e.g.
// "Callers hold d.mu." — the in-tree equivalent of a REQUIRES clause.
var callerHoldsRe = regexp.MustCompile(`(?i)\bcallers? (must )?hold`)

// collectGuards parses struct field comments into the guard table.
func collectGuards(p *Pass, f *ast.File, guards map[*types.Var]guardDecl, mutexes map[*types.Var]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		owner, _ := p.Pkg.Info.Defs[ts.Name].(*types.TypeName)
		if owner == nil {
			return true
		}
		// Field objects by name, for resolving `guards a and b` lists.
		// Embedded fields register under their promoted name so both a
		// `guards` comment on the embedded mutex and a `guarded by Mutex`
		// reference to it resolve.
		fieldObj := map[string]*types.Var{}
		for _, field := range st.Fields.List {
			if len(field.Names) == 0 {
				if v := embeddedFieldVar(owner, field); v != nil {
					fieldObj[v.Name()] = v
				}
				continue
			}
			for _, name := range field.Names {
				if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
					fieldObj[name.Name] = v
				}
			}
		}
		for _, field := range st.Fields.List {
			text := strings.TrimSpace(field.Doc.Text() + " " + field.Comment.Text())
			if text == "" {
				continue
			}
			var self *types.Var
			if len(field.Names) > 0 {
				self = fieldObj[field.Names[0].Name]
			} else {
				// Embedded field (e.g. a bare `sync.Mutex // guards n`):
				// there is no name Ident in Defs, so recover the implicit
				// field var from the owner's struct type by position.
				self = embeddedFieldVar(owner, field)
			}
			if self == nil {
				continue
			}
			if m := guardsRe.FindStringSubmatch(text); m != nil {
				for _, g := range parseGuardList(m[1], fieldObj) {
					guards[g] = guardDecl{mutex: self, owner: owner}
					mutexes[self] = true
				}
			}
			if m := guardedByRe.FindStringSubmatch(text); m != nil {
				if mu := fieldObj[m[1]]; mu != nil {
					guards[self] = guardDecl{mutex: mu, owner: owner}
					mutexes[mu] = true
				}
			}
		}
		return true
	})
}

// embeddedFieldVar resolves the implicit *types.Var of an embedded
// struct field by matching source positions against the owner's checked
// struct type (the AST carries no name Ident for it).
func embeddedFieldVar(owner *types.TypeName, field *ast.Field) *types.Var {
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		v := st.Field(i)
		if v.Embedded() && field.Pos() <= v.Pos() && v.Pos() <= field.End() {
			return v
		}
	}
	return nil
}

// parseGuardList resolves the field names following `guards`, tolerating
// commas, "and", and trailing prose (the list stops at the first token
// that is not a sibling field).
func parseGuardList(list string, fieldObj map[string]*types.Var) []*types.Var {
	var out []*types.Var
	for _, tok := range strings.FieldsFunc(list, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	}) {
		if tok == "and" {
			continue
		}
		v, ok := fieldObj[tok]
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// checkGuardedAccesses verifies one top-level function (closures included
// in its scope: a lock taken in the enclosing function covers them).
func checkGuardedAccesses(p *Pass, fn *ast.FuncDecl, guards map[*types.Var]guardDecl, mutexes map[*types.Var]bool) {
	type access struct {
		pos   token.Pos
		field *types.Var
	}
	var accesses []access
	locked := map[*types.Var]bool{}
	constructed := map[*types.TypeName]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := p.Pkg.Info.Uses[x.Sel].(*types.Var); ok {
				if _, guarded := guards[v]; guarded {
					accesses = append(accesses, access{x.Sel.Pos(), v})
				}
			}
		case *ast.CallExpr:
			// recv.mu.Lock() / recv.mu.RLock(), or the promoted form
			// t.Lock() on an embedded mutex — lockCallTarget resolves
			// both to the declared mutex field.
			if mu, _, op, ok := lockCallTarget(p.Pkg, x); ok &&
				(op == "Lock" || op == "RLock") && mutexes[mu] {
				locked[mu] = true
			}
		case *ast.CompositeLit:
			if n, ok := namedOf(p.TypeOf(x)); ok {
				constructed[n.Obj()] = true
			}
		}
		return true
	})

	for _, a := range accesses {
		g := guards[a.field]
		if locked[g.mutex] || constructed[g.owner] {
			continue
		}
		p.Reportf(a.pos, "%s.%s is guarded by %s; %s accesses it without locking",
			g.owner.Name(), a.field.Name(), g.mutex.Name(), fn.Name.Name)
	}
}
