package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
)

// TB is the subset of *testing.T the fixture harness needs (declared here
// so the lint package itself does not import testing).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRe matches expectation comments in fixture files:
//
//	x := readUnlocked() // want `guarded by mu`
//
// Each backquoted or double-quoted string is a regexp one diagnostic on
// that line must match; each expectation must be matched exactly once.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// CheckFixture loads the fixture package rooted at dir (a directory or
// "dir/..." pattern of packages whose files carry `// want` comments),
// runs the analyzers over it, and asserts that diagnostics and
// expectations match one-to-one per line. It returns the diagnostics for
// further assertions.
func CheckFixture(t TB, dir string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("lint fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("lint fixture %s: type error: %v", pkg.PkgPath, terr)
		}
	}
	diags := Run(pkgs, analyzers)

	var wants []*expectation
	for _, pkg := range pkgs {
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("lint fixture %s: %v", pkg.PkgPath, err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

// collectWants parses `// want` comments out of a fixture package.
func collectWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pat, err := unquoteWant(arg)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func unquoteWant(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	// Double-quoted: undo the two escapes the harness documents.
	body := s[1 : len(s)-1]
	body = strings.ReplaceAll(body, `\"`, `"`)
	body = strings.ReplaceAll(body, `\\`, `\`)
	return body, nil
}

// fileOf returns the syntax tree containing pos, for analyzers and tests
// that need file-scoped context.
func fileOf(pkg *Package, pos ast.Node) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos.Pos() && pos.Pos() <= f.End() {
			return f
		}
	}
	return nil
}
