package lint

import (
	"go/ast"
	"go/types"
)

// Droppederr flags discarded error results in non-test code: `_ = f()`
// (including the `_ = json.NewEncoder(w).Encode(v)` pattern that loses
// client write failures), blank identifiers in error positions of
// multi-assignments, and bare call statements whose results include an
// error. The fmt print family and the never-failing strings.Builder /
// bytes.Buffer writers are exempt; `defer f.Close()` and `go f()` are
// conventionally tolerated. A deliberate drop (e.g. best-effort Close on
// an already-failing path) takes `//lint:ignore droppederr <reason>`.
var Droppederr = &Analyzer{
	Name: "droppederr",
	Doc:  "no discarded error results (blank assignments or bare calls returning error)",
	Run:  runDroppederr,
}

func runDroppederr(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				checkAssignDrop(p, x)
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					if te := droppedErrType(p, call); te != "" && !errExempt(p, call) {
						p.Reportf(x.Pos(), "%s returns %s whose error is discarded; handle or log it", calleeName(p, call), te)
					}
				}
			}
			return true
		})
	}
}

// checkAssignDrop flags blank identifiers bound to error values.
func checkAssignDrop(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, _ := f() — match blank positions against the result tuple.
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || errExempt(p, call) {
			return
		}
		tuple, ok := p.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if i < tuple.Len() && isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s assigned to _; handle or log it", calleeName(p, call))
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := as.Rhs[i]
		if !isErrorType(p.TypeOf(rhs)) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if errExempt(p, call) {
				continue
			}
			p.Reportf(lhs.Pos(), "error result of %s assigned to _; handle or log it", calleeName(p, call))
			continue
		}
		p.Reportf(lhs.Pos(), "error value assigned to _; handle or log it")
	}
}

// droppedErrType reports the error-ish part of call's result type ("" if
// none): "an error" for single results, "a result tuple" when the error
// rides along other values.
func droppedErrType(p *Pass, call *ast.CallExpr) string {
	switch t := p.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return "a result tuple"
			}
		}
	default:
		if isErrorType(t) {
			return "an error"
		}
	}
	return ""
}

// errExempt lists callees whose dropped errors are conventional: the fmt
// print family and writers documented to never fail.
func errExempt(p *Pass, call *ast.CallExpr) bool {
	if pkg, name, ok := pkgFunc(p, call); ok {
		return pkg == "fmt" && (name == "Print" || name == "Printf" || name == "Println" ||
			name == "Fprint" || name == "Fprintf" || name == "Fprintln")
	}
	if recv, ok := methodRecvNamed(p, call); ok && recv.Obj().Pkg() != nil {
		path, name := recv.Obj().Pkg().Path(), recv.Obj().Name()
		return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
	}
	return false
}

// calleeName renders the called function for the diagnostic.
func calleeName(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	default:
		return "call"
	}
}
