// Package lint implements domdlint, the project's static-analysis pass.
// It machine-checks the conventions the DoMD pipeline's correctness rests
// on but the compiler cannot see: comment-declared mutex guards
// (lockguard), deterministic map iteration in the feature/tensor packages
// (detrange), no exact float comparisons (floateq), no wall-clock time or
// global RNG in pipeline code (walltime), no silently dropped errors
// (droppederr), request-context threading in HTTP serving paths
// (ctxflow), and godoc-convention doc comments on the operator-facing
// API surface (docstring).
//
// On top of those per-function checks sits an interprocedural layer: a
// module-wide call graph (callgraph.go) with effect summaries propagated
// to a fixed point, powering whole-program analyzers — global mutex
// acquisition order (lockorder), goroutine join paths (goleak), the WAL
// log-before-ack ingest contract (ackorder), and bidirectional agreement
// between registered obs metrics and docs/OPERATIONS.md (metriccatalog).
//
// Everything is built on the standard library only (go/parser, go/types,
// go/importer, go/token) — the module has zero dependencies and must stay
// that way. A finding is suppressed by the comment
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant check. Per-package analyzers set Run, which
// inspects a single package through a Pass; whole-program analyzers set
// RunModule instead, which sees every loaded package plus the module
// call graph through a ModulePass. Exactly one of the two is non-nil.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives.
	Name string
	// Doc is the one-line description shown by `domdlint -list`.
	Doc string
	// AppliesTo optionally restricts a per-package analyzer to some
	// packages; nil means every package. Module analyzers ignore it —
	// they scope themselves.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package.
	Run func(p *Pass)
	// RunModule inspects the whole module at once, with the call graph.
	RunModule func(p *ModulePass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Lockguard, Detrange, Floateq, Walltime, Droppederr, Ctxflow,
		Docstring, Lockorder, Goleak, Ackorder, Metriccatalog,
	}
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one (package, analyzer) run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil when the checker has none
// (analyzers must tolerate nil: type info can be partial on TypeErrors).
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ModulePass carries one whole-module analyzer run: every package a
// single Load call produced (shared FileSet, one type-checker universe)
// plus the call graph built over them.
type ModulePass struct {
	Analyzer *Analyzer
	// Pkgs is every loaded package, in Load order.
	Pkgs []*Package
	// Graph is the module call graph, built once and shared by all
	// module analyzers in the run.
	Graph *CallGraph
	// Fset is the shared FileSet (identical across Pkgs).
	Fset  *token.FileSet
	diags *[]Diagnostic
}

// Reportf records a finding at a source position in the loaded tree.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPosition(p.Fset.Position(pos), format, args...)
}

// ReportPosition records a finding at an explicit position — used for
// findings anchored outside the Go tree (e.g. a stale row in a markdown
// doc), where no token.Pos exists.
func (p *ModulePass) ReportPosition(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is Pass.TypeOf for module analyzers: expression types resolved
// through the owning package's Info.
func (p *ModulePass) TypeOf(pkg *Package, expr ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics sorted by position, with //lint:ignore-suppressed and
// duplicate findings removed. Module analyzers (RunModule) see all
// packages at once; the call graph is built lazily, only when one is
// selected.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// Suppressions merged across packages: module analyzers report into
	// any file of the tree, so the per-package scoping Run used to apply
	// would miss directives for them.
	ignores := ignoreSet{}
	for _, pkg := range pkgs {
		for k := range collectIgnores(pkg) {
			ignores[k] = true
		}
	}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		var fset *token.FileSet
		if len(pkgs) > 0 {
			fset = pkgs[0].Fset
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph, Fset: fset, diags: &raw}
		a.RunModule(mp)
	}
	var diags []Diagnostic
	for _, d := range raw {
		if !ignores.suppresses(d) {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedupe identical findings (e.g. one call site reached through two
	// overlapping inspection scopes).
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([\w,]+)(?:\s+(.*))?$`)

// ignoreKey locates one suppression directive.
type ignoreKey struct {
	file string
	line int
	name string
}

type ignoreSet map[ignoreKey]bool

// collectIgnores gathers //lint:ignore directives per file and line.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					set[ignoreKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return set
}

// suppresses reports whether a directive on the diagnostic's line or the
// line directly above names its analyzer (or "all").
func (s ignoreSet) suppresses(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if s[ignoreKey{d.Pos.Filename, line, d.Analyzer}] ||
			s[ignoreKey{d.Pos.Filename, line, "all"}] {
			return true
		}
	}
	return false
}
