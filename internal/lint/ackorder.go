package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Ackorder enforces the PR-4 log-before-ack durability contract,
// interprocedurally: on any path that appends to the WAL, nothing that
// acknowledges the record — writing a 2xx response or recording it in
// durable dedup/ack state — may happen before the append completes. A
// crash in the reordered window acknowledges a record the log never
// saw, which replay then cannot restore: the exact-computation
// guarantee the paper's framework rests on silently loses an RCC.
//
// Effects are summarized per function and propagated over the call
// graph, so the violation is caught wherever it is split across
// helpers: a handler that calls writeJSON(w, http.StatusOK) before
// calling an Ingest that appends, or an ingest method whose dedup-mark
// helper runs before the append.
//
// Durable state is defined structurally: any struct with a WAL-handle
// field is a durable owner, and its other fields are ack state. A WAL
// handle is a Log or ReplicatedLog declared in a package with a "wal"
// path segment, or an interface that declares Append and is satisfied
// by one of those (the shape statusq's durableLog narrows the WAL to).
// Structs without a WAL handle — like the server's in-memory fallback
// ingester — acknowledge without durability by design and are exempt.
// Functions that construct the durable owner (composite literal) are
// exempt too: restore/replay populates state from the log rather than
// ahead of it.
//
// Replication moves the durability point (PR-9): when an owner holds a
// replica set — several handle fields, or a slice of handles — one
// member's append is not durability, quorum confirmation is. Appending
// to a single member leaves the record quorum-pending; a 2xx response
// or durable-state mutation while quorum is pending is flagged even if
// no further append follows on that path. The fan-out — appends issued
// by ranging over the replica-set field — is the point where the
// pending quorum resolves.
var Ackorder = &Analyzer{
	Name:      "ackorder",
	Doc:       "no 2xx ack or durable-state mutation may precede the WAL append, or quorum confirmation on a replicated set (log-before-ack)",
	RunModule: runAckorder,
}

// ackEffects is the per-function summary for the ordering check.
type ackEffects uint8

const (
	ackMayAppend       ackEffects = 1 << iota // may reach a wal-handle Append
	ackMayWriteHeader                         // may reach ResponseWriter.WriteHeader
	ackMayAck2xx                              // may write a constant-2xx response
	ackMayMutate                              // may mutate durable ack state
	ackMayMemberAppend                        // may append to one member of a quorum replica set
	ackMayQuorumAppend                        // may run the quorum fan-out over a replica set
)

type ackState struct {
	pass *ModulePass
	// walLogs are the concrete wal log types (Log, ReplicatedLog) used
	// to decide which Append-declaring interfaces count as WAL handles.
	walLogs []types.Type
	// durableFields maps each ack-state field (non-handle fields of a
	// struct that also holds a WAL handle) to true.
	durableFields map[*types.Var]bool
	// durableOwners are the structs holding a WAL handle, for the
	// constructor exemption.
	durableOwners map[*types.TypeName]bool
	// quorumMembers are scalar handle fields of quorum owners (e.g. a
	// primary): appending through one leaves quorum pending.
	quorumMembers map[*types.Var]bool
	// quorumSets are slice/array-of-handle fields of quorum owners (the
	// follower set): ranging over one and appending is the fan-out that
	// confirms quorum.
	quorumSets map[*types.Var]bool
	// fanouts are the source spans of range-statement bodies iterating a
	// quorum set, per function: appends inside them are quorum appends.
	fanouts map[*Node][][2]token.Pos
	calls   map[*Node][]callSite
	summary map[*Node]ackEffects
}

type callSite struct {
	callee *Node
	site   token.Pos
}

func runAckorder(p *ModulePass) {
	st := &ackState{
		pass:          p,
		durableFields: map[*types.Var]bool{},
		durableOwners: map[*types.TypeName]bool{},
		quorumMembers: map[*types.Var]bool{},
		quorumSets:    map[*types.Var]bool{},
		fanouts:       map[*Node][][2]token.Pos{},
		calls:         map[*Node][]callSite{},
		summary:       map[*Node]ackEffects{},
	}
	st.collectDurable()
	for _, n := range p.Graph.Nodes() {
		node := n
		inspectOutsideGo(node.Decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				for _, rc := range p.Graph.resolve(node.Pkg, x) {
					st.calls[node] = append(st.calls[node], callSite{rc.node, x.Pos()})
				}
			case *ast.RangeStmt:
				if st.isQuorumSetExpr(node.Pkg, x.X) {
					st.fanouts[node] = append(st.fanouts[node], [2]token.Pos{x.Body.Pos(), x.Body.End()})
				}
			}
			return true
		})
	}
	// Stage 1: who can reach WriteHeader — needed before constant-2xx
	// call sites can be classified as acks.
	p.Graph.Fixpoint(func(n *Node) bool {
		eff := st.summary[n]
		if st.ownWriteHeader(n) {
			eff |= ackMayWriteHeader
		}
		for _, c := range st.calls[n] {
			eff |= st.summary[c.callee] & ackMayWriteHeader
		}
		if eff == st.summary[n] {
			return false
		}
		st.summary[n] = eff
		return true
	})
	// Stage 2: append / ack / mutate summaries (ack sites depend on
	// stage 1's WriteHeader reachability).
	p.Graph.Fixpoint(func(n *Node) bool {
		eff := st.summary[n] | st.ownOrderEffects(n)
		for _, c := range st.calls[n] {
			eff |= st.summary[c.callee] &
				(ackMayAppend | ackMayAck2xx | ackMayMutate | ackMayMemberAppend | ackMayQuorumAppend)
		}
		if eff == st.summary[n] {
			return false
		}
		st.summary[n] = eff
		return true
	})
	for _, n := range p.Graph.Nodes() {
		if st.constructsDurable(n) {
			continue
		}
		w := &ackWalker{st: st, node: n}
		w.walk(n.Decl.Body)
	}
}

// collectDurable finds every struct holding a WAL handle and marks its
// other fields as durable ack state. Owners whose handles form a
// replica set — several scalar handles, or a slice of handles — are
// quorum owners: their handle fields feed the member/fan-out
// classification.
func (st *ackState) collectDurable() {
	// Pass 1: the concrete wal log types, so Append-declaring interfaces
	// can be tested against them.
	for _, pkg := range st.pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, isType := scope.Lookup(name).(*types.TypeName)
			if !isType || tn.IsAlias() || tn.Pkg() == nil {
				continue
			}
			if (tn.Name() == "Log" || tn.Name() == "ReplicatedLog") &&
				pathHasSegment(tn.Pkg().Path(), "wal") {
				if _, isStruct := tn.Type().Underlying().(*types.Struct); isStruct {
					st.walLogs = append(st.walLogs, tn.Type())
				}
			}
		}
	}
	// Pass 2: durable owners and their field roles.
	for _, pkg := range st.pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, isType := scope.Lookup(name).(*types.TypeName)
			if !isType || tn.IsAlias() {
				continue
			}
			str, isStruct := tn.Type().Underlying().(*types.Struct)
			if !isStruct {
				continue
			}
			var handles, sets []int
			for i := 0; i < str.NumFields(); i++ {
				switch t := str.Field(i).Type(); {
				case st.isWALHandle(t):
					handles = append(handles, i)
				case st.isWALHandleSlice(t):
					sets = append(sets, i)
				}
			}
			if len(handles)+len(sets) == 0 {
				continue
			}
			st.durableOwners[tn] = true
			quorum := len(sets) > 0 || len(handles) >= 2
			walField := map[int]bool{}
			for _, i := range handles {
				walField[i] = true
				if quorum {
					st.quorumMembers[str.Field(i)] = true
				}
			}
			for _, i := range sets {
				walField[i] = true
				if quorum {
					st.quorumSets[str.Field(i)] = true
				}
			}
			for i := 0; i < str.NumFields(); i++ {
				if !walField[i] {
					st.durableFields[str.Field(i)] = true
				}
			}
		}
	}
}

// isWALHandle reports whether t is (a pointer to) a wal log type — Log
// or ReplicatedLog declared in a package with a "wal" path segment — or
// an interface that declares Append and is satisfied by one.
func (st *ackState) isWALHandle(t types.Type) bool {
	if n, isNamed := namedOf(t); isNamed && n.Obj().Pkg() != nil &&
		(n.Obj().Name() == "Log" || n.Obj().Name() == "ReplicatedLog") &&
		pathHasSegment(n.Obj().Pkg().Path(), "wal") {
		return true
	}
	iface, isIface := t.Underlying().(*types.Interface)
	if !isIface {
		return false
	}
	declaresAppend := false
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Append" {
			declaresAppend = true
			break
		}
	}
	if !declaresAppend {
		return false
	}
	for _, log := range st.walLogs {
		if types.Implements(types.NewPointer(log), iface) {
			return true
		}
	}
	return false
}

// isWALHandleSlice reports whether t is a slice or array of WAL handles
// (a replica set).
func (st *ackState) isWALHandleSlice(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return st.isWALHandle(u.Elem())
	case *types.Array:
		return st.isWALHandle(u.Elem())
	}
	return false
}

// isWALAppend reports whether call invokes Append on a WAL handle.
func (st *ackState) isWALAppend(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Append" {
		return false
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	return st.isWALHandle(selection.Recv())
}

// isQuorumSetExpr reports whether e selects a quorum replica-set field
// (the `s.followers` in `for _, f := range s.followers`).
func (st *ackState) isQuorumSetExpr(pkg *Package, e ast.Expr) bool {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	v, isVar := pkg.Info.Uses[sel.Sel].(*types.Var)
	return isVar && st.quorumSets[v]
}

// classifyAppend refines a WAL append at pos in n: a quorum fan-out
// append (inside a range over the replica set), a member append
// (through a scalar handle field or one indexed element of the set), or
// a plain single-log append.
func (st *ackState) classifyAppend(n *Node, call *ast.CallExpr) ackEffects {
	for _, span := range st.fanouts[n] {
		if span[0] <= call.Pos() && call.Pos() < span[1] {
			return ackMayAppend | ackMayQuorumAppend
		}
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	recv := ast.Unparen(sel.X)
	for {
		switch x := recv.(type) {
		case *ast.IndexExpr:
			recv = ast.Unparen(x.X)
		case *ast.StarExpr:
			recv = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			if v, isVar := n.Pkg.Info.Uses[x.Sel].(*types.Var); isVar &&
				(st.quorumMembers[v] || st.quorumSets[v]) {
				return ackMayAppend | ackMayMemberAppend
			}
			return ackMayAppend
		default:
			return ackMayAppend
		}
	}
}

// isWriteHeader reports whether call is ResponseWriter.WriteHeader (any
// type implementing the net/http signature — the fixture and the real
// server both go through the interface method).
func isWriteHeader(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "WriteHeader" {
		return false
	}
	selection := pkg.Info.Selections[sel]
	return selection != nil && selection.Kind() == types.MethodVal
}

func (st *ackState) ownWriteHeader(n *Node) bool {
	found := false
	inspectOutsideGo(n.Decl.Body, func(x ast.Node) bool {
		if call, isCall := x.(*ast.CallExpr); isCall && isWriteHeader(n.Pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

// ownOrderEffects computes a node's direct append/ack/mutate effects.
func (st *ackState) ownOrderEffects(n *Node) ackEffects {
	eff := ackEffects(0)
	inspectOutsideGo(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if st.isWALAppend(n.Pkg, x) {
				eff |= st.classifyAppend(n, x)
			}
			if st.isAck2xx(n, x) {
				eff |= ackMayAck2xx
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if st.mutatesDurable(n.Pkg, lhs) {
					eff |= ackMayMutate
				}
			}
		case *ast.IncDecStmt:
			if st.mutatesDurable(n.Pkg, x.X) {
				eff |= ackMayMutate
			}
		}
		return true
	})
	return eff
}

// isAck2xx reports whether call writes a success status: a constant in
// [200,300) passed to a function that (transitively) reaches
// WriteHeader, or to WriteHeader itself.
func (st *ackState) isAck2xx(n *Node, call *ast.CallExpr) bool {
	has2xx := false
	for _, arg := range call.Args {
		if tv, has := n.Pkg.Info.Types[arg]; has && tv.Value != nil &&
			tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact && v >= 200 && v < 300 {
				has2xx = true
			}
		}
	}
	if !has2xx {
		return false
	}
	if isWriteHeader(n.Pkg, call) {
		return true
	}
	for _, rc := range st.pass.Graph.resolve(n.Pkg, call) {
		if st.summary[rc.node]&ackMayWriteHeader != 0 {
			return true
		}
	}
	return false
}

// mutatesDurable reports whether lhs writes a durable ack-state field
// (through any chain of indexing/dereference).
func (st *ackState) mutatesDurable(pkg *Package, lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			lhs = x.X
			continue
		case *ast.StarExpr:
			lhs = x.X
			continue
		case *ast.ParenExpr:
			lhs = x.X
			continue
		case *ast.SelectorExpr:
			if v, isVar := pkg.Info.Uses[x.Sel].(*types.Var); isVar && st.durableFields[v] {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// constructsDurable reports whether n builds a durable owner via a
// composite literal — restore/constructor code, exempt like lockguard's
// constructor rule.
func (st *ackState) constructsDurable(n *Node) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if lit, isLit := x.(*ast.CompositeLit); isLit {
			if named, isNamed := namedOf(st.pass.TypeOf(n.Pkg, lit)); isNamed &&
				st.durableOwners[named.Obj()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// pendingEffect is one ack-before-append candidate awaiting a later
// append on the same (linearized) path.
type pendingEffect struct {
	pos  token.Pos
	desc string
}

// ackWalker re-walks one body in source order carrying the pending
// effects; an append reports and clears them, a return discards them
// (that path ended without appending, so nothing was mis-ordered).
// quorumPending tracks the replicated variant: a member append leaves
// the record awaiting quorum, and any ack before the fan-out resolves
// it is reported immediately — even when no further append follows.
type ackWalker struct {
	st            *ackState
	node          *Node
	pending       []pendingEffect
	quorumPending bool
}

func (w *ackWalker) walk(body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			// Process result expressions first: `return s.log.Append(p)`
			// is an append with the current pending set.
			for _, res := range x.Results {
				w.walk(res)
			}
			w.pending = nil
			w.quorumPending = false
			return false
		case *ast.CallExpr:
			w.visitCall(x)
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if w.st.mutatesDurable(w.node.Pkg, lhs) {
					w.ack(lhs.Pos(), "durable dedup/ack state mutated")
				}
			}
			return true
		case *ast.IncDecStmt:
			if w.st.mutatesDurable(w.node.Pkg, x.X) {
				w.ack(x.Pos(), "durable dedup/ack state mutated")
			}
			return true
		}
		return true
	})
}

func (w *ackWalker) visitCall(call *ast.CallExpr) {
	pkg := w.node.Pkg
	calleeEff := ackEffects(0)
	for _, rc := range w.st.pass.Graph.resolve(pkg, call) {
		calleeEff |= w.st.summary[rc.node]
	}
	if w.st.isWALAppend(pkg, call) {
		calleeEff |= w.st.classifyAppend(w.node, call)
	}
	if calleeEff&ackMayAppend != 0 {
		for _, pe := range w.pending {
			w.st.pass.Reportf(pe.pos,
				"%s before the WAL append at %s completes (log-before-ack): a crash in between acks a record the log never saw",
				pe.desc, pkg.Fset.Position(call.Pos()))
		}
		w.pending = nil
		switch {
		case calleeEff&ackMayQuorumAppend != 0:
			// The fan-out confirms quorum: the record is durable.
			w.quorumPending = false
		case calleeEff&ackMayMemberAppend != 0:
			// One member of a replica set appended: durable only there,
			// quorum still outstanding.
			w.quorumPending = true
		}
		return
	}
	if w.st.isAck2xx(w.node, call) {
		w.ack(call.Pos(), "2xx response written")
		return
	}
	if calleeEff&ackMayAck2xx != 0 {
		w.ack(call.Pos(), "2xx response written (via callee)")
		return
	}
	if calleeEff&ackMayMutate != 0 {
		w.ack(call.Pos(), "durable dedup/ack state mutated (via callee)")
	}
}

// ack handles one acknowledgment-like effect: while quorum is pending
// it is a violation right here (the fan-out may never run on this
// path); otherwise it joins the pending set awaiting a later append.
func (w *ackWalker) ack(pos token.Pos, desc string) {
	if w.quorumPending {
		w.st.pass.Reportf(pos,
			"%s after a member append but before the quorum fan-out confirms it (quorum-ack): losing that one member loses an acknowledged record",
			desc)
		return
	}
	w.pending = append(w.pending, pendingEffect{pos, desc})
}
