package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Ackorder enforces the PR-4 log-before-ack durability contract,
// interprocedurally: on any path that appends to the WAL, nothing that
// acknowledges the record — writing a 2xx response or recording it in
// durable dedup/ack state — may happen before the append completes. A
// crash in the reordered window acknowledges a record the log never
// saw, which replay then cannot restore: the exact-computation
// guarantee the paper's framework rests on silently loses an RCC.
//
// Effects are summarized per function and propagated over the call
// graph, so the violation is caught wherever it is split across
// helpers: a handler that calls writeJSON(w, http.StatusOK) before
// calling an Ingest that appends, or an ingest method whose dedup-mark
// helper runs before the append.
//
// Durable state is defined structurally: any struct with a field of
// type *Log from a wal package (path segment "wal") is a durable owner,
// and its other fields are ack state. Structs without a WAL handle —
// like the server's in-memory fallback ingester — acknowledge without
// durability by design and are exempt. Functions that construct the
// durable owner (composite literal) are exempt too: restore/replay
// populates state from the log rather than ahead of it.
var Ackorder = &Analyzer{
	Name:      "ackorder",
	Doc:       "no 2xx ack or durable-state mutation may precede the WAL append (log-before-ack)",
	RunModule: runAckorder,
}

// ackEffects is the per-function summary for the ordering check.
type ackEffects uint8

const (
	ackMayAppend      ackEffects = 1 << iota // may reach wal Log.Append
	ackMayWriteHeader                        // may reach ResponseWriter.WriteHeader
	ackMayAck2xx                             // may write a constant-2xx response
	ackMayMutate                             // may mutate durable ack state
)

type ackState struct {
	pass *ModulePass
	// durableFields maps each ack-state field (fields of a struct that
	// also holds a *wal.Log) to true.
	durableFields map[*types.Var]bool
	// durableOwners are the structs holding a WAL handle, for the
	// constructor exemption.
	durableOwners map[*types.TypeName]bool
	calls         map[*Node][]callSite
	summary       map[*Node]ackEffects
}

type callSite struct {
	callee *Node
	site   token.Pos
}

func runAckorder(p *ModulePass) {
	st := &ackState{
		pass:          p,
		durableFields: map[*types.Var]bool{},
		durableOwners: map[*types.TypeName]bool{},
		calls:         map[*Node][]callSite{},
		summary:       map[*Node]ackEffects{},
	}
	st.collectDurable()
	for _, n := range p.Graph.Nodes() {
		node := n
		inspectOutsideGo(node.Decl.Body, func(x ast.Node) bool {
			if call, isCall := x.(*ast.CallExpr); isCall {
				for _, rc := range p.Graph.resolve(node.Pkg, call) {
					st.calls[node] = append(st.calls[node], callSite{rc.node, call.Pos()})
				}
			}
			return true
		})
	}
	// Stage 1: who can reach WriteHeader — needed before constant-2xx
	// call sites can be classified as acks.
	p.Graph.Fixpoint(func(n *Node) bool {
		eff := st.summary[n]
		if st.ownWriteHeader(n) {
			eff |= ackMayWriteHeader
		}
		for _, c := range st.calls[n] {
			eff |= st.summary[c.callee] & ackMayWriteHeader
		}
		if eff == st.summary[n] {
			return false
		}
		st.summary[n] = eff
		return true
	})
	// Stage 2: append / ack / mutate summaries (ack sites depend on
	// stage 1's WriteHeader reachability).
	p.Graph.Fixpoint(func(n *Node) bool {
		eff := st.summary[n] | st.ownOrderEffects(n)
		for _, c := range st.calls[n] {
			eff |= st.summary[c.callee] & (ackMayAppend | ackMayAck2xx | ackMayMutate)
		}
		if eff == st.summary[n] {
			return false
		}
		st.summary[n] = eff
		return true
	})
	for _, n := range p.Graph.Nodes() {
		if st.constructsDurable(n) {
			continue
		}
		w := &ackWalker{st: st, node: n}
		w.walk(n.Decl.Body)
	}
}

// collectDurable finds every struct holding a *wal.Log and marks its
// other fields as durable ack state.
func (st *ackState) collectDurable() {
	for _, pkg := range st.pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, isType := scope.Lookup(name).(*types.TypeName)
			if !isType || tn.IsAlias() {
				continue
			}
			str, isStruct := tn.Type().Underlying().(*types.Struct)
			if !isStruct {
				continue
			}
			logIdx := -1
			for i := 0; i < str.NumFields(); i++ {
				if isWALLog(str.Field(i).Type()) {
					logIdx = i
					break
				}
			}
			if logIdx < 0 {
				continue
			}
			st.durableOwners[tn] = true
			for i := 0; i < str.NumFields(); i++ {
				if i == logIdx {
					continue
				}
				st.durableFields[str.Field(i)] = true
			}
		}
	}
}

// isWALLog reports whether t is (a pointer to) a named type Log declared
// in a package with a "wal" path segment.
func isWALLog(t types.Type) bool {
	n, isNamed := namedOf(t)
	if !isNamed || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Log" && pathHasSegment(n.Obj().Pkg().Path(), "wal")
}

// isWALAppend reports whether call invokes Append on a wal Log.
func isWALAppend(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Append" {
		return false
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	return isWALLog(selection.Recv())
}

// isWriteHeader reports whether call is ResponseWriter.WriteHeader (any
// type implementing the net/http signature — the fixture and the real
// server both go through the interface method).
func isWriteHeader(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "WriteHeader" {
		return false
	}
	selection := pkg.Info.Selections[sel]
	return selection != nil && selection.Kind() == types.MethodVal
}

func (st *ackState) ownWriteHeader(n *Node) bool {
	found := false
	inspectOutsideGo(n.Decl.Body, func(x ast.Node) bool {
		if call, isCall := x.(*ast.CallExpr); isCall && isWriteHeader(n.Pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

// ownOrderEffects computes a node's direct append/ack/mutate effects.
func (st *ackState) ownOrderEffects(n *Node) ackEffects {
	eff := ackEffects(0)
	inspectOutsideGo(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if isWALAppend(n.Pkg, x) {
				eff |= ackMayAppend
			}
			if st.isAck2xx(n, x) {
				eff |= ackMayAck2xx
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if st.mutatesDurable(n.Pkg, lhs) {
					eff |= ackMayMutate
				}
			}
		case *ast.IncDecStmt:
			if st.mutatesDurable(n.Pkg, x.X) {
				eff |= ackMayMutate
			}
		}
		return true
	})
	return eff
}

// isAck2xx reports whether call writes a success status: a constant in
// [200,300) passed to a function that (transitively) reaches
// WriteHeader, or to WriteHeader itself.
func (st *ackState) isAck2xx(n *Node, call *ast.CallExpr) bool {
	has2xx := false
	for _, arg := range call.Args {
		if tv, has := n.Pkg.Info.Types[arg]; has && tv.Value != nil &&
			tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact && v >= 200 && v < 300 {
				has2xx = true
			}
		}
	}
	if !has2xx {
		return false
	}
	if isWriteHeader(n.Pkg, call) {
		return true
	}
	for _, rc := range st.pass.Graph.resolve(n.Pkg, call) {
		if st.summary[rc.node]&ackMayWriteHeader != 0 {
			return true
		}
	}
	return false
}

// mutatesDurable reports whether lhs writes a durable ack-state field
// (through any chain of indexing/dereference).
func (st *ackState) mutatesDurable(pkg *Package, lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			lhs = x.X
			continue
		case *ast.StarExpr:
			lhs = x.X
			continue
		case *ast.ParenExpr:
			lhs = x.X
			continue
		case *ast.SelectorExpr:
			if v, isVar := pkg.Info.Uses[x.Sel].(*types.Var); isVar && st.durableFields[v] {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// constructsDurable reports whether n builds a durable owner via a
// composite literal — restore/constructor code, exempt like lockguard's
// constructor rule.
func (st *ackState) constructsDurable(n *Node) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if lit, isLit := x.(*ast.CompositeLit); isLit {
			if named, isNamed := namedOf(st.pass.TypeOf(n.Pkg, lit)); isNamed &&
				st.durableOwners[named.Obj()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// pendingEffect is one ack-before-append candidate awaiting a later
// append on the same (linearized) path.
type pendingEffect struct {
	pos  token.Pos
	desc string
}

// ackWalker re-walks one body in source order carrying the pending
// effects; an append reports and clears them, a return discards them
// (that path ended without appending, so nothing was mis-ordered).
type ackWalker struct {
	st      *ackState
	node    *Node
	pending []pendingEffect
}

func (w *ackWalker) walk(body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			// Process result expressions first: `return s.log.Append(p)`
			// is an append with the current pending set.
			for _, res := range x.Results {
				w.walk(res)
			}
			w.pending = nil
			return false
		case *ast.CallExpr:
			w.visitCall(x)
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if w.st.mutatesDurable(w.node.Pkg, lhs) {
					w.pend(lhs.Pos(), "durable dedup/ack state mutated")
				}
			}
			return true
		case *ast.IncDecStmt:
			if w.st.mutatesDurable(w.node.Pkg, x.X) {
				w.pend(x.Pos(), "durable dedup/ack state mutated")
			}
			return true
		}
		return true
	})
}

func (w *ackWalker) visitCall(call *ast.CallExpr) {
	pkg := w.node.Pkg
	calleeEff := ackEffects(0)
	for _, rc := range w.st.pass.Graph.resolve(pkg, call) {
		calleeEff |= w.st.summary[rc.node]
	}
	if isWALAppend(pkg, call) || calleeEff&ackMayAppend != 0 {
		for _, pe := range w.pending {
			w.st.pass.Reportf(pe.pos,
				"%s before the WAL append at %s completes (log-before-ack): a crash in between acks a record the log never saw",
				pe.desc, pkg.Fset.Position(call.Pos()))
		}
		w.pending = nil
		return
	}
	if w.st.isAck2xx(w.node, call) {
		w.pend(call.Pos(), "2xx response written")
		return
	}
	if calleeEff&ackMayAck2xx != 0 {
		w.pend(call.Pos(), "2xx response written (via callee)")
		return
	}
	if calleeEff&ackMayMutate != 0 {
		w.pend(call.Pos(), "durable dedup/ack state mutated (via callee)")
	}
}

func (w *ackWalker) pend(pos token.Pos, desc string) {
	w.pending = append(w.pending, pendingEffect{pos, desc})
}
