package lint

// Internal tests for the call-graph builder: static resolution,
// interface dispatch bounding (needs the unexported bound parameter),
// and fixpoint termination over recursion cycles.

import (
	"sort"
	"testing"
)

func loadCallgraphFixture(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load("testdata/src/callgraph")
	if err != nil {
		t.Fatalf("load callgraph fixture: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	return pkgs
}

func findNode(t *testing.T, g *CallGraph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	var names []string
	for _, n := range g.Nodes() {
		names = append(names, n.Name())
	}
	t.Fatalf("no node %q in graph; have %v", name, names)
	return nil
}

func calleeNames(n *Node) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range n.Out {
		name := e.Callee.Name()
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func TestCallGraphStaticCalls(t *testing.T) {
	g := BuildCallGraph(loadCallgraphFixture(t))
	cases := []struct {
		caller string
		want   []string
	}{
		{"callgraph.Chain", []string{"callgraph.step1"}},
		{"callgraph.step1", []string{"callgraph.step2"}},
		{"callgraph.step2", nil},
		{"callgraph.Bump", []string{"callgraph.(Counter).Inc"}},
		{"callgraph.Mutual", []string{"callgraph.mutual2"}},
		{"callgraph.mutual2", []string{"callgraph.Mutual"}},
	}
	for _, c := range cases {
		got := calleeNames(findNode(t, g, c.caller))
		if len(got) != len(c.want) {
			t.Errorf("%s callees = %v, want %v", c.caller, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s callees = %v, want %v", c.caller, got, c.want)
				break
			}
		}
	}
	// Reverse edges mirror the forward ones.
	step1 := findNode(t, g, "callgraph.step1")
	foundChain := false
	for _, in := range step1.In {
		if in.Name() == "callgraph.Chain" {
			foundChain = true
		}
	}
	if !foundChain {
		t.Error("step1.In does not record Chain as a caller")
	}
}

func TestCallGraphInterfaceDispatchBounded(t *testing.T) {
	pkgs := loadCallgraphFixture(t)
	cases := []struct {
		bound       int
		wantCallees []string
	}{
		// Bound at or above the three implementations: full fan-out.
		{16, []string{"callgraph.(Bell).Ring", "callgraph.(Horn).Ring", "callgraph.(Siren).Ring"}},
		{3, []string{"callgraph.(Bell).Ring", "callgraph.(Horn).Ring", "callgraph.(Siren).Ring"}},
		// Below it: the site goes opaque rather than guessing.
		{2, nil},
	}
	for _, c := range cases {
		g := buildCallGraph(pkgs, c.bound)
		d := findNode(t, g, "callgraph.Dispatch")
		got := calleeNames(d)
		if len(got) != len(c.wantCallees) {
			t.Errorf("bound %d: Dispatch callees = %v, want %v", c.bound, got, c.wantCallees)
			continue
		}
		for i := range got {
			if got[i] != c.wantCallees[i] {
				t.Errorf("bound %d: Dispatch callees = %v, want %v", c.bound, got, c.wantCallees)
				break
			}
		}
		for _, e := range d.Out {
			if !e.Dynamic {
				t.Errorf("bound %d: dispatch edge to %s not marked Dynamic", c.bound, e.Callee.Name())
			}
		}
	}
}

func TestCallGraphFixpointTerminatesOnRecursion(t *testing.T) {
	g := BuildCallGraph(loadCallgraphFixture(t))
	// Transitive reachability is the canonical monotone summary; the
	// Mutual <-> mutual2 cycle must settle, not loop.
	reach := map[*Node]map[*Node]bool{}
	for _, n := range g.Nodes() {
		reach[n] = map[*Node]bool{}
	}
	rounds := 0
	g.Fixpoint(func(n *Node) bool {
		rounds++
		if rounds > 10*len(g.Nodes())*len(g.Nodes()) {
			t.Fatalf("fixpoint not converging after %d rounds", rounds)
		}
		set := reach[n]
		before := len(set)
		for _, e := range n.Out {
			set[e.Callee] = true
			for m := range reach[e.Callee] {
				set[m] = true
			}
		}
		return len(set) != before
	})
	mutual := findNode(t, g, "callgraph.Mutual")
	mutual2 := findNode(t, g, "callgraph.mutual2")
	if !reach[mutual][mutual2] || !reach[mutual][mutual] {
		t.Error("Mutual's reachability summary missing the recursion cycle members")
	}
	chain := findNode(t, g, "callgraph.Chain")
	step2 := findNode(t, g, "callgraph.step2")
	if !reach[chain][step2] {
		t.Error("Chain's summary missing transitive callee step2")
	}
}
