package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit analyzers run
// over. Test files (*_test.go) are excluded: the invariants domdlint
// enforces are production-code conventions, and skipping them keeps the
// loader free of external-test-package bookkeeping.
type Package struct {
	// PkgPath is the import path (modulePath + "/" + dir for module
	// packages, including testdata fixtures loaded by explicit dir).
	PkgPath string
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the checked package (possibly incomplete on TypeErrors).
	Types *types.Package
	// Info carries the type-checker's expression/object maps.
	Info *types.Info
	// TypeErrors collects type-check errors; analyzers still run on a
	// package with errors, but callers should surface them (partial type
	// info silently weakens every type-driven check).
	TypeErrors []error
}

// loader resolves, parses, and type-checks module packages in dependency
// order using only the standard library. Module-internal imports are
// type-checked from source; standard-library imports go through
// importer.Default with a from-source fallback, cached per path.
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string

	pkgs    map[string]*Package // module-internal, by import path
	loading map[string]bool     // import-cycle guard

	stdCache map[string]*types.Package
	std      types.Importer // importer.Default()
	stdSrc   types.Importer // from-source fallback
}

// Load expands the given package patterns (a directory, or a directory
// pattern ending in "/..." which walks recursively skipping testdata,
// vendor, and hidden directories), then parses and type-checks each
// matched package plus its module-internal dependencies. Relative
// patterns resolve against the current working directory; the enclosing
// module is discovered by walking up to go.mod.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	moduleDir, modulePath, err := FindModule(cwd)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		stdCache:   make(map[string]*types.Package),
		std:        importer.Default(),
		stdSrc:     importer.ForCompiler(fset, "source", nil),
	}

	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expandPattern(cwd, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}

	var out []*Package
	for _, dir := range dirs {
		p, err := l.load(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (moduleDir, modulePath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPattern turns one pattern into absolute package directories.
func expandPattern(cwd, pat string) ([]string, error) {
	recursive := false
	if pat == "..." {
		pat, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		pat, recursive = rest, true
		if pat == "" {
			pat = "/"
		}
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
	}
	if !recursive {
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return []string{dir}, nil
	}
	var dirs []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleDir)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor for module-internal import paths.
func (l *loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

func (l *loader) isModulePath(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// load parses and type-checks the package in dir (memoized).
func (l *loader) load(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// Pre-load module-internal dependencies so the type-checker's import
	// callback always finds them checked (Go forbids import cycles, so
	// the recursion terminates).
	for _, f := range files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if l.isModulePath(ip) {
				if _, err := l.load(l.dirFor(ip)); err != nil {
					return nil, err
				}
			}
		}
	}

	p := &Package{
		PkgPath: path,
		Name:    pkgName,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check reports the first hard error through conf.Error as well, so
	// its return error is redundant with TypeErrors; the (possibly
	// incomplete) package is still usable for analysis.
	//lint:ignore droppederr Check reports through conf.Error; its return duplicates TypeErrors
	p.Types, _ = conf.Check(path, l.fset, files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importPkg resolves one import for the type checker: module-internal
// packages from source, everything else through the standard importers.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		p, err := l.load(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.stdCache[path]; ok {
		return p, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		// Export data unavailable (e.g. pristine build cache): fall back
		// to type-checking the dependency from GOROOT source.
		p, err = l.stdSrc.Import(path)
		if err != nil {
			return nil, err
		}
	}
	l.stdCache[path] = p
	return p, nil
}
