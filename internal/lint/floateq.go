package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// floateqWhitelist names files (by base name) in which exact float
// comparison is wholesale-sanctioned — e.g. a differential test harness
// whose entire point is bitwise equality. Prefer per-site
// `//lint:ignore floateq <reason>` directives; the whitelist exists for
// files where that would drown the code.
var floateqWhitelist = map[string]bool{}

// Floateq flags == and != between floating-point operands. Exact float
// equality silently breaks under re-association (the parallel tensor
// build), constant folding, and platform FMA differences; comparisons
// should use an epsilon, math.Signbit, or integer/logical keys. The NaN
// self-comparison idiom (x != x) is allowed, as are compile-time constant
// comparisons.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "no == / != on floating-point operands (use epsilons or exact integer keys)",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	for _, f := range p.Pkg.Files {
		pos := p.Pkg.Fset.Position(f.Pos())
		if floateqWhitelist[filepath.Base(pos.Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tvX, okX := p.Pkg.Info.Types[be.X]
			tvY, okY := p.Pkg.Info.Types[be.Y]
			if !okX || !okY {
				return true
			}
			if !isFloat(tvX.Type) && !isFloat(tvY.Type) {
				return true
			}
			// Both operands constant: folded at compile time, no runtime
			// float comparison happens.
			if tvX.Value != nil && tvY.Value != nil {
				return true
			}
			// x != x / x == x is the portable NaN test.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison (%s %s %s); use an epsilon or an exact integer key",
				be.Op, types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
