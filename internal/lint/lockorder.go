package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder enforces a global mutex acquisition partial order across the
// whole module: if any path acquires B while holding A, no path anywhere
// may acquire A while holding B. The deadlock class this guards against
// is exactly one refactor away from ShardedCatalog's scatter-gather —
// today the fan-out is sequential, but the moment it goes parallel a
// router-lock-then-shard-lock path racing a shard-lock-then-router-lock
// path wedges the serving tier. Single-function analysis cannot see it:
// each function takes one lock and calls a helper that takes the other,
// so the cycle only exists on the call graph.
//
// Lock classes are declared mutexes — struct fields and package-level
// variables of type sync.Mutex / sync.RWMutex. Two instances of the same
// class (two shards) are exempt from the order graph: instance ranking
// (e.g. by shard index) is a different protocol the analyzer does not
// model. Function-local mutexes cannot participate in cross-function
// cycles and are skipped. Goroutine bodies are walked with an empty held
// set: a spawned goroutine does not inherit its parent's locks.
var Lockorder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition must follow one global order; flags cycles across the call graph",
	RunModule: runLockorder,
}

// lockCallTarget classifies call as a sync.Mutex/RWMutex operation and
// resolves the declared mutex variable behind it — the lock class. It
// sees through embedding: for t.Lock() with an embedded sync.Mutex the
// selection's index path leads to the promoted field. className is a
// human-readable "Owner.mu" (or "pkg.mu" for package-level vars); op is
// the method name (Lock, RLock, TryLock, TryRLock, Unlock, RUnlock).
func lockCallTarget(pkg *Package, call *ast.CallExpr) (class *types.Var, className, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return nil, "", "", false
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, "", "", false
	}
	m, isFunc := selection.Obj().(*types.Func)
	if !isFunc || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	if idx := selection.Index(); len(idx) > 1 {
		// Promoted method: the receiver embeds the mutex (possibly
		// through intermediate embedded structs); the index path walks
		// field by field to it.
		t := selection.Recv()
		var fv *types.Var
		for _, i := range idx[:len(idx)-1] {
			st, isStruct := derefStruct(t)
			if !isStruct || i >= st.NumFields() {
				return nil, "", "", false
			}
			fv = st.Field(i)
			t = fv.Type()
		}
		name := fv.Name()
		if n, okN := namedOf(selection.Recv()); okN {
			name = n.Obj().Name() + "." + name
		}
		return fv, name, op, true
	}
	// Unpromoted: the receiver expression itself denotes the mutex.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		v, isVar := pkg.Info.Uses[x.Sel].(*types.Var)
		if !isVar {
			return nil, "", "", false
		}
		name := v.Name()
		if tv, okT := pkg.Info.Types[x.X]; okT {
			if n, okN := namedOf(tv.Type); okN {
				name = n.Obj().Name() + "." + name
			}
		} else if v.Pkg() != nil {
			// pkgname.muVar.Lock(): qualify by package instead.
			name = v.Pkg().Name() + "." + name
		}
		return v, name, op, true
	case *ast.Ident:
		v, isVar := pkg.Info.Uses[x].(*types.Var)
		if !isVar {
			return nil, "", "", false
		}
		name := v.Name()
		if v.Pkg() != nil {
			name = v.Pkg().Name() + "." + name
		}
		return v, name, op, true
	}
	return nil, "", "", false
}

// derefStruct unwraps a pointer and returns the underlying struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	s, isStruct := t.Underlying().(*types.Struct)
	return s, isStruct
}

// classTrackable reports whether v can participate in a cross-function
// lock cycle: struct fields and package-level variables qualify,
// function locals do not.
func classTrackable(v *types.Var) bool {
	if v == nil {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// inspectOutsideGo walks body in source order, skipping GoStmt subtrees —
// the shape every summary computation wants, since effects inside a
// spawned goroutine are concurrent with, not sequenced after, the
// spawner's.
func inspectOutsideGo(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		return visit(n)
	})
}

type lockPair struct{ from, to *types.Var }

type lockOrderState struct {
	pass *ModulePass
	// acquires is the fixpoint summary: every lock class a function may
	// take, directly or through callees (goroutine bodies excluded).
	acquires map[*Node]map[*types.Var]bool
	own      map[*Node]map[*types.Var]bool
	calls    map[*Node][]*Node
	names    map[*types.Var]string
	// edges records "to acquired while from held", keyed to the
	// lexically first site that witnesses the pair.
	edges map[lockPair]token.Position
}

func runLockorder(p *ModulePass) {
	st := &lockOrderState{
		pass:     p,
		acquires: map[*Node]map[*types.Var]bool{},
		own:      map[*Node]map[*types.Var]bool{},
		calls:    map[*Node][]*Node{},
		names:    map[*types.Var]string{},
		edges:    map[lockPair]token.Position{},
	}
	// Per-node base facts: directly acquired classes and resolved callees.
	for _, n := range p.Graph.Nodes() {
		node := n
		ownSet := map[*types.Var]bool{}
		inspectOutsideGo(node.Decl.Body, func(x ast.Node) bool {
			call, isCall := x.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if class, name, op, isLock := lockCallTarget(node.Pkg, call); isLock {
				if (op == "Unlock" || op == "RUnlock") || !classTrackable(class) {
					return true
				}
				ownSet[class] = true
				st.names[class] = name
				return true
			}
			for _, rc := range p.Graph.resolve(node.Pkg, call) {
				st.calls[node] = append(st.calls[node], rc.node)
			}
			return true
		})
		st.own[node] = ownSet
		st.acquires[node] = map[*types.Var]bool{}
	}
	// Fixpoint: acquires(f) = own(f) ∪ ⋃ acquires(callee). Monotone, so
	// recursion cycles settle instead of looping.
	p.Graph.Fixpoint(func(n *Node) bool {
		set := st.acquires[n]
		before := len(set)
		for c := range st.own[n] {
			set[c] = true
		}
		for _, callee := range st.calls[n] {
			for c := range st.acquires[callee] {
				set[c] = true
			}
		}
		return len(set) != before
	})
	// Held-set walk: re-traverse each body tracking which classes are
	// held, emitting an order edge for every acquisition (direct or via
	// a callee's summary) under a held lock of a different class.
	for _, n := range p.Graph.Nodes() {
		st.walkHeld(n, n.Decl.Body, map[*types.Var]bool{})
	}
	st.reportCycles()
}

// walkHeld traverses body in source order with the current held set —
// a linear approximation (branch effects leak forward), which
// over-approximates edges but never misses one on straight-line code.
func (st *lockOrderState) walkHeld(n *Node, body ast.Node, held map[*types.Var]bool) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			// Concurrent execution: the goroutine starts with no
			// inherited locks, and its internal order edges are its own.
			st.walkHeld(n, x.Call, map[*types.Var]bool{})
			return false
		case *ast.DeferStmt:
			if _, _, op, isLock := lockCallTarget(n.Pkg, x.Call); isLock &&
				(op == "Unlock" || op == "RUnlock") {
				// defer mu.Unlock(): held for the rest of the body.
				return false
			}
			return true
		case *ast.CallExpr:
			if class, name, op, isLock := lockCallTarget(n.Pkg, x); isLock {
				if !classTrackable(class) {
					return true
				}
				switch op {
				case "Unlock", "RUnlock":
					delete(held, class)
				default:
					st.names[class] = name
					for h := range held {
						st.edge(h, class, n.Pkg.Fset.Position(x.Pos()))
					}
					held[class] = true
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			for _, rc := range st.pass.Graph.resolve(n.Pkg, x) {
				for c := range st.acquires[rc.node] {
					for h := range held {
						st.edge(h, c, n.Pkg.Fset.Position(x.Pos()))
					}
				}
			}
			return true
		}
		return true
	})
}

// edge records from→to at the lexically first witnessing site; same-class
// pairs are exempt (instance ordering is out of scope).
func (st *lockOrderState) edge(from, to *types.Var, site token.Position) {
	if from == to {
		return
	}
	k := lockPair{from, to}
	if prev, seen := st.edges[k]; !seen || positionLess(site, prev) {
		st.edges[k] = site
	}
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// reportCycles finds strongly connected components of the class order
// graph and emits one diagnostic per cyclic component, anchored at the
// lexically first edge inside it.
func (st *lockOrderState) reportCycles() {
	if len(st.edges) == 0 {
		return
	}
	// Deterministic class ordering for the SCC walk.
	classSet := map[*types.Var]bool{}
	for k := range st.edges {
		classSet[k.from] = true
		classSet[k.to] = true
	}
	classes := make([]*types.Var, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		return st.names[classes[i]] < st.names[classes[j]]
	})
	succ := map[*types.Var][]*types.Var{}
	for _, from := range classes {
		for _, to := range classes {
			if _, has := st.edges[lockPair{from, to}]; has {
				succ[from] = append(succ[from], to)
			}
		}
	}
	for _, scc := range tarjanSCC(classes, succ) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[*types.Var]bool{}
		for _, c := range scc {
			inSCC[c] = true
		}
		// The anchor edge: lexically first among the component's edges.
		var anchor lockPair
		var anchorPos token.Position
		for k, pos := range st.edges {
			if !inSCC[k.from] || !inSCC[k.to] {
				continue
			}
			if anchorPos.Filename == "" || positionLess(pos, anchorPos) {
				anchor, anchorPos = k, pos
			}
		}
		names := make([]string, 0, len(scc))
		for _, c := range scc {
			names = append(names, st.names[c])
		}
		sort.Strings(names)
		detail := ""
		if rev, has := st.edges[lockPair{anchor.to, anchor.from}]; has {
			detail = fmt.Sprintf("; the reverse order is taken at %s", rev)
		}
		st.pass.ReportPosition(anchorPos,
			"lock order cycle: %s acquired while holding %s%s (cycle members: %s); acquire them in one global order",
			st.names[anchor.to], st.names[anchor.from], detail,
			strings.Join(names, ", "))
	}
}

// tarjanSCC computes strongly connected components in deterministic
// order (classes and successors are pre-sorted by the caller).
func tarjanSCC(nodes []*types.Var, succ map[*types.Var][]*types.Var) [][]*types.Var {
	index := map[*types.Var]int{}
	lowlink := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var out [][]*types.Var
	next := 0
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}
