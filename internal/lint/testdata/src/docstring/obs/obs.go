// Package obs is a docstring fixture: the directory carries the "obs"
// segment, so the analyzer treats it as operator-facing API surface.
package obs

// Counter is a well-documented exported type: no diagnostic.
type Counter struct{ n int64 }

// The Registry form is fine too — types may lead with an article.
type Registry struct{}

type Gauge struct{ n int64 } // want `exported type Gauge has no doc comment`

// Tracks a point-in-time value without naming itself.
type Meter struct{} // want `doc comment for exported type Meter should start with "Meter"`

type (
	// Span is documented inside a spec group: no diagnostic.
	Span struct{}

	Label struct{} // want `exported type Label has no doc comment`
)

// Inc adds one: a well-documented exported method.
func (c *Counter) Inc() { c.n++ }

// Bumps the counter by delta.
func (c *Counter) Add(delta int64) { c.n += delta } // want `doc comment for exported method Add should start with "Add"`

func (c *Counter) Value() int64 { return c.n } // want `exported method Value has no doc comment`

// NewCounter builds a Counter: a well-documented exported function.
func NewCounter() *Counter { return &Counter{} }

func NewGauge() *Gauge { return &Gauge{} } // want `exported function NewGauge has no doc comment`

// reset is unexported: no doc comment required.
func reset(c *Counter) { c.n = 0 }

type series struct{ total int64 }

// Exported method name on an unexported receiver type (interface
// satisfaction): not godoc surface, no diagnostic.
func (s *series) Sum() int64 { return s.total }

//lint:ignore docstring legacy name kept for parity with an external dashboard
func LegacySnapshot() {}
