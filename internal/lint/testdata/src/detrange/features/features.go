// Package features seeds detrange violations: the fixture lives under a
// "features" path segment so the analyzer treats it as one of the
// determinism-critical packages.
package features

import (
	"fmt"
	"sort"
)

// BadNames loses feature-name order to the randomized map sweep.
func BadNames(m map[string]float64) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want `append to names inside .range. over a map without a subsequent sort`
	}
	return names
}

// GoodNames sorts after the sweep, restoring determinism.
func GoodNames(m map[string]float64) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BadWrite makes the random order externally observable.
func BadWrite(m map[string]float64) {
	for k, v := range m {
		fmt.Printf("%s=%g\n", k, v) // want `output written inside .range. over a map`
	}
}

// LocalOnly appends to a slice scoped inside the loop body: no
// cross-iteration order leaks out.
func LocalOnly(m map[string][]float64) int {
	total := 0
	for _, vs := range m {
		var local []float64
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// SliceRange ranges over a slice, which iterates in index order.
func SliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// BadFanOut launches scatter goroutines in map order: their start (and
// completion) order differs run-to-run, so any merge keyed on launch
// position is nondeterministic.
func BadFanOut(shards map[int]func()) {
	for _, work := range shards {
		go work() // want `goroutine fan-out inside .range. over a map`
	}
}

// GoodFanOut snapshots and sorts the keys first, then fans out in a
// deterministic order.
func GoodFanOut(shards map[int]func()) {
	var ids []int
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		go shards[id]()
	}
}
