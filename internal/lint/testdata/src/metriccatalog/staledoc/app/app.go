// Package app seeds the doc→code direction of metriccatalog: the
// sibling docs/OPERATIONS.md documents a metric nothing registers, so
// the stale row must be flagged (at the markdown file, which is why
// this tree is asserted directly in lint_test.go rather than through
// `// want` comments).
package app

import "domd/internal/obs"

var mOK = obs.NewCounter("domd_fixture_ok_total",
	"The only metric this tree registers.")
