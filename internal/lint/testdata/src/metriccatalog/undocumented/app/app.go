// Package app seeds the code→doc direction of metriccatalog: it
// registers one metric the sibling docs/OPERATIONS.md documents and one
// it does not.
package app

import "domd/internal/obs"

var (
	mOK = obs.NewCounter("domd_fixture_ok_total",
		"Documented in the fixture catalog: no finding.")
	mOrphan = obs.NewCounter("domd_fixture_orphan_total", // want `domd_fixture_orphan_total is registered but not documented`
		"Missing from the fixture catalog: undocumented-metric finding.")
)
