// Package goleak seeds goroutines with and without join paths. The
// leaking shapes reproduce the pre-fix pprof listener in cmd/domd serve
// and the loadgen self-serve listener: a `go func()` whose body only
// calls into unresolvable code, with no WaitGroup, channel, or context
// tying it to its spawner.
package goleak

import (
	"context"
	"sync"
)

func work() {}

// leak has no join path at all.
func leak() {
	go func() { // want `goroutine started with no join or cancellation path`
		work()
	}()
}

// serveLeak mirrors the pre-fix pprof/loadgen listener: the body only
// calls an opaque serve function and inspects its error.
func serveLeak(addr string) {
	go func() { // want `goroutine started with no join or cancellation path`
		_ = listen(addr)
	}()
}

func listen(addr string) error { return nil }

// spawnNamed leaks through a named function with no effects.
func spawnNamed() {
	go runner() // want `goroutine started with no join or cancellation path`
}

func runner() { work() }

// joinedWG signals a WaitGroup: joined.
func joinedWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// joinedChan sends a completion signal: joined.
func joinedChan() <-chan int {
	ch := make(chan int, 1)
	go func() {
		work()
		ch <- 1
	}()
	return ch
}

// joinedCtx observes cancellation: joined.
func joinedCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// joinedTransitive signals through a helper — only the call graph sees
// the WaitGroup.
func joinedTransitive(wg *sync.WaitGroup) {
	go func() {
		signal(wg)
	}()
}

func signal(wg *sync.WaitGroup) { wg.Done() }

// joinedNamed spawns a named function whose summary carries the
// WaitGroup effect.
func joinedNamed(wg *sync.WaitGroup) {
	go done(wg)
}

func done(wg *sync.WaitGroup) { wg.Done() }

// joinedByArg passes a cancellation handle into the spawn.
func joinedByArg(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {}
