// Package lockorder seeds a two-mutex acquisition cycle that no single
// function exhibits: AddShard holds the router lock and calls a helper
// that takes a shard lock, while Rebalance holds a shard lock and calls
// a helper that takes the router lock. Each function alone sees one
// Lock call; only the call graph sees the cycle — the deadlock shape a
// parallel ShardedCatalog scatter-gather would be exposed to.
package lockorder

import "sync"

// Router mirrors the sharded serving tier's top-level structure.
type Router struct {
	mu     sync.Mutex
	shards []*Shard
	size   int
}

// Shard is one partition with its own lock.
type Shard struct {
	mu sync.Mutex
	n  int
}

// AddShard locks the router and reaches into a shard via bump:
// Router.mu → Shard.mu.
func (r *Router) AddShard(s *Shard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shards = append(r.shards, s)
	s.bump() // want `lock order cycle`
}

func (s *Shard) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Rebalance locks a shard and calls back into the router:
// Shard.mu → Router.mu — the reverse order, invisible intraprocedurally.
func (s *Shard) Rebalance(r *Router) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.resize()
}

func (r *Router) resize() {
	r.mu.Lock()
	r.size++
	r.mu.Unlock()
}

// regMu orders consistently before Router.mu everywhere: part of the
// same graph, but acyclic — no diagnostic.
var regMu sync.Mutex

// Record takes regMu then the router lock; one global order, fine.
func Record(r *Router) {
	regMu.Lock()
	defer regMu.Unlock()
	r.resize()
}

// Move locks two instances of the same class. Same-class pairs are
// exempt from the order graph (instance ranking is a separate protocol),
// so this is not a self-cycle.
func Move(a, b *Shard) {
	a.mu.Lock()
	b.mu.Lock()
	b.n += a.n
	a.n = 0
	b.mu.Unlock()
	a.mu.Unlock()
}
