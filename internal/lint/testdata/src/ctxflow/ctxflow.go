// Package ctxflow seeds context-threading violations in HTTP handler
// shapes.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// BadHandler mints a fresh root context despite holding a request.
func BadHandler(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `context\.Background inside BadHandler`
	defer cancel()
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// BadFleet detaches its fan-out goroutine from client cancellation — the
// exact shape the /fleet endpoint must avoid.
func BadFleet(w http.ResponseWriter, r *http.Request) {
	done := make(chan struct{})
	go func() {
		ctx := context.TODO() // want `context\.TODO inside BadFleet`
		_ = ctx
		close(done)
	}()
	<-done
}

// GoodHandler threads the request context.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// Setup has no request in scope; minting a root context is fine.
func Setup() context.Context {
	return context.Background()
}
