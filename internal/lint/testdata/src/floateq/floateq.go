// Package floateq seeds exact floating-point comparisons.
package floateq

import "math"

// Eq is the classic exact-equality bug.
func Eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// NeqZero compares a computed float against an exact constant.
func NeqZero(xs []float64) bool {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s != 0 // want `floating-point != comparison`
}

// Mixed flags float32 too.
func Mixed(a float32) bool {
	return a == 1.5 // want `floating-point == comparison`
}

// NaNIdiom is the portable NaN self-test: allowed.
func NaNIdiom(x float64) bool {
	return x != x
}

// Ints compares integers: allowed.
func Ints(a, b int) bool { return a == b }

// Epsilon is the sanctioned pattern.
func Epsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Suppressed documents a deliberate exact comparison.
func Suppressed(lambda float64) float64 {
	if lambda == 0 { //lint:ignore floateq the zero value selects the default
		lambda = 0.7
	}
	return lambda
}
