// Package ingest seeds log-before-ack violations: dedup state recorded
// or a 2xx response written before the WAL append completes. The bad
// shapes reproduce the crash window the PR-4 durability contract closed
// — an acknowledged record the log never saw.
package ingest

import (
	"net/http"

	"domd/internal/lint/testdata/src/ackorder/wal"
)

// Store owns a WAL handle, which makes its other fields durable ack
// state in the analyzer's model.
type Store struct {
	log  *wal.Log
	seen map[string]bool
}

// Open constructs the store and replays prior state; constructor
// functions are exempt (state restored from the log cannot outrun it).
func Open(l *wal.Log) *Store {
	s := &Store{log: l, seen: map[string]bool{}}
	s.seen["restored"] = true
	return s
}

// Ingest is the correct order: append, then record the dedup key.
func (s *Store) Ingest(key string, p []byte) error {
	if s.seen[key] {
		return nil
	}
	if err := s.log.Append(p); err != nil {
		return err
	}
	s.seen[key] = true
	return nil
}

// IngestEarlyMark records the key before the append — a crash between
// the two acks a record the log never saw.
func (s *Store) IngestEarlyMark(key string, p []byte) error {
	s.seen[key] = true // want `durable dedup/ack state mutated before the WAL append`
	return s.log.Append(p)
}

// mark hides the mutation behind a helper.
func (s *Store) mark(key string) {
	s.seen[key] = true
}

// IngestViaHelper is the same violation split across the call graph:
// only the helper's effect summary exposes it.
func (s *Store) IngestViaHelper(key string, p []byte) error {
	s.mark(key) // want `durable dedup/ack state mutated \(via callee\) before the WAL append`
	return s.log.Append(p)
}

// writeJSON mirrors the server helper: the status flows through to
// WriteHeader, so constant-2xx call sites are acks.
func writeJSON(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}

// HandleEarlyAck writes the success status before appending.
func (s *Store) HandleEarlyAck(w http.ResponseWriter, p []byte) {
	writeJSON(w, http.StatusOK) // want `2xx response written before the WAL append`
	if err := s.log.Append(p); err != nil {
		writeJSON(w, http.StatusServiceUnavailable)
	}
}

// Handle is the correct order: append, ack on success, 5xx on failure.
func (s *Store) Handle(w http.ResponseWriter, p []byte) {
	if err := s.log.Append(p); err != nil {
		writeJSON(w, http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK)
}

// HandleDup acks a duplicate without appending: the early-return branch
// ends the path, so the 2xx there never precedes an append.
func (s *Store) HandleDup(w http.ResponseWriter, key string, p []byte) {
	if s.seen[key] {
		writeJSON(w, http.StatusOK)
		return
	}
	if err := s.log.Append(p); err != nil {
		writeJSON(w, http.StatusServiceUnavailable)
		return
	}
	s.seen[key] = true
	writeJSON(w, http.StatusOK)
}
