// Package wal is a minimal stand-in for the real write-ahead log: the
// ackorder analyzer recognizes Append on a Log type declared in any
// package with a "wal" path segment, so this fixture exercises the same
// resolution the production internal/wal package does.
package wal

// Log is the fixture write-ahead log.
type Log struct {
	records [][]byte
}

// Append durably records one payload.
func (l *Log) Append(p []byte) error {
	l.records = append(l.records, p)
	return nil
}
