// Package repl seeds quorum-ack violations: a Store journaling to a
// replicated WAL set (a primary plus a follower slice) whose durability
// point is the quorum fan-out, not the first member append. Acking —
// writing a 2xx or recording dedup state — after only the primary has
// the record reproduces the PR-9 failover hazard: lose that one member
// and an acknowledged record is gone.
package repl

import (
	"net/http"

	"domd/internal/lint/testdata/src/ackorder/wal"
)

// Store owns a replica set: the scalar primary handle plus the follower
// slice make it a quorum owner, so member appends leave quorum pending.
type Store struct {
	primary   *wal.Log
	followers []*wal.Log
	seen      map[string]bool
}

// Open constructs the store; constructor functions are exempt (state
// restored during replay cannot outrun the logs).
func Open(primary *wal.Log, followers []*wal.Log) *Store {
	s := &Store{primary: primary, followers: followers, seen: map[string]bool{}}
	s.seen["restored"] = true
	return s
}

// writeJSON mirrors the server helper: the status flows through to
// WriteHeader, so constant-2xx call sites are acks.
func writeJSON(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}

// Ingest is the correct order: primary append, fan-out over every
// follower, and only then the dedup mark and the 2xx.
func (s *Store) Ingest(w http.ResponseWriter, key string, p []byte) {
	if s.seen[key] {
		writeJSON(w, http.StatusOK)
		return
	}
	if err := s.primary.Append(p); err != nil {
		writeJSON(w, http.StatusServiceUnavailable)
		return
	}
	for _, f := range s.followers {
		if err := f.Append(p); err != nil {
			writeJSON(w, http.StatusServiceUnavailable)
			return
		}
	}
	s.seen[key] = true
	writeJSON(w, http.StatusOK)
}

// IngestEarlyAck acks as soon as the primary has the record, before the
// follower fan-out runs.
func (s *Store) IngestEarlyAck(w http.ResponseWriter, p []byte) {
	err := s.primary.Append(p)
	writeJSON(w, http.StatusOK) // want `2xx response written after a member append but before the quorum fan-out`
	if err == nil {
		for _, f := range s.followers {
			_ = f.Append(p)
		}
	}
}

// IngestNoFanout records the dedup key after only the primary append —
// and never replicates at all, so no later append can excuse the mark.
func (s *Store) IngestNoFanout(key string, p []byte) error {
	err := s.primary.Append(p)
	s.seen[key] = true // want `durable dedup/ack state mutated after a member append but before the quorum fan-out`
	return err
}

// IngestMarkBeforeQuorum marks the key between the primary append and
// the fan-out: flagged even though the fan-out does follow.
func (s *Store) IngestMarkBeforeQuorum(key string, p []byte) error {
	err := s.primary.Append(p)
	s.seen[key] = true // want `durable dedup/ack state mutated after a member append but before the quorum fan-out`
	for _, f := range s.followers {
		if err == nil {
			err = f.Append(p)
		}
	}
	return err
}

// appendPrimary hides the member append behind a helper.
func (s *Store) appendPrimary(p []byte) error {
	return s.primary.Append(p)
}

// replicate hides the quorum fan-out behind a helper.
func (s *Store) replicate(p []byte) error {
	for _, f := range s.followers {
		if err := f.Append(p); err != nil {
			return err
		}
	}
	return nil
}

// IngestViaHelpers is the early ack split across the call graph: only
// the helpers' effect summaries expose the member/fan-out ordering.
func (s *Store) IngestViaHelpers(w http.ResponseWriter, p []byte) {
	err := s.appendPrimary(p)
	writeJSON(w, http.StatusOK) // want `2xx response written after a member append but before the quorum fan-out`
	if err == nil {
		_ = s.replicate(p)
	}
}
