// Package split seeds wall-clock and ambient-randomness violations. The
// fixture lives under a "split" path segment so the analyzer treats it as
// a pipeline package.
package split

import (
	"math/rand"
	"time"
)

// BadClock reads the wall clock inside pipeline code.
func BadClock() int64 {
	return time.Now().Unix() // want `wall-clock time\.Now in a pipeline package`
}

// BadGlobalRand draws from the process-global, unseeded RNG.
func BadGlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn in a pipeline package`
}

// BadShuffle covers the mutation helpers too.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle in a pipeline package`
}

// GoodSeeded is the sanctioned pattern: an explicit rand.New over a
// configured seed, with all draws on the local generator.
func GoodSeeded(seed int64, xs []int) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
