// Package lockguard seeds violations of the comment-declared mutex-guard
// convention. Catalog reproduces the pre-PR-2 statusq.Catalog bug: lazily
// reading and writing the guarded maps without taking the mutex.
package lockguard

import "sync"

// Catalog mirrors statusq.Catalog's field layout and guard comment.
type Catalog struct {
	kind string

	mu      sync.RWMutex // guards rccs and engines
	rccs    map[int][]int
	engines map[int]*int
}

// NewCatalog constructs the value. The composite literal marks this
// function as a constructor: the value has not escaped, so the unlocked
// writes are fine.
func NewCatalog() *Catalog {
	c := &Catalog{rccs: map[int][]int{}, engines: map[int]*int{}}
	c.rccs[1] = []int{1}
	return c
}

// Kind touches only unguarded fields.
func (c *Catalog) Kind() string { return c.kind }

// RCCs reads under the read lock: clean.
func (c *Catalog) RCCs(id int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rccs[id]
}

// Engine is the pre-PR-2 race: unlocked lazy read-then-write of both
// guarded maps.
func (c *Catalog) Engine(id int) *int {
	e := c.engines[id] // want `Catalog\.engines is guarded by mu; Engine accesses it without locking`
	if e == nil {
		n := len(c.rccs[id]) // want `Catalog\.rccs is guarded by mu; Engine accesses it without locking`
		e = &n
		c.engines[id] = e // want `Catalog\.engines is guarded by mu; Engine accesses it without locking`
	}
	return e
}

// AddRCC takes the write lock: clean.
func (c *Catalog) AddRCC(id, rcc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rccs[id] = append(c.rccs[id], rcc)
	delete(c.engines, id)
}

// Slot exercises the `guarded by` comment form on the field itself.
type Slot struct {
	mu  sync.Mutex
	val int // guarded by mu
}

// Bad reads without the lock.
func (s *Slot) Bad() int {
	return s.val // want `Slot\.val is guarded by mu; Bad accesses it without locking`
}

// Good locks first.
func (s *Slot) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// Suppressed demonstrates the escape hatch for a deliberate violation.
func (s *Slot) Suppressed() int {
	//lint:ignore lockguard fixture demo of the suppression convention
	return s.val
}

// Gauge embeds its mutex and locks through the promoted methods. Before
// the embedded-field fix the `guards` comment below was silently dropped
// (no name Ident to resolve), so BadTotal went unflagged and GoodTotal's
// promoted g.Lock() was invisible to the checker.
type Gauge struct {
	sync.Mutex // guards total
	total      int
}

// BadTotal reads the guarded field without the promoted lock.
func (g *Gauge) BadTotal() int {
	return g.total // want `Gauge\.total is guarded by Mutex; BadTotal accesses it without locking`
}

// GoodTotal acquires via the promoted method: clean.
func (g *Gauge) GoodTotal() int {
	g.Lock()
	defer g.Unlock()
	return g.total
}

// bump is a lock-held helper. Callers hold s.mu, so the unlocked access
// is their obligation, not bump's.
func (s *Slot) bump() {
	s.val++
}

// Bump takes the lock and delegates to the annotated helper: clean at
// both levels.
func (s *Slot) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump()
}
