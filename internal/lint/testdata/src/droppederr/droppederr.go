// Package droppederr seeds discarded-error violations, including the
// `_ = json.NewEncoder(w).Encode(v)` pattern the serving path used to
// have.
package droppederr

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Encode drops the encoder's write error.
func Encode(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v) // want `error result of json\.NewEncoder\(w\)\.Encode assigned to _`
}

// Bare drops the whole (n, err) result of an io write.
func Bare(w io.Writer) {
	w.Write([]byte("x")) // want `w\.Write returns a result tuple whose error is discarded`
}

// Multi blanks the error position of a multi-value result.
func Multi(name string) *os.File {
	f, _ := os.Open(name) // want `error result of os\.Open assigned to _`
	return f
}

// Handled threads the error: clean.
func Handled(w io.Writer) error {
	if _, err := w.Write([]byte("x")); err != nil {
		return err
	}
	return nil
}

// PrintOK: the fmt print family is conventionally exempt.
func PrintOK() {
	fmt.Println("fine")
}

// BuilderOK: strings.Builder writes are documented to never fail.
func BuilderOK() string {
	var b strings.Builder
	b.WriteString("ok")
	return b.String()
}

// DeferOK: deferred closes are conventionally tolerated.
func DeferOK(f *os.File) int {
	defer f.Close()
	return 0
}

// Suppressed documents a deliberate best-effort drop.
func Suppressed(f *os.File) {
	f.Close() //lint:ignore droppederr best-effort close on an already-failing path
}

// SyncDropped discards the fsync result — on a write-ahead log that
// silently un-durables an already-acknowledged record.
func SyncDropped(f *os.File) {
	f.Sync() // want `f\.Sync returns an error whose error is discarded`
}

// CloseBlanked blanks a Close error on the normal (non-deferred) path;
// for a file with buffered writes, Close is where the write failure
// finally surfaces.
func CloseBlanked(f *os.File) {
	_ = f.Close() // want `error result of f\.Close assigned to _`
}

// SyncHandled threads both durability errors: clean.
func SyncHandled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
