// Package callgraph is the builder's test fixture: static call chains,
// a three-implementation interface for dispatch bounding, mutual
// recursion for fixpoint termination, and a pointer-receiver method
// call. No `// want` comments — callgraph_test.go asserts the graph
// structure directly.
package callgraph

// Chain -> step1 -> step2 is the static-call spine.
func Chain() { step1() }

func step1() { step2() }

func step2() {}

// Ringer has three module-internal implementations, so a dispatch bound
// below three must drop the r.Ring() site entirely.
type Ringer interface{ Ring() }

// Bell implements Ringer with a value receiver.
type Bell struct{}

// Ring implements Ringer.
func (Bell) Ring() {}

// Horn implements Ringer with a pointer receiver.
type Horn struct{}

// Ring implements Ringer.
func (*Horn) Ring() {}

// Siren implements Ringer with a value receiver.
type Siren struct{}

// Ring implements Ringer.
func (Siren) Ring() {}

// Dispatch fans out to every Ringer implementation.
func Dispatch(r Ringer) { r.Ring() }

// Mutual and mutual2 form a recursion cycle; summary propagation must
// reach a fixed point over it rather than loop.
func Mutual(n int) {
	if n > 0 {
		mutual2(n - 1)
	}
}

func mutual2(n int) { Mutual(n - 1) }

// Counter exercises concrete method-call resolution.
type Counter struct{ n int }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Bump calls a method through a pointer receiver.
func Bump(c *Counter) { c.Inc() }
