package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"domd/internal/lint"
)

// Per-analyzer fixture tests: each analyzer must fire on its seeded
// violations (and only those) in testdata/src. The lockguard fixture
// reproduces the pre-PR-2 unlocked-Catalog access pattern.

func TestLockguardFixture(t *testing.T) {
	diags := lint.CheckFixture(t, "testdata/src/lockguard", lint.Lockguard)
	if len(diags) != 5 {
		t.Errorf("lockguard fixture: got %d diagnostics, want 5", len(diags))
	}
}

func TestDetrangeFixture(t *testing.T) {
	lint.CheckFixture(t, "testdata/src/detrange/features", lint.Detrange)
}

func TestFloateqFixture(t *testing.T) {
	lint.CheckFixture(t, "testdata/src/floateq", lint.Floateq)
}

func TestWalltimeFixture(t *testing.T) {
	lint.CheckFixture(t, "testdata/src/walltime/split", lint.Walltime)
}

func TestDroppederrFixture(t *testing.T) {
	lint.CheckFixture(t, "testdata/src/droppederr", lint.Droppederr)
}

func TestCtxflowFixture(t *testing.T) {
	lint.CheckFixture(t, "testdata/src/ctxflow", lint.Ctxflow)
}

func TestDocstringFixture(t *testing.T) {
	diags := lint.CheckFixture(t, "testdata/src/docstring/obs", lint.Docstring)
	if len(diags) != 6 {
		t.Errorf("docstring fixture: got %d diagnostics, want 6", len(diags))
	}
}

// Whole-program analyzer fixtures: each rides the call-graph engine, so
// the seeded violations are deliberately split across functions (and for
// ackorder, across packages) such that no single-function analysis could
// find them.

func TestLockorderFixture(t *testing.T) {
	diags := lint.CheckFixture(t, "testdata/src/lockorder", lint.Lockorder)
	if len(diags) != 1 {
		t.Errorf("lockorder fixture: got %d diagnostics, want exactly 1 (one per cycle)", len(diags))
	}
}

func TestGoleakFixture(t *testing.T) {
	diags := lint.CheckFixture(t, "testdata/src/goleak", lint.Goleak)
	if len(diags) != 3 {
		t.Errorf("goleak fixture: got %d diagnostics, want 3", len(diags))
	}
}

func TestAckorderFixture(t *testing.T) {
	diags := lint.CheckFixture(t, "testdata/src/ackorder/...", lint.Ackorder)
	if len(diags) != 7 {
		t.Errorf("ackorder fixture: got %d diagnostics, want 7 (3 log-before-ack, 4 quorum-ack)", len(diags))
	}
}

func TestMetriccatalogUndocumentedMetricFails(t *testing.T) {
	diags := lint.CheckFixture(t, "testdata/src/metriccatalog/undocumented/app", lint.Metriccatalog)
	if len(diags) != 1 {
		t.Errorf("metriccatalog undocumented fixture: got %d diagnostics, want 1", len(diags))
	}
}

// TestMetriccatalogStaleDocRowFails covers the doc→code direction. The
// finding is anchored in the markdown catalog, where `// want` comments
// cannot live, so the assertions are direct.
func TestMetriccatalogStaleDocRowFails(t *testing.T) {
	pkgs, err := lint.Load("testdata/src/metriccatalog/staledoc/app")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, []*lint.Analyzer{lint.Metriccatalog})
	if len(diags) != 1 {
		t.Fatalf("staledoc fixture: got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "metriccatalog" {
		t.Errorf("diagnostic analyzer = %q, want metriccatalog", d.Analyzer)
	}
	if !strings.Contains(d.Message, "domd_fixture_ghost_total") ||
		!strings.Contains(d.Message, "stale") {
		t.Errorf("stale-row message missing the ghost metric: %s", d.Message)
	}
	if !strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), "staledoc/docs/OPERATIONS.md") {
		t.Errorf("stale-row finding anchored at %s, want the markdown catalog", d.Pos.Filename)
	}
	if d.Pos.Line != 6 {
		t.Errorf("stale-row finding at line %d, want 6 (the ghost row)", d.Pos.Line)
	}
}

// TestScopedAnalyzersApplyToFixtures guards the path-segment scoping: the
// detrange and walltime fixtures only work because their directories
// carry a determinism-critical segment, so a rename would silently turn
// both fixture tests into no-ops.
func TestScopedAnalyzersApplyToFixtures(t *testing.T) {
	cases := []struct {
		a    *lint.Analyzer
		path string
	}{
		{lint.Detrange, "domd/internal/lint/testdata/src/detrange/features"},
		{lint.Detrange, "domd/internal/statusq"},
		{lint.Walltime, "domd/internal/lint/testdata/src/walltime/split"},
		{lint.Walltime, "domd/internal/ml/gbt"},
		{lint.Docstring, "domd/internal/lint/testdata/src/docstring/obs"},
		{lint.Docstring, "domd/internal/obs"},
		{lint.Docstring, "domd/internal/server"},
	}
	for _, c := range cases {
		if !c.a.AppliesTo(c.path) {
			t.Errorf("%s should apply to %s", c.a.Name, c.path)
		}
	}
	off := []struct {
		a    *lint.Analyzer
		path string
	}{
		{lint.Detrange, "domd/internal/server"},
		{lint.Walltime, "domd/internal/server"},
		{lint.Walltime, "domd/internal/experiments"},
		{lint.Docstring, "domd/internal/features"},
		{lint.Docstring, "domd/internal/ml/gbt"},
	}
	for _, c := range off {
		if c.a.AppliesTo(c.path) {
			t.Errorf("%s should not apply to %s", c.a.Name, c.path)
		}
	}
}

// TestLoadSkipsTestdata: "./..." from this directory must load only the
// lint package itself — the seeded-violation fixtures live in testdata
// and must never leak into a real lint run.
func TestLoadSkipsTestdata(t *testing.T) {
	pkgs, err := lint.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "domd/internal/lint" {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.PkgPath)
		}
		t.Fatalf("Load(./...) = %v, want exactly [domd/internal/lint]", paths)
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("lint package has type errors: %v", pkgs[0].TypeErrors)
	}
}

// TestRealTreeClean is the gate the Makefile's lint stage relies on: every
// analyzer must report zero diagnostics over the real module tree. It runs
// the analyzers one at a time so a regression names the offender.
func TestRealTreeClean(t *testing.T) {
	root, _, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(filepath.Join(root, "..."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the module tree; the walk looks broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	sawInternal := false
	for _, pkg := range pkgs {
		if strings.Contains(pkg.PkgPath, "/internal/") {
			sawInternal = true
		}
		if strings.Contains(pkg.PkgPath, "testdata") {
			t.Errorf("testdata package %s leaked into the module walk", pkg.PkgPath)
		}
	}
	if !sawInternal {
		t.Fatal("module walk found no internal packages")
	}
	for _, a := range lint.All() {
		diags := lint.Run(pkgs, []*lint.Analyzer{a})
		for _, d := range diags {
			t.Errorf("%s must be clean on the real tree: %s", a.Name, d)
		}
	}
}

// TestByName covers the analyzer-subset flag parsing of cmd/domdlint.
func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 11 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 11, nil", len(all), err)
	}
	two, err := lint.ByName("floateq, walltime")
	if err != nil || len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "walltime" {
		t.Fatalf("ByName subset failed: %v %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
