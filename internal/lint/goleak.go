package lint

import (
	"go/ast"
	"go/types"
)

// Goleak flags goroutines started with no join or cancellation path.
// Every `go` statement must be tied to its parent's lifetime through at
// least one of the conventions the tree already uses:
//
//   - a sync.WaitGroup: the goroutine (or a function it calls) invokes
//     Done, and the spawner Waits;
//   - a channel: the goroutine sends, receives, closes, selects, or
//     ranges — some signal another goroutine can join on;
//   - a context.Context: the goroutine observes cancellation (holds a
//     ctx value, typically via <-ctx.Done()).
//
// A goroutine with none of these outlives every caller silently — the
// exact shape of the pre-fix pprof listener in cmd/domd, which kept
// serving after graceful shutdown with no way to observe its error. The
// check is interprocedural: a literal body that calls a helper which
// signals a WaitGroup is joined, and `go f()` is judged by f's
// transitive effects on the call graph.
var Goleak = &Analyzer{
	Name:      "goleak",
	Doc:       "goroutines must have a join or cancellation path (WaitGroup, channel, or context)",
	RunModule: runGoleak,
}

// leakEffects is the per-function join-signal summary.
type leakEffects uint8

const (
	effWGDone leakEffects = 1 << iota // calls sync.WaitGroup.Done
	effChan                          // channel send/receive/close/select/range
	effCtx                           // holds a context.Context value
)

func runGoleak(p *ModulePass) {
	g := p.Graph
	// Per-node own effects and callees, both excluding nested goroutine
	// bodies: what a spawned goroutine does is its own business, not a
	// join signal its spawner's callers can rely on.
	own := map[*Node]leakEffects{}
	calls := map[*Node][]*Node{}
	for _, n := range g.Nodes() {
		node := n
		eff := leakEffects(0)
		inspectOutsideGo(node.Decl.Body, func(x ast.Node) bool {
			eff |= ownLeakEffects(node.Pkg, x)
			if call, isCall := x.(*ast.CallExpr); isCall {
				for _, rc := range g.resolve(node.Pkg, call) {
					calls[node] = append(calls[node], rc.node)
				}
			}
			return true
		})
		own[node] = eff
	}
	summary := map[*Node]leakEffects{}
	g.Fixpoint(func(n *Node) bool {
		eff := summary[n] | own[n]
		for _, callee := range calls[n] {
			eff |= summary[callee]
		}
		if eff == summary[n] {
			return false
		}
		summary[n] = eff
		return true
	})
	// Judge every go statement, including ones nested in goroutine
	// bodies — each spawn needs its own join path.
	for _, n := range g.Nodes() {
		node := n
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			gs, isGo := x.(*ast.GoStmt)
			if !isGo {
				return true
			}
			if spawnEffects(p, g, node.Pkg, gs, summary) == 0 {
				p.Reportf(gs.Pos(),
					"goroutine started with no join or cancellation path (no WaitGroup.Done, channel operation, or context in its body or callees)")
			}
			return true
		})
	}
}

// spawnEffects computes the join-signal effects of one go statement's
// target: a literal's body is scanned directly (plus its callees'
// summaries), a named target contributes its call-graph summary, and
// channel- or context-typed arguments passed into the spawn count as a
// handle the goroutine can be joined through.
func spawnEffects(p *ModulePass, g *CallGraph, pkg *Package, gs *ast.GoStmt, summary map[*Node]leakEffects) leakEffects {
	eff := leakEffects(0)
	for _, arg := range gs.Call.Args {
		eff |= valueLeakEffects(p.TypeOf(pkg, arg))
	}
	if lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
		inspectOutsideGo(lit.Body, func(x ast.Node) bool {
			eff |= ownLeakEffects(pkg, x)
			if call, isCall := x.(*ast.CallExpr); isCall {
				for _, rc := range g.resolve(pkg, call) {
					eff |= summary[rc.node]
				}
			}
			return true
		})
		return eff
	}
	for _, rc := range g.resolve(pkg, gs.Call) {
		eff |= summary[rc.node]
	}
	return eff
}

// ownLeakEffects classifies one AST node as a direct join signal.
func ownLeakEffects(pkg *Package, x ast.Node) leakEffects {
	switch x := x.(type) {
	case *ast.SendStmt, *ast.SelectStmt:
		return effChan
	case *ast.UnaryExpr:
		if x.Op.String() == "<-" {
			return effChan
		}
	case *ast.RangeStmt:
		if tv, has := pkg.Info.Types[x.X]; has {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return effChan
			}
		}
	case *ast.CallExpr:
		if id, isIdent := ast.Unparen(x.Fun).(*ast.Ident); isIdent && id.Name == "close" {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return effChan
			}
		}
		if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
			if selection := pkg.Info.Selections[sel]; selection != nil &&
				selection.Kind() == types.MethodVal &&
				namedIs(selection.Recv(), "sync", "WaitGroup") {
				return effWGDone
			}
		}
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return valueLeakEffects(obj.Type())
		}
	}
	return 0
}

// valueLeakEffects maps a value's type to the join handle it represents:
// holding a context is a cancellation path, holding a channel is a
// joinable signal.
func valueLeakEffects(t types.Type) leakEffects {
	if t == nil {
		return 0
	}
	if namedIs(t, "context", "Context") {
		return effCtx
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return effChan
	}
	return 0
}
