package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// callgraph.go is the interprocedural half of domdlint: a module-wide
// call graph over the packages one Load call produced, plus the worklist
// fixpoint analyzers use to push per-function effect summaries over it.
// The per-function analyzers (lockguard, droppederr, ...) see one body at
// a time; the whole-program analyzers (lockorder, goleak, ackorder) see
// this graph instead, because the invariants they enforce — mutex
// acquisition order, goroutine join paths, log-before-ack — only exist
// across call boundaries.
//
// Resolution rules, in order:
//
//   - Static calls: a direct call to a package-level function or a
//     method call on a concrete receiver resolves to exactly that
//     declaration (promotion through embedding included — go/types'
//     Selection already names the real method).
//   - Interface dispatch: a method call through an interface-typed
//     receiver fans out to every module-internal named type whose
//     method set implements the interface, bounded by maxDispatch —
//     past the bound the site is treated as opaque rather than
//     exploding the graph (and analyses built on the graph stay
//     under-approximate, never wrong about what they did resolve).
//   - Function values (closures stored in variables, callbacks passed
//     around) are not tracked; function literals called in place (or
//     passed directly to a call) are analyzed as part of the enclosing
//     function, matching lockguard's closure convention.
//
// Generic instantiations collapse onto their origin declaration, so a
// summary is computed once per generic function, not once per
// instantiation.

// maxDispatch bounds interface fan-out: a call site through an interface
// with more module-internal implementations than this is left unresolved.
// The module's widest interface (server.Catalog) has three
// implementations, so 16 is generous without making summaries mushy.
const maxDispatch = 16

// Node is one module function (or method) in the call graph.
type Node struct {
	// Func is the type-checker object; generic functions appear as their
	// origin declaration.
	Func *types.Func
	// Decl is the function's syntax, with a non-nil Body.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration was loaded from.
	Pkg *Package
	// Out lists resolved call edges in source order.
	Out []Edge
	// In lists the distinct callers, in deterministic graph order —
	// the worklist fixpoint walks it to requeue dependents.
	In []*Node
}

// Name renders the node for diagnostics and tests: "pkg.Func" or
// "pkg.(Recv).Method".
func (n *Node) Name() string {
	f := n.Func
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := namedOf(sig.Recv().Type()); ok {
			return pkg + "(" + named.Obj().Name() + ")." + f.Name()
		}
	}
	return pkg + f.Name()
}

// Edge is one resolved call site.
type Edge struct {
	// Callee is the resolved target node.
	Callee *Node
	// Site is the call expression's position.
	Site token.Pos
	// Dynamic marks an interface-dispatch edge (one of possibly several
	// targets for the same site).
	Dynamic bool
}

// CallGraph is the module-wide call graph BuildCallGraph produces.
type CallGraph struct {
	byFunc map[*types.Func]*Node
	// nodes holds every node in deterministic (file, offset) order; all
	// graph iteration goes through it so analyses are reproducible.
	nodes []*Node

	// dispatchBound is maxDispatch, overridable in tests.
	dispatchBound int

	// implCache memoizes interface-method resolution per (interface,
	// method name).
	implCache map[implKey][]*Node
	// namedTypes is every module-internal named (non-interface) type,
	// the candidate set for dispatch resolution, in deterministic order.
	namedTypes []*types.TypeName
}

type implKey struct {
	iface *types.Interface
	meth  string
}

// BuildCallGraph constructs the call graph over the given packages (one
// Load call's worth — they share a FileSet and a type-checker universe,
// so function objects are identical across package boundaries).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	return buildCallGraph(pkgs, maxDispatch)
}

func buildCallGraph(pkgs []*Package, bound int) *CallGraph {
	g := &CallGraph{
		byFunc:        make(map[*types.Func]*Node),
		dispatchBound: bound,
		implCache:     make(map[implKey][]*Node),
	}
	// Pass 1: one node per function declaration with a body, plus the
	// module's named-type universe for dispatch resolution.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				obj = obj.Origin()
				if _, dup := g.byFunc[obj]; dup {
					continue
				}
				n := &Node{Func: obj, Decl: fn, Pkg: pkg}
				g.byFunc[obj] = n
				g.nodes = append(g.nodes, n)
			}
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, tn)
		}
	}
	sort.Slice(g.nodes, func(i, j int) bool {
		a := g.nodes[i].Pkg.Fset.Position(g.nodes[i].Decl.Pos())
		b := g.nodes[j].Pkg.Fset.Position(g.nodes[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	sort.Slice(g.namedTypes, func(i, j int) bool {
		a, b := g.namedTypes[i], g.namedTypes[j]
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})

	// Pass 2: resolve call sites.
	for _, n := range g.nodes {
		node := n
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range g.resolve(node.Pkg, call) {
				node.Out = append(node.Out, Edge{
					Callee:  callee.node,
					Site:    call.Pos(),
					Dynamic: callee.dynamic,
				})
			}
			return true
		})
	}
	// Reverse edges, deduplicated, in graph order.
	seen := make(map[[2]*Node]bool)
	for _, n := range g.nodes {
		for _, e := range n.Out {
			k := [2]*Node{e.Callee, n}
			if !seen[k] {
				seen[k] = true
				e.Callee.In = append(e.Callee.In, n)
			}
		}
	}
	return g
}

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*Node { return g.nodes }

// NodeOf resolves a function object (generic origin or instantiation) to
// its node, or nil for functions without a module body.
func (g *CallGraph) NodeOf(f *types.Func) *Node {
	if f == nil {
		return nil
	}
	return g.byFunc[f.Origin()]
}

type resolvedCallee struct {
	node    *Node
	dynamic bool
}

// resolve maps one call expression to its module-internal targets.
func (g *CallGraph) resolve(pkg *Package, call *ast.CallExpr) []resolvedCallee {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Direct call to a (possibly dot-imported or same-package)
		// function.
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := g.NodeOf(f); n != nil {
				return []resolvedCallee{{node: n}}
			}
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				return g.dispatch(iface, sel.Obj().Name())
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				if n := g.NodeOf(f); n != nil {
					return []resolvedCallee{{node: n}}
				}
			}
			return nil
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := g.NodeOf(f); n != nil {
				return []resolvedCallee{{node: n}}
			}
		}
	}
	return nil
}

// dispatch resolves an interface method call to every module-internal
// implementation, bounded by dispatchBound (beyond it the site is
// treated as opaque).
func (g *CallGraph) dispatch(iface *types.Interface, meth string) []resolvedCallee {
	key := implKey{iface, meth}
	impls, ok := g.implCache[key]
	if !ok {
		for _, tn := range g.namedTypes {
			t := tn.Type()
			// Method sets of *T include T's methods, so checking the
			// pointer type covers both receiver forms.
			pt := types.NewPointer(t)
			if !types.Implements(t, iface) && !types.Implements(pt, iface) {
				continue
			}
			sel := types.NewMethodSet(pt).Lookup(nil, meth)
			if sel == nil {
				// Unexported method from another package, or a method
				// set quirk; skip rather than guess.
				continue
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				continue
			}
			if n := g.NodeOf(f); n != nil {
				impls = append(impls, n)
			}
		}
		if len(impls) > g.dispatchBound {
			impls = nil // opaque: too many targets to reason about
		}
		g.implCache[key] = impls
	}
	out := make([]resolvedCallee, len(impls))
	for i, n := range impls {
		out[i] = resolvedCallee{node: n, dynamic: true}
	}
	return out
}

// Fixpoint drives a bottom-up summary propagation to stability: update
// recomputes one node's summary from its callees' and reports whether it
// changed; every caller of a changed node is revisited. Monotone updates
// (summaries only grow) terminate even on recursion cycles — a cyclic
// SCC just iterates until its members stop absorbing new facts.
func (g *CallGraph) Fixpoint(update func(*Node) bool) {
	queued := make(map[*Node]bool, len(g.nodes))
	// Seed in reverse graph order so leaf-ish callees tend to settle
	// before their callers — fewer requeues, same fixed point.
	work := make([]*Node, 0, len(g.nodes))
	for i := len(g.nodes) - 1; i >= 0; i-- {
		work = append(work, g.nodes[i])
		queued[g.nodes[i]] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		if !update(n) {
			continue
		}
		for _, caller := range n.In {
			if !queued[caller] {
				queued[caller] = true
				work = append(work, caller)
			}
		}
	}
}
