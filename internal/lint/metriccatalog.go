package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Metriccatalog enforces bidirectional agreement between the metrics the
// code registers and the operator catalog in docs/OPERATIONS.md: every
// obs.New* registration with a domd_* name must appear in the doc, and
// every domd_* name the doc mentions must have a registration. One
// direction catches metrics operators cannot discover; the other catches
// stale rows operators would page on. This replaces the metric-name grep
// that used to live in scripts/check_docs.sh with a type-checked walk of
// the actual registration sites.
//
// A registration is a call to a New{Counter,Gauge,Histogram}{,Vec}
// function declared in an obs package (path segment "obs") whose
// arguments include a domd_* string constant. The doc is discovered per
// package by walking up from the package directory to the module root,
// taking the first docs/OPERATIONS.md — so fixture trees carry their own
// catalog and the real tree resolves to the repository's. The stale-row
// direction requires at least one registration in view: a partial load
// that includes none of the registering packages skips it instead of
// declaring the whole catalog dead.
var Metriccatalog = &Analyzer{
	Name:      "metriccatalog",
	Doc:       "obs metric registrations and docs/OPERATIONS.md must agree in both directions",
	RunModule: runMetriccatalog,
}

var metricNameRe = regexp.MustCompile(`^domd_[a-z0-9_]*[a-z0-9]$`)
var docMetricRe = regexp.MustCompile(`domd_[a-z0-9_]*[a-z0-9]`)

// registration is one code-side metric registration site.
type registration struct {
	name string
	pos  token.Pos
	pkg  *Package
}

func runMetriccatalog(p *ModulePass) {
	// Group loaded packages by the catalog document that governs them;
	// packages with no reachable docs/OPERATIONS.md (fixture trees for
	// other analyzers, repos without the doc) are out of scope.
	byDoc := map[string][]*Package{}
	for _, pkg := range p.Pkgs {
		if doc := findOperationsDoc(pkg.Dir); doc != "" {
			byDoc[doc] = append(byDoc[doc], pkg)
		}
	}
	docs := make([]string, 0, len(byDoc))
	for doc := range byDoc {
		docs = append(docs, doc)
	}
	sort.Strings(docs)

	for _, doc := range docs {
		var regs []registration
		for _, pkg := range byDoc[doc] {
			regs = append(regs, collectRegistrations(pkg)...)
		}
		data, err := os.ReadFile(doc)
		if err != nil {
			// The doc vanished between discovery and read; surface it at
			// the first registration rather than silently passing.
			if len(regs) > 0 {
				p.Reportf(regs[0].pos, "metric catalog %s is unreadable: %v", doc, err)
			}
			continue
		}
		documented := map[string]int{} // name -> first line
		for i, line := range strings.Split(string(data), "\n") {
			for _, name := range docMetricRe.FindAllString(line, -1) {
				if _, seen := documented[name]; !seen {
					documented[name] = i + 1
				}
			}
		}
		registered := map[string]bool{}
		for _, r := range regs {
			registered[r.name] = true
			if _, inDoc := documented[r.name]; !inDoc {
				p.Reportf(r.pos,
					"metric %s is registered but not documented in %s: operators cannot discover it",
					r.name, doc)
			}
		}
		// The stale-row direction only makes sense when the loaded package
		// set can actually see registrations: on a partial load (domdlint
		// pointed at a subtree with no metric-registering package), every
		// doc row would look stale. Zero registrations under the doc means
		// "insufficient view", not "dead catalog" — skip the direction
		// rather than spray false positives. Full-module runs (make lint,
		// CI, TestRealTreeClean) always load the registering packages.
		if len(regs) == 0 {
			continue
		}
		stale := make([]string, 0)
		for name := range documented {
			if !registered[name] {
				stale = append(stale, name)
			}
		}
		sort.Strings(stale)
		for _, name := range stale {
			p.ReportPosition(token.Position{Filename: doc, Line: documented[name], Column: 1},
				"metric %s is documented but no code registers it: stale catalog row",
				name)
		}
	}
}

// findOperationsDoc walks up from dir to the module root looking for
// docs/OPERATIONS.md, returning the first hit ("" if none).
func findOperationsDoc(dir string) string {
	d := dir
	for {
		candidate := filepath.Join(d, "docs", "OPERATIONS.md")
		if fi, err := os.Stat(candidate); err == nil && !fi.IsDir() {
			return candidate
		}
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// collectRegistrations finds every obs.New* call with a domd_* name
// constant in the package.
func collectRegistrations(pkg *Package) []registration {
	var out []registration
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			call, isCall := x.(*ast.CallExpr)
			if !isCall || !isObsConstructor(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				tv, has := pkg.Info.Types[arg]
				if !has || tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				name := constant.StringVal(tv.Value)
				if metricNameRe.MatchString(name) {
					out = append(out, registration{name: name, pos: arg.Pos(), pkg: pkg})
				}
			}
			return true
		})
	}
	return out
}

// obsConstructors are the registry entry points whose string arguments
// name metrics.
var obsConstructors = map[string]bool{
	"NewCounter": true, "NewCounterVec": true,
	"NewGauge": true, "NewGaugeVec": true,
	"NewHistogram": true, "NewHistogramVec": true,
}

// isObsConstructor reports whether call invokes a metric constructor
// declared in an obs package — a package-level New* function or the
// equivalent Registry method.
func isObsConstructor(pkg *Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return false
	}
	f, isFunc := obj.(*types.Func)
	if !isFunc || f.Pkg() == nil {
		return false
	}
	return obsConstructors[f.Name()] && pathHasSegment(f.Pkg().Path(), "obs")
}
