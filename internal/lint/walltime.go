package lint

import (
	"go/ast"
	"strings"
)

// walltimePackages are the pipeline package families where the only
// admissible clock is logical time t* and the only admissible randomness
// is an explicitly seeded rand.New(rand.NewSource(seed)) (split.Config.Seed
// and friends). Serving and experiment-harness packages (server,
// experiments, cmd, examples) legitimately measure wall time and are out
// of scope.
var walltimePackages = []string{
	"statusq", "features", "ml", "gbt", "tree", "loss", "linear",
	"split", "fusion", "domain", "index", "core", "stats", "swlin",
	"metrics", "drift", "backtest", "featsel", "hpt", "table",
	"obfuscate", "navsim",
}

// Walltime flags wall-clock and ambient-randomness calls in pipeline
// packages: time.Now, and the global math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, …). Either one makes the feature tensor,
// splits, or trained models unreproducible run-to-run, which is the
// paper's central credibility requirement.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now or global math/rand in pipeline packages (logical time t* and seeded RNGs only)",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSegment(pkgPath, walltimePackages...)
	},
	Run: runWalltime,
}

func runWalltime(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(p, call)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && name == "Now":
				p.Reportf(call.Pos(), "wall-clock time.Now in a pipeline package; the only clock is logical time t*")
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !strings.HasPrefix(name, "New"):
				p.Reportf(call.Pos(), "global math/rand.%s in a pipeline package; use rand.New(rand.NewSource(seed)) with a configured seed", name)
			}
			return true
		})
	}
}
