package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces request-context threading: any function that receives
// an *http.Request (handlers, and by extension the closures they spawn
// for fleet fan-out) must not mint a fresh context.Background() or
// context.TODO() — doing so detaches downstream work from client
// cancellation, which is exactly how a /fleet fan-out outlives its
// disconnected caller. Thread r.Context() instead. main-style setup code
// without a request in scope is unaffected.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "HTTP handlers must thread r.Context(), never context.Background()/TODO()",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(ftype *ast.FuncType, body *ast.BlockStmt, name string) {
			if !hasRequestParam(p, ftype) {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, fn, ok := pkgFunc(p, call); ok && pkg == "context" && (fn == "Background" || fn == "TODO") {
					p.Reportf(call.Pos(), "context.%s inside %s, which receives an *http.Request; thread r.Context() instead", fn, name)
				}
				return true
			})
		})
	}
}

// hasRequestParam reports whether the function signature includes a
// *net/http.Request parameter.
func hasRequestParam(p *Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok && namedIs(ptr.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}
