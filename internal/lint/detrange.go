package lint

import (
	"go/ast"
	"go/types"
)

// detrangePackages are the determinism-critical package families: the
// Status Query engines, the 1452-feature transformation T, the models,
// and the split/fusion stages whose outputs must be bitwise-reproducible
// run-to-run (serial == parallel is differential-tested; map iteration
// order is the classic way to lose it).
var detrangePackages = []string{"statusq", "features", "ml", "gbt", "tree", "loss", "linear", "split", "fusion"}

// Detrange flags `range` over a map inside determinism-critical packages
// when the loop body accumulates order-sensitive output: appending to a
// slice declared outside the loop (unless the slice is sorted by a
// statement after the loop in the same block) or writing to an
// output/encoder. Go randomizes map iteration order, so such loops make
// feature vectors, tensors, and JSON bodies differ run-to-run.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "no order-sensitive map iteration in determinism-critical packages (statusq, features, ml, split, fusion)",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSegment(pkgPath, detrangePackages...)
	},
	Run: runDetrange,
}

func runDetrange(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				for {
					if ls, ok := stmt.(*ast.LabeledStmt); ok {
						stmt = ls.Stmt
						continue
					}
					break
				}
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(p, rs, block.List[i+1:])
			}
			return true
		})
	}
}

// checkMapRange inspects one map-ranging loop; rest holds the statements
// following the loop in its enclosing block (where a de-randomizing sort
// may appear).
func checkMapRange(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(x.Lhs) {
					continue
				}
				target := rootIdentObj(p, x.Lhs[i])
				if target == nil || !declaredOutside(target, rs) {
					continue
				}
				if sortedAfter(p, rest, target) {
					continue
				}
				p.Reportf(x.Pos(), "map iteration order is random: append to %s inside `range` over a map without a subsequent sort", target.Name())
			}
		case *ast.CallExpr:
			if isOutputCall(p, x) {
				p.Reportf(x.Pos(), "map iteration order is random: output written inside `range` over a map")
			}
		case *ast.GoStmt:
			// Shard fan-out hazard: goroutines launched while ranging a
			// map start (and usually finish) in a random order, so any
			// positional result slot, merge order, or routing decision
			// derived from launch order differs run-to-run. Scatter-gather
			// must iterate a sorted snapshot of the keys instead.
			p.Reportf(x.Pos(), "map iteration order is random: goroutine fan-out inside `range` over a map")
		}
		return true
	})
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdentObj resolves the assigned variable (unwrapping selectors and
// index expressions down to the base identifier).
func rootIdentObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedAfter reports whether a later statement in the same block sorts
// the accumulated slice (sort.Xs(ids), sort.Slice(ids, ...), or
// slices.Sort*(ids)) — the sanctioned way to de-randomize a map sweep.
func sortedAfter(p *Pass, rest []ast.Stmt, target types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _, okc := pkgFunc(p, call)
			if !okc || (pkg != "sort" && pkg != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == target {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isOutputCall matches writes whose order becomes externally observable:
// the fmt print family and Write/Encode-style methods.
func isOutputCall(p *Pass, call *ast.CallExpr) bool {
	if pkg, name, ok := pkgFunc(p, call); ok {
		if pkg == "fmt" && (name == "Print" || name == "Printf" || name == "Println" ||
			name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
			return true
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selection := p.Pkg.Info.Selections[sel]; selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	name := sel.Sel.Name
	return name == "Write" || name == "WriteString" || name == "WriteByte" ||
		name == "WriteRune" || name == "Encode"
}
