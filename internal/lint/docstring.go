package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// docstringPackages are the operator-facing packages whose exported API
// is the serving/observability surface documented in docs/OPERATIONS.md:
// godoc there is operator documentation, so it is held to the godoc
// convention mechanically. Pipeline packages are out of scope — their
// audience is the paper reproduction, covered by DESIGN.md.
var docstringPackages = []string{"obs", "wal", "statusq", "server", "modelserve"}

// Docstring enforces the godoc convention on operator-facing packages:
// every exported type, function, and method (on an exported receiver
// type) carries a doc comment whose first sentence starts with the
// identifier's name (types may lead with "A", "An", or "The").
var Docstring = &Analyzer{
	Name: "docstring",
	Doc:  "exported identifiers in operator-facing packages (obs, wal, statusq, server, modelserve) need doc comments starting with the name",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSegment(pkgPath, docstringPackages...)
	},
	Run: runDocstring,
}

func runDocstring(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						// The usual form: the doc comment sits on the
						// type keyword, not inside a spec group.
						doc = d.Doc
					}
					checkDoc(p, ts.Name, doc, "type", true)
				}
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					if !exportedRecv(d.Recv) {
						// Methods on unexported types are not godoc
						// surface even when the method name is exported
						// (interface satisfaction forces the case).
						continue
					}
					kind = "method"
				}
				checkDoc(p, d.Name, d.Doc, kind, false)
			}
		}
	}
}

// checkDoc reports a missing or ill-formed doc comment for the exported
// identifier name. Diagnostics anchor on the declaration line so a
// //lint:ignore there suppresses them.
func checkDoc(p *Pass, name *ast.Ident, doc *ast.CommentGroup, kind string, allowArticle bool) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		p.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
		return
	}
	words := strings.Fields(doc.Text())
	first := words[0]
	if allowArticle && len(words) > 1 && (first == "A" || first == "An" || first == "The") {
		first = words[1]
	}
	if strings.TrimRight(first, ".,:;!?") != name.Name {
		p.Reportf(name.Pos(), "doc comment for exported %s %s should start with %q", kind, name.Name, name.Name)
	}
}

// exportedRecv reports whether the method receiver's base type name is
// exported, unwrapping pointers and generic instantiations.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
