package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathHasSegment reports whether any "/"-separated segment of pkgPath is
// in segs. Analyzers use it to scope themselves to package families (the
// fixture packages under testdata/src/<analyzer>/<segment> match the same
// way the real packages do).
func pathHasSegment(pkgPath string, segs ...string) bool {
	for _, part := range strings.Split(pkgPath, "/") {
		for _, s := range segs {
			if part == s {
				return true
			}
		}
	}
	return false
}

// pkgFunc resolves a call to a package-level function of an imported
// package, returning the package path and function name, e.g.
// ("time", "Now") for time.Now().
func pkgFunc(p *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodRecvNamed returns the named type of the receiver when call is a
// method call (value or pointer receiver).
func methodRecvNamed(p *Pass, call *ast.CallExpr) (*types.Named, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	selection := p.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, false
	}
	return namedOf(selection.Recv())
}

// namedOf unwraps pointers and aliases down to a named type.
func namedOf(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if alias, ok := t.(*types.Alias); ok {
		t = types.Unalias(alias)
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// namedIs reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func namedIs(t types.Type, pkgPath, name string) bool {
	n, ok := namedOf(t)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isErrorType reports whether t is the error interface or a type
// implementing it (dropping any such result loses failure information).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// funcBodies yields every function body in the file along with its
// parameter list: declarations and literals, outermost first.
func funcBodies(f *ast.File, visit func(ftype *ast.FuncType, body *ast.BlockStmt, name string)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Type, fn.Body, fn.Name.Name)
			}
		case *ast.FuncLit:
			visit(fn.Type, fn.Body, "func literal")
		}
		return true
	})
}
