package wal

import "domd/internal/obs"

// Durability metrics, registered process-wide in obs.Default and exposed
// on GET /metrics (catalog: docs/OPERATIONS.md). They aggregate across
// every Log in the process.
var (
	mAppends = obs.NewCounter("domd_wal_appends_total",
		"WAL records appended (durably written per the sync policy).")
	mAppendFailures = obs.NewCounter("domd_wal_append_failures_total",
		"WAL appends that failed before acknowledgment (write or fsync error, injected fault).")
	mSyncs = obs.NewCounter("domd_wal_syncs_total",
		"WAL fsync calls issued by appends and Close.")
	mSyncSeconds = obs.NewHistogram("domd_wal_sync_duration_seconds",
		"WAL fsync latency in seconds.", obs.DefBuckets)
	mCompactions = obs.NewCounter("domd_wal_compactions_total",
		"Snapshot-and-truncate compactions completed.")
	mCompactionFailures = obs.NewCounter("domd_wal_compaction_failures_total",
		"Compactions that failed (the log keeps growing; durability is unaffected).")
	mTornTailCuts = obs.NewCounter("domd_wal_torn_tail_cuts_total",
		"Torn or corrupt log tails cut off during restore.")
)

// Replication metrics (ReplicatedLog). Counters aggregate across every
// replica set in the process; the lag gauge is per set, labeled by the
// set name (the shard WAL directory under a sharded catalog).
var (
	mReplQuorumFailures = obs.NewCounter("domd_wal_repl_quorum_failures_total",
		"Appends that could not reach quorum and were not acknowledged.")
	mReplFailovers = obs.NewCounter("domd_wal_repl_failovers_total",
		"Primary failovers: the acting primary replica failed an append and a healthier replica was promoted.")
	mReplCatchupRecords = obs.NewCounter("domd_wal_repl_catchup_records_total",
		"Records re-appended to lagging replicas by catch-up.")
	mReplReplicaFaults = obs.NewCounter("domd_wal_repl_replica_faults_total",
		"Individual replica append/snapshot faults (the set may still have reached quorum).")
	mReplLag = obs.NewGaugeVec("domd_wal_repl_lag",
		"Records the most-behind non-failed replica is missing, per replica set.", "set")
)
