package wal

import "domd/internal/obs"

// Durability metrics, registered process-wide in obs.Default and exposed
// on GET /metrics (catalog: docs/OPERATIONS.md). They aggregate across
// every Log in the process.
var (
	mAppends = obs.NewCounter("domd_wal_appends_total",
		"WAL records appended (durably written per the sync policy).")
	mAppendFailures = obs.NewCounter("domd_wal_append_failures_total",
		"WAL appends that failed before acknowledgment (write or fsync error, injected fault).")
	mSyncs = obs.NewCounter("domd_wal_syncs_total",
		"WAL fsync calls issued by appends and Close.")
	mSyncSeconds = obs.NewHistogram("domd_wal_sync_duration_seconds",
		"WAL fsync latency in seconds.", obs.DefBuckets)
	mCompactions = obs.NewCounter("domd_wal_compactions_total",
		"Snapshot-and-truncate compactions completed.")
	mCompactionFailures = obs.NewCounter("domd_wal_compaction_failures_total",
		"Compactions that failed (the log keeps growing; durability is unaffected).")
	mTornTailCuts = obs.NewCounter("domd_wal_torn_tail_cuts_total",
		"Torn or corrupt log tails cut off during restore.")
)
