// Replicated write-ahead logging: a ReplicatedLog fans every Append out
// to N replica log directories and acknowledges only at quorum, so a
// single-disk fault no longer makes a shard unwritable (or, after a
// crash, unrecoverable). Each replica is an ordinary Log — same CRC
// framing, same torn-tail cut machinery — which keeps every replica
// directory independently openable and auditable with existing tooling.
//
// # Replica states
//
// A replica is live (caught up; participates in quorum), lagging
// (missed appends that are still buffered in the in-memory tail window;
// catch-up re-appends them), or failed (out of the window, unopenable,
// or un-rewindable; only a snapshot or a reopen revives it). An append
// fault rewinds the replica's log back to its last acknowledged
// watermark — the faulted tail's durability is unknown, so catch-up must
// extend a known-good prefix — and demotes it to lagging.
//
// # Reopen repair
//
// OpenReplicated opens every replica, adopts the one with the highest
// recovered sequence as authoritative, and reconciles the rest: replicas
// whose missing suffix lies within the authoritative log are caught up
// by plain appends; replicas with divergent overlapping payloads or gaps
// reaching into the authoritative snapshot are rebuilt wholesale from
// it. The authoritative replica's recovered state is what the caller
// replays, so an acknowledged record (quorum-durable by definition)
// survives the loss of any minority of replicas.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"domd/internal/faultinject"
	"domd/internal/obs"
)

// FailReplicaAppend is the failpoint site prefix for per-replica append
// faults; the full site name is directory-scoped via ReplicaFailpoint so
// chaos suites can kill one replica of one shard.
const FailReplicaAppend = "wal.replica.append"

// ReplicaFailpoint returns the failpoint site name for appends to the
// replica rooted at dir: "wal.replica.append:<dir>".
func ReplicaFailpoint(dir string) string {
	return FailReplicaAppend + ":" + dir
}

// DefaultReplMaxLag bounds the in-memory tail window (records buffered
// for replica catch-up) when ReplicatedOptions.MaxLag is zero.
const DefaultReplMaxLag = 1024

// ReplState is a replica's position in the live → lagging → failed
// ladder.
type ReplState int

const (
	// ReplLive means the replica is caught up and participates in quorum.
	ReplLive ReplState = iota
	// ReplLagging means the replica missed appends still buffered in the
	// tail window; catch-up is converging it back to live.
	ReplLagging
	// ReplFailed means the replica is beyond catch-up (out of the tail
	// window, unopenable, or un-rewindable); a snapshot or reopen
	// revives it.
	ReplFailed
)

// String names the state for logs and status rows.
func (s ReplState) String() string {
	switch s {
	case ReplLive:
		return "live"
	case ReplLagging:
		return "lagging"
	case ReplFailed:
		return "failed"
	default:
		return fmt.Sprintf("ReplState(%d)", int(s))
	}
}

// ReplicatedOptions tune a ReplicatedLog.
type ReplicatedOptions struct {
	// Quorum is the number of replica acks required before Append
	// acknowledges; 0 means majority (n/2+1).
	Quorum int
	// MaxLag bounds the in-memory tail window buffered for replica
	// catch-up; a replica that falls further behind is failed until the
	// next snapshot. 0 means DefaultReplMaxLag.
	MaxLag int
	// Name labels this replica set's lag gauge; defaults to the first
	// replica directory.
	Name string
	// Log tunes each underlying replica Log (sync policy etc).
	Log Options
}

// replica is one member of the set. Its state and watermark fields are
// protected by the owning ReplicatedLog's mutex.
type replica struct {
	dir       string
	log       *Log      // nil when the directory failed to open
	state     ReplState // position in the live/lagging/failed ladder
	watermark uint64    // last sequence durably acknowledged by this replica
}

// ReplicaStatus is one replica's row in a Status report.
type ReplicaStatus struct {
	// Dir is the replica's log directory.
	Dir string
	// State is the replica's current health state.
	State ReplState
	// Watermark is the last sequence the replica durably acknowledged.
	Watermark uint64
	// Primary marks the acting primary replica.
	Primary bool
}

// ReplicatedLog fans appends out to a set of replica Logs and
// acknowledges at quorum. All methods are safe for concurrent use.
type ReplicatedLog struct {
	quorum int
	maxLag int

	mu        sync.Mutex // guards replicas, primary, seq, tail, tailStart, closed
	replicas  []*replica
	primary   int    // index of the acting primary replica
	seq       uint64 // last sequence any replica acknowledged
	tail      [][]byte
	tailStart uint64 // sequence of tail[0]
	closed    bool

	kick       chan struct{} // nudges the catch-up worker; closed on Close
	workerDone chan struct{}
	lagGauge   *obs.Gauge
}

// ReplRepair reports what OpenReplicated did to one replica.
type ReplRepair struct {
	// Dir is the replica's log directory.
	Dir string
	// CaughtUp is the number of records re-appended from the
	// authoritative replica's recovered tail.
	CaughtUp int
	// Rebuilt is true when the replica was reset and rebuilt wholesale
	// from the authoritative snapshot (divergent or gapped tail).
	Rebuilt bool
	// Failed is true when the replica could not be opened or repaired.
	Failed bool
	// Info is the replica's own raw recovery report.
	Info RecoveryInfo
}

// ReplRecovery reports how OpenReplicated reconciled the set.
type ReplRecovery struct {
	// Authoritative is the index (into the dirs argument) of the replica
	// whose recovered state was adopted.
	Authoritative int
	// Replicas has one repair report per directory, in argument order.
	Replicas []ReplRepair
}

// errReplicaDown marks replicas skipped during fan-out because they were
// not live.
var errReplicaDown = errors.New("wal: replica not live")

// ErrQuorumLost is wrapped by Append errors when fewer than quorum
// replicas acknowledged; the record must not be acknowledged upstream.
var ErrQuorumLost = errors.New("wal: quorum not reached")

// OpenReplicated opens a replica set over dirs (dirs[0] is the initial
// primary), repairs divergent tails against the most-caught-up replica,
// and returns the authoritative recovered state for the caller to
// replay. Individual replica failures (unopenable directories,
// unrepairable tails) are reported in ReplRecovery, not returned as
// errors; only a set with no openable replica at all fails.
func OpenReplicated(dirs []string, opts ReplicatedOptions) (*ReplicatedLog, *Recovered, *ReplRecovery, error) {
	n := len(dirs)
	if n < 1 {
		return nil, nil, nil, fmt.Errorf("wal: replicated open: no replica directories")
	}
	if opts.Quorum == 0 {
		opts.Quorum = n/2 + 1
	}
	if opts.Quorum < 1 || opts.Quorum > n {
		return nil, nil, nil, fmt.Errorf("wal: replicated open: quorum %d out of range [1,%d]", opts.Quorum, n)
	}
	if opts.MaxLag <= 0 {
		opts.MaxLag = DefaultReplMaxLag
	}
	if opts.Name == "" {
		opts.Name = dirs[0]
	}

	repair := &ReplRecovery{Replicas: make([]ReplRepair, n)}
	logs := make([]*Log, n)
	recs := make([]*Recovered, n)
	for i, dir := range dirs {
		repair.Replicas[i].Dir = dir
		log, rec, err := Open(dir, opts.Log)
		if err != nil {
			repair.Replicas[i].Failed = true
			continue
		}
		logs[i], recs[i] = log, rec
		repair.Replicas[i].Info = rec.Info
	}

	auth := -1
	for i, log := range logs {
		if log == nil {
			continue
		}
		if auth < 0 || log.Seq() > logs[auth].Seq() {
			auth = i
		}
	}
	if auth < 0 {
		return nil, nil, nil, fmt.Errorf("wal: replicated open: no replica in %v is openable", dirs)
	}
	repair.Authoritative = auth
	authLog, authRec := logs[auth], recs[auth]
	authSeq := authLog.Seq()
	authSnapSeq := authRec.Info.SnapshotSeq

	// The authoritative log's own bookkeeping must be self-consistent:
	// its recovered entries are contiguous from the snapshot, so seq ==
	// snapshot seq + entry count. A mismatch means a non-contiguous
	// history we cannot use as a repair source.
	if authSeq != authSnapSeq+uint64(len(authRec.Entries)) {
		return nil, nil, nil, fmt.Errorf(
			"wal: replicated open: authoritative replica %s is inconsistent (seq %d, snapshot %d, %d entries)",
			dirs[auth], authSeq, authSnapSeq, len(authRec.Entries))
	}

	for i := range dirs {
		if i == auth || logs[i] == nil {
			continue
		}
		if err := repairReplica(logs[i], recs[i], authLog, authRec, &repair.Replicas[i]); err != nil {
			repair.Replicas[i].Failed = true
		}
	}

	rl := &ReplicatedLog{
		quorum:     opts.Quorum,
		maxLag:     opts.MaxLag,
		replicas:   make([]*replica, n),
		primary:    auth,
		seq:        authSeq,
		tailStart:  authSeq + 1,
		kick:       make(chan struct{}, 1),
		workerDone: make(chan struct{}),
		lagGauge:   mReplLag.With(opts.Name),
	}
	for i, dir := range dirs {
		r := &replica{dir: dir, log: logs[i], watermark: authSeq}
		if logs[i] == nil || repair.Replicas[i].Failed {
			r.state = ReplFailed
			r.watermark = 0
		}
		rl.replicas[i] = r
	}
	if rl.replicas[auth].state != ReplLive {
		// Cannot happen (auth opened and is never repaired), but keep the
		// invariant explicit: the primary must be live.
		rl.replicas[auth].state = ReplLive
	}
	go rl.catchupWorker()
	return rl, authRec, repair, nil
}

// repairReplica reconciles one behind-or-divergent replica against the
// authoritative log, either by appending the missing suffix or by
// rebuilding it wholesale from the authoritative snapshot.
func repairReplica(log *Log, rec *Recovered, authLog *Log, authRec *Recovered, rep *ReplRepair) error {
	authSeq := authLog.Seq()
	authSnapSeq := authRec.Info.SnapshotSeq
	seq := log.Seq()
	snapSeq := rec.Info.SnapshotSeq

	// Incremental catch-up is possible only when the replica's history is
	// self-consistent, does not run past the authoritative sequence, and
	// its gap does not reach into the authoritative snapshot (whose
	// individual records are gone). Otherwise rebuild wholesale.
	rebuild := seq != snapSeq+uint64(len(rec.Entries)) || seq > authSeq || seq < authSnapSeq
	if !rebuild {
		// Compare the overlap the two recovered tails share: any payload
		// mismatch at the same sequence is divergence (e.g. this replica
		// holds a write the rest of the set never acknowledged).
		for s := max(snapSeq, authSnapSeq) + 1; s <= seq; s++ {
			if string(rec.Entries[s-snapSeq-1]) != string(authRec.Entries[s-authSnapSeq-1]) {
				rebuild = true
				break
			}
		}
	}

	if rebuild {
		rep.Rebuilt = true
		if authRec.Snapshot != nil || authSnapSeq > 0 {
			if err := log.SnapshotAt(authRec.Snapshot, authSnapSeq); err != nil {
				return err
			}
		} else if err := log.Reset(); err != nil {
			return err
		}
		seq = authSnapSeq
	}
	for s := seq + 1; s <= authSeq; s++ {
		if _, err := log.Append(authRec.Entries[s-authSnapSeq-1]); err != nil {
			return err
		}
		rep.CaughtUp++
	}
	return nil
}

// Append fans payload out to every live replica and acknowledges once
// quorum replicas have it durably (per the sync policy). On a quorum
// failure the error wraps ErrQuorumLost and the caller must not
// acknowledge — though a minority of replicas may hold the record, so
// replay-side dedup keeps delivery exactly-once. A fault on one replica
// demotes it (live → lagging → failed) without failing the append, and
// a fault on the acting primary promotes the most-caught-up live
// replica.
func (l *ReplicatedLog) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.liveCount() < l.quorum {
		// Not enough live replicas to possibly ack: try to revive
		// laggards inline (bounded by the tail window) before fanning
		// out, so a transient full outage self-heals on the next append
		// after the fault clears.
		l.catchupLocked()
	}

	seq := l.seq + 1
	acks := 0
	errs := make([]error, len(l.replicas))
	for i, r := range l.replicas {
		if r.state != ReplLive {
			errs[i] = errReplicaDown
			continue
		}
		err := faultinject.Fire(ReplicaFailpoint(r.dir))
		if err == nil {
			_, err = r.log.Append(payload)
		}
		errs[i] = err
		if err == nil {
			acks++
		}
	}

	for i, r := range l.replicas {
		if errs[i] == nil {
			r.watermark = seq
			continue
		}
		if errors.Is(errs[i], errReplicaDown) {
			continue
		}
		// The faulted tail's durability is unknown: rewind to the last
		// acknowledged watermark so catch-up extends a known-good prefix.
		mReplReplicaFaults.Inc()
		if rerr := r.log.Rewind(r.watermark); rerr != nil {
			r.state = ReplFailed
			continue
		}
		r.state = ReplLagging
	}

	if acks == 0 {
		// No replica consumed the sequence; the set's sequence does not
		// advance and the record does not exist anywhere.
		mReplQuorumFailures.Inc()
		l.updateLagLocked()
		return 0, fmt.Errorf("wal: append: 0/%d replicas acked (need %d): %w: %w",
			len(l.replicas), l.quorum, ErrQuorumLost, firstFault(errs))
	}

	l.seq = seq
	l.tail = append(l.tail, append([]byte(nil), payload...))
	l.trimTailLocked()

	if l.replicas[l.primary].state != ReplLive {
		l.promoteLocked()
	}
	if l.anyLagging() {
		l.kickLocked()
	}
	l.updateLagLocked()

	if acks < l.quorum {
		mReplQuorumFailures.Inc()
		return 0, fmt.Errorf("wal: append: %d/%d replicas acked (need %d): %w: %w",
			acks, len(l.replicas), l.quorum, ErrQuorumLost, firstFault(errs))
	}
	return seq, nil
}

// firstFault returns the first real (non-skip) error in errs, for
// wrapping into a quorum failure; falls back to the first error.
func firstFault(errs []error) error {
	for _, err := range errs {
		if err != nil && !errors.Is(err, errReplicaDown) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// liveCount counts live replicas. Callers hold l.mu.
func (l *ReplicatedLog) liveCount() int {
	n := 0
	for _, r := range l.replicas {
		if r.state == ReplLive {
			n++
		}
	}
	return n
}

// anyLagging reports whether any replica is lagging. Callers hold l.mu.
func (l *ReplicatedLog) anyLagging() bool {
	for _, r := range l.replicas {
		if r.state == ReplLagging {
			return true
		}
	}
	return false
}

// promoteLocked moves the primary role to the most-caught-up live
// replica. Callers hold l.mu.
func (l *ReplicatedLog) promoteLocked() {
	best := -1
	for i, r := range l.replicas {
		if r.state != ReplLive {
			continue
		}
		if best < 0 || r.watermark > l.replicas[best].watermark {
			best = i
		}
	}
	if best >= 0 && best != l.primary {
		l.primary = best
		mReplFailovers.Inc()
	}
}

// trimTailLocked bounds the catch-up buffer to maxLag records, failing
// any lagging replica that falls out of the window. Callers hold l.mu.
func (l *ReplicatedLog) trimTailLocked() {
	if len(l.tail) <= l.maxLag {
		return
	}
	drop := len(l.tail) - l.maxLag
	l.tail = append([][]byte(nil), l.tail[drop:]...)
	l.tailStart += uint64(drop)
	for _, r := range l.replicas {
		if r.state == ReplLagging && r.watermark+1 < l.tailStart {
			r.state = ReplFailed
		}
	}
}

// kickLocked nudges the catch-up worker without blocking. Callers hold
// l.mu.
func (l *ReplicatedLog) kickLocked() {
	if l.closed {
		return
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// catchupWorker drains kick signals, converging lagging replicas in the
// background so the append path never pays for catch-up I/O.
func (l *ReplicatedLog) catchupWorker() {
	defer close(l.workerDone)
	for range l.kick {
		l.mu.Lock()
		l.catchupLocked()
		l.mu.Unlock()
	}
}

// catchupLocked replays buffered tail records into every lagging replica
// until it is live or faults again. A catch-up fault rewinds the replica
// and leaves it lagging for the next kick; a rewind failure or a
// watermark outside the tail window fails it. Callers hold l.mu.
func (l *ReplicatedLog) catchupLocked() {
	for _, r := range l.replicas {
		if r.state != ReplLagging || l.closed {
			continue
		}
		for r.watermark < l.seq && r.watermark+1 >= l.tailStart {
			payload := l.tail[r.watermark+1-l.tailStart]
			err := faultinject.Fire(ReplicaFailpoint(r.dir))
			if err == nil {
				_, err = r.log.Append(payload)
			}
			if err != nil {
				mReplReplicaFaults.Inc()
				if rerr := r.log.Rewind(r.watermark); rerr != nil {
					r.state = ReplFailed
				}
				break
			}
			r.watermark++
			mReplCatchupRecords.Inc()
		}
		switch {
		case r.state != ReplLagging:
			// Failed by the rewind fault above; leave it.
		case r.watermark+1 < l.tailStart:
			// The in-memory tail no longer covers this replica: only a
			// snapshot (or reopen repair) can revive it.
			r.state = ReplFailed
		case r.watermark == l.seq:
			r.state = ReplLive
		}
	}
	l.updateLagLocked()
}

// updateLagLocked refreshes the per-set lag gauge. Callers hold l.mu.
func (l *ReplicatedLog) updateLagLocked() {
	l.lagGauge.Set(int64(l.lagLocked()))
}

// lagLocked returns the records the most-behind non-failed replica is
// missing. Callers hold l.mu.
func (l *ReplicatedLog) lagLocked() uint64 {
	var lag uint64
	for _, r := range l.replicas {
		if r.state == ReplFailed {
			continue
		}
		if d := l.seq - r.watermark; d > lag {
			lag = d
		}
	}
	return lag
}

// Snapshot atomically replaces every replica's snapshot with payload
// (which must fold in every record up to the current sequence) and
// truncates their logs. Lagging and failed replicas are revived
// wholesale via SnapshotAt — the snapshot subsumes everything they
// missed — so compaction doubles as the recovery path for replicas
// beyond the tail window. An error is returned when fewer than quorum
// replicas completed, but every replica that did complete is compacted.
func (l *ReplicatedLog) Snapshot(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	acks := 0
	errs := make([]error, len(l.replicas))
	for i, r := range l.replicas {
		if r.log == nil {
			errs[i] = errReplicaDown
			continue
		}
		var err error
		if r.state == ReplLive && r.watermark == l.seq {
			err = r.log.Snapshot(payload)
		} else {
			err = r.log.SnapshotAt(payload, l.seq)
		}
		errs[i] = err
		if err == nil {
			acks++
		}
	}
	for i, r := range l.replicas {
		if r.log == nil {
			continue
		}
		if errs[i] == nil {
			r.state = ReplLive
			r.watermark = l.seq
			continue
		}
		mReplReplicaFaults.Inc()
		r.state = ReplFailed
	}
	l.tail = nil
	l.tailStart = l.seq + 1
	if l.replicas[l.primary].state != ReplLive {
		l.promoteLocked()
	}
	l.updateLagLocked()
	if acks < l.quorum {
		return fmt.Errorf("wal: snapshot: %d/%d replicas compacted (need %d): %w: %w",
			acks, len(l.replicas), l.quorum, ErrQuorumLost, firstFault(errs))
	}
	return nil
}

// Seq returns the last acknowledged sequence number.
func (l *ReplicatedLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Status reports every replica's state, watermark, and primary role, in
// directory order.
func (l *ReplicatedLog) Status() []ReplicaStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ReplicaStatus, len(l.replicas))
	for i, r := range l.replicas {
		out[i] = ReplicaStatus{
			Dir:       r.dir,
			State:     r.state,
			Watermark: r.watermark,
			Primary:   i == l.primary,
		}
	}
	return out
}

// Lag returns the records the most-behind non-failed replica is missing;
// 0 means every participating replica is caught up.
func (l *ReplicatedLog) Lag() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lagLocked()
}

// QuorumLive reports whether enough replicas are live to acknowledge an
// append right now.
func (l *ReplicatedLog) QuorumLive() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.liveCount() >= l.quorum
}

// Close stops the catch-up worker and closes every replica log. Further
// operations return ErrClosed.
func (l *ReplicatedLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	l.mu.Unlock()
	close(l.kick)
	<-l.workerDone

	l.mu.Lock()
	defer l.mu.Unlock()
	var errs []error
	for _, r := range l.replicas {
		if r.log == nil {
			continue
		}
		if err := r.log.Close(); err != nil && !errors.Is(err, ErrClosed) {
			errs = append(errs, fmt.Errorf("%s: %w", r.dir, err))
		}
	}
	return errors.Join(errs...)
}

// RemoveReplicaDirs deletes every replica directory under root matching
// the replica-NN layout — a test and operator helper for simulating a
// total disk loss of one replica.
func RemoveReplicaDirs(dirs ...string) error {
	var errs []error
	for _, dir := range dirs {
		if err := os.RemoveAll(dir); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ReplicaDirs lays out n replica directories under root: root/replica-00
// .. root/replica-NN. It is the canonical on-disk layout for a
// replicated durability domain.
func ReplicaDirs(root string, n int) []string {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("replica-%02d", i))
	}
	return dirs
}
