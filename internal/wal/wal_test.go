package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"domd/internal/faultinject"
)

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

// appendT appends payload, failing the test on error.
func appendT(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	seq, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func closeT(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenEmptyDir(t *testing.T) {
	l, rec := openT(t, t.TempDir(), Options{})
	defer closeT(t, l)
	if rec.Snapshot != nil || len(rec.Entries) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if rec.Info.TornTail {
		t.Fatal("fresh dir reported a torn tail")
	}
	if l.Seq() != 0 {
		t.Fatalf("fresh seq = %d", l.Seq())
	}
}

func TestOpenEmptyLogFile(t *testing.T) {
	dir := t.TempDir()
	// A zero-byte wal.log (created, nothing flushed) must read as empty.
	if err := os.WriteFile(filepath.Join(dir, logName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, dir, Options{})
	defer closeT(t, l)
	if len(rec.Entries) != 0 || rec.Info.TornTail {
		t.Fatalf("empty log recovered %+v", rec.Info)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	want := []string{`{"a":1}`, `{"b":2}`, `{"c":3}`}
	for i, p := range want {
		if seq := appendT(t, l, p); seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	closeT(t, l)

	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if len(rec.Entries) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(rec.Entries), len(want))
	}
	for i, e := range rec.Entries {
		if string(e) != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e, want[i])
		}
	}
	if l2.Seq() != 3 {
		t.Fatalf("recovered seq = %d", l2.Seq())
	}
	// Appends continue the sequence after recovery.
	if seq := appendT(t, l2, "x"); seq != 4 {
		t.Fatalf("post-recovery seq = %d, want 4", seq)
	}
}

// TestTornTailRecovery cuts the final record at every possible byte
// boundary and checks the prefix survives, the cut is reported, and the
// file is truncated back to a clean append point.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "first")
	appendT(t, l, "second")
	closeT(t, l)
	whole, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(whole, []byte("\n"))
	prefixLen := len(lines[0])

	for cutAt := prefixLen + 1; cutAt < len(whole); cutAt++ {
		t.Run(fmt.Sprintf("cut@%d", cutAt), func(t *testing.T) {
			d := t.TempDir()
			if err := os.WriteFile(filepath.Join(d, logName), whole[:cutAt], 0o644); err != nil {
				t.Fatal(err)
			}
			l, rec := openT(t, d, Options{})
			defer closeT(t, l)
			if len(rec.Entries) != 1 || string(rec.Entries[0]) != "first" {
				t.Fatalf("recovered %q, want just [first]", rec.Entries)
			}
			if !rec.Info.TornTail {
				t.Fatal("torn tail not reported")
			}
			if rec.Info.TornOffset != int64(prefixLen) {
				t.Fatalf("torn offset = %d, want %d", rec.Info.TornOffset, prefixLen)
			}
			if rec.Info.TornBytes != int64(cutAt-prefixLen) {
				t.Fatalf("torn bytes = %d, want %d", rec.Info.TornBytes, cutAt-prefixLen)
			}
			// The file must be truncated back to the intact prefix.
			st, err := os.Stat(filepath.Join(d, logName))
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != int64(prefixLen) {
				t.Fatalf("log size after recovery = %d, want %d", st.Size(), prefixLen)
			}
			// And appending must produce a fully valid log again
			// (appends are unbuffered, so no Close is needed before
			// an independent replay reads the file).
			appendT(t, l, "third")
			l2, rec2 := openT(t, d, Options{})
			defer closeT(t, l2)
			if len(rec2.Entries) != 2 || rec2.Info.TornTail {
				t.Fatalf("post-repair replay = %q torn=%v", rec2.Entries, rec2.Info.TornTail)
			}
		})
	}
}

func TestCorruptMidRecordCutsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "keep")
	appendT(t, l, "flip")
	appendT(t, l, "lost")
	closeT(t, l)
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	// Flip one payload byte of the middle record (CRC now mismatches).
	mid := len(lines[0]) + len(lines[1]) - 2
	b[mid] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if len(rec.Entries) != 1 || string(rec.Entries[0]) != "keep" {
		t.Fatalf("recovered %q, want the intact prefix [keep]", rec.Entries)
	}
	if !rec.Info.TornTail {
		t.Fatal("corrupt record not reported as a cut")
	}
}

func TestSnapshotCompactsAndReplays(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "a")
	appendT(t, l, "b")
	if err := l.Snapshot([]byte(`{"state":"ab"}`)); err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "c")
	closeT(t, l)

	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if string(rec.Snapshot) != `{"state":"ab"}` {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if rec.Info.SnapshotSeq != 2 {
		t.Fatalf("snapshot seq = %d, want 2", rec.Info.SnapshotSeq)
	}
	if len(rec.Entries) != 1 || string(rec.Entries[0]) != "c" {
		t.Fatalf("post-snapshot entries = %q, want [c]", rec.Entries)
	}
	if l2.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", l2.Seq())
	}
}

// TestReplaySkipsRecordsFoldedIntoSnapshot simulates a crash between the
// snapshot rename and the log truncation: stale records whose seq <= the
// snapshot's must be skipped on replay.
func TestReplaySkipsRecordsFoldedIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "a")
	appendT(t, l, "b")
	closeT(t, l)
	logBytes, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := openT(t, dir, Options{})
	if err := l2.Snapshot([]byte("snap-ab")); err != nil {
		t.Fatal(err)
	}
	appendT(t, l2, "c")
	closeT(t, l2)
	// Re-prepend the pre-snapshot records, as if truncation never happened.
	after, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, logName), append(logBytes, after...), 0o644); err != nil {
		t.Fatal(err)
	}
	l3, rec := openT(t, dir, Options{})
	defer closeT(t, l3)
	if string(rec.Snapshot) != "snap-ab" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Entries) != 1 || string(rec.Entries[0]) != "c" {
		t.Fatalf("entries = %q, want [c] (seqs 1-2 folded into snapshot)", rec.Entries)
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "a")
	if err := l.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)
	path := filepath.Join(dir, snapName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open over corrupt snapshot = %v, want corruption error", err)
	}
}

func TestPayloadNewlineRejected(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	defer closeT(t, l)
	if _, err := l.Append([]byte("a\nb")); err == nil {
		t.Fatal("newline payload accepted")
	}
	if l.Seq() != 0 {
		t.Fatalf("rejected payload advanced seq to %d", l.Seq())
	}
}

func TestClosedLogRefusesOperations(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	closeT(t, l)
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if err := l.Snapshot([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v", err)
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"every", SyncEvery}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestInjectedWriteFaultFailsAppend pins the acknowledgment contract: a
// failed append must not advance the sequence, and replay must not
// surface the record.
func TestInjectedWriteFaultFailsAppend(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "good")
	errDisk := errors.New("disk on fire")
	faultinject.EnableTimes(FailAppendWrite, errDisk, 1)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, errDisk) {
		t.Fatalf("Append under write fault = %v", err)
	}
	if l.Seq() != 1 {
		t.Fatalf("failed append advanced seq to %d", l.Seq())
	}
	// The fault was transient; the log keeps working.
	appendT(t, l, "after")
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if len(rec.Entries) != 2 || string(rec.Entries[0]) != "good" || string(rec.Entries[1]) != "after" {
		t.Fatalf("replay = %q, want [good after]", rec.Entries)
	}
}

func TestInjectedSyncFaultFailsAppend(t *testing.T) {
	defer faultinject.Reset()
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncAlways})
	defer closeT(t, l)
	errDisk := errors.New("fsync lost")
	faultinject.EnableTimes(FailAppendSync, errDisk, 1)
	if _, err := l.Append([]byte("x")); !errors.Is(err, errDisk) {
		t.Fatalf("Append under fsync fault = %v", err)
	}
}

func TestInjectedSnapshotFaultLeavesLogIntact(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "a")
	faultinject.EnableTimes(FailSnapshotWrite, errors.New("no space"), 1)
	if err := l.Snapshot([]byte("state")); err == nil {
		t.Fatal("Snapshot under fault succeeded")
	}
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if rec.Snapshot != nil || len(rec.Entries) != 1 {
		t.Fatalf("failed snapshot disturbed state: %+v", rec)
	}
}

func TestSyncEveryBatches(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncEvery, Every: 3})
	for i := 0; i < 7; i++ {
		appendT(t, l, fmt.Sprintf("r%d", i))
	}
	closeT(t, l) // Close flushes the unsynced tail
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if len(rec.Entries) != 7 {
		t.Fatalf("replayed %d, want 7", len(rec.Entries))
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	var wg sync.WaitGroup
	const G, N = 8, 50
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if len(rec.Entries) != G*N {
		t.Fatalf("replayed %d, want %d", len(rec.Entries), G*N)
	}
	if rec.Info.TornTail {
		t.Fatal("concurrent appends produced a torn log")
	}
}
