//go:build linux

package wal

import (
	"os"
	"syscall"
)

// On Linux, per-record flushes use fdatasync: it covers "all data
// required in order that the data can be retrieved" (POSIX), including
// the size update an extending append makes, while skipping the full
// journal transaction fsync forces for timestamp metadata. That both
// lowers per-record latency and lets appends to different shard logs
// overlap at the device.
func init() {
	datasync = func(f *os.File) error {
		return syscall.Fdatasync(int(f.Fd()))
	}
}
