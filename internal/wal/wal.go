// Package wal implements the write-ahead log that makes RCC ingestion
// durable: an append-only, CRC-framed JSON-lines log plus an atomically
// replaced snapshot, so a serving process can acknowledge an ingested
// record only after it is on disk and can rebuild its state after a
// crash by loading the snapshot and replaying the log suffix.
//
// # On-disk format
//
// The log (wal.log) is a sequence of newline-terminated records:
//
//	<crc32c hex8> <seq decimal> <payload>\n
//
// where payload is an opaque single-line blob (callers use compact JSON)
// and the CRC covers "<seq> <payload>". The snapshot (snapshot.wal) is a
// single record in the same framing whose seq is the last log sequence
// the snapshot folds in; it is written to a temp file, fsynced, and
// renamed into place, so a crash never leaves a half-written snapshot
// visible. Replay loads the snapshot (if any), then applies log records
// with seq greater than the snapshot's.
//
// # Torn tails
//
// A crash mid-append can leave a torn final record: a line without a
// trailing newline, with a short frame, or with a CRC mismatch. Open
// recovers the longest valid prefix, physically truncates the file back
// to it, and reports the cut (offset and bytes dropped) in RecoveryInfo
// rather than failing — losing an unacknowledged suffix is the contract;
// refusing to start is not. A corrupt snapshot, by contrast, is a real
// error: its write was atomic, so damage there is not a crash artifact.
//
// # Durability
//
// SyncAlways fsyncs after every append — an Append that returned nil is
// on disk and may be acknowledged. SyncEvery(n) fsyncs every n-th
// append, trading the tail of a crash window for throughput; SyncNever
// leaves flushing to the OS. Snapshots are always fsynced regardless of
// policy.
package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"domd/internal/faultinject"
	"domd/internal/obs"
)

// Failpoint site names threaded through the hot path (see package
// faultinject). Production behavior is identical when disarmed.
const (
	// FailAppendWrite fires before an append's write syscall.
	FailAppendWrite = "wal.append.write"
	// FailAppendSync fires before an append's fsync.
	FailAppendSync = "wal.append.sync"
	// FailSnapshotWrite fires before a snapshot's temp-file write.
	FailSnapshotWrite = "wal.snapshot.write"
)

const (
	logName      = "wal.log"
	snapName     = "snapshot.wal"
	snapTempName = "snapshot.wal.tmp"
)

// castagnoli is the CRC-32C table; Castagnoli detects short bursts
// better than IEEE and is hardware-accelerated on common platforms.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when Append fsyncs the log file.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every append: a nil Append error means the
	// record is durable. This is the only policy under which an
	// acknowledgment survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs once per Options.Every appends (and on Close).
	SyncEvery
	// SyncNever never fsyncs appends; the OS flushes when it pleases.
	SyncNever
)

// String names the policy for logs and flags.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "every"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag forms "always", "every", "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "every":
		return SyncEvery, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, every, or never)", s)
}

// Options tune a Log.
type Options struct {
	// Policy selects the fsync cadence; the zero value is SyncAlways.
	Policy SyncPolicy
	// Every is the append interval between fsyncs under SyncEvery;
	// values < 1 behave as 1 (every append).
	Every int
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence folded into the loaded snapshot
	// (0 when no snapshot existed).
	SnapshotSeq uint64
	// Records is the number of log records replayed past the snapshot.
	Records int
	// TornTail is true when the log ended in a torn or corrupt record
	// that Open cut off.
	TornTail bool
	// TornOffset is the byte offset the log was truncated back to, and
	// TornBytes the number of bytes discarded, when TornTail is set.
	TornOffset int64
	TornBytes  int64
}

// Recovered is the state Open reconstructed: the snapshot payload (nil
// when none) and the replayable log payloads after it, oldest first.
type Recovered struct {
	Snapshot []byte
	Entries  [][]byte
	Info     RecoveryInfo
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an open write-ahead log rooted at one directory. All methods
// are safe for concurrent use; appends are serialized, so log order is
// acknowledgment order.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards f, seq, unsynced, and closed
	f        *os.File
	seq      uint64 // last sequence appended (or recovered)
	unsynced int    // appends since the last fsync
	closed   bool
}

// Open opens (creating if absent) the log in dir and replays existing
// state: snapshot first, then every intact log record past it. A torn
// or corrupt log tail is cut off and reported via Recovered.Info, not
// returned as an error. The caller owns applying Recovered before
// appending new records.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	if opts.Every < 1 {
		opts.Every = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	rec := &Recovered{}

	snap, snapSeq, err := readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, nil, err
	}
	rec.Snapshot = snap
	rec.Info.SnapshotSeq = snapSeq

	logPath := filepath.Join(dir, logName)
	lastSeq, err := replayLog(logPath, snapSeq, rec)
	if err != nil {
		return nil, nil, err
	}
	if lastSeq < snapSeq {
		lastSeq = snapSeq
	}

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &Log{dir: dir, opts: opts, f: f, seq: lastSeq}, rec, nil
}

// frame renders one record line; the CRC covers everything after it.
func frame(seq uint64, payload []byte) ([]byte, error) {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return nil, fmt.Errorf("wal: payload contains a newline (records are line-framed)")
	}
	body := strconv.AppendUint(nil, seq, 10)
	body = append(body, ' ')
	body = append(body, payload...)
	line := make([]byte, 0, 9+len(body)+1)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(body, castagnoli))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// parseFrame decodes one line (without its trailing newline) back into
// (seq, payload), verifying the CRC.
func parseFrame(line []byte) (uint64, []byte, error) {
	if len(line) < 11 { // 8 crc + space + >=1 seq digit + space
		return 0, nil, fmt.Errorf("wal: short record frame (%d bytes)", len(line))
	}
	if line[8] != ' ' {
		return 0, nil, fmt.Errorf("wal: malformed record frame")
	}
	crcWant, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: bad CRC field: %w", err)
	}
	body := line[9:]
	if crc32.Checksum(body, castagnoli) != uint32(crcWant) {
		return 0, nil, fmt.Errorf("wal: CRC mismatch")
	}
	sp := bytes.IndexByte(body, ' ')
	if sp < 0 {
		return 0, nil, fmt.Errorf("wal: record missing sequence field")
	}
	seq, err := strconv.ParseUint(string(body[:sp]), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: bad sequence field: %w", err)
	}
	return seq, body[sp+1:], nil
}

// replayLog scans the log, appending payloads with seq > snapSeq to rec
// and truncating a torn tail in place. It returns the last valid seq.
func replayLog(path string, snapSeq uint64, rec *Recovered) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close() //lint:ignore droppederr read-only scan; nothing to lose on close

	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("wal: replay: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: replay: %w", err)
	}

	var (
		r      = bufio.NewReader(f)
		offset int64 // start of the next unread line == end of valid prefix
		last   uint64
	)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// No trailing newline: torn final record.
				cut(path, size, offset, rec)
			}
			return last, nil
		}
		if err != nil {
			return 0, fmt.Errorf("wal: replay: %w", err)
		}
		seq, payload, perr := parseFrame(line[:len(line)-1])
		if perr != nil {
			// Corrupt record: recover the prefix, report the cut. Any
			// bytes after it are unacknowledged crash debris by the
			// append-before-ack contract.
			cut(path, size, offset, rec)
			return last, nil
		}
		offset += int64(len(line))
		last = seq
		if seq > snapSeq {
			rec.Entries = append(rec.Entries, append([]byte(nil), payload...))
			rec.Info.Records++
		}
	}
}

// cut records a torn tail and physically truncates the log back to the
// last intact record so future appends extend a clean file. Truncation
// failure is deliberately non-fatal: replay already holds the valid
// prefix, and the next Open will re-cut. A truncation that did happen is
// made durable — the file's new size is fsynced and then the parent
// directory, mirroring the snapshot temp+rename dir-fsync discipline —
// so a crash *during recovery* cannot resurrect the damaged suffix.
func cut(path string, size, offset int64, rec *Recovered) {
	rec.Info.TornTail = true
	rec.Info.TornOffset = offset
	rec.Info.TornBytes = size - offset
	mTornTailCuts.Inc()
	if err := os.Truncate(path, offset); err != nil {
		return // best-effort cleanup; next Open re-cuts at the same boundary
	}
	if f, err := os.OpenFile(path, os.O_WRONLY, 0); err == nil {
		f.Sync()  //lint:ignore droppederr best-effort durability of the cut; next Open re-cuts if it was lost
		f.Close() //lint:ignore droppederr read-side handle; nothing to lose on close
	}
	syncDir(filepath.Dir(path)) //lint:ignore droppederr best-effort durability of the cut; next Open re-cuts if it was lost
}

// readSnapshot loads and verifies the snapshot file. A missing snapshot
// is (nil, 0, nil); a corrupt one is an error, because snapshots are
// written atomically and damage implies real corruption.
func readSnapshot(path string) ([]byte, uint64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("wal: read snapshot: %w", err)
	}
	line := bytes.TrimSuffix(b, []byte("\n"))
	seq, payload, err := parseFrame(line)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: snapshot %s is corrupt (%v); refusing to guess at durable state", path, err)
	}
	return payload, seq, nil
}

// Append writes one record and, per the sync policy, fsyncs it. When
// Append returns nil under SyncAlways the record is durable; callers
// must not acknowledge ingestion before then. On error nothing may be
// assumed about the record and the caller must not acknowledge.
func (l *Log) Append(payload []byte) (seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	line, err := frame(l.seq+1, payload)
	if err != nil {
		return 0, err
	}
	if err := faultinject.Fire(FailAppendWrite); err != nil {
		mAppendFailures.Inc()
		return 0, fmt.Errorf("wal: append write: %w", err)
	}
	if _, err := l.f.Write(line); err != nil {
		mAppendFailures.Inc()
		return 0, fmt.Errorf("wal: append write: %w", err)
	}
	l.seq++
	l.unsynced++
	if l.opts.Policy == SyncAlways || (l.opts.Policy == SyncEvery && l.unsynced >= l.opts.Every) {
		if err := faultinject.Fire(FailAppendSync); err != nil {
			// The write reached the file but its durability is unknown;
			// the caller must refuse to acknowledge. Replay will surface
			// the record iff the OS got it down.
			mAppendFailures.Inc()
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		sw := obs.StartTimer()
		if err := datasync(l.f); err != nil {
			mAppendFailures.Inc()
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		mSyncs.Inc()
		mSyncSeconds.ObserveSince(sw)
		l.unsynced = 0
	}
	mAppends.Inc()
	return l.seq, nil
}

// Seq returns the last appended (or recovered) sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Snapshot atomically replaces the snapshot with payload, which must
// fold in every record up to and including the current sequence, then
// truncates the log — compaction. The snapshot is durable (written to a
// temp file, fsynced, renamed, directory fsynced) before the log is
// touched; a crash between the two steps merely leaves log records the
// next replay skips by sequence number.
func (l *Log) Snapshot(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(payload, l.seq)
}

// SnapshotAt atomically replaces the snapshot with payload framed at the
// explicit sequence seq and truncates the log, leaving the log positioned
// so the next Append is seq+1. It is the wholesale-revival primitive for
// replication: a lagging or diverged replica adopts the authoritative
// snapshot in one atomic step regardless of its own tail. Callers own the
// claim that payload folds in every record up to and including seq.
func (l *Log) SnapshotAt(payload []byte, seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(payload, seq)
}

// snapshotLocked writes a snapshot framed at seq and truncates the log.
// Callers hold l.mu.
func (l *Log) snapshotLocked(payload []byte, seq uint64) (err error) {
	defer func() {
		if err != nil {
			mCompactionFailures.Inc()
		}
	}()
	if l.closed {
		return ErrClosed
	}
	line, err := frame(seq, payload)
	if err != nil {
		return err
	}
	if err := faultinject.Fire(FailSnapshotWrite); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	tmp := filepath.Join(l.dir, snapTempName)
	if err := writeFileSync(tmp, line); err != nil {
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// Snapshot is durable: drop the folded-in log records. Reopen with
	// O_TRUNC rather than truncating the shared descriptor so the append
	// offset resets consistently.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	l.f = f
	l.seq = seq
	l.unsynced = 0
	mCompactions.Inc()
	return nil
}

// Rewind truncates the log so its last record is sequence `to`, discarding
// any later records, and repositions the next Append at to+1. It exists
// for replication: after a failed replica append the tail's durability is
// unknown, so the replica is rewound to its last acknowledged watermark
// before catch-up extends a known-good prefix. Rewinding past the start
// of the log (into snapshot-covered territory) or forward past the
// current sequence is an error.
func (l *Log) Rewind(to uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if to > l.seq {
		return fmt.Errorf("wal: rewind forward (have seq %d, want %d)", l.seq, to)
	}
	if to == l.seq {
		return nil
	}
	path := filepath.Join(l.dir, logName)
	offset, err := offsetAfter(path, to)
	if err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rewind: %w", err)
	}
	if err := os.Truncate(path, offset); err != nil {
		return fmt.Errorf("wal: rewind: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewind: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:ignore droppederr best-effort close on an already-failing path
		return fmt.Errorf("wal: rewind: %w", err)
	}
	l.f = f
	l.seq = to
	l.unsynced = 0
	return nil
}

// offsetAfter scans the log at path and returns the byte offset just
// past the record with sequence `to` — the truncation point that makes
// `to` the last record. An offset of 0 is valid when every record in the
// file is later than `to`; a gap (the file starts past to+1) is an error
// because truncation could not restore a contiguous tail.
func offsetAfter(path string, to uint64) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("wal: rewind: log file missing")
	}
	if err != nil {
		return 0, fmt.Errorf("wal: rewind: %w", err)
	}
	defer f.Close() //lint:ignore droppederr read-only scan; nothing to lose on close
	var (
		r      = bufio.NewReader(f)
		offset int64
		first  = true
	)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			return offset, nil // any unread tail is torn debris the truncate drops too
		}
		if err != nil {
			return 0, fmt.Errorf("wal: rewind: %w", err)
		}
		seq, _, perr := parseFrame(line[:len(line)-1])
		if perr != nil {
			return offset, nil // corrupt tail: truncating at offset drops it as a bonus
		}
		if first && seq > to+1 {
			return 0, fmt.Errorf("wal: rewind: log starts at seq %d, cannot rewind to %d", seq, to)
		}
		first = false
		if seq > to {
			return offset, nil
		}
		offset += int64(len(line))
	}
}

// Reset discards the snapshot and every log record, returning the log to
// the empty state with sequence 0. It is the last-resort replica rebuild
// path when the authoritative replica has no snapshot to adopt.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := os.Remove(filepath.Join(l.dir, snapName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close() //lint:ignore droppederr best-effort close on an already-failing path
		return err
	}
	l.f = f
	l.seq = 0
	l.unsynced = 0
	return nil
}

// writeFileSync writes b to path and fsyncs it before closing.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() //lint:ignore droppederr best-effort close on an already-failing path
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:ignore droppederr best-effort close on an already-failing path
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close() //lint:ignore droppederr best-effort close on an already-failing path
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return d.Close()
}

// Close fsyncs (unless SyncNever) and closes the log. Further
// operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.opts.Policy != SyncNever && l.unsynced > 0 {
		sw := obs.StartTimer()
		if err := l.f.Sync(); err != nil {
			l.f.Close() //lint:ignore droppederr best-effort close on an already-failing path
			return fmt.Errorf("wal: fsync: %w", err)
		}
		mSyncs.Inc()
		mSyncSeconds.ObserveSince(sw)
	}
	return l.f.Close()
}
