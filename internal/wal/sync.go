package wal

import "os"

// datasync flushes a file's data plus the metadata needed to read it
// back. The portable default is a full fsync; sync_linux.go swaps in
// fdatasync, which on ext4 elides the jbd2 journal commit a plain fsync
// pays for unrelated metadata (timestamps) on every append. Both carry
// the durability promise Append documents: after a nil return the
// record and the file size recording it are on stable storage.
var datasync = func(f *os.File) error {
	return f.Sync()
}
