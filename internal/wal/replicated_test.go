package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"domd/internal/faultinject"
)

// openReplT opens a replica set over n dirs under root, failing the test
// on error.
func openReplT(t *testing.T, root string, n int, opts ReplicatedOptions) (*ReplicatedLog, *Recovered, *ReplRecovery) {
	t.Helper()
	rl, rec, rep, err := OpenReplicated(ReplicaDirs(root, n), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rl, rec, rep
}

// appendReplT appends payload to the set, failing the test on error.
func appendReplT(t *testing.T, rl *ReplicatedLog, payload string) uint64 {
	t.Helper()
	seq, err := rl.Append([]byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// waitConverged polls until every replica is live and caught up.
func waitConverged(t *testing.T, rl *ReplicatedLog) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		converged := true
		for _, st := range rl.Status() {
			if st.State != ReplLive {
				converged = false
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %+v", rl.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// replicaLogEqual opens each dir read-only via Open and asserts every
// replica recovered identical entry streams.
func assertReplicasEqual(t *testing.T, dirs []string) {
	t.Helper()
	var want *Recovered
	for i, dir := range dirs {
		l, rec := openT(t, dir, Options{})
		closeT(t, l)
		if i == 0 {
			want = rec
			continue
		}
		if string(rec.Snapshot) != string(want.Snapshot) {
			t.Fatalf("replica %d snapshot diverges: %q vs %q", i, rec.Snapshot, want.Snapshot)
		}
		if len(rec.Entries) != len(want.Entries) {
			t.Fatalf("replica %d has %d entries, want %d", i, len(rec.Entries), len(want.Entries))
		}
		for j := range rec.Entries {
			if string(rec.Entries[j]) != string(want.Entries[j]) {
				t.Fatalf("replica %d entry %d diverges: %q vs %q", i, j, rec.Entries[j], want.Entries[j])
			}
		}
	}
}

func TestReplicatedQuorumAppend(t *testing.T) {
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, rec, _ := openReplT(t, root, 3, ReplicatedOptions{})
	if rec.Snapshot != nil || len(rec.Entries) != 0 {
		t.Fatalf("fresh set recovered %+v", rec)
	}
	for i := 0; i < 5; i++ {
		if seq := appendReplT(t, rl, fmt.Sprintf("rec-%d", i)); seq != uint64(i+1) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	for _, st := range rl.Status() {
		if st.State != ReplLive || st.Watermark != 5 {
			t.Fatalf("replica not caught up: %+v", st)
		}
	}
	if rl.Lag() != 0 {
		t.Fatalf("lag = %d, want 0", rl.Lag())
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
}

func TestReplicatedFollowerFaultCatchup(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	appendReplT(t, rl, "a")

	// One transient fault on a follower: the append still acks (2/3) and
	// the follower is demoted to lagging, then caught up in the
	// background.
	faultinject.EnableTimes(ReplicaFailpoint(dirs[2]), errors.New("injected disk fault"), 1)
	appendReplT(t, rl, "b")
	appendReplT(t, rl, "c")
	waitConverged(t, rl)
	for _, st := range rl.Status() {
		if st.Watermark != 3 {
			t.Fatalf("watermark after catch-up: %+v", st)
		}
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
	// Reopen: converged set needs no repair.
	rl2, rec, rep := openReplT(t, root, 3, ReplicatedOptions{})
	defer rl2.Close() //lint:ignore droppederr test cleanup
	if len(rec.Entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(rec.Entries))
	}
	for _, r := range rep.Replicas {
		if r.CaughtUp != 0 || r.Rebuilt || r.Failed {
			t.Fatalf("converged set needed repair: %+v", rep)
		}
	}
}

func TestReplicatedQuorumLostNoAck(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	appendReplT(t, rl, "a")

	faultinject.Enable(ReplicaFailpoint(dirs[0]), errors.New("disk 0 down"))
	faultinject.Enable(ReplicaFailpoint(dirs[1]), errors.New("disk 1 down"))
	if _, err := rl.Append([]byte("b")); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("append with 2/3 replicas down: err = %v, want ErrQuorumLost", err)
	}
	if rl.QuorumLive() {
		t.Fatal("QuorumLive with two replicas faulted")
	}

	// Fault clears: the next append revives the laggards inline and acks.
	faultinject.Reset()
	appendReplT(t, rl, "c")
	waitConverged(t, rl)
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
}

func TestReplicatedPrimaryFailover(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	appendReplT(t, rl, "a")
	if st := rl.Status(); !st[0].Primary {
		t.Fatalf("initial primary not replica 0: %+v", st)
	}

	// Persistent primary fault: appends keep acking on the followers and
	// the primary role moves to a live replica.
	faultinject.Enable(ReplicaFailpoint(dirs[0]), errors.New("primary disk gone"))
	appendReplT(t, rl, "b")
	st := rl.Status()
	if st[0].Primary || st[0].State == ReplLive {
		t.Fatalf("faulted replica still primary/live: %+v", st)
	}
	prim := -1
	for i := range st {
		if st[i].Primary {
			prim = i
		}
	}
	if prim <= 0 || st[prim].State != ReplLive || st[prim].Watermark != 2 {
		t.Fatalf("no healthy promoted primary: %+v", st)
	}
	rl.Close() //lint:ignore droppederr replica 0 is faulted; close errors are expected
}

func TestReplicatedSnapshotRevivesLaggard(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{MaxLag: 2})
	faultinject.Enable(ReplicaFailpoint(dirs[2]), errors.New("slow disk"))
	for i := 0; i < 6; i++ {
		appendReplT(t, rl, fmt.Sprintf("r%d", i))
	}
	// Replica 2 fell out of the 2-record tail window: failed.
	if st := rl.Status(); st[2].State != ReplFailed {
		t.Fatalf("out-of-window replica not failed: %+v", st)
	}
	faultinject.Reset()
	if err := rl.Snapshot([]byte("folded")); err != nil {
		t.Fatal(err)
	}
	st := rl.Status()
	for _, r := range st {
		if r.State != ReplLive || r.Watermark != 6 {
			t.Fatalf("snapshot did not revive: %+v", st)
		}
	}
	appendReplT(t, rl, "after")
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
	l, rec := openT(t, dirs[2], Options{})
	closeT(t, l)
	if string(rec.Snapshot) != "folded" || len(rec.Entries) != 1 {
		t.Fatalf("revived replica state: snap=%q entries=%d", rec.Snapshot, len(rec.Entries))
	}
}

func TestReplicatedRecoveryCatchesUpStaleReplica(t *testing.T) {
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	for i := 0; i < 4; i++ {
		appendReplT(t, rl, fmt.Sprintf("r%d", i))
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a replica that crashed behind the others: rewind its log
	// by rewriting it with only the first 2 records.
	l, _ := openT(t, dirs[1], Options{})
	if err := l.Rewind(2); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)

	rl2, rec2, rep := openReplT(t, root, 3, ReplicatedOptions{})
	if len(rec2.Entries) != 4 {
		t.Fatalf("recovered %d entries, want 4", len(rec2.Entries))
	}
	if rep.Replicas[1].CaughtUp != 2 || rep.Replicas[1].Rebuilt {
		t.Fatalf("stale replica repair: %+v", rep.Replicas[1])
	}
	if err := rl2.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
}

func TestReplicatedRecoveryRebuildsDivergedReplica(t *testing.T) {
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	for i := 0; i < 3; i++ {
		appendReplT(t, rl, fmt.Sprintf("r%d", i))
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge divergence: replica 2's record 3 has different payload (a
	// write the rest of the set never saw — e.g. acked by this disk
	// alone before a crash).
	l, _ := openT(t, dirs[2], Options{})
	if err := l.Rewind(2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("rogue")); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)

	rl2, rec2, rep := openReplT(t, root, 3, ReplicatedOptions{})
	if len(rec2.Entries) != 3 || string(rec2.Entries[2]) != "r2" {
		t.Fatalf("recovered wrong tail: %q", rec2.Entries)
	}
	if !rep.Replicas[2].Rebuilt {
		t.Fatalf("diverged replica not rebuilt: %+v", rep.Replicas[2])
	}
	if err := rl2.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
}

func TestReplicatedRecoveryTornTailOnOneReplica(t *testing.T) {
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	for i := 0; i < 3; i++ {
		appendReplT(t, rl, fmt.Sprintf("r%d", i))
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear replica 0's tail mid-record.
	path := filepath.Join(dirs[0], logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	rl2, rec2, rep := openReplT(t, root, 3, ReplicatedOptions{})
	if len(rec2.Entries) != 3 {
		t.Fatalf("recovered %d entries, want 3 (torn replica must not be authoritative)", len(rec2.Entries))
	}
	if !rep.Replicas[0].Info.TornTail || rep.Replicas[0].CaughtUp != 1 {
		t.Fatalf("torn replica repair: %+v", rep.Replicas[0])
	}
	if err := rl2.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
}

func TestReplicatedRecoveryLostReplicaDirRebuilds(t *testing.T) {
	root := t.TempDir()
	dirs := ReplicaDirs(root, 3)
	rl, _, _ := openReplT(t, root, 3, ReplicatedOptions{})
	for i := 0; i < 3; i++ {
		appendReplT(t, rl, fmt.Sprintf("r%d", i))
	}
	if err := rl.Snapshot([]byte("base")); err != nil {
		t.Fatal(err)
	}
	appendReplT(t, rl, "tail")
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	// Total loss of one replica directory.
	if err := RemoveReplicaDirs(dirs[1]); err != nil {
		t.Fatal(err)
	}

	rl2, rec2, rep := openReplT(t, root, 3, ReplicatedOptions{})
	if string(rec2.Snapshot) != "base" || len(rec2.Entries) != 1 {
		t.Fatalf("recovered snap=%q entries=%d", rec2.Snapshot, len(rec2.Entries))
	}
	if !rep.Replicas[1].Rebuilt {
		t.Fatalf("lost replica not rebuilt from snapshot: %+v", rep.Replicas[1])
	}
	if err := rl2.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, dirs)
}

func TestReplicatedOpenQuorumValidation(t *testing.T) {
	if _, _, _, err := OpenReplicated(nil, ReplicatedOptions{}); err == nil {
		t.Fatal("no dirs accepted")
	}
	if _, _, _, err := OpenReplicated(ReplicaDirs(t.TempDir(), 2), ReplicatedOptions{Quorum: 3}); err == nil {
		t.Fatal("quorum > replicas accepted")
	}
}

func TestRewind(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		appendT(t, l, fmt.Sprintf("r%d", i))
	}
	if err := l.Rewind(3); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 3 {
		t.Fatalf("seq after rewind = %d", l.Seq())
	}
	appendT(t, l, "r3-take2")
	closeT(t, l)

	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	want := []string{"r0", "r1", "r2", "r3-take2"}
	if len(rec.Entries) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(rec.Entries), len(want))
	}
	for i, w := range want {
		if string(rec.Entries[i]) != w {
			t.Fatalf("entry %d = %q, want %q", i, rec.Entries[i], w)
		}
	}
	if err := l2.Rewind(9); err == nil {
		t.Fatal("forward rewind accepted")
	}
}

func TestRewindIntoSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		appendT(t, l, fmt.Sprintf("r%d", i))
	}
	if err := l.Snapshot([]byte("folded")); err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "r3")
	if err := l.Rewind(1); err == nil {
		t.Fatal("rewind into snapshot-covered territory accepted")
	}
	if err := l.Rewind(3); err != nil {
		t.Fatalf("rewind to snapshot boundary: %v", err)
	}
	closeT(t, l)
}

func TestSnapshotAtAndReset(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "a")
	if err := l.SnapshotAt([]byte("adopted"), 7); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 7 {
		t.Fatalf("seq after SnapshotAt = %d", l.Seq())
	}
	appendT(t, l, "b")
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "adopted" || rec.Info.SnapshotSeq != 7 || len(rec.Entries) != 1 {
		t.Fatalf("recovered %+v snap=%q", rec.Info, rec.Snapshot)
	}
	if err := l2.Reset(); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 0 {
		t.Fatalf("seq after reset = %d", l2.Seq())
	}
	appendT(t, l2, "fresh")
	closeT(t, l2)
	l3, rec3 := openT(t, dir, Options{})
	defer closeT(t, l3)
	if rec3.Snapshot != nil || len(rec3.Entries) != 1 || string(rec3.Entries[0]) != "fresh" {
		t.Fatalf("reset state: snap=%q entries=%q", rec3.Snapshot, rec3.Entries)
	}
}

func TestTornTailCutIsDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	appendT(t, l, "good")
	closeT(t, l)
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage-without-newline"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{})
	closeT(t, l2)
	if !rec.Info.TornTail {
		t.Fatal("torn tail not reported")
	}
	// The cut physically truncated and fsynced the file: on-disk size
	// must equal the reported valid prefix.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != rec.Info.TornOffset {
		t.Fatalf("file size %d after cut, want %d", fi.Size(), rec.Info.TornOffset)
	}
}
