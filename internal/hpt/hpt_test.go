package hpt

import (
	"math"
	"testing"
)

// quadratic has its minimum at x=3, y=-2 with value 0.
func quadratic(c Config) (float64, error) {
	dx := c["x"] - 3
	dy := c["y"] + 2
	return dx*dx + dy*dy, nil
}

func quadSpace() Space {
	return Space{
		{Name: "x", Kind: Float, Min: -10, Max: 10},
		{Name: "y", Kind: Float, Min: -10, Max: 10},
	}
}

func TestRandomSearchFindsDecentPoint(t *testing.T) {
	r := &RandomSearch{Seed: 1}
	res, err := r.Optimize(quadSpace(), quadratic, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 200 {
		t.Fatalf("trials = %d, want 200", len(res.Trials))
	}
	if res.Best.Score > 5 {
		t.Errorf("best score = %f, want < 5 after 200 random trials", res.Best.Score)
	}
}

func TestTPEBeatsRandomOnQuadratic(t *testing.T) {
	budget := 60
	var tpeSum, rndSum float64
	const reps = 5
	for s := int64(0); s < reps; s++ {
		tpe := &TPE{Seed: s}
		rt, err := tpe.Optimize(quadSpace(), quadratic, budget)
		if err != nil {
			t.Fatal(err)
		}
		rnd := &RandomSearch{Seed: s}
		rr, err := rnd.Optimize(quadSpace(), quadratic, budget)
		if err != nil {
			t.Fatal(err)
		}
		tpeSum += rt.Best.Score
		rndSum += rr.Best.Score
	}
	if tpeSum >= rndSum {
		t.Errorf("TPE mean best %f should beat random %f over %d seeds",
			tpeSum/reps, rndSum/reps, reps)
	}
}

func TestTPEImprovesWithBudget(t *testing.T) {
	small, err := (&TPE{Seed: 7}).Optimize(quadSpace(), quadratic, 10)
	if err != nil {
		t.Fatal(err)
	}
	large, err := (&TPE{Seed: 7}).Optimize(quadSpace(), quadratic, 100)
	if err != nil {
		t.Fatal(err)
	}
	if large.Best.Score > small.Best.Score {
		t.Errorf("more budget should not hurt: %f vs %f", large.Best.Score, small.Best.Score)
	}
}

func TestBoundsRespected(t *testing.T) {
	space := Space{
		{Name: "f", Kind: Float, Min: 2, Max: 5},
		{Name: "fl", Kind: Float, Min: 0.01, Max: 10, Log: true},
		{Name: "i", Kind: Int, Min: 1, Max: 4},
		{Name: "c", Kind: Categorical, Choices: []float64{10, 20, 30}},
	}
	check := func(c Config) (float64, error) {
		if c["f"] < 2 || c["f"] > 5 {
			t.Errorf("f = %f out of bounds", c["f"])
		}
		if c["fl"] < 0.01 || c["fl"] > 10 {
			t.Errorf("fl = %f out of bounds", c["fl"])
		}
		if c["i"] != math.Trunc(c["i"]) || c["i"] < 1 || c["i"] > 4 {
			t.Errorf("i = %f not an int in [1,4]", c["i"])
		}
		if c["c"] != 10 && c["c"] != 20 && c["c"] != 30 {
			t.Errorf("c = %f not a choice", c["c"])
		}
		return c["f"], nil
	}
	for _, tn := range []Tuner{&RandomSearch{Seed: 3}, &TPE{Seed: 3}} {
		if _, err := tn.Optimize(space, check, 50); err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
	}
}

func TestCategoricalConverges(t *testing.T) {
	// Objective strongly prefers choice 20.
	space := Space{{Name: "c", Kind: Categorical, Choices: []float64{10, 20, 30}}}
	obj := func(c Config) (float64, error) {
		if c["c"] == 20 {
			return 0, nil
		}
		return 100, nil
	}
	res, err := (&TPE{Seed: 5}).Optimize(space, obj, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Config["c"] != 20 {
		t.Errorf("best categorical = %f, want 20", res.Best.Config["c"])
	}
	// Later trials should mostly pick 20.
	hits := 0
	for _, tr := range res.Trials[20:] {
		if tr.Config["c"] == 20 {
			hits++
		}
	}
	if hits < 10 {
		t.Errorf("TPE exploited best categorical only %d/20 times", hits)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := (&TPE{Seed: 11}).Optimize(quadSpace(), quadratic, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&TPE{Seed: 11}).Optimize(quadSpace(), quadratic, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trials {
		if a.Trials[i].Score != b.Trials[i].Score {
			t.Fatal("same seed must reproduce the same trajectory")
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Space{
		{},
		{{Name: "x", Kind: Float, Min: 5, Max: 2}},
		{{Name: "x", Kind: Float, Min: 0, Max: 1, Log: true}},
		{{Name: "x", Kind: Categorical}},
		{{Name: "x", Kind: Float, Min: 0, Max: 1}, {Name: "x", Kind: Float, Min: 0, Max: 1}},
		{{Name: "x", Kind: ParamKind(9), Min: 0, Max: 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	for _, tn := range []Tuner{&RandomSearch{}, &TPE{}} {
		if _, err := tn.Optimize(quadSpace(), quadratic, 0); err == nil {
			t.Errorf("%s: zero budget: want error", tn.Name())
		}
		if _, err := tn.Optimize(bad[1], quadratic, 5); err == nil {
			t.Errorf("%s: bad space: want error", tn.Name())
		}
	}
}

func TestObjectiveErrorPropagates(t *testing.T) {
	boom := func(Config) (float64, error) { return 0, errBoom }
	if _, err := (&RandomSearch{}).Optimize(quadSpace(), boom, 5); err == nil {
		t.Error("objective error must propagate")
	}
	if _, err := (&TPE{}).Optimize(quadSpace(), boom, 5); err == nil {
		t.Error("objective error must propagate")
	}
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom = boomErr{}

func TestXGBoostSpaceValid(t *testing.T) {
	s := XGBoostSpace()
	if err := s.Validate(); err != nil {
		t.Fatalf("XGBoostSpace invalid: %v", err)
	}
	names := map[string]bool{}
	for _, p := range s {
		names[p.Name] = true
	}
	for _, want := range []string{"num_rounds", "learning_rate", "max_depth", "lambda", "subsample"} {
		if !names[want] {
			t.Errorf("XGBoostSpace missing %q", want)
		}
	}
}
