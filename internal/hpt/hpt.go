// Package hpt is the fully automated hyperparameter tuning (AutoHPT) module
// of paper §3.2.4: Sequential Model-Based Optimization driven by a
// Tree-structured Parzen Estimator (TPE, Bergstra et al.), with a
// random-search baseline. Task 5 selects both the tuner and its trial budget
// (the paper lands on 30 trials).
package hpt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ParamKind distinguishes continuous, integer and categorical dimensions.
type ParamKind int

// Parameter kinds.
const (
	Float ParamKind = iota
	Int
	Categorical
)

// Param defines one search dimension.
type Param struct {
	Name string
	Kind ParamKind
	// Min/Max bound Float and Int params (inclusive).
	Min, Max float64
	// Log samples Float params on a log scale (Min must be > 0).
	Log bool
	// Choices lists Categorical values (stored as float64 codes).
	Choices []float64
}

// Validate rejects malformed dimensions.
func (p Param) Validate() error {
	switch p.Kind {
	case Float, Int:
		if p.Max < p.Min {
			return fmt.Errorf("hpt: param %s: max %f < min %f", p.Name, p.Max, p.Min)
		}
		if p.Log && p.Min <= 0 {
			return fmt.Errorf("hpt: param %s: log scale requires min > 0", p.Name)
		}
	case Categorical:
		if len(p.Choices) == 0 {
			return fmt.Errorf("hpt: param %s: no choices", p.Name)
		}
	default:
		return fmt.Errorf("hpt: param %s: unknown kind %d", p.Name, p.Kind)
	}
	return nil
}

// Space is an ordered set of dimensions.
type Space []Param

// Validate checks every dimension and name uniqueness.
func (s Space) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("hpt: empty space")
	}
	seen := map[string]bool{}
	for _, p := range s {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("hpt: duplicate param %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// Config is a sampled point: parameter name to value.
type Config map[string]float64

// Objective evaluates a configuration and returns a score to MINIMIZE
// (validation MAE in the DoMD pipeline).
type Objective func(Config) (float64, error)

// Trial records one evaluated configuration.
type Trial struct {
	Config Config
	Score  float64
}

// Result is the outcome of an optimization run.
type Result struct {
	Best   Trial
	Trials []Trial
}

// Tuner is a hyperparameter determination method p ∈ P (Task 5).
type Tuner interface {
	Name() string
	// Optimize runs up to budget objective evaluations.
	Optimize(space Space, obj Objective, budget int) (Result, error)
}

// sampleUniform draws one value for p from its prior.
func sampleUniform(rng *rand.Rand, p Param) float64 {
	switch p.Kind {
	case Categorical:
		return p.Choices[rng.Intn(len(p.Choices))]
	case Int:
		lo, hi := int(p.Min), int(p.Max)
		return float64(lo + rng.Intn(hi-lo+1))
	default:
		if p.Log {
			lo, hi := math.Log(p.Min), math.Log(p.Max)
			return math.Exp(lo + rng.Float64()*(hi-lo))
		}
		return p.Min + rng.Float64()*(p.Max-p.Min)
	}
}

// RandomSearch samples each trial independently from the prior.
type RandomSearch struct{ Seed int64 }

// Name implements Tuner.
func (*RandomSearch) Name() string { return "random" }

// Optimize implements Tuner.
func (r *RandomSearch) Optimize(space Space, obj Objective, budget int) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if budget < 1 {
		return Result{}, fmt.Errorf("hpt: budget %d < 1", budget)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	var res Result
	res.Best.Score = math.Inf(1)
	for t := 0; t < budget; t++ {
		cfg := Config{}
		for _, p := range space {
			cfg[p.Name] = sampleUniform(rng, p)
		}
		score, err := obj(cfg)
		if err != nil {
			return Result{}, fmt.Errorf("hpt: trial %d: %w", t, err)
		}
		tr := Trial{Config: cfg, Score: score}
		res.Trials = append(res.Trials, tr)
		if score < res.Best.Score {
			res.Best = tr
		}
	}
	return res, nil
}

// TPE is the Tree-structured Parzen Estimator: after NStartup random
// trials, it splits history at the Gamma quantile into "good" and "bad"
// sets, models each with per-dimension Parzen (kernel density) estimators
// l(x) and g(x), draws NCandidates from l, and evaluates the candidate
// maximizing l(x)/g(x) — the SMBO expected-improvement surrogate.
type TPE struct {
	Seed int64
	// NStartup is the number of initial random trials (default 8).
	NStartup int
	// Gamma is the good/bad split quantile (default 0.25).
	Gamma float64
	// NCandidates is the number of samples scored per step (default 24).
	NCandidates int
}

// Name implements Tuner.
func (*TPE) Name() string { return "tpe" }

// Optimize implements Tuner.
func (t *TPE) Optimize(space Space, obj Objective, budget int) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if budget < 1 {
		return Result{}, fmt.Errorf("hpt: budget %d < 1", budget)
	}
	startup := t.NStartup
	if startup <= 0 {
		startup = 8
	}
	gamma := t.Gamma
	if gamma <= 0 || gamma >= 1 {
		gamma = 0.25
	}
	ncand := t.NCandidates
	if ncand <= 0 {
		ncand = 24
	}
	rng := rand.New(rand.NewSource(t.Seed))
	var res Result
	res.Best.Score = math.Inf(1)

	for trial := 0; trial < budget; trial++ {
		var cfg Config
		if trial < startup || len(res.Trials) < 4 {
			cfg = Config{}
			for _, p := range space {
				cfg[p.Name] = sampleUniform(rng, p)
			}
		} else {
			cfg = t.suggest(rng, space, res.Trials, gamma, ncand)
		}
		score, err := obj(cfg)
		if err != nil {
			return Result{}, fmt.Errorf("hpt: trial %d: %w", trial, err)
		}
		tr := Trial{Config: cfg, Score: score}
		res.Trials = append(res.Trials, tr)
		if score < res.Best.Score {
			res.Best = tr
		}
	}
	return res, nil
}

// suggest draws candidates from the good-density and returns the one with
// the highest l/g ratio.
func (t *TPE) suggest(rng *rand.Rand, space Space, history []Trial, gamma float64, ncand int) Config {
	// Partition history at the gamma quantile of scores.
	sorted := append([]Trial(nil), history...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })
	nGood := int(math.Ceil(gamma * float64(len(sorted))))
	if nGood < 2 {
		nGood = 2
	}
	if nGood >= len(sorted) {
		nGood = len(sorted) - 1
	}
	good, bad := sorted[:nGood], sorted[nGood:]

	best := Config{}
	bestScore := math.Inf(-1)
	for c := 0; c < ncand; c++ {
		cand := Config{}
		logRatio := 0.0
		for _, p := range space {
			v := sampleFromParzen(rng, p, good)
			cand[p.Name] = v
			logRatio += logDensity(p, good, v) - logDensity(p, bad, v)
		}
		if logRatio > bestScore {
			bestScore = logRatio
			best = cand
		}
	}
	return best
}

// parzenSigma is the kernel bandwidth heuristic: range / sqrt(#obs).
func parzenSigma(p Param, n int) float64 {
	span := p.Max - p.Min
	if p.Log {
		span = math.Log(p.Max) - math.Log(p.Min)
	}
	if span <= 0 {
		span = 1
	}
	return span / math.Sqrt(float64(n)+1)
}

// toScale maps a value into the (possibly log) sampling scale.
func toScale(p Param, v float64) float64 {
	if p.Log {
		return math.Log(v)
	}
	return v
}

func fromScale(p Param, v float64) float64 {
	if p.Log {
		return math.Exp(v)
	}
	return v
}

// sampleFromParzen draws from the kernel mixture centered on the good
// observations (uniform kernel weights), clipped to bounds.
func sampleFromParzen(rng *rand.Rand, p Param, good []Trial) float64 {
	if p.Kind == Categorical {
		// Weighted by counts with add-one smoothing.
		weights := make([]float64, len(p.Choices))
		for i := range weights {
			weights[i] = 1
		}
		for _, tr := range good {
			v := tr.Config[p.Name]
			for i, c := range p.Choices {
				if c == v { //lint:ignore floateq categorical choices round-trip through Config unmodified, so equality is exact
					weights[i]++
				}
			}
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		u := rng.Float64() * total
		for i, w := range weights {
			u -= w
			if u <= 0 {
				return p.Choices[i]
			}
		}
		return p.Choices[len(p.Choices)-1]
	}
	center := good[rng.Intn(len(good))].Config[p.Name]
	sigma := parzenSigma(p, len(good))
	v := toScale(p, center) + rng.NormFloat64()*sigma
	v = fromScale(p, v)
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	if p.Kind == Int {
		v = math.Round(v)
	}
	return v
}

// logDensity evaluates the log Parzen mixture density of obs at v.
func logDensity(p Param, obs []Trial, v float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	if p.Kind == Categorical {
		count := 1.0 // add-one smoothing
		for _, tr := range obs {
			if tr.Config[p.Name] == v { //lint:ignore floateq categorical choices round-trip through Config unmodified, so equality is exact
				count++
			}
		}
		return math.Log(count / (float64(len(obs)) + float64(len(p.Choices))))
	}
	sigma := parzenSigma(p, len(obs))
	x := toScale(p, v)
	sum := 0.0
	for _, tr := range obs {
		d := (x - toScale(p, tr.Config[p.Name])) / sigma
		sum += math.Exp(-0.5 * d * d)
	}
	// Normalization constants cancel in the l/g ratio only if sigmas match;
	// include them for correctness.
	return math.Log(sum/(float64(len(obs))*sigma*math.Sqrt(2*math.Pi)) + 1e-300)
}

// XGBoostSpace is the search space of the framework's key booster
// hyperparameters (§3.2.4 "key parameters to optimize").
func XGBoostSpace() Space {
	return Space{
		{Name: "num_rounds", Kind: Int, Min: 20, Max: 400},
		{Name: "learning_rate", Kind: Float, Min: 0.01, Max: 0.5, Log: true},
		{Name: "max_depth", Kind: Int, Min: 2, Max: 8},
		{Name: "min_child_weight", Kind: Float, Min: 0.01, Max: 10, Log: true},
		{Name: "lambda", Kind: Float, Min: 0.05, Max: 10, Log: true},
		{Name: "gamma", Kind: Float, Min: 0, Max: 5},
		{Name: "subsample", Kind: Float, Min: 0.5, Max: 1},
		{Name: "colsample", Kind: Float, Min: 0.5, Max: 1},
	}
}
