package hpt_test

import (
	"fmt"

	"domd/internal/hpt"
)

// Minimize a toy objective with the AutoHPT module's TPE tuner.
func ExampleTPE() {
	space := hpt.Space{
		{Name: "x", Kind: hpt.Float, Min: -10, Max: 10},
	}
	objective := func(c hpt.Config) (float64, error) {
		d := c["x"] - 3
		return d * d, nil
	}
	tuner := &hpt.TPE{Seed: 1}
	res, err := tuner.Optimize(space, objective, 60)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best x within 1 of optimum: %v\n", res.Best.Config["x"] > 2 && res.Best.Config["x"] < 4)
	// Output: best x within 1 of optimum: true
}
