package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedFireIsNil(t *testing.T) {
	defer Reset()
	if err := Fire("nope"); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("x", boom)
	if !Armed("x") {
		t.Fatal("x not armed")
	}
	for i := 0; i < 3; i++ {
		if err := Fire("x"); !errors.Is(err, boom) {
			t.Fatalf("Fire #%d = %v, want boom", i, err)
		}
	}
	// An armed registry must not leak into other sites.
	if err := Fire("y"); err != nil {
		t.Fatalf("unarmed sibling site fired: %v", err)
	}
	Disable("x")
	if Armed("x") {
		t.Fatal("x still armed after Disable")
	}
	if err := Fire("x"); err != nil {
		t.Fatalf("Fire after Disable = %v", err)
	}
}

func TestEnableTimesAutoDisarms(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	EnableTimes("x", boom, 2)
	if err := Fire("x"); !errors.Is(err, boom) {
		t.Fatalf("hit 1 = %v", err)
	}
	if err := Fire("x"); !errors.Is(err, boom) {
		t.Fatalf("hit 2 = %v", err)
	}
	if err := Fire("x"); err != nil {
		t.Fatalf("hit 3 = %v, want nil (auto-disarmed)", err)
	}
	if Armed("x") {
		t.Fatal("x still armed after budget exhausted")
	}
}

func TestArmHookRunsOutsideLock(t *testing.T) {
	defer Reset()
	// A hook that re-enters the registry must not deadlock.
	Arm("outer", func() error { return Fire("inner") })
	Enable("inner", errors.New("inner boom"))
	if err := Fire("outer"); err == nil || err.Error() != "inner boom" {
		t.Fatalf("re-entrant Fire = %v", err)
	}
}

func TestArmPanicHookPropagates(t *testing.T) {
	defer Reset()
	Arm("kill", func() error { panic("simulated kill") })
	defer func() {
		if recover() == nil {
			t.Fatal("panic hook did not propagate")
		}
		// The site must still be usable after the panic unwound.
		Disable("kill")
		if err := Fire("kill"); err != nil {
			t.Fatalf("Fire after recovered panic = %v", err)
		}
	}()
	Fire("kill") // the hook panics; there is no error to observe
}

func TestResetDisarmsEverything(t *testing.T) {
	defer Reset()
	Enable("a", errors.New("a"))
	EnableTimes("b", errors.New("b"), 5)
	Reset()
	if Armed("a") || Armed("b") {
		t.Fatal("sites survived Reset")
	}
	if err := Fire("a"); err != nil {
		t.Fatalf("Fire after Reset = %v", err)
	}
}

func TestConcurrentFire(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	EnableTimes("x", boom, 100)
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := Fire("x"); err != nil {
					hits[g]++
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != 100 {
		t.Fatalf("budgeted site fired %d times, want exactly 100", total)
	}
}
