// Package faultinject is a runtime failpoint registry for chaos testing
// the serving path. Production code threads named sites through its hot
// spots (WAL writes, engine builds, the ingest apply step); tests arm a
// site with an error or an arbitrary hook (including one that panics, to
// simulate a kill) and drive the system through the failure. Sites are
// enabled at runtime — no build tags — so the exact binary under test is
// the binary that ships.
//
// The disarmed fast path is a single atomic load: with no failpoints
// armed, Fire costs one predictable branch and takes no locks, so
// instrumented sites are safe to leave in hot paths.
//
// Typical test usage:
//
//	defer faultinject.Reset()
//	faultinject.Enable("wal.append.write", errDisk)       // fail every hit
//	faultinject.EnableTimes("wal.append.sync", errDisk, 1) // fail once
//	faultinject.Arm("statusq.durable.apply", func() error {
//		panic("simulated kill between WAL append and apply")
//	})
package faultinject

import (
	"sync"
	"sync/atomic"
)

// armed counts currently-armed sites; zero means Fire returns nil without
// touching the registry lock.
var armed atomic.Int64

var (
	mu    sync.Mutex // guards sites
	sites = map[string]*site{}
)

// site is one armed failpoint: a hook plus an optional remaining-hit
// budget (0 = unlimited).
type site struct {
	hook func() error
	// remaining > 0 auto-disarms the site after that many firing hits;
	// 0 means the site stays armed until Disable/Reset.
	remaining int
}

// Fire triggers the named site. It returns nil when the site is not
// armed; otherwise it runs the armed hook and returns its error. A hook
// is free to panic (simulating a process kill at the site) or to block.
// Production call sites must treat a non-nil error exactly like the real
// failure the site stands in for.
func Fire(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	s := sites[name]
	if s == nil {
		mu.Unlock()
		return nil
	}
	hook := s.hook
	if s.remaining > 0 {
		s.remaining--
		if s.remaining == 0 {
			delete(sites, name)
			armed.Add(-1)
		}
	}
	mu.Unlock()
	// Run the hook outside the lock: it may panic or fire other sites.
	return hook()
}

// Arm installs fn as the named site's hook, replacing any previous
// arming. fn runs on every Fire until Disable or Reset.
func Arm(name string, fn func() error) {
	armTimes(name, fn, 0)
}

// Enable arms the site to fail with err on every hit.
func Enable(name string, err error) {
	armTimes(name, func() error { return err }, 0)
}

// EnableTimes arms the site to fail with err for the next n hits, then
// auto-disarm — the transient-fault shape (one bad write, then the disk
// recovers).
func EnableTimes(name string, err error, n int) {
	armTimes(name, func() error { return err }, n)
}

func armTimes(name string, fn func() error, n int) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		armed.Add(1)
	}
	sites[name] = &site{hook: fn, remaining: n}
}

// Disable disarms one site; disarming an unarmed site is a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Reset disarms every site. Tests that arm anything should
// `defer faultinject.Reset()` so a failed test cannot poison the next.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(sites)))
	for name := range sites {
		delete(sites, name)
	}
}

// Armed reports whether the named site is currently armed (visible for
// test assertions).
func Armed(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := sites[name]
	return ok
}
