package navsim

import (
	"math"
	"testing"
	"testing/quick"

	"domd/internal/domain"
	"domd/internal/stats"
	"domd/internal/swlin"
)

func generate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDefaultCardinalitiesMatchTable5(t *testing.T) {
	ds := generate(t, Config{})
	closed := 0
	for _, a := range ds.Avails {
		if a.Status == domain.StatusClosed {
			closed++
		}
	}
	if closed != 187 {
		t.Errorf("closed avails = %d, want 187", closed)
	}
	// Table 5: 52,959 RCCs. Poisson noise means we check a band.
	n := len(ds.RCCs)
	if n < 40000 || n > 70000 {
		t.Errorf("RCC count = %d, want ≈53k", n)
	}
}

func TestRecordsAreValid(t *testing.T) {
	ds := generate(t, Config{NumClosed: 50, NumOngoing: 3, MeanRCCsPerAvail: 100, Seed: 2})
	availIDs := map[int]bool{}
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if err := a.Validate(); err != nil {
			t.Fatalf("avail %d invalid: %v", a.ID, err)
		}
		if availIDs[a.ID] {
			t.Fatalf("duplicate avail id %d", a.ID)
		}
		availIDs[a.ID] = true
	}
	rccIDs := map[int]bool{}
	for i := range ds.RCCs {
		r := &ds.RCCs[i]
		if err := r.Validate(); err != nil {
			t.Fatalf("rcc %d invalid: %v", r.ID, err)
		}
		if rccIDs[r.ID] {
			t.Fatalf("duplicate rcc id %d", r.ID)
		}
		rccIDs[r.ID] = true
		if !availIDs[r.AvailID] {
			t.Fatalf("rcc %d references unknown avail %d", r.ID, r.AvailID)
		}
		if !swlin.Code(r.SWLIN).Valid() {
			t.Fatalf("rcc %d has invalid SWLIN %d", r.ID, r.SWLIN)
		}
	}
}

func TestDelayDistributionShape(t *testing.T) {
	ds := generate(t, Config{})
	delays := ds.Delays()
	if len(delays) != 187 {
		t.Fatalf("%d delays", len(delays))
	}
	med := stats.Quantile(delays, 0.5)
	if med < 0 || med > 120 {
		t.Errorf("median delay = %f days, want a few months at most", med)
	}
	// Fig. 2: long right tail out to multiple years.
	max := stats.Quantile(delays, 1.0)
	if max < 365 {
		t.Errorf("max delay = %f, want a multi-year tail", max)
	}
	// Some early finishes exist but are bounded.
	min := stats.Quantile(delays, 0.0)
	if min < -45 {
		t.Errorf("min delay = %f, early finishes should be bounded", min)
	}
	// Right skew: mean > median.
	if stats.Mean(delays) <= med {
		t.Errorf("mean %f <= median %f; delay should be right-skewed", stats.Mean(delays), med)
	}
}

func TestTroubleDrivesBothRCCsAndDelay(t *testing.T) {
	ds := generate(t, Config{NumClosed: 150, NumOngoing: 0, MeanRCCsPerAvail: 150, Seed: 3})
	byAvail := ds.RCCsByAvail()
	var thetas, counts, delays []float64
	for i := range ds.Avails {
		a := &ds.Avails[i]
		d, err := a.Delay()
		if err != nil {
			continue
		}
		thetas = append(thetas, ds.Truth[a.ID])
		counts = append(counts, float64(len(byAvail[a.ID])))
		delays = append(delays, float64(d))
	}
	rTC, err := stats.Pearson(thetas, counts)
	if err != nil {
		t.Fatal(err)
	}
	if rTC < 0.6 {
		t.Errorf("corr(theta, rcc count) = %f, want strong", rTC)
	}
	rCD, err := stats.Spearman(counts, delays)
	if err != nil {
		t.Fatal(err)
	}
	if rCD < 0.2 {
		t.Errorf("corr(rcc count, delay) = %f, want positive signal", rCD)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{NumClosed: 30, NumOngoing: 2, MeanRCCsPerAvail: 50, Seed: 77}
	a := generate(t, cfg)
	b := generate(t, cfg)
	if len(a.RCCs) != len(b.RCCs) {
		t.Fatal("same seed must generate identical datasets")
	}
	for i := range a.RCCs {
		if a.RCCs[i] != b.RCCs[i] {
			t.Fatal("same seed must generate identical RCCs")
		}
	}
	cfg.Seed = 78
	c := generate(t, cfg)
	if len(a.RCCs) == len(c.RCCs) && len(a.RCCs) > 0 && a.RCCs[0] == c.RCCs[0] {
		t.Error("different seeds should differ")
	}
}

func TestOngoingAvailsHaveNoEnd(t *testing.T) {
	ds := generate(t, Config{NumClosed: 10, NumOngoing: 4, MeanRCCsPerAvail: 20, Seed: 4})
	ongoing := 0
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			ongoing++
			if _, err := ds.Avails[i].Delay(); err == nil {
				t.Error("ongoing avail reports a delay")
			}
		}
	}
	if ongoing != 4 {
		t.Errorf("ongoing = %d, want 4", ongoing)
	}
}

func TestRCCDatesInsideExecutionWindow(t *testing.T) {
	ds := generate(t, Config{NumClosed: 40, NumOngoing: 0, MeanRCCsPerAvail: 80, Seed: 5})
	availByID := map[int]*domain.Avail{}
	for i := range ds.Avails {
		availByID[ds.Avails[i].ID] = &ds.Avails[i]
	}
	for _, r := range ds.RCCs {
		a := availByID[r.AvailID]
		if r.Created < a.ActStart {
			t.Fatalf("rcc %d created %v before actual start %v", r.ID, r.Created, a.ActStart)
		}
		// Settlement may run slightly past the avail end (real RCCs do),
		// but creation must fall within roughly the execution window.
		if a.Status == domain.StatusClosed && r.Created > a.ActEnd {
			t.Fatalf("rcc %d created %v after actual end %v", r.ID, r.Created, a.ActEnd)
		}
	}
}

func TestScalePreservesTemporalDistribution(t *testing.T) {
	ds := generate(t, Config{NumClosed: 20, NumOngoing: 0, MeanRCCsPerAvail: 30, Seed: 6})
	scaled, err := Scale(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaled.RCCs) != 5*len(ds.RCCs) {
		t.Fatalf("scaled count = %d, want %d", len(scaled.RCCs), 5*len(ds.RCCs))
	}
	// Unique IDs.
	ids := map[int]bool{}
	for _, r := range scaled.RCCs {
		if ids[r.ID] {
			t.Fatalf("duplicate id %d after scaling", r.ID)
		}
		ids[r.ID] = true
	}
	// Temporal distribution intact: same multiset of creation dates, x5.
	counts := map[domain.Day]int{}
	for _, r := range ds.RCCs {
		counts[r.Created]++
	}
	scaledCounts := map[domain.Day]int{}
	for _, r := range scaled.RCCs {
		scaledCounts[r.Created]++
	}
	for day, c := range counts {
		if scaledCounts[day] != 5*c {
			t.Fatalf("day %v: %d scaled vs %d original", day, scaledCounts[day], c)
		}
	}
	// Avails untouched.
	if len(scaled.Avails) != len(ds.Avails) {
		t.Error("scaling must not change avails")
	}
}

func TestScaleFactorOne(t *testing.T) {
	ds := generate(t, Config{NumClosed: 10, NumOngoing: 0, MeanRCCsPerAvail: 10, Seed: 7})
	same, err := Scale(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.RCCs) != len(ds.RCCs) {
		t.Error("factor 1 should be identity on counts")
	}
	if _, err := Scale(ds, 0); err == nil {
		t.Error("factor 0: want error")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumClosed: 2, NumOngoing: 0, MeanRCCsPerAvail: 10},
		{NumClosed: 10, NumOngoing: -1, MeanRCCsPerAvail: 10},
		{NumClosed: 10, NumOngoing: 0, MeanRCCsPerAvail: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	// Check the internal sampler through the aggregate RCC counts: mean
	// count per avail should track MeanRCCsPerAvail within sampling error.
	ds := generate(t, Config{NumClosed: 100, NumOngoing: 0, MeanRCCsPerAvail: 200, Seed: 8})
	mean := float64(len(ds.RCCs)) / 100
	if math.Abs(mean-200) > 40 {
		t.Errorf("mean RCCs per avail = %f, want ≈200", mean)
	}
}

func TestStaticAttributesInRange(t *testing.T) {
	ds := generate(t, Config{NumClosed: 60, NumOngoing: 0, MeanRCCsPerAvail: 20, Seed: 9})
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if a.ShipAge < 3 || a.ShipAge > 35 {
			t.Errorf("avail %d: ship age %f out of range", a.ID, a.ShipAge)
		}
		if a.RMC < 1 || a.RMC > 6 {
			t.Errorf("avail %d: RMC %d out of range", a.ID, a.RMC)
		}
		if a.DockType != 0 && a.DockType != 1 {
			t.Errorf("avail %d: dock type %d", a.ID, a.DockType)
		}
		if dur := a.PlannedDuration(); dur < 120 || dur > 720 {
			t.Errorf("avail %d: planned duration %d out of range", a.ID, dur)
		}
		if a.PlannedCost <= 0 {
			t.Errorf("avail %d: non-positive planned cost", a.ID)
		}
	}
}

// TestQuickGeneratorInvariants fuzzes configurations and checks structural
// invariants: valid records, bounded-below delays, referential integrity.
func TestQuickGeneratorInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		cfg := Config{
			NumClosed:        4 + int(nRaw)%40,
			NumOngoing:       int(mRaw) % 4,
			MeanRCCsPerAvail: 5 + float64(mRaw%50),
			Seed:             seed,
		}
		ds, err := Generate(cfg)
		if err != nil {
			return false
		}
		ids := map[int]bool{}
		for i := range ds.Avails {
			if ds.Avails[i].Validate() != nil {
				return false
			}
			ids[ds.Avails[i].ID] = true
			if d, err := ds.Avails[i].Delay(); err == nil && d < -45 {
				return false
			}
		}
		for i := range ds.RCCs {
			if ds.RCCs[i].Validate() != nil || !ids[ds.RCCs[i].AvailID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
