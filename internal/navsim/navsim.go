// Package navsim generates a synthetic Navy Maintenance Database: the avail
// and RCC tables of paper §2 with a delay-generating ground truth.
//
// The real NMD is Controlled Unclassified Information and cannot be
// published (paper footnote 1), so this generator is the substitution that
// lets every experiment run. It is designed to preserve the properties the
// paper's evaluation depends on:
//
//   - Cardinalities: ≈187 closed avails and ≈53k RCCs (Table 5), plus a few
//     ongoing avails for live DoMD queries.
//   - A delay distribution with most mass within a few months of plan and a
//     long right tail out to multiple years (Fig. 2), including a few early
//     (negative-delay) completions like Table 1's avail 5.
//   - A latent per-avail "trouble" intensity that drives both the RCC
//     arrival process and the final delay, so RCC-derived features carry
//     genuine signal that strengthens as logical time advances.
//   - Linear signal in a modest subset of aggregate features (so Pearson
//     top-k selection works), non-linear interactions on top (so gradient
//     boosting beats the linear model), and heavy-tailed noise with gross
//     outliers (so pseudo-Huber beats ℓ2).
//
// The x-fold RCC scaling of §5.0.1 ("temporal distribution ... kept intact,
// only the number of RCCs of each type and SWLIN is increased") is
// reproduced by Scale.
package navsim

import (
	"fmt"
	"math"
	"math/rand"

	"domd/internal/domain"
	"domd/internal/swlin"
)

// Config controls generation. Zero values are replaced by the paper-matched
// defaults of DefaultConfig.
type Config struct {
	// NumClosed is the number of closed avails (paper: 187).
	NumClosed int
	// NumOngoing is the number of ongoing avails for live queries.
	NumOngoing int
	// MeanRCCsPerAvail calibrates the RCC arrival intensity so that the
	// total RCC count lands near NumClosed × MeanRCCsPerAvail
	// (paper: 52,959/187 ≈ 283).
	MeanRCCsPerAvail float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig matches the Table 5 statistics.
func DefaultConfig() Config {
	return Config{NumClosed: 187, NumOngoing: 6, MeanRCCsPerAvail: 283, Seed: 1}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.NumClosed < 4 {
		return fmt.Errorf("navsim: need >= 4 closed avails, got %d", c.NumClosed)
	}
	if c.NumOngoing < 0 {
		return fmt.Errorf("navsim: negative ongoing count %d", c.NumOngoing)
	}
	if c.MeanRCCsPerAvail <= 0 {
		return fmt.Errorf("navsim: mean RCCs per avail %f <= 0", c.MeanRCCsPerAvail)
	}
	return nil
}

// Dataset is a complete synthetic NMD.
type Dataset struct {
	Avails []domain.Avail
	RCCs   []domain.RCC
	// Truth records the hidden trouble intensity per avail id, exposed for
	// tests and diagnostics only — the pipeline never sees it.
	Truth map[int]float64
}

// Ship classes and their systematic delay offsets (days). Larger, older
// classes carry more risk.
var classOffsets = []float64{0, 5, 12, -4, 18, 8, 25, -2}

// criticalSubsystems are the SWLIN first digits whose realized Growth /
// NewWork dollar volumes feed the delay directly, giving Pearson-selectable
// aggregate features real predictive power.
var criticalSubsystems = map[int]float64{
	4: 1.2e-5, // hull structural work (G dollars here are expensive in time)
	9: 0.8e-5, // combat systems
	5: 0.5e-5, // electrical plant
}

// Generate builds a synthetic NMD.
func Generate(cfg Config) (*Dataset, error) {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Truth: make(map[int]float64)}
	nextRCC := 1

	total := cfg.NumClosed + cfg.NumOngoing
	for i := 0; i < total; i++ {
		ongoing := i >= cfg.NumClosed
		avail, rccs := genAvail(rng, cfg, i+1, &nextRCC, ongoing, ds.Truth)
		ds.Avails = append(ds.Avails, avail)
		ds.RCCs = append(ds.RCCs, rccs...)
	}
	return ds, nil
}

// genAvail creates one avail with its RCCs and ground-truth delay.
func genAvail(rng *rand.Rand, cfg Config, id int, nextRCC *int, ongoing bool, truth map[int]float64) (domain.Avail, []domain.RCC) {
	// --- Static attributes.
	class := rng.Intn(len(classOffsets))
	a := domain.Avail{
		ID:           id,
		ShipID:       100 + rng.Intn(1900),
		ShipClass:    class,
		RMC:          1 + rng.Intn(6),
		ShipAge:      3 + rng.Float64()*32,
		CrewSize:     40 + rng.Intn(260),
		PriorAvails:  rng.Intn(9),
		DockType:     rng.Intn(2),
		HomeportDist: rng.Float64() * 3000,
	}

	// Planned window: starts spread over 2015-2023, durations 4-24 months.
	start := domain.Day(5479 + rng.Intn(3287)) // 2015-01-01 .. 2023-12-31
	planDur := 120 + rng.Intn(600)
	a.PlanStart = start
	a.PlanEnd = start + domain.Day(planDur)
	a.PlannedCost = float64(planDur) * (20000 + rng.Float64()*60000)

	// Actual start: usually on time, sometimes a few weeks late.
	a.ActStart = a.PlanStart
	if rng.Float64() < 0.25 {
		a.ActStart += domain.Day(rng.Intn(45))
	}

	// --- Latent trouble intensity θ (lognormal, mean ≈ 1.08). Part of the
	// log-variance is explained by static risk factors — old hulls, dry
	// dock, long plans, heavy prior maintenance — which is what lets the
	// t*=0 "base prediction" from statics already carry skill (the paper's
	// Table 7 reports useful accuracy at 0% planned duration).
	staticRisk := 0.5*(a.ShipAge-19)/9.2 +
		0.6*(float64(a.DockType)-0.5)/0.5 +
		0.4*(float64(planDur)-420)/173 +
		0.3*(float64(a.PriorAvails)-4)/2.6
	z := 0.90*staticRisk + 0.44*rng.NormFloat64()
	theta := math.Exp(z*0.45 - 0.05)
	truth[id] = theta

	// --- RCC counts by type, scaled so the average total ≈ MeanRCCsPerAvail.
	base := cfg.MeanRCCsPerAvail / 1.08 // divide out E[θ]
	nG := poisson(rng, 0.50*base*theta)
	nNW := poisson(rng, 0.30*base*math.Pow(theta, 1.25))
	nNG := poisson(rng, 0.20*base*theta)

	// --- Generate RCCs without dates first; realized dollar volumes feed
	// the delay, after which dates are placed inside the actual window.
	type protoRCC struct {
		typ    domain.RCCType
		code   swlin.Code
		amount float64
	}
	protos := make([]protoRCC, 0, nG+nNW+nNG)
	gen := func(n int, typ domain.RCCType) {
		for k := 0; k < n; k++ {
			sub := sampleSubsystem(rng)
			code := randomCode(rng, sub)
			amount := math.Exp(rng.NormFloat64()*1.0 + 9.5) // median ≈ $13k
			if _, crit := criticalSubsystems[sub]; crit {
				amount *= 1.5
			}
			protos = append(protos, protoRCC{typ: typ, code: code, amount: amount})
		}
	}
	gen(nG, domain.Growth)
	gen(nNW, domain.NewWork)
	gen(nNG, domain.NewGrowth)

	// --- Ground-truth delay.
	// Linear terms over statics and realized critical-subsystem dollars,
	// non-linear interactions, heavy-tailed noise, occasional disasters.
	critDollars := 0.0
	for _, p := range protos {
		if w, ok := criticalSubsystems[p.code.Subsystem()]; ok && p.typ != domain.NewGrowth {
			critDollars += w * p.amount
		}
	}
	nwCount := float64(nNW)
	delay := -70.0 +
		1.1*a.ShipAge + // age wears linearly
		12.0*float64(a.DockType) + // dry dock risk
		classOffsets[class] +
		0.04*float64(planDur) +
		critDollars + // weighted realized dollars (linear, Pearson-visible)
		0.22*nwCount // new-work volume (linear)

	// Non-linear structure: trouble compounds (with saturation — even a
	// disastrous avail's delay is bounded by contract mechanics), and
	// dock×age interact.
	thetaEff := math.Min(theta, 2.6)
	if thetaEff > 1.3 {
		delay += 160 * (thetaEff - 1.3) * (thetaEff - 1.3)
	}
	delay += 0.015 * a.ShipAge * float64(a.DockType) * float64(planDur) / 30
	delay += 35 * math.Max(0, thetaEff-1) * nwCount / (base * 0.3)

	// Disasters (Fig. 2's multi-year tail) are driven by extreme trouble
	// intensity, not coin flips: a badly troubled avail shows it through
	// its RCC volume, so the tail becomes predictable once enough of the
	// timeline is visible — matching the paper's error-improves-then-
	// stabilizes behaviour and its high R².
	if thetaEff > 1.8 {
		delay += 200 + 300*(thetaEff-1.8)
	}

	// Idiosyncratic noise: modest gaussian with occasional unpredictable
	// bursts (labor disputes, supply shocks) — the outliers that make the
	// robust pseudo-Huber loss the right training objective (§3.2.3).
	if rng.Float64() < 0.08 {
		delay += rng.NormFloat64() * 80
	} else {
		delay += rng.NormFloat64() * 13
	}
	// Early finishes are possible but bounded (ships rarely finish very early).
	if delay < -35 {
		delay = -35 + rng.Float64()*10
	}
	delayDays := int(math.Round(delay))

	if ongoing {
		a.Status = domain.StatusOngoing
		// Ongoing: pretend we observe it mid-execution; no actual end.
	} else {
		a.Status = domain.StatusClosed
		a.ActEnd = a.ActStart + domain.Day(planDur+delayDays)
	}

	// --- Place RCC dates. Change requests are discovered while executing
	// the planned work scope, so creation times are distributed over the
	// PLANNED duration (early-to-mid skewed). This is what makes trouble
	// observable on the logical timeline: a high-θ avail shows its extra
	// RCC volume as t* advances, rather than diluting it over the longer
	// actual window.
	lastDay := a.ActStart + domain.Day(planDur)
	if !ongoing && a.ActEnd < lastDay {
		lastDay = a.ActEnd // early finishers stop discovering work at delivery
	}
	rccs := make([]domain.RCC, 0, len(protos))
	for _, p := range protos {
		// Creation skews early-to-mid execution (beta(1.4, 2.2)-like).
		frac := betaish(rng, 1.4, 2.2)
		created := a.ActStart + domain.Day(frac*float64(planDur))
		if created > lastDay {
			created = lastDay
		}
		// Open duration lognormal, median ~45 days.
		open := int(math.Exp(rng.NormFloat64()*0.7 + 3.8))
		if open < 1 {
			open = 1
		}
		settled := created + domain.Day(open)
		r := domain.RCC{
			ID:      *nextRCC,
			AvailID: id,
			Type:    p.typ,
			SWLIN:   int(p.code),
			Created: created,
			Settled: settled,
			Amount:  p.amount,
		}
		*nextRCC++
		rccs = append(rccs, r)
	}
	return a, rccs
}

// sampleSubsystem draws a SWLIN first digit with a realistic skew: hull(4),
// combat(9), electrical(5) and machinery(2) dominate.
func sampleSubsystem(rng *rand.Rand) int {
	weights := []float64{2, 6, 12, 8, 20, 14, 6, 5, 7, 20} // digits 0..9
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for d, w := range weights {
		u -= w
		if u <= 0 {
			return d
		}
	}
	return 9
}

// randomCode builds an 8-digit SWLIN under the given subsystem digit, using
// a limited vocabulary of sub-codes so group-bys at deeper levels have
// meaningful populations.
func randomCode(rng *rand.Rand, subsystem int) swlin.Code {
	grp := []int{11, 22, 34, 41, 56, 63, 78, 90}[rng.Intn(8)]
	item := 1 + rng.Intn(12)
	c, err := swlin.FromParts(subsystem*100+grp/10, grp%10*10+item%10, item)
	if err != nil {
		// Unreachable given the ranges above; fall back to a fixed code.
		//lint:ignore droppederr the fixed fallback code is valid by construction
		c, _ = swlin.FromParts(subsystem*100+11, 11, 1)
	}
	return c
}

// poisson draws a Poisson variate by inversion for small means and a normal
// approximation for large means.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(mean + rng.NormFloat64()*math.Sqrt(mean)))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// betaish draws an approximate Beta(a, b) by the ratio-of-gammas trick with
// simple gamma sampling (sum of exponentials for integer-ish shapes).
func betaish(rng *rand.Rand, a, b float64) float64 {
	x := gammaish(rng, a)
	y := gammaish(rng, b)
	if x+y == 0 { //lint:ignore floateq both gamma draws being exactly zero is the only degenerate case
		return 0.5
	}
	return x / (x + y)
}

func gammaish(rng *rand.Rand, shape float64) float64 {
	// Sum of unit exponentials for the integer part plus a fractional
	// correction via a power transform — adequate for data synthesis.
	g := 0.0
	n := int(shape)
	for i := 0; i < n; i++ {
		g += -math.Log(1 - rng.Float64())
	}
	frac := shape - float64(n)
	if frac > 0 {
		g += -math.Log(1-rng.Float64()) * frac
	}
	return g
}

// Scale replicates each RCC factor times (factor >= 1), preserving every
// date — the paper's x-fold scaling with "temporal distribution kept
// intact". New IDs continue from the current maximum.
func Scale(ds *Dataset, factor int) (*Dataset, error) {
	if factor < 1 {
		return nil, fmt.Errorf("navsim: scale factor %d < 1", factor)
	}
	out := &Dataset{
		Avails: append([]domain.Avail(nil), ds.Avails...),
		RCCs:   make([]domain.RCC, 0, len(ds.RCCs)*factor),
		Truth:  ds.Truth,
	}
	maxID := 0
	for _, r := range ds.RCCs {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	out.RCCs = append(out.RCCs, ds.RCCs...)
	next := maxID + 1
	for rep := 1; rep < factor; rep++ {
		for _, r := range ds.RCCs {
			dup := r
			dup.ID = next
			next++
			out.RCCs = append(out.RCCs, dup)
		}
	}
	return out, nil
}

// Delays extracts the delay (days) of every closed avail.
func (d *Dataset) Delays() []float64 {
	var out []float64
	for i := range d.Avails {
		if dd, err := d.Avails[i].Delay(); err == nil {
			out = append(out, float64(dd))
		}
	}
	return out
}

// RCCsByAvail groups the RCC slice by avail id.
func (d *Dataset) RCCsByAvail() map[int][]domain.RCC {
	m := make(map[int][]domain.RCC)
	for _, r := range d.RCCs {
		m[r.AvailID] = append(m[r.AvailID], r)
	}
	return m
}
