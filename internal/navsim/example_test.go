package navsim_test

import (
	"fmt"

	"domd/internal/navsim"
)

// Generate a small synthetic NMD and inspect its shape. The default
// configuration reproduces the paper's Table 5 cardinalities (187 closed
// avails, ≈53k RCCs).
func ExampleGenerate() {
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: 10, NumOngoing: 2, MeanRCCsPerAvail: 20, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ds.Avails), len(ds.Delays()))
	// Output: 12 10
}

// Scale reproduces the paper's x-fold RCC scaling with the temporal
// distribution kept intact.
func ExampleScale() {
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: 10, NumOngoing: 0, MeanRCCsPerAvail: 20, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	scaled, err := navsim.Scale(ds, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(scaled.RCCs) == 5*len(ds.RCCs))
	// Output: true
}
