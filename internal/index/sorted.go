package index

import (
	"slices"
	"sync"
	"sync/atomic"
)

// SortedIndex is an ablation design beyond the paper's three: two flat
// sorted arrays (by start and by end) queried with binary search. It has
// the best constant factors and the smallest footprint of all designs, at
// the cost of O(n) mutation — the classic static-vs-dynamic trade. The
// DoMD workload builds each avail's index once and queries it many times,
// so this design quantifies how much of the AVL's tree machinery the
// workload actually needs (see BenchmarkAblationSortedVsAVL).
// Like NaiveIndex, the deferred re-sort after Insert is internally
// synchronized, so concurrent readers are safe per the TimeIndex contract.
type SortedIndex struct {
	// byStart and byEnd are sorted by their respective key.
	byStart []avlEntry // key = Start, aux = End
	byEnd   []avlEntry // key = End, aux = Start
	// nsStart/nsEnd are the sorted-prefix lengths of byStart/byEnd:
	// appends land after them, so the deferred re-sort only sorts each
	// tail and merges it back instead of re-sorting the whole array.
	nsStart, nsEnd int
	sorted         atomic.Bool
	sortMu         sync.Mutex
}

// NewSorted returns an empty sorted-array index.
func NewSorted() *SortedIndex {
	x := &SortedIndex{}
	x.sorted.Store(true)
	return x
}

// KindSorted names the design for benchmarks; it is intentionally not part
// of Kinds() (the paper evaluates three designs).
const KindSorted Kind = "sorted"

// BulkLoad implements BulkLoader.
func (x *SortedIndex) BulkLoad(ivs []Interval) error {
	x.byStart = make([]avlEntry, len(ivs))
	x.byEnd = make([]avlEntry, len(ivs))
	for i, iv := range ivs {
		if err := iv.Validate(); err != nil {
			return err
		}
		x.byStart[i] = avlEntry{key: iv.Start, aux: iv.End, id: iv.ID}
		x.byEnd[i] = avlEntry{key: iv.End, aux: iv.Start, id: iv.ID}
	}
	x.nsStart, x.nsEnd = 0, 0
	x.sort()
	return nil
}

func entryCmp(a, b avlEntry) int {
	switch {
	case a.less(b):
		return -1
	case b.less(a):
		return 1
	default:
		return 0
	}
}

// sort runs the append-and-merge re-sort: each array's appended tail is
// sorted, then linearly merged into its sorted prefix.
func (x *SortedIndex) sort() {
	slices.SortFunc(x.byStart[x.nsStart:], entryCmp)
	mergeTail(x.byStart, x.nsStart, entryCmp)
	x.nsStart = len(x.byStart)
	slices.SortFunc(x.byEnd[x.nsEnd:], entryCmp)
	mergeTail(x.byEnd, x.nsEnd, entryCmp)
	x.nsEnd = len(x.byEnd)
	x.sorted.Store(true)
}

// ensure runs the deferred re-sort at most once per batch of mutations,
// with double-checked locking so concurrent readers either skip it (atomic
// fast path) or block while one of them sorts.
func (x *SortedIndex) ensure() {
	if x.sorted.Load() {
		return
	}
	x.sortMu.Lock()
	defer x.sortMu.Unlock()
	if !x.sorted.Load() {
		x.sort()
	}
}

// Insert implements TimeIndex (append + lazy re-sort, amortized O(log n)
// per query after a batch of appends).
func (x *SortedIndex) Insert(iv Interval) error {
	if err := iv.Validate(); err != nil {
		return err
	}
	x.byStart = append(x.byStart, avlEntry{key: iv.Start, aux: iv.End, id: iv.ID})
	x.byEnd = append(x.byEnd, avlEntry{key: iv.End, aux: iv.Start, id: iv.ID})
	x.sorted.Store(false)
	return nil
}

// Delete implements TimeIndex (linear). A removal inside a sorted prefix
// keeps the remainder sorted, so only that prefix's length shrinks.
func (x *SortedIndex) Delete(iv Interval) bool {
	found := false
	for i := range x.byStart {
		e := x.byStart[i]
		if e.key == iv.Start && e.aux == iv.End && e.id == iv.ID {
			x.byStart = append(x.byStart[:i], x.byStart[i+1:]...)
			if i < x.nsStart {
				x.nsStart--
			}
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for i := range x.byEnd {
		e := x.byEnd[i]
		if e.key == iv.End && e.aux == iv.Start && e.id == iv.ID {
			x.byEnd = append(x.byEnd[:i], x.byEnd[i+1:]...)
			if i < x.nsEnd {
				x.nsEnd--
			}
			break
		}
	}
	return true
}

// Len implements TimeIndex.
func (x *SortedIndex) Len() int { return len(x.byStart) }

// upperLE returns the count of entries with key <= t (binary search).
func upperLE(entries []avlEntry, t int64) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].key <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ActiveAt implements TimeIndex.
func (x *SortedIndex) ActiveAt(t int64) []int {
	x.ensure()
	var ids []int
	for _, e := range x.byStart[:upperLE(x.byStart, t)] {
		if e.aux > t {
			ids = append(ids, e.id)
		}
	}
	return ids
}

// SettledBy implements TimeIndex.
func (x *SortedIndex) SettledBy(t int64) []int {
	x.ensure()
	n := upperLE(x.byEnd, t)
	ids := make([]int, n)
	for i, e := range x.byEnd[:n] {
		ids[i] = e.id
	}
	return ids
}

// CreatedBy implements TimeIndex.
func (x *SortedIndex) CreatedBy(t int64) []int {
	x.ensure()
	n := upperLE(x.byStart, t)
	ids := make([]int, n)
	for i, e := range x.byStart[:n] {
		ids[i] = e.id
	}
	return ids
}

// CountActiveAt implements TimeIndex in O(log n).
func (x *SortedIndex) CountActiveAt(t int64) int {
	x.ensure()
	return upperLE(x.byStart, t) - upperLE(x.byEnd, t)
}

// CountSettledBy implements TimeIndex in O(log n).
func (x *SortedIndex) CountSettledBy(t int64) int {
	x.ensure()
	return upperLE(x.byEnd, t)
}

// CreatedIn implements TimeIndex.
func (x *SortedIndex) CreatedIn(lo, hi int64) []int {
	x.ensure()
	a, b := upperLE(x.byStart, lo), upperLE(x.byStart, hi)
	ids := make([]int, b-a)
	for i, e := range x.byStart[a:b] {
		ids[i] = e.id
	}
	return ids
}

// SettledIn implements TimeIndex.
func (x *SortedIndex) SettledIn(lo, hi int64) []int {
	x.ensure()
	a, b := upperLE(x.byEnd, lo), upperLE(x.byEnd, hi)
	ids := make([]int, b-a)
	for i, e := range x.byEnd[a:b] {
		ids[i] = e.id
	}
	return ids
}

// MemoryBytes implements TimeIndex: two flat entry arrays, no per-node
// overhead.
func (x *SortedIndex) MemoryBytes() int {
	const entryBytes = 24
	return (cap(x.byStart) + cap(x.byEnd)) * entryBytes
}
