package index

import (
	"slices"
	"sync"
	"sync/atomic"
)

// joinedRow is one row of the materialized avail⋈RCC join product the
// "Pandas merge" baseline of paper §4.1 stores: the interval triple plus
// every avail attribute column duplicated alongside it. The duplicated
// columns are what make the merge baseline slow to build (they must be
// copied per row), slow to scan (memory traffic), and roughly twice the
// footprint of the tree indexes (Table 6).
type joinedRow struct {
	iv Interval
	// availCols models the ~15 duplicated avail columns plus row overhead
	// (≈168 bytes per row on top of the 24-byte triple).
	availCols [21]float64
}

// NaiveIndex is the merge-join baseline of paper §4.1 ("Pandas merge"): it
// materializes the joined rows in a flat slice, sorts them by start date
// (lazily, amortized over queries), and answers every query with a scan.
//
// The deferred re-sort is internally synchronized (double-checked locking),
// so the query methods satisfy the TimeIndex contract: they are safe to
// call concurrently with each other, while Insert/Delete require exclusive
// access.
type NaiveIndex struct {
	joined []joinedRow
	// nSorted is the length of the sorted prefix of joined: appends land
	// after it, so the deferred re-sort only sorts the tail and merges it
	// back (O(k log k + n) for k appends instead of O(n log n)).
	nSorted int
	sorted  atomic.Bool
	sortMu  sync.Mutex
}

// NewNaive returns an empty naive index.
func NewNaive() *NaiveIndex {
	x := &NaiveIndex{}
	x.sorted.Store(true)
	return x
}

// materialize builds the wide join row, copying the duplicated avail
// attribute columns the way a dataframe merge does.
func materialize(iv Interval) joinedRow {
	r := joinedRow{iv: iv}
	for i := range r.availCols {
		// The values are synthetic; the copy cost is the point.
		r.availCols[i] = float64(iv.Start + int64(i))
	}
	return r
}

// Insert implements TimeIndex.
func (x *NaiveIndex) Insert(iv Interval) error {
	if err := iv.Validate(); err != nil {
		return err
	}
	x.joined = append(x.joined, materialize(iv))
	x.sorted.Store(false)
	return nil
}

// Delete implements TimeIndex (linear scan). Removing a row from the
// sorted prefix keeps the remaining prefix sorted, so only its length
// shrinks; a removal from the unsorted tail leaves the prefix untouched.
func (x *NaiveIndex) Delete(iv Interval) bool {
	for i := range x.joined {
		if x.joined[i].iv == iv {
			x.joined = append(x.joined[:i], x.joined[i+1:]...)
			if i < x.nSorted {
				x.nSorted--
			}
			return true
		}
	}
	return false
}

// Len implements TimeIndex.
func (x *NaiveIndex) Len() int { return len(x.joined) }

func rowCmp(a, b joinedRow) int {
	if ivLess(a.iv, b.iv) {
		return -1
	}
	if ivLess(b.iv, a.iv) {
		return 1
	}
	return 0
}

// ensureSorted performs the deferred re-sort at most once per batch of
// mutations. Fast path: an atomic load (release-acquire paired with the
// Store below, so readers that skip the lock still see the sorted rows).
// Slow path: the first reader after a mutation sorts under sortMu while
// racing readers block on the same mutex. The re-sort is append-and-merge:
// only the tail appended since the last sort is sorted, then linearly
// merged into the sorted prefix.
func (x *NaiveIndex) ensureSorted() {
	if x.sorted.Load() {
		return
	}
	x.sortMu.Lock()
	defer x.sortMu.Unlock()
	if x.sorted.Load() {
		return
	}
	slices.SortFunc(x.joined[x.nSorted:], rowCmp)
	mergeTail(x.joined, x.nSorted, rowCmp)
	x.nSorted = len(x.joined)
	x.sorted.Store(true)
}

// ActiveAt implements TimeIndex with a scan of the materialized join.
func (x *NaiveIndex) ActiveAt(t int64) []int {
	x.ensureSorted()
	var ids []int
	for i := range x.joined {
		r := &x.joined[i]
		if r.iv.Start > t {
			break // sorted by start: nothing later can qualify
		}
		if r.iv.End > t {
			ids = append(ids, r.iv.ID)
		}
	}
	return ids
}

// SettledBy implements TimeIndex with a full scan (ends are unsorted).
// ensureSorted is still required: it parks this reader while a racing
// reader runs the deferred re-sort, keeping the scan race-free.
func (x *NaiveIndex) SettledBy(t int64) []int {
	x.ensureSorted()
	var ids []int
	for i := range x.joined {
		if x.joined[i].iv.End <= t {
			ids = append(ids, x.joined[i].iv.ID)
		}
	}
	return ids
}

// CreatedBy implements TimeIndex.
func (x *NaiveIndex) CreatedBy(t int64) []int {
	x.ensureSorted()
	var ids []int
	for i := range x.joined {
		if x.joined[i].iv.Start > t {
			break
		}
		ids = append(ids, x.joined[i].iv.ID)
	}
	return ids
}

// CountActiveAt implements TimeIndex with a scan.
func (x *NaiveIndex) CountActiveAt(t int64) int {
	x.ensureSorted()
	c := 0
	for i := range x.joined {
		if x.joined[i].iv.Start <= t && x.joined[i].iv.End > t {
			c++
		}
	}
	return c
}

// CountSettledBy implements TimeIndex with a scan.
func (x *NaiveIndex) CountSettledBy(t int64) int {
	x.ensureSorted()
	c := 0
	for i := range x.joined {
		if x.joined[i].iv.End <= t {
			c++
		}
	}
	return c
}

// CreatedIn implements TimeIndex with a scan.
func (x *NaiveIndex) CreatedIn(lo, hi int64) []int {
	x.ensureSorted()
	var ids []int
	for i := range x.joined {
		s := x.joined[i].iv.Start
		if s > lo && s <= hi {
			ids = append(ids, x.joined[i].iv.ID)
		}
	}
	return ids
}

// SettledIn implements TimeIndex with a scan.
func (x *NaiveIndex) SettledIn(lo, hi int64) []int {
	x.ensureSorted()
	var ids []int
	for i := range x.joined {
		e := x.joined[i].iv.End
		if e > lo && e <= hi {
			ids = append(ids, x.joined[i].iv.ID)
		}
	}
	return ids
}

// MemoryBytes implements TimeIndex: the materialized join rows.
func (x *NaiveIndex) MemoryBytes() int {
	const joinedRowBytes = 24 + 21*8
	return cap(x.joined) * joinedRowBytes
}
