package index

import (
	"sync"
	"testing"
)

// TestConcurrentReadsAfterInsert exercises the TimeIndex concurrency
// contract: after a batch of Inserts (which leaves NaiveIndex and
// SortedIndex with a pending deferred re-sort), every query method must be
// safe to call from many goroutines at once. Pre-fix, the lazy ensureSorted
// mutation inside the read path trips the race detector for the flat-array
// designs; run with -race.
func TestConcurrentReadsAfterInsert(t *testing.T) {
	kinds := append(Kinds(), KindSorted)
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			idx, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				iv := Interval{Start: int64(i % 37), End: int64(i%37 + 1 + i%11), ID: i}
				if err := idx.Insert(iv); err != nil {
					t.Fatal(err)
				}
			}
			want := idx.CountSettledBy(40) // sequential reference, also triggers one sort
			// Re-insert to re-arm the deferred sort, so the concurrent
			// readers below race on it.
			if err := idx.Insert(Interval{Start: 1, End: 2, ID: 300}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			start := make(chan struct{})
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					for i := 0; i < 50; i++ {
						tpt := int64((w + i) % 50)
						_ = idx.ActiveAt(tpt)
						_ = idx.SettledBy(tpt)
						_ = idx.CreatedBy(tpt)
						_ = idx.CountActiveAt(tpt)
						if got := idx.CountSettledBy(40); got < want {
							t.Errorf("CountSettledBy(40) = %d under concurrency, want >= %d", got, want)
							return
						}
						_ = idx.CreatedIn(tpt, tpt+5)
						_ = idx.SettledIn(tpt, tpt+5)
						_ = idx.Len()
						_ = idx.MemoryBytes()
					}
				}(w)
			}
			close(start)
			wg.Wait()
		})
	}
}
