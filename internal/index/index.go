// Package index implements the logical-time index structures ℛ of paper §4.1
// used to answer Status Queries efficiently. Three designs are provided, as
// in the paper:
//
//   - IntervalTree: an augmented self-balancing interval tree over RCC
//     (created, settled) intervals, answering stabbing and overlap queries in
//     O(log n + k).
//   - AVLIndex: two AVL balanced search trees, one keyed by creation date and
//     one by settlement date, the paper's winning design.
//   - NaiveIndex: a merge-join style baseline ("Pandas merge"): a flat sorted
//     materialization that scans on every query.
//
// Every index stores (t_start, t_end, ID) triples and answers the four RCC
// status sets of Eqs. 3–6 at any logical timestamp t*:
//
//	Active(t*)  = point/stabbing query @ t*          (created ≤ t* < settled)
//	Settled(t*) = range query over (-inf, t*]        (settled ≤ t*)
//	Created(t*) = Active ∪ Settled                    (created ≤ t*)
//	New(t*)     = all \ Created                       (not yet created)
package index

import "fmt"

// Interval is one stored (start, end, id) triple. Intervals are half-open on
// the right for status classification: the item is active on [Start, End) and
// settled from End onward, matching domain.RCC.StatusAt.
type Interval struct {
	Start, End int64
	ID         int
}

// Validate reports malformed intervals (end before start).
func (iv Interval) Validate() error {
	if iv.End < iv.Start {
		return fmt.Errorf("index: interval id %d: end %d before start %d", iv.ID, iv.End, iv.Start)
	}
	return nil
}

// TimeIndex is the common contract of the three index designs. Result sets
// are returned as id slices in unspecified order; callers needing stable
// order must sort.
//
// Concurrency contract: the query methods (ActiveAt, SettledBy, CreatedBy,
// CountActiveAt, CountSettledBy, CreatedIn, SettledIn, Len, MemoryBytes)
// are safe to call from multiple goroutines concurrently — implementations
// with deferred work on the read path (the lazy re-sorts of NaiveIndex and
// SortedIndex) synchronize it internally. The mutating methods (Insert,
// Delete, BulkLoad) require exclusive access: callers must not run them
// concurrently with each other or with queries. statusq.Catalog relies on
// this split — engines are immutable once built and shared across request
// goroutines, while mutation happens only by swapping in a new engine.
type TimeIndex interface {
	// Insert adds an interval. Duplicate ids are the caller's concern.
	Insert(iv Interval) error
	// Delete removes the interval with the given id and bounds; it reports
	// whether a matching interval was found.
	Delete(iv Interval) bool
	// Len returns the number of stored intervals.
	Len() int

	// ActiveAt returns ids with Start <= t < End (Eq. 3 point query).
	ActiveAt(t int64) []int
	// SettledBy returns ids with End <= t (Eq. 4 range query).
	SettledBy(t int64) []int
	// CreatedBy returns ids with Start <= t (Eq. 5 union).
	CreatedBy(t int64) []int
	// CountActiveAt and CountSettledBy are allocation-free cardinality
	// variants used by aggregate-only Status Queries.
	CountActiveAt(t int64) int
	CountSettledBy(t int64) int

	// CreatedIn returns ids with lo < Start <= hi and SettledIn ids with
	// lo < End <= hi — the half-open windows incremental computation
	// (§4.3) retrieves between consecutive logical timestamps.
	CreatedIn(lo, hi int64) []int
	SettledIn(lo, hi int64) []int

	// MemoryBytes estimates the resident size of the index structure,
	// used by the Table 6 reproduction.
	MemoryBytes() int
}

// Kind names an index design, used by benchmarks and the CLI.
type Kind string

// The three designs evaluated in paper §5.1.
const (
	KindNaive    Kind = "naive"    // Pandas-merge-style baseline
	KindAVL      Kind = "avl"      // dual AVL trees (paper's winner)
	KindInterval Kind = "interval" // augmented interval tree
)

// New constructs an empty index of the given kind.
func New(kind Kind) (TimeIndex, error) {
	switch kind {
	case KindNaive:
		return NewNaive(), nil
	case KindAVL:
		return NewAVL(), nil
	case KindInterval:
		return NewIntervalTree(), nil
	case KindSorted:
		return NewSorted(), nil
	default:
		return nil, fmt.Errorf("index: unknown kind %q", kind)
	}
}

// Kinds lists all designs in the order the paper reports them.
func Kinds() []Kind { return []Kind{KindNaive, KindAVL, KindInterval} }

// BulkLoader is implemented by indexes with an O(n log n) construction path
// (sort + arena + balanced build) that is much cheaper than n incremental
// inserts.
type BulkLoader interface {
	BulkLoad(ivs []Interval) error
}

// Build bulk-loads ivs into a fresh index of the given kind, using the
// index's BulkLoad fast path when it has one.
func Build(kind Kind, ivs []Interval) (TimeIndex, error) {
	idx, err := New(kind)
	if err != nil {
		return nil, err
	}
	if bl, ok := idx.(BulkLoader); ok {
		if err := bl.BulkLoad(ivs); err != nil {
			return nil, err
		}
		return idx, nil
	}
	for _, iv := range ivs {
		if err := idx.Insert(iv); err != nil {
			return nil, err
		}
	}
	return idx, nil
}
