package index

import (
	"math/rand"
	"testing"
)

func (b brute) createdIn(lo, hi int64) []int {
	var ids []int
	for _, iv := range b {
		if iv.Start > lo && iv.Start <= hi {
			ids = append(ids, iv.ID)
		}
	}
	return sortedIDs(ids)
}

func (b brute) settledIn(lo, hi int64) []int {
	var ids []int
	for _, iv := range b {
		if iv.End > lo && iv.End <= hi {
			ids = append(ids, iv.ID)
		}
	}
	return sortedIDs(ids)
}

func TestRangeQueriesSmallFixture(t *testing.T) {
	for _, kind := range Kinds() {
		idx, err := Build(kind, smallFixture())
		if err != nil {
			t.Fatal(err)
		}
		// Starts: 0,5,10,0,25. Created in (0, 10]: ids 2 (s=5), 3 (s=10).
		if got := sortedIDs(idx.CreatedIn(0, 10)); !eq(got, []int{2, 3}) {
			t.Errorf("%s: CreatedIn(0,10] = %v, want [2 3]", kind, got)
		}
		// Ends: 10,15,20,30,26. Settled in (10, 26]: ids 2 (15), 3 (20), 5 (26).
		if got := sortedIDs(idx.SettledIn(10, 26)); !eq(got, []int{2, 3, 5}) {
			t.Errorf("%s: SettledIn(10,26] = %v, want [2 3 5]", kind, got)
		}
		// Empty window.
		if got := idx.CreatedIn(50, 60); len(got) != 0 {
			t.Errorf("%s: CreatedIn(50,60] = %v, want empty", kind, got)
		}
		// Boundary exclusivity: lo itself excluded.
		if got := sortedIDs(idx.CreatedIn(5, 5)); len(got) != 0 {
			t.Errorf("%s: CreatedIn(5,5] = %v, want empty", kind, got)
		}
	}
}

func TestRangeQueriesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		ivs := randomIntervals(rng, 200)
		oracle := brute(ivs)
		for _, kind := range Kinds() {
			idx, err := Build(kind, ivs)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 30; q++ {
				lo := int64(rng.Intn(260)) - 5
				hi := lo + int64(rng.Intn(60))
				if got := sortedIDs(idx.CreatedIn(lo, hi)); !eq(got, oracle.createdIn(lo, hi)) {
					t.Fatalf("%s: CreatedIn(%d,%d] = %v, want %v", kind, lo, hi, got, oracle.createdIn(lo, hi))
				}
				if got := sortedIDs(idx.SettledIn(lo, hi)); !eq(got, oracle.settledIn(lo, hi)) {
					t.Fatalf("%s: SettledIn(%d,%d] = %v, want %v", kind, lo, hi, got, oracle.settledIn(lo, hi))
				}
			}
		}
	}
}

// TestRangeWindowsTileCreatedBy: consecutive windows over the timeline must
// partition CreatedBy — the invariant incremental computation relies on.
func TestRangeWindowsTileCreatedBy(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	ivs := randomIntervals(rng, 300)
	for _, kind := range Kinds() {
		idx, err := Build(kind, ivs)
		if err != nil {
			t.Fatal(err)
		}
		var accum []int
		prev := int64(-1000)
		for _, cur := range []int64{0, 40, 80, 120, 200, 300} {
			accum = append(accum, idx.CreatedIn(prev, cur)...)
			want := sortedIDs(idx.CreatedBy(cur))
			if got := sortedIDs(accum); !eq(got, want) {
				t.Fatalf("%s: windows up to %d give %d ids, CreatedBy gives %d", kind, cur, len(got), len(want))
			}
			prev = cur
		}
	}
}
