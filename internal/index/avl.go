package index

import "slices"

// AVLIndex is the paper's winning design (§4.1): two self-balancing AVL
// search trees, one keyed by interval start (creation date) and one keyed by
// interval end (settlement date). Subtree-size augmentation gives O(log n)
// cardinality queries; result-set queries are O(log n + k) in-order
// traversals of the key range (-inf, t].
type AVLIndex struct {
	byStart *avlTree // key = Start; payload end date for active filtering
	byEnd   *avlTree // key = End
}

// NewAVL returns an empty dual-AVL index.
func NewAVL() *AVLIndex {
	return &AVLIndex{byStart: &avlTree{}, byEnd: &avlTree{}}
}

// BulkLoad builds both trees from scratch in O(n log n): one sort per tree
// plus a linear balanced build from a contiguous node arena. This is the
// fast construction path behind the paper's Fig. 5a numbers; incremental
// Insert/Delete remain available afterwards.
func (x *AVLIndex) BulkLoad(ivs []Interval) error {
	starts := make([]avlEntry, len(ivs))
	ends := make([]avlEntry, len(ivs))
	for i, iv := range ivs {
		if err := iv.Validate(); err != nil {
			return err
		}
		starts[i] = avlEntry{key: iv.Start, aux: iv.End, id: iv.ID}
		ends[i] = avlEntry{key: iv.End, aux: iv.Start, id: iv.ID}
	}
	x.byStart.bulkLoad(starts)
	x.byEnd.bulkLoad(ends)
	return nil
}

// Insert implements TimeIndex.
func (x *AVLIndex) Insert(iv Interval) error {
	if err := iv.Validate(); err != nil {
		return err
	}
	x.byStart.insert(avlEntry{key: iv.Start, aux: iv.End, id: iv.ID})
	x.byEnd.insert(avlEntry{key: iv.End, aux: iv.Start, id: iv.ID})
	return nil
}

// Delete implements TimeIndex.
func (x *AVLIndex) Delete(iv Interval) bool {
	a := x.byStart.delete(avlEntry{key: iv.Start, aux: iv.End, id: iv.ID})
	b := x.byEnd.delete(avlEntry{key: iv.End, aux: iv.Start, id: iv.ID})
	return a && b
}

// Len implements TimeIndex.
func (x *AVLIndex) Len() int { return x.byStart.size() }

// ActiveAt implements TimeIndex: traverse starts <= t, keep those whose end
// is still in the future.
func (x *AVLIndex) ActiveAt(t int64) []int {
	var ids []int
	x.byStart.ascendLE(t, func(e avlEntry) {
		if e.aux > t {
			ids = append(ids, e.id)
		}
	})
	return ids
}

// SettledBy implements TimeIndex: every entry in the end-tree with key <= t.
func (x *AVLIndex) SettledBy(t int64) []int {
	var ids []int
	x.byEnd.ascendLE(t, func(e avlEntry) { ids = append(ids, e.id) })
	return ids
}

// CreatedBy implements TimeIndex: every entry in the start-tree with key <= t.
func (x *AVLIndex) CreatedBy(t int64) []int {
	var ids []int
	x.byStart.ascendLE(t, func(e avlEntry) { ids = append(ids, e.id) })
	return ids
}

// CountActiveAt implements TimeIndex in O(log n) using size-augmented rank
// queries: |start <= t| - |end <= t|.
func (x *AVLIndex) CountActiveAt(t int64) int {
	return x.byStart.countLE(t) - x.byEnd.countLE(t)
}

// CountSettledBy implements TimeIndex in O(log n).
func (x *AVLIndex) CountSettledBy(t int64) int { return x.byEnd.countLE(t) }

// CreatedIn implements TimeIndex: start-tree keys in (lo, hi].
func (x *AVLIndex) CreatedIn(lo, hi int64) []int {
	var ids []int
	x.byStart.ascendRange(lo, hi, func(e avlEntry) { ids = append(ids, e.id) })
	return ids
}

// SettledIn implements TimeIndex: end-tree keys in (lo, hi].
func (x *AVLIndex) SettledIn(lo, hi int64) []int {
	var ids []int
	x.byEnd.ascendRange(lo, hi, func(e avlEntry) { ids = append(ids, e.id) })
	return ids
}

// MemoryBytes implements TimeIndex. Each entry is stored once per tree; a
// node carries the entry (24 B), two child pointers, height and subtree size.
func (x *AVLIndex) MemoryBytes() int {
	const nodeBytes = 24 + 2*8 + 4 + 4 // entry + children + height + size
	return (x.byStart.size() + x.byEnd.size()) * nodeBytes
}

// avlEntry is one keyed record. Duplicate keys are permitted; entries are
// totally ordered by (key, id, aux) so deletion can find an exact match.
type avlEntry struct {
	key int64
	aux int64 // the other endpoint of the interval
	id  int
}

func (a avlEntry) less(b avlEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.aux < b.aux
}

type avlNode struct {
	entry       avlEntry
	left, right *avlNode
	height      int32
	count       int32 // subtree size including this node
}

type avlTree struct {
	root *avlNode
}

func (t *avlTree) size() int { return int(subSize(t.root)) }

func height(n *avlNode) int32 {
	if n == nil {
		return 0
	}
	return n.height
}

func subSize(n *avlNode) int32 {
	if n == nil {
		return 0
	}
	return n.count
}

func (n *avlNode) update() {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	n.count = subSize(n.left) + subSize(n.right) + 1
}

func rotateRight(y *avlNode) *avlNode {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *avlNode) *avlNode {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func rebalance(n *avlNode) *avlNode {
	n.update()
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// bulkLoad replaces the tree contents with a perfectly balanced tree built
// from entries (sorted in place) using a single contiguous node arena.
func (t *avlTree) bulkLoad(entries []avlEntry) {
	slices.SortFunc(entries, func(a, b avlEntry) int {
		switch {
		case a.less(b):
			return -1
		case b.less(a):
			return 1
		default:
			return 0
		}
	})
	arena := make([]avlNode, len(entries))
	next := 0
	var build func(lo, hi int) *avlNode
	build = func(lo, hi int) *avlNode {
		if lo >= hi {
			return nil
		}
		mid := (lo + hi) / 2
		n := &arena[next]
		next++
		n.entry = entries[mid]
		n.left = build(lo, mid)
		n.right = build(mid+1, hi)
		n.update()
		return n
	}
	t.root = build(0, len(entries))
}

func (t *avlTree) insert(e avlEntry) { t.root = insertNode(t.root, e) }

func insertNode(n *avlNode, e avlEntry) *avlNode {
	if n == nil {
		return &avlNode{entry: e, height: 1, count: 1}
	}
	if e.less(n.entry) {
		n.left = insertNode(n.left, e)
	} else {
		n.right = insertNode(n.right, e)
	}
	return rebalance(n)
}

func (t *avlTree) delete(e avlEntry) bool {
	var removed bool
	t.root, removed = deleteNode(t.root, e)
	return removed
}

func deleteNode(n *avlNode, e avlEntry) (*avlNode, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case e.less(n.entry):
		n.left, removed = deleteNode(n.left, e)
	case n.entry.less(e):
		n.right, removed = deleteNode(n.right, e)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.entry = succ.entry
		n.right, _ = deleteNode(n.right, succ.entry)
	}
	if !removed {
		return n, false
	}
	return rebalance(n), true
}

// ascendLE visits every entry with key <= t in ascending order.
func (t *avlTree) ascendLE(k int64, fn func(avlEntry)) {
	var walk func(n *avlNode)
	walk = func(n *avlNode) {
		if n == nil {
			return
		}
		if n.entry.key <= k {
			walk(n.left)
			fn(n.entry)
			walk(n.right)
		} else {
			walk(n.left)
		}
	}
	walk(t.root)
}

// ascendRange visits every entry with lo < key <= hi in ascending order,
// pruning subtrees wholly outside the window (O(log n + k)).
func (t *avlTree) ascendRange(lo, hi int64, fn func(avlEntry)) {
	var walk func(n *avlNode)
	walk = func(n *avlNode) {
		if n == nil {
			return
		}
		if n.entry.key > lo {
			walk(n.left)
			if n.entry.key <= hi {
				fn(n.entry)
			}
		}
		if n.entry.key <= hi {
			walk(n.right)
		}
	}
	walk(t.root)
}

// countLE returns |{entries with key <= t}| in O(log n) using subtree sizes.
func (t *avlTree) countLE(k int64) int {
	var c int32
	n := t.root
	for n != nil {
		if n.entry.key <= k {
			c += subSize(n.left) + 1
			n = n.right
		} else {
			n = n.left
		}
	}
	return int(c)
}

// checkInvariants verifies AVL balance and ordering; used by tests.
func (t *avlTree) checkInvariants() error {
	_, _, err := checkNode(t.root)
	return err
}

func checkNode(n *avlNode) (h int32, sz int32, err error) {
	if n == nil {
		return 0, 0, nil
	}
	hl, sl, err := checkNode(n.left)
	if err != nil {
		return 0, 0, err
	}
	hr, sr, err := checkNode(n.right)
	if err != nil {
		return 0, 0, err
	}
	if n.left != nil && n.entry.less(n.left.entry) {
		return 0, 0, errOrder
	}
	if n.right != nil && n.right.entry.less(n.entry) {
		return 0, 0, errOrder
	}
	if bf := hl - hr; bf < -1 || bf > 1 {
		return 0, 0, errBalance
	}
	h = hl + 1
	if hr >= hl {
		h = hr + 1
	}
	if n.height != h {
		return 0, 0, errHeight
	}
	sz = sl + sr + 1
	if n.count != sz {
		return 0, 0, errCount
	}
	return h, sz, nil
}

var (
	errOrder   = errInvariant("ordering violated")
	errBalance = errInvariant("balance factor out of range")
	errHeight  = errInvariant("cached height wrong")
	errCount   = errInvariant("cached subtree size wrong")
)

type errInvariant string

func (e errInvariant) Error() string { return "index: avl invariant: " + string(e) }
