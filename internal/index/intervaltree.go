package index

import "slices"

// IntervalTree is an augmented self-balancing interval tree (paper §4.1):
// an AVL-shaped BST keyed by interval start in which every node caches the
// maximum and minimum interval end in its subtree. Stabbing queries
// ("which RCCs are active at t*?") prune whole subtrees whose max end falls
// at or before the query point; settled-range queries prune subtrees whose
// min end lies beyond it. Construction is O(n log n), queries
// O(log n + k), and insertion/deletion O(log n), matching the costs cited in
// the paper.
type IntervalTree struct {
	root *itNode
}

// NewIntervalTree returns an empty interval tree.
func NewIntervalTree() *IntervalTree { return &IntervalTree{} }

// BulkLoad builds the tree from scratch in O(n log n) using a sort and a
// linear balanced build from a contiguous node arena; augmentation fields
// are computed bottom-up during the build.
func (t *IntervalTree) BulkLoad(ivs []Interval) error {
	entries := make([]Interval, len(ivs))
	for i, iv := range ivs {
		if err := iv.Validate(); err != nil {
			return err
		}
		entries[i] = iv
	}
	slices.SortFunc(entries, func(a, b Interval) int {
		switch {
		case ivLess(a, b):
			return -1
		case ivLess(b, a):
			return 1
		default:
			return 0
		}
	})
	arena := make([]itNode, len(entries))
	next := 0
	var build func(lo, hi int) *itNode
	build = func(lo, hi int) *itNode {
		if lo >= hi {
			return nil
		}
		mid := (lo + hi) / 2
		n := &arena[next]
		next++
		n.iv = entries[mid]
		n.left = build(lo, mid)
		n.right = build(mid+1, hi)
		n.update()
		return n
	}
	t.root = build(0, len(entries))
	return nil
}

type itNode struct {
	iv          Interval
	left, right *itNode
	height      int32
	count       int32
	maxEnd      int64
	minEnd      int64
}

// Insert implements TimeIndex.
func (t *IntervalTree) Insert(iv Interval) error {
	if err := iv.Validate(); err != nil {
		return err
	}
	t.root = itInsert(t.root, iv)
	return nil
}

// Delete implements TimeIndex.
func (t *IntervalTree) Delete(iv Interval) bool {
	var removed bool
	t.root, removed = itDelete(t.root, iv)
	return removed
}

// Len implements TimeIndex.
func (t *IntervalTree) Len() int { return int(itSize(t.root)) }

// ActiveAt implements TimeIndex via a stabbing query: intervals with
// Start <= t < End. Subtrees whose maxEnd <= t cannot contain an active
// interval and are pruned.
func (t *IntervalTree) ActiveAt(q int64) []int {
	var ids []int
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil || n.maxEnd <= q {
			return
		}
		walk(n.left)
		if n.iv.Start <= q {
			if n.iv.End > q {
				ids = append(ids, n.iv.ID)
			}
			walk(n.right)
		}
		// If n.iv.Start > q, no right-subtree start can be <= q either.
	}
	walk(t.root)
	return ids
}

// SettledBy implements TimeIndex: intervals with End <= t. Subtrees whose
// minEnd exceeds t are pruned.
func (t *IntervalTree) SettledBy(q int64) []int {
	var ids []int
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil || n.minEnd > q {
			return
		}
		walk(n.left)
		if n.iv.End <= q {
			ids = append(ids, n.iv.ID)
		}
		walk(n.right)
	}
	walk(t.root)
	return ids
}

// CreatedBy implements TimeIndex: the BST key range Start <= t.
func (t *IntervalTree) CreatedBy(q int64) []int {
	var ids []int
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil {
			return
		}
		if n.iv.Start <= q {
			walk(n.left)
			ids = append(ids, n.iv.ID)
			walk(n.right)
		} else {
			walk(n.left)
		}
	}
	walk(t.root)
	return ids
}

// CountActiveAt implements TimeIndex (traversal-based; the interval tree has
// no O(log n) cardinality shortcut, one of the practical reasons the paper's
// AVL design wins).
func (t *IntervalTree) CountActiveAt(q int64) int {
	c := 0
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil || n.maxEnd <= q {
			return
		}
		walk(n.left)
		if n.iv.Start <= q {
			if n.iv.End > q {
				c++
			}
			walk(n.right)
		}
	}
	walk(t.root)
	return c
}

// CountSettledBy implements TimeIndex.
func (t *IntervalTree) CountSettledBy(q int64) int {
	c := 0
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil || n.minEnd > q {
			return
		}
		walk(n.left)
		if n.iv.End <= q {
			c++
		}
		walk(n.right)
	}
	walk(t.root)
	return c
}

// CreatedIn implements TimeIndex: BST key range lo < Start <= hi.
func (t *IntervalTree) CreatedIn(lo, hi int64) []int {
	var ids []int
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil {
			return
		}
		if n.iv.Start > lo {
			walk(n.left)
			if n.iv.Start <= hi {
				ids = append(ids, n.iv.ID)
			}
		}
		if n.iv.Start <= hi {
			walk(n.right)
		}
	}
	walk(t.root)
	return ids
}

// SettledIn implements TimeIndex: ends in (lo, hi], pruned by the min/max
// end augmentation.
func (t *IntervalTree) SettledIn(lo, hi int64) []int {
	var ids []int
	var walk func(n *itNode)
	walk = func(n *itNode) {
		if n == nil || n.minEnd > hi || n.maxEnd <= lo {
			return
		}
		walk(n.left)
		if n.iv.End > lo && n.iv.End <= hi {
			ids = append(ids, n.iv.ID)
		}
		walk(n.right)
	}
	walk(t.root)
	return ids
}

// MemoryBytes implements TimeIndex: one node per interval carrying the
// interval (24 B), two children, height, count, and two augmentation fields.
func (t *IntervalTree) MemoryBytes() int {
	const nodeBytes = 24 + 2*8 + 4 + 4 + 2*8
	return t.Len() * nodeBytes
}

func itSize(n *itNode) int32 {
	if n == nil {
		return 0
	}
	return n.count
}

func itHeight(n *itNode) int32 {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *itNode) update() {
	hl, hr := itHeight(n.left), itHeight(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	n.count = itSize(n.left) + itSize(n.right) + 1
	n.maxEnd = n.iv.End
	n.minEnd = n.iv.End
	if n.left != nil {
		if n.left.maxEnd > n.maxEnd {
			n.maxEnd = n.left.maxEnd
		}
		if n.left.minEnd < n.minEnd {
			n.minEnd = n.left.minEnd
		}
	}
	if n.right != nil {
		if n.right.maxEnd > n.maxEnd {
			n.maxEnd = n.right.maxEnd
		}
		if n.right.minEnd < n.minEnd {
			n.minEnd = n.right.minEnd
		}
	}
}

func itRotateRight(y *itNode) *itNode {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func itRotateLeft(x *itNode) *itNode {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func itRebalance(n *itNode) *itNode {
	n.update()
	bf := itHeight(n.left) - itHeight(n.right)
	switch {
	case bf > 1:
		if itHeight(n.left.left) < itHeight(n.left.right) {
			n.left = itRotateLeft(n.left)
		}
		return itRotateRight(n)
	case bf < -1:
		if itHeight(n.right.right) < itHeight(n.right.left) {
			n.right = itRotateRight(n.right)
		}
		return itRotateLeft(n)
	}
	return n
}

// ivLess orders intervals by (Start, ID, End) so duplicates are permitted
// and deletion finds exact matches.
func ivLess(a, b Interval) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.End < b.End
}

func itInsert(n *itNode, iv Interval) *itNode {
	if n == nil {
		return &itNode{iv: iv, height: 1, count: 1, maxEnd: iv.End, minEnd: iv.End}
	}
	if ivLess(iv, n.iv) {
		n.left = itInsert(n.left, iv)
	} else {
		n.right = itInsert(n.right, iv)
	}
	return itRebalance(n)
}

func itDelete(n *itNode, iv Interval) (*itNode, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case ivLess(iv, n.iv):
		n.left, removed = itDelete(n.left, iv)
	case ivLess(n.iv, iv):
		n.right, removed = itDelete(n.right, iv)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.iv = succ.iv
		n.right, _ = itDelete(n.right, succ.iv)
	}
	if !removed {
		return n, false
	}
	return itRebalance(n), true
}

// checkInvariants verifies BST order, AVL balance and augmentation caches.
func (t *IntervalTree) checkInvariants() error {
	_, err := itCheck(t.root)
	return err
}

type itStats struct {
	h, sz          int32
	maxEnd, minEnd int64
}

func itCheck(n *itNode) (itStats, error) {
	if n == nil {
		return itStats{minEnd: 1<<63 - 1, maxEnd: -(1 << 62)}, nil
	}
	l, err := itCheck(n.left)
	if err != nil {
		return itStats{}, err
	}
	r, err := itCheck(n.right)
	if err != nil {
		return itStats{}, err
	}
	if n.left != nil && ivLess(n.iv, n.left.iv) {
		return itStats{}, errOrder
	}
	if n.right != nil && ivLess(n.right.iv, n.iv) {
		return itStats{}, errOrder
	}
	if bf := l.h - r.h; bf < -1 || bf > 1 {
		return itStats{}, errBalance
	}
	s := itStats{sz: l.sz + r.sz + 1, maxEnd: n.iv.End, minEnd: n.iv.End}
	s.h = l.h + 1
	if r.h >= l.h {
		s.h = r.h + 1
	}
	if l.maxEnd > s.maxEnd {
		s.maxEnd = l.maxEnd
	}
	if r.maxEnd > s.maxEnd {
		s.maxEnd = r.maxEnd
	}
	if l.minEnd < s.minEnd {
		s.minEnd = l.minEnd
	}
	if r.minEnd < s.minEnd {
		s.minEnd = r.minEnd
	}
	if n.height != s.h || n.count != s.sz || n.maxEnd != s.maxEnd || n.minEnd != s.minEnd {
		return itStats{}, errInvariant("interval tree augmentation cache wrong")
	}
	return s, nil
}
