package index

import (
	"math/rand"
	"testing"
)

// TestBulkLoadMatchesIncremental builds the same data both ways and checks
// query equivalence plus structural invariants.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ivs := randomIntervals(rng, 500)

	avlBulk := NewAVL()
	if err := avlBulk.BulkLoad(ivs); err != nil {
		t.Fatal(err)
	}
	itBulk := NewIntervalTree()
	if err := itBulk.BulkLoad(ivs); err != nil {
		t.Fatal(err)
	}
	if err := avlBulk.byStart.checkInvariants(); err != nil {
		t.Fatalf("bulk avl byStart: %v", err)
	}
	if err := avlBulk.byEnd.checkInvariants(); err != nil {
		t.Fatalf("bulk avl byEnd: %v", err)
	}
	if err := itBulk.checkInvariants(); err != nil {
		t.Fatalf("bulk interval tree: %v", err)
	}
	if avlBulk.Len() != len(ivs) || itBulk.Len() != len(ivs) {
		t.Fatalf("lens %d/%d, want %d", avlBulk.Len(), itBulk.Len(), len(ivs))
	}

	oracle := brute(ivs)
	for q := int64(-5); q <= 260; q += 11 {
		if got := sortedIDs(avlBulk.ActiveAt(q)); !eq(got, oracle.activeAt(q)) {
			t.Fatalf("avl bulk ActiveAt(%d) mismatch", q)
		}
		if got := sortedIDs(itBulk.ActiveAt(q)); !eq(got, oracle.activeAt(q)) {
			t.Fatalf("interval bulk ActiveAt(%d) mismatch", q)
		}
		if got := sortedIDs(avlBulk.SettledBy(q)); !eq(got, oracle.settledBy(q)) {
			t.Fatalf("avl bulk SettledBy(%d) mismatch", q)
		}
		if got := sortedIDs(itBulk.SettledBy(q)); !eq(got, oracle.settledBy(q)) {
			t.Fatalf("interval bulk SettledBy(%d) mismatch", q)
		}
	}
}

// TestBulkLoadThenMutate verifies incremental operations still work on a
// bulk-loaded tree.
func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	ivs := randomIntervals(rng, 200)
	for _, kind := range []Kind{KindAVL, KindInterval} {
		idx, err := Build(kind, ivs)
		if err != nil {
			t.Fatal(err)
		}
		extra := Interval{Start: 42, End: 77, ID: 9999}
		if err := idx.Insert(extra); err != nil {
			t.Fatal(err)
		}
		if !idx.Delete(ivs[17]) {
			t.Fatalf("%s: delete after bulk load failed", kind)
		}
		if idx.Len() != len(ivs) {
			t.Fatalf("%s: len = %d, want %d", kind, idx.Len(), len(ivs))
		}
		found := false
		for _, id := range idx.ActiveAt(50) {
			if id == 9999 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: inserted interval not found after bulk load", kind)
		}
	}
	// Invariants hold after churn.
	avl := NewAVL()
	if err := avl.BulkLoad(ivs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := avl.Insert(Interval{Start: int64(i), End: int64(i + 10), ID: 10000 + i}); err != nil {
			t.Fatal(err)
		}
		avl.Delete(ivs[i])
	}
	if err := avl.byStart.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := avl.byEnd.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsInvalid(t *testing.T) {
	bad := []Interval{{Start: 10, End: 5, ID: 1}}
	if err := NewAVL().BulkLoad(bad); err == nil {
		t.Error("avl: want error")
	}
	if err := NewIntervalTree().BulkLoad(bad); err == nil {
		t.Error("interval: want error")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	avl := NewAVL()
	if err := avl.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if avl.Len() != 0 || len(avl.ActiveAt(5)) != 0 {
		t.Error("empty bulk load should yield empty index")
	}
}
