package index

import (
	"math/rand"
	"testing"
)

// allKinds includes the ablation design on top of the paper's three.
func allKinds() []Kind { return append(Kinds(), KindSorted) }

func TestSortedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		ivs := randomIntervals(rng, 200)
		idx, err := Build(KindSorted, ivs)
		if err != nil {
			t.Fatal(err)
		}
		oracle := brute(ivs)
		for q := int64(-5); q <= 260; q += 9 {
			if got := sortedIDs(idx.ActiveAt(q)); !eq(got, oracle.activeAt(q)) {
				t.Fatalf("ActiveAt(%d) mismatch", q)
			}
			if got := sortedIDs(idx.SettledBy(q)); !eq(got, oracle.settledBy(q)) {
				t.Fatalf("SettledBy(%d) mismatch", q)
			}
			if got := sortedIDs(idx.CreatedBy(q)); !eq(got, oracle.createdBy(q)) {
				t.Fatalf("CreatedBy(%d) mismatch", q)
			}
			if idx.CountActiveAt(q) != len(oracle.activeAt(q)) {
				t.Fatalf("CountActiveAt(%d) mismatch", q)
			}
			if idx.CountSettledBy(q) != len(oracle.settledBy(q)) {
				t.Fatalf("CountSettledBy(%d) mismatch", q)
			}
			lo, hi := q-15, q
			if got := sortedIDs(idx.CreatedIn(lo, hi)); !eq(got, oracle.createdIn(lo, hi)) {
				t.Fatalf("CreatedIn(%d,%d] mismatch", lo, hi)
			}
			if got := sortedIDs(idx.SettledIn(lo, hi)); !eq(got, oracle.settledIn(lo, hi)) {
				t.Fatalf("SettledIn(%d,%d] mismatch", lo, hi)
			}
		}
	}
}

func TestSortedInsertDeleteLazyResort(t *testing.T) {
	idx := NewSorted()
	for _, iv := range smallFixture() {
		if err := idx.Insert(iv); err != nil {
			t.Fatal(err)
		}
	}
	if got := sortedIDs(idx.ActiveAt(10)); !eq(got, []int{2, 3, 4}) {
		t.Fatalf("ActiveAt(10) = %v", got)
	}
	// Mutate after queries: delete then re-query.
	if !idx.Delete(Interval{Start: 10, End: 20, ID: 3}) {
		t.Fatal("delete failed")
	}
	if idx.Delete(Interval{Start: 10, End: 20, ID: 3}) {
		t.Fatal("double delete succeeded")
	}
	if got := sortedIDs(idx.ActiveAt(10)); !eq(got, []int{2, 4}) {
		t.Fatalf("ActiveAt(10) after delete = %v", got)
	}
	if err := idx.Insert(Interval{Start: 8, End: 12, ID: 99}); err != nil {
		t.Fatal(err)
	}
	if got := sortedIDs(idx.ActiveAt(10)); !eq(got, []int{2, 4, 99}) {
		t.Fatalf("ActiveAt(10) after insert = %v", got)
	}
	if err := idx.Insert(Interval{Start: 9, End: 5, ID: 1}); err == nil {
		t.Fatal("invalid interval accepted")
	}
}

func TestSortedMemorySmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	ivs := randomIntervals(rng, 2000)
	var sizes []int
	for _, kind := range allKinds() {
		idx, err := Build(kind, ivs)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, idx.MemoryBytes())
	}
	sorted := sizes[len(sizes)-1]
	for i, kind := range Kinds() {
		if sorted > sizes[i] {
			t.Errorf("sorted index (%d B) should not exceed %s (%d B)", sorted, kind, sizes[i])
		}
	}
}
