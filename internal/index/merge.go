package index

// mergeTail merges the already-sorted tail s[n:] into the already-sorted
// prefix s[:n] in place, stably (prefix elements order before equal tail
// elements), using one O(len(s)-n) scratch buffer. This is the second half
// of the append-and-merge lazy re-sort shared by NaiveIndex and
// SortedIndex: after a batch of k appends, the deferred re-sort costs
// O(k log k + n) instead of the O(n log n) full sort.
func mergeTail[T any](s []T, n int, cmp func(a, b T) int) {
	if n == 0 || n == len(s) {
		return
	}
	tail := append([]T(nil), s[n:]...)
	i, j, k := n-1, len(tail)-1, len(s)-1
	for j >= 0 {
		if i >= 0 && cmp(s[i], tail[j]) > 0 {
			s[k] = s[i]
			i--
		} else {
			s[k] = tail[j]
			j--
		}
		k--
	}
}
