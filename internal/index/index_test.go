package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// smallFixture is a hand-checkable set of intervals.
//
//	id 1: [0, 10)    id 2: [5, 15)   id 3: [10, 20)
//	id 4: [0, 30)    id 5: [25, 26)
func smallFixture() []Interval {
	return []Interval{
		{Start: 0, End: 10, ID: 1},
		{Start: 5, End: 15, ID: 2},
		{Start: 10, End: 20, ID: 3},
		{Start: 0, End: 30, ID: 4},
		{Start: 25, End: 26, ID: 5},
	}
}

func sortedIDs(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllKindsSmallFixture(t *testing.T) {
	cases := []struct {
		t       int64
		active  []int
		settled []int
		created []int
	}{
		{-1, nil, nil, nil},
		{0, []int{1, 4}, nil, []int{1, 4}},
		{5, []int{1, 2, 4}, nil, []int{1, 2, 4}},
		{9, []int{1, 2, 4}, nil, []int{1, 2, 4}},
		{10, []int{2, 3, 4}, []int{1}, []int{1, 2, 3, 4}},
		{15, []int{3, 4}, []int{1, 2}, []int{1, 2, 3, 4}},
		{20, []int{4}, []int{1, 2, 3}, []int{1, 2, 3, 4}},
		{25, []int{4, 5}, []int{1, 2, 3}, []int{1, 2, 3, 4, 5}},
		{26, []int{4}, []int{1, 2, 3, 5}, []int{1, 2, 3, 4, 5}},
		{30, nil, []int{1, 2, 3, 4, 5}, []int{1, 2, 3, 4, 5}},
		{1000, nil, []int{1, 2, 3, 4, 5}, []int{1, 2, 3, 4, 5}},
	}
	for _, kind := range Kinds() {
		idx, err := Build(kind, smallFixture())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if idx.Len() != 5 {
			t.Fatalf("%s: Len = %d, want 5", kind, idx.Len())
		}
		for _, c := range cases {
			if got := sortedIDs(idx.ActiveAt(c.t)); !eq(got, c.active) {
				t.Errorf("%s: ActiveAt(%d) = %v, want %v", kind, c.t, got, c.active)
			}
			if got := sortedIDs(idx.SettledBy(c.t)); !eq(got, c.settled) {
				t.Errorf("%s: SettledBy(%d) = %v, want %v", kind, c.t, got, c.settled)
			}
			if got := sortedIDs(idx.CreatedBy(c.t)); !eq(got, c.created) {
				t.Errorf("%s: CreatedBy(%d) = %v, want %v", kind, c.t, got, c.created)
			}
			if got := idx.CountActiveAt(c.t); got != len(c.active) {
				t.Errorf("%s: CountActiveAt(%d) = %d, want %d", kind, c.t, got, len(c.active))
			}
			if got := idx.CountSettledBy(c.t); got != len(c.settled) {
				t.Errorf("%s: CountSettledBy(%d) = %d, want %d", kind, c.t, got, len(c.settled))
			}
		}
	}
}

func TestInsertRejectsInvalidInterval(t *testing.T) {
	for _, kind := range Kinds() {
		idx, _ := New(kind)
		if err := idx.Insert(Interval{Start: 10, End: 5, ID: 1}); err == nil {
			t.Errorf("%s: Insert of inverted interval: want error", kind)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("btree")); err == nil {
		t.Error("New(btree): want error")
	}
}

func TestDelete(t *testing.T) {
	for _, kind := range Kinds() {
		idx, err := Build(kind, smallFixture())
		if err != nil {
			t.Fatal(err)
		}
		if !idx.Delete(Interval{Start: 5, End: 15, ID: 2}) {
			t.Fatalf("%s: Delete of existing interval returned false", kind)
		}
		if idx.Delete(Interval{Start: 5, End: 15, ID: 2}) {
			t.Errorf("%s: second Delete returned true", kind)
		}
		if idx.Len() != 4 {
			t.Errorf("%s: Len after delete = %d, want 4", kind, idx.Len())
		}
		if got := sortedIDs(idx.ActiveAt(10)); !eq(got, []int{3, 4}) {
			t.Errorf("%s: ActiveAt(10) after delete = %v, want [3 4]", kind, got)
		}
		if idx.Delete(Interval{Start: 99, End: 100, ID: 999}) {
			t.Errorf("%s: Delete of absent interval returned true", kind)
		}
	}
}

// brute is the reference oracle.
type brute []Interval

func (b brute) activeAt(t int64) []int {
	var ids []int
	for _, iv := range b {
		if iv.Start <= t && iv.End > t {
			ids = append(ids, iv.ID)
		}
	}
	return sortedIDs(ids)
}

func (b brute) settledBy(t int64) []int {
	var ids []int
	for _, iv := range b {
		if iv.End <= t {
			ids = append(ids, iv.ID)
		}
	}
	return sortedIDs(ids)
}

func (b brute) createdBy(t int64) []int {
	var ids []int
	for _, iv := range b {
		if iv.Start <= t {
			ids = append(ids, iv.ID)
		}
	}
	return sortedIDs(ids)
}

func randomIntervals(rng *rand.Rand, n int) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		s := int64(rng.Intn(200))
		ivs[i] = Interval{Start: s, End: s + int64(rng.Intn(50)), ID: i}
	}
	return ivs
}

// TestRandomizedAgainstOracle cross-checks all three designs against the
// brute-force oracle over random workloads with interleaved deletes.
func TestRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		ivs := randomIntervals(rng, 150)
		idxs := make(map[Kind]TimeIndex)
		for _, kind := range Kinds() {
			idx, err := Build(kind, ivs)
			if err != nil {
				t.Fatal(err)
			}
			idxs[kind] = idx
		}
		// Delete a random third.
		live := append([]Interval(nil), ivs...)
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		dead := live[:len(live)/3]
		live = live[len(live)/3:]
		for _, iv := range dead {
			for kind, idx := range idxs {
				if !idx.Delete(iv) {
					t.Fatalf("%s: delete %v failed", kind, iv)
				}
			}
		}
		oracle := brute(live)
		for q := int64(-5); q <= 260; q += 7 {
			wantA, wantS, wantC := oracle.activeAt(q), oracle.settledBy(q), oracle.createdBy(q)
			for kind, idx := range idxs {
				if got := sortedIDs(idx.ActiveAt(q)); !eq(got, wantA) {
					t.Fatalf("trial %d %s: ActiveAt(%d) = %v, want %v", trial, kind, q, got, wantA)
				}
				if got := sortedIDs(idx.SettledBy(q)); !eq(got, wantS) {
					t.Fatalf("trial %d %s: SettledBy(%d) = %v, want %v", trial, kind, q, got, wantS)
				}
				if got := sortedIDs(idx.CreatedBy(q)); !eq(got, wantC) {
					t.Fatalf("trial %d %s: CreatedBy(%d) = %v, want %v", trial, kind, q, got, wantC)
				}
				if got := idx.CountActiveAt(q); got != len(wantA) {
					t.Fatalf("trial %d %s: CountActiveAt(%d) = %d, want %d", trial, kind, q, got, len(wantA))
				}
				if got := idx.CountSettledBy(q); got != len(wantS) {
					t.Fatalf("trial %d %s: CountSettledBy(%d) = %d, want %d", trial, kind, q, got, len(wantS))
				}
			}
		}
	}
}

// TestQuickSetIdentities verifies the Eqs. 3-6 set identities:
// Created = Active ∪ Settled (disjoint), New = all \ Created.
func TestQuickSetIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, q16 int16) bool {
		r := rand.New(rand.NewSource(seed))
		ivs := randomIntervals(r, 60)
		q := int64(q16 % 300)
		for _, kind := range Kinds() {
			idx, err := Build(kind, ivs)
			if err != nil {
				return false
			}
			active := sortedIDs(idx.ActiveAt(q))
			settled := sortedIDs(idx.SettledBy(q))
			created := sortedIDs(idx.CreatedBy(q))
			// Disjoint.
			seen := map[int]bool{}
			for _, id := range active {
				seen[id] = true
			}
			for _, id := range settled {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
			// Union equals created.
			if len(created) != len(active)+len(settled) {
				return false
			}
			for _, id := range created {
				if !seen[id] {
					return false
				}
			}
			// New = complement.
			if idx.Len()-len(created) < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAVLInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	idx := NewAVL()
	var live []Interval
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			s := int64(rng.Intn(1000))
			iv := Interval{Start: s, End: s + int64(rng.Intn(100)), ID: op}
			if err := idx.Insert(iv); err != nil {
				t.Fatal(err)
			}
			live = append(live, iv)
		} else {
			k := rng.Intn(len(live))
			if !idx.Delete(live[k]) {
				t.Fatalf("delete %v failed", live[k])
			}
			live = append(live[:k], live[k+1:]...)
		}
		if op%100 == 0 {
			if err := idx.byStart.checkInvariants(); err != nil {
				t.Fatalf("op %d byStart: %v", op, err)
			}
			if err := idx.byEnd.checkInvariants(); err != nil {
				t.Fatalf("op %d byEnd: %v", op, err)
			}
			if idx.Len() != len(live) {
				t.Fatalf("op %d: Len = %d, want %d", op, idx.Len(), len(live))
			}
		}
	}
}

func TestIntervalTreeInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	tree := NewIntervalTree()
	var live []Interval
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			s := int64(rng.Intn(1000))
			iv := Interval{Start: s, End: s + int64(rng.Intn(100)), ID: op}
			if err := tree.Insert(iv); err != nil {
				t.Fatal(err)
			}
			live = append(live, iv)
		} else {
			k := rng.Intn(len(live))
			if !tree.Delete(live[k]) {
				t.Fatalf("delete %v failed", live[k])
			}
			live = append(live[:k], live[k+1:]...)
		}
		if op%100 == 0 {
			if err := tree.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
}

func TestAVLTreeIsBalanced(t *testing.T) {
	tr := &avlTree{}
	// Sorted insertion is the classic worst case for an unbalanced BST.
	n := 4096
	for i := 0; i < n; i++ {
		tr.insert(avlEntry{key: int64(i), id: i})
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Height must be O(log n): AVL guarantees <= 1.44 log2(n+2).
	const maxH int32 = 19 // AVL height bound 1.44*log2(n+2): log2(4096) = 12
	if h := height(tr.root); h > maxH {
		t.Errorf("height = %d after sorted insertion of %d keys, want <= %d", h, n, maxH)
	}
}

func TestCountLE(t *testing.T) {
	tr := &avlTree{}
	keys := []int64{5, 3, 8, 3, 9, 1}
	for i, k := range keys {
		tr.insert(avlEntry{key: k, id: i})
	}
	cases := []struct {
		k    int64
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 3}, {5, 4}, {8, 5}, {9, 6}, {100, 6}}
	for _, c := range cases {
		if got := tr.countLE(c.k); got != c.want {
			t.Errorf("countLE(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestMemoryBytesScalesLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := randomIntervals(rng, 100)
	large := randomIntervals(rng, 1000)
	for _, kind := range Kinds() {
		si, _ := Build(kind, small)
		li, _ := Build(kind, large)
		if si.MemoryBytes() <= 0 {
			t.Errorf("%s: small MemoryBytes = %d, want > 0", kind, si.MemoryBytes())
		}
		ratio := float64(li.MemoryBytes()) / float64(si.MemoryBytes())
		if ratio < 5 || ratio > 20 {
			t.Errorf("%s: memory ratio %f for 10x data, want ~10", kind, ratio)
		}
	}
}

// TestNaiveUsesMoreMemoryThanTrees pins the Table 6 shape: the merge
// baseline's materialized copy costs about twice the tree indexes.
func TestNaiveUsesMoreMemoryThanTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ivs := randomIntervals(rng, 5000)
	naive, _ := Build(KindNaive, ivs)
	avl, _ := Build(KindAVL, ivs)
	if naive.MemoryBytes() <= avl.MemoryBytes()/2 {
		t.Errorf("naive memory %d should be on the order of the AVL's %d or more",
			naive.MemoryBytes(), avl.MemoryBytes())
	}
}

func TestEmptyIndexQueries(t *testing.T) {
	for _, kind := range Kinds() {
		idx, _ := New(kind)
		if idx.Len() != 0 {
			t.Errorf("%s: empty Len = %d", kind, idx.Len())
		}
		if ids := idx.ActiveAt(10); len(ids) != 0 {
			t.Errorf("%s: ActiveAt on empty = %v", kind, ids)
		}
		if ids := idx.SettledBy(10); len(ids) != 0 {
			t.Errorf("%s: SettledBy on empty = %v", kind, ids)
		}
		if idx.CountActiveAt(10) != 0 || idx.CountSettledBy(10) != 0 {
			t.Errorf("%s: counts on empty index non-zero", kind)
		}
		if idx.Delete(Interval{ID: 1}) {
			t.Errorf("%s: Delete on empty returned true", kind)
		}
	}
}

func TestZeroLengthIntervals(t *testing.T) {
	// A zero-length interval [t, t) is never active but settles at t.
	for _, kind := range Kinds() {
		idx, _ := New(kind)
		if err := idx.Insert(Interval{Start: 10, End: 10, ID: 1}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ids := idx.ActiveAt(10); len(ids) != 0 {
			t.Errorf("%s: zero-length interval active = %v", kind, ids)
		}
		if ids := idx.SettledBy(10); !eq(sortedIDs(ids), []int{1}) {
			t.Errorf("%s: zero-length interval settled = %v, want [1]", kind, ids)
		}
	}
}
