package features

import (
	"math"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/statusq"
	"domd/internal/swlin"
)

func TestRegistrySizeAndNaming(t *testing.T) {
	e := NewExtractor()
	// 3 statuses × 4 types × 11 swlin groups × 11 aggregates.
	want := 3 * 4 * 11 * 11
	if e.NumDynamic() != want {
		t.Fatalf("NumDynamic = %d, want %d", e.NumDynamic(), want)
	}
	names := e.Names()
	if len(names) != NumStatic+want {
		t.Fatalf("Names = %d, want %d", len(names), NumStatic+want)
	}
	// Unique names.
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	// Paper-style name present (status made explicit).
	if !seen["G1-SETTLED_AVG_SETTLED_AMT"] {
		t.Error("expected paper-style feature G1-SETTLED_AVG_SETTLED_AMT")
	}
	if !seen["ALLALL-CREATED_COUNT"] {
		t.Error("expected whole-ship count feature")
	}
	for _, s := range StaticNames {
		if !seen[s] {
			t.Errorf("static %q missing from Names", s)
		}
	}
}

func TestStaticVector(t *testing.T) {
	a := &domain.Avail{
		ID: 1, ShipClass: 3, RMC: 2, ShipAge: 17.5,
		PlanStart: 0, PlanEnd: 250, PlannedCost: 9e6,
		PriorAvails: 4, DockType: 1, HomeportDist: 812,
	}
	v := StaticVector(a)
	if len(v) != NumStatic {
		t.Fatalf("static vector len = %d, want %d", len(v), NumStatic)
	}
	want := []float64{3, 2, 17.5, 250, 9e6, 4, 1, 812}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("static[%d] (%s) = %f, want %f", i, StaticNames[i], v[i], want[i])
		}
	}
}

// fixture reuses the hand-checkable engine from the statusq tests.
func fixture(t *testing.T) *statusq.Engine {
	t.Helper()
	a := &domain.Avail{ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 120}
	mk := func(s string) int {
		c, err := swlin.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return int(c)
	}
	rccs := []domain.RCC{
		{ID: 101, AvailID: 1, Type: domain.Growth, SWLIN: mk("434-11-001"), Created: 10, Settled: 50, Amount: 100},
		{ID: 102, AvailID: 1, Type: domain.Growth, SWLIN: mk("434-22-001"), Created: 20, Settled: 90, Amount: 200},
		{ID: 103, AvailID: 1, Type: domain.NewWork, SWLIN: mk("911-90-001"), Created: 30, Settled: 60, Amount: 400},
		{ID: 104, AvailID: 1, Type: domain.NewGrowth, SWLIN: mk("434-33-001"), Created: 0, Settled: 10, Amount: 800},
	}
	eng, err := statusq.NewEngine(a, rccs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// lookup finds a feature value by name.
func lookup(t *testing.T, e *Extractor, vec []float64, name string) float64 {
	t.Helper()
	for i, n := range e.Names() {
		if n == name {
			return vec[i]
		}
	}
	t.Fatalf("feature %q not found", name)
	return 0
}

func TestDynamicVectorHandChecked(t *testing.T) {
	e := NewExtractor()
	eng := fixture(t)
	vec, err := e.Vector(eng, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != NumStatic+e.NumDynamic() {
		t.Fatalf("vector len = %d", len(vec))
	}
	cases := []struct {
		name string
		want float64
	}{
		// @day 30: active = {G:100, G:200, NW:400}, settled = {NG:800}.
		{"ALLALL-ACTIVE_COUNT", 3},
		{"ALLALL-ACTIVE_SUM_SETTLED_AMT", 700},
		{"ALLALL-SETTLED_COUNT", 1},
		{"ALLALL-SETTLED_SUM_SETTLED_AMT", 800},
		{"ALLALL-CREATED_COUNT", 4},
		{"GALL-ACTIVE_COUNT", 2},
		{"GALL-ACTIVE_AVG_SETTLED_AMT", 150},
		{"G4-ACTIVE_COUNT", 2},
		{"G9-ACTIVE_COUNT", 0},
		{"NW9-ACTIVE_COUNT", 1},
		{"NW9-ACTIVE_MAX_SETTLED_AMT", 400},
		{"NG4-SETTLED_COUNT", 1},
		{"NG4-SETTLED_AVG_DUR", 10},
		{"ALL4-CREATED_COUNT", 3},
		{"ALLALL-ACTIVE_PCT", 0.75},
		{"ALLALL-ACTIVE_RATE", 0.1},
		{"ALLALL-ACTIVE_MAX_DUR", 70},
	}
	for _, c := range cases {
		if got := lookup(t, e, vec, c.name); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %f, want %f", c.name, got, c.want)
		}
	}
}

func TestDynamicFeaturesEvolveOverTime(t *testing.T) {
	e := NewExtractor()
	eng := fixture(t)
	v0, err := e.Vector(eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	v100, err := e.Vector(eng, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Created count is monotone over time; everything is settled by t*=100.
	if lookup(t, e, v0, "ALLALL-CREATED_COUNT") != 1 {
		t.Error("only the day-0 RCC should exist at t*=0")
	}
	if lookup(t, e, v100, "ALLALL-SETTLED_COUNT") != 4 {
		t.Error("all RCCs settled by t*=100")
	}
	if lookup(t, e, v100, "ALLALL-ACTIVE_COUNT") != 0 {
		t.Error("no RCC active at t*=100")
	}
	// Statics identical across time.
	for i := 0; i < NumStatic; i++ {
		if v0[i] != v100[i] {
			t.Errorf("static feature %d changed over time", i)
		}
	}
}

func TestBuildTensor(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 12, NumOngoing: 2, MeanRCCsPerAvail: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor()
	tensor, err := BuildTensor(e, ds.Avails, ds.RCCsByAvail(), 10, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	if len(tensor.Timestamps) != 11 {
		t.Fatalf("timestamps = %v, want 0..100 step 10", tensor.Timestamps)
	}
	if tensor.NumAvails() != 12 {
		t.Errorf("tensor rows = %d, want 12 closed avails", tensor.NumAvails())
	}
	for k, slice := range tensor.Slices {
		if err := slice.Validate(); err != nil {
			t.Fatalf("slice %d invalid: %v", k, err)
		}
		if slice.NumRows() != 12 {
			t.Fatalf("slice %d rows = %d", k, slice.NumRows())
		}
		if slice.NumCols() != NumStatic+e.NumDynamic() {
			t.Fatalf("slice %d cols = %d", k, slice.NumCols())
		}
	}
	// Targets equal the avail delays on every slice.
	for r, a := range tensor.Avails {
		d, err := a.Delay()
		if err != nil {
			t.Fatal(err)
		}
		for k := range tensor.Slices {
			if tensor.Slices[k].Y[r] != float64(d) {
				t.Fatalf("slice %d row %d label %f, want %d", k, r, tensor.Slices[k].Y[r], d)
			}
		}
	}
}

func TestBuildTensorFractionalGap(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 5, NumOngoing: 0, MeanRCCsPerAvail: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor()
	tensor, err := BuildTensor(e, ds.Avails, ds.RCCsByAvail(), 33, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 33, 66, 99, 100}
	if len(tensor.Timestamps) != len(want) {
		t.Fatalf("timestamps = %v, want %v", tensor.Timestamps, want)
	}
	for i := range want {
		if tensor.Timestamps[i] != want[i] {
			t.Fatalf("timestamps = %v, want %v", tensor.Timestamps, want)
		}
	}
}

func TestBuildTensorErrors(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 5, NumOngoing: 0, MeanRCCsPerAvail: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor()
	if _, err := BuildTensor(e, ds.Avails, ds.RCCsByAvail(), 0, index.KindAVL); err == nil {
		t.Error("gap 0: want error")
	}
	if _, err := BuildTensor(e, ds.Avails, ds.RCCsByAvail(), 101, index.KindAVL); err == nil {
		t.Error("gap 101: want error")
	}
	ongoingOnly := []domain.Avail{{ID: 1, Status: domain.StatusOngoing, PlanStart: 0, PlanEnd: 10, ActStart: 0}}
	if _, err := BuildTensor(e, ongoingOnly, nil, 10, index.KindAVL); err == nil {
		t.Error("no closed avails: want error")
	}
}

func TestSpecNameFormat(t *testing.T) {
	g := domain.Growth
	s := Spec{Type: &g, Subsystem: 1, Status: domain.SettledStatus, Agg: statusq.AvgAmount}
	if s.Name() != "G1-SETTLED_AVG_SETTLED_AMT" {
		t.Errorf("Name = %q", s.Name())
	}
	all := Spec{Subsystem: -1, Status: domain.Active, Agg: statusq.Count}
	if !strings.HasPrefix(all.Name(), "ALLALL-") {
		t.Errorf("all-name = %q", all.Name())
	}
}
