package features

import (
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/statusq"
	"domd/internal/swlin"
)

// TestNoFutureLeakage pins the causality property the DoMD query semantics
// depend on: feature vectors at logical time t* must be identical whether or
// not RCCs created after t* exist. (A regression here once leaked the
// all-time RCC total into early-timestamp Pct features.)
func TestNoFutureLeakage(t *testing.T) {
	a := &domain.Avail{ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 100, ActStart: 0, ActEnd: 120}
	mk := func(s string) int {
		c, err := swlin.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return int(c)
	}
	early := []domain.RCC{
		{ID: 1, AvailID: 1, Type: domain.Growth, SWLIN: mk("434-11-001"), Created: 5, Settled: 40, Amount: 100},
		{ID: 2, AvailID: 1, Type: domain.NewWork, SWLIN: mk("911-90-001"), Created: 10, Settled: 25, Amount: 300},
	}
	// The "future" adds RCCs created strictly after day 50 (t* > 50%).
	future := append(append([]domain.RCC(nil), early...),
		domain.RCC{ID: 3, AvailID: 1, Type: domain.Growth, SWLIN: mk("434-11-002"), Created: 60, Settled: 80, Amount: 9999},
		domain.RCC{ID: 4, AvailID: 1, Type: domain.NewGrowth, SWLIN: mk("565-11-001"), Created: 90, Settled: 95, Amount: 777},
	)

	ext := NewExtractor()
	engEarly, err := statusq.NewEngine(a, early, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	engFuture, err := statusq.NewEngine(a, future, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	names := ext.Names()
	for _, ts := range []float64{0, 10, 25, 50} {
		ve, err := ext.Vector(engEarly, ts)
		if err != nil {
			t.Fatal(err)
		}
		vf, err := ext.Vector(engFuture, ts)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ve {
			if ve[j] != vf[j] {
				t.Fatalf("t*=%g: feature %s differs with future RCCs present: %f vs %f",
					ts, names[j], ve[j], vf[j])
			}
		}
	}
	// Past the future RCCs' creation the vectors must diverge.
	ve, _ := ext.Vector(engEarly, 70)
	vf, _ := ext.Vector(engFuture, 70)
	same := true
	for j := range ve {
		if ve[j] != vf[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("vectors should differ once the extra RCCs are visible")
	}
}
