// Package features implements Task 1 of the paper: the transformation
// function 𝒯 that turns an avail's static attributes and its RCC history at
// logical timestamp t* into the model-ready feature vector F_{i,t*}.
//
// Generated (dynamic) features enumerate the cross product
//
//	status {ACTIVE, SETTLED, CREATED} ×
//	type   {G, NW, NG, ALL} ×
//	SWLIN  {subsystem digit 0..9, ALL} ×
//	aggregate (11 kinds, package statusq)
//
// which yields 3 × 4 × 11 × 11 = 1452 named features such as
// "G4-SETTLED_AVG_SETTLED_AMT" — the paper's "G1-AVG_SETTLED_AMT" naming with
// an explicit status segment — close to the 1490 RCC-dependent features of
// §5.2.1. Static features are the 8 the paper lists (ship class, RMC id,
// ship age, planning attributes, …) and are always included; feature
// selection applies only to generated features (§3.2.1).
//
// Every generated feature resolves to exactly one cell of the dense
// statusq.GridSet (the ALL selections hit the grid margins), so a full
// 1452-feature evaluation is a flat loop of array reads with no map lookups
// and no allocations beyond the caller's output slice.
//
// Across avails and logical timestamps the output forms the paper's
// (avail × feature × t*) tensor; BuildTensor materializes the slices each
// per-timestamp model trains on, fanning avails out over a worker pool and
// advancing one incremental statusq.CellSweep per avail across the
// timestamp grid (§4.3) instead of recomputing each timestamp from scratch.
package features

import (
	"fmt"
	"runtime"
	"sync"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/ml"
	"domd/internal/obs"
	"domd/internal/statusq"
)

// Spec defines one generated feature.
type Spec struct {
	// Type restricts to one RCC type; nil means all.
	Type *domain.RCCType
	// Subsystem restricts to a SWLIN first digit; -1 means all.
	Subsystem int
	// Status is the temporal class.
	Status domain.RCCStatus
	// Agg is the aggregate.
	Agg statusq.Aggregate
}

// Name renders the feature's canonical name.
func (s Spec) Name() string {
	typ := "ALL"
	if s.Type != nil {
		typ = s.Type.String()
	}
	sub := "ALL"
	if s.Subsystem >= 0 {
		sub = fmt.Sprintf("%d", s.Subsystem)
	}
	return fmt.Sprintf("%s%s-%s_%s", typ, sub, s.Status, s.Agg)
}

// StaticNames are the 8 static features of §5.2.1 in vector order.
var StaticNames = []string{
	"SHIP_CLASS", "RMC_ID", "SHIP_AGE", "PLANNED_DURATION",
	"PLANNED_COST", "PRIOR_AVAILS", "DOCK_TYPE", "HOMEPORT_DIST",
}

// NumStatic is the static feature count.
const NumStatic = 8

// gridGroup is the compiled form of one (status × type × subsystem)
// selection: the grid cell its 11 aggregates are read from, resolved once
// at registry construction. The registry emits the aggregates of a
// selection consecutively in Aggregate order, so evaluation batches all 11
// from a single cell load.
type gridGroup struct {
	status domain.RCCStatus
	typ    int8 // grid row (statusq.TypeAll for ALL)
	sub    int8 // grid column (statusq.SubsystemAll for ALL)
}

// Extractor holds the generated-feature registry. It is immutable and safe
// for concurrent use.
type Extractor struct {
	specs  []Spec
	names  []string
	groups []gridGroup // groups[g] covers specs[g*NumAggregates : (g+1)*NumAggregates]
}

var rccTypes = []domain.RCCType{domain.Growth, domain.NewWork, domain.NewGrowth}

// NewExtractor builds the full registry in deterministic order.
func NewExtractor() *Extractor {
	e := &Extractor{}
	statuses := []domain.RCCStatus{domain.Active, domain.SettledStatus, domain.Created}
	for _, st := range statuses {
		for t := -1; t < len(rccTypes); t++ {
			var typ *domain.RCCType
			if t >= 0 {
				typ = &rccTypes[t]
			}
			for sub := -1; sub < 10; sub++ {
				g := gridGroup{status: st, typ: int8(statusq.TypeAll), sub: int8(statusq.SubsystemAll)}
				if typ != nil {
					g.typ = int8(*typ)
				}
				if sub >= 0 {
					g.sub = int8(sub)
				}
				e.groups = append(e.groups, g)
				for agg := statusq.Aggregate(0); agg < statusq.NumAggregates; agg++ {
					s := Spec{Type: typ, Subsystem: sub, Status: st, Agg: agg}
					e.specs = append(e.specs, s)
					e.names = append(e.names, s.Name())
				}
			}
		}
	}
	return e
}

// NumDynamic is the generated-feature count (1452).
func (e *Extractor) NumDynamic() int { return len(e.specs) }

// DynamicNames returns the generated feature names in vector order. The
// slice is shared; do not mutate.
func (e *Extractor) DynamicNames() []string { return e.names }

// Names returns static followed by dynamic names (the full F_{i,t*} order).
func (e *Extractor) Names() []string {
	out := make([]string, 0, NumStatic+len(e.names))
	out = append(out, StaticNames...)
	return append(out, e.names...)
}

// Specs exposes the registry (shared; do not mutate).
func (e *Extractor) Specs() []Spec { return e.specs }

// StaticVector encodes the 8 static features of an avail.
func StaticVector(a *domain.Avail) []float64 {
	return []float64{
		float64(a.ShipClass),
		float64(a.RMC),
		a.ShipAge,
		float64(a.PlannedDuration()),
		a.PlannedCost,
		float64(a.PriorAvails),
		float64(a.DockType),
		a.HomeportDist,
	}
}

// evalGrids evaluates every generated feature from a finalized grid set
// into dst (len NumDynamic): one cell load per (status × type × subsystem)
// selection, all 11 aggregates batched from it. Pure array reads — no map
// lookups, no allocation.
func (e *Extractor) evalGrids(dst []float64, gs *statusq.GridSet, ts float64) {
	total := gs.CreatedCount()
	for g := range e.groups {
		c := &e.groups[g]
		gs[c.status][c.typ][c.sub].AggregateAll(dst[g*statusq.NumAggregates:], total, ts)
	}
}

// DynamicVectorInto advances the sweep to ts and evaluates every generated
// feature into dst (len NumDynamic). Successive calls with ascending ts
// reuse the sweep's state, so the per-timestamp cost is the incremental
// advance (§4.3) plus the flat evaluation loop — zero allocations.
func (e *Extractor) DynamicVectorInto(dst []float64, sw *statusq.CellSweep, ts float64) error {
	if len(dst) != len(e.specs) {
		return fmt.Errorf("features: dst len %d, want %d", len(dst), len(e.specs))
	}
	if err := sw.AdvanceTo(ts); err != nil {
		return err
	}
	e.evalGrids(dst, sw.Grids(), ts)
	return nil
}

// DynamicVectorScratch evaluates every generated feature at ts into dst
// using the engine's from-scratch dense grid fill. This is the
// non-incremental reference path: each call pays the full index retrieval
// and sort, but any timestamp can be queried in any order.
func (e *Extractor) DynamicVectorScratch(dst []float64, eng *statusq.Engine, ts float64) error {
	if len(dst) != len(e.specs) {
		return fmt.Errorf("features: dst len %d, want %d", len(dst), len(e.specs))
	}
	var gs statusq.GridSet
	if err := eng.CellGridsAt(ts, &gs); err != nil {
		return err
	}
	e.evalGrids(dst, &gs, ts)
	return nil
}

// DynamicVector evaluates every generated feature at ts from scratch,
// allocating the output slice. Kept for ad-hoc single-timestamp queries;
// grid sweeps should use DynamicVectorInto.
func (e *Extractor) DynamicVector(eng *statusq.Engine, ts float64) ([]float64, error) {
	out := make([]float64, len(e.specs))
	if err := e.DynamicVectorScratch(out, eng, ts); err != nil {
		return nil, err
	}
	return out, nil
}

// Vector concatenates static and dynamic features for one avail at ts.
func (e *Extractor) Vector(eng *statusq.Engine, ts float64) ([]float64, error) {
	dyn, err := e.DynamicVector(eng, ts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, NumStatic+len(dyn))
	out = append(out, StaticVector(eng.Avail())...)
	return append(out, dyn...), nil
}

// Tensor is the (avail × feature × t*) feature tensor of §3.1: one
// ml.Dataset slice per logical timestamp, rows aligned with Avails.
type Tensor struct {
	// Timestamps are the logical times of the slices, ascending.
	Timestamps []float64
	// Slices[k] is the dataset at Timestamps[k]; Slices[k].Y is the delay
	// vector (nil entries impossible — only closed avails are included).
	Slices []*ml.Dataset
	// Avails are the closed avails the rows describe, in row order.
	Avails []domain.Avail
}

// NumAvails reports the tensor's row count.
func (t *Tensor) NumAvails() int { return len(t.Avails) }

// TensorOptions tune the tensor build.
type TensorOptions struct {
	// Workers is the worker-pool size avails are fanned out over;
	// <= 0 selects runtime.GOMAXPROCS(0). Row order and values are
	// identical for every worker count: workers write disjoint
	// pre-sized row indices, and each row's computation is
	// self-contained.
	Workers int
}

// TimestampGrid returns the t* grid with spacing x percent: 0, x, 2x, …,
// then 100. Points are generated by integer stepping (i·x) rather than
// float accumulation, so fractional gaps cannot drift into a near-duplicate
// terminal point next to the appended 100.
func TimestampGrid(x float64) []float64 {
	const eps = 1e-9
	var ts []float64
	for i := 0; ; i++ {
		v := float64(i) * x
		if v >= 100-eps {
			break
		}
		ts = append(ts, v)
	}
	return append(ts, 100)
}

// BuildTensor extracts the tensor for the given avails over a t* grid with
// spacing x percent (the "model gap interval" of Problem 1). Only closed
// avails are included, since training needs the delay label. It is the
// default-options form of BuildTensorOpt.
func BuildTensor(ext *Extractor, avails []domain.Avail, rccsByAvail map[int][]domain.RCC, x float64, kind index.Kind) (*Tensor, error) {
	return BuildTensorOpt(ext, avails, rccsByAvail, x, kind, TensorOptions{})
}

// BuildTensorOpt extracts the tensor with explicit options. Avails fan out
// over a bounded worker pool; each worker owns one incremental
// statusq.CellSweep per avail and visits the timestamp grid in ascending
// order, so every timestamp after the first costs only the events inside
// its window (§4.3). kind names the time-index design ad-hoc Status Queries
// would use and is validated here for interface compatibility; the grid
// build itself runs entirely on the event sweep and materializes no
// per-avail index.
func BuildTensorOpt(ext *Extractor, avails []domain.Avail, rccsByAvail map[int][]domain.RCC, x float64, kind index.Kind, opts TensorOptions) (*Tensor, error) {
	if x <= 0 || x > 100 {
		return nil, fmt.Errorf("features: gap interval %f outside (0,100]", x)
	}
	if _, err := index.New(kind); err != nil {
		return nil, err
	}
	ts := TimestampGrid(x)

	// Row selection and labels are resolved up front so workers only ever
	// touch their own pre-sized row index.
	var rows []*domain.Avail
	var delays []float64
	for i := range avails {
		a := &avails[i]
		if a.Status != domain.StatusClosed {
			continue
		}
		delay, err := a.Delay()
		if err != nil {
			return nil, err
		}
		rows = append(rows, a)
		delays = append(delays, float64(delay))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("features: no closed avails")
	}

	t := &Tensor{Timestamps: ts, Avails: make([]domain.Avail, len(rows))}
	names := ext.Names()
	numFeatures := NumStatic + ext.NumDynamic()
	for range ts {
		t.Slices = append(t.Slices, &ml.Dataset{
			Names: names,
			X:     make([][]float64, len(rows)),
			Y:     make([]float64, len(rows)),
		})
	}
	for r := range rows {
		t.Avails[r] = *rows[r]
		for k := range ts {
			t.Slices[k].Y[r] = delays[r]
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	sw := obs.StartTimer()
	mTensorWorkers.Set(int64(workers))

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	rowCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range rowCh {
				if failed() {
					continue
				}
				a := rows[r]
				sw, err := statusq.NewCellSweep(a, rccsByAvail[a.ID])
				if err != nil {
					fail(fmt.Errorf("features: avail %d: %w", a.ID, err))
					continue
				}
				// One backing block per row: K feature vectors laid out
				// contiguously, sliced per timestamp.
				block := make([]float64, len(ts)*numFeatures)
				static := StaticVector(a)
				for k, tstar := range ts {
					vec := block[k*numFeatures : (k+1)*numFeatures : (k+1)*numFeatures]
					copy(vec, static)
					if err := ext.DynamicVectorInto(vec[NumStatic:], sw, tstar); err != nil {
						fail(fmt.Errorf("features: avail %d @%g: %w", a.ID, tstar, err))
						break
					}
					t.Slices[k].X[r] = vec
				}
			}
		}()
	}
	for r := range rows {
		rowCh <- r
	}
	close(rowCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	mTensorBuilds.Inc()
	mTensorBuildSeconds.ObserveSince(sw)
	mTensorRows.Add(int64(len(rows) * len(ts)))
	return t, nil
}

// BuildTensorScratch is the pre-sweep reference build: one engine per
// avail, every timestamp recomputed from scratch via the index, serially.
// It is retained for differential verification (its output is
// bitwise-identical to BuildTensorOpt at any worker count) and for the
// scalability study quantifying what the incremental sweep saves.
func BuildTensorScratch(ext *Extractor, avails []domain.Avail, rccsByAvail map[int][]domain.RCC, x float64, kind index.Kind) (*Tensor, error) {
	if x <= 0 || x > 100 {
		return nil, fmt.Errorf("features: gap interval %f outside (0,100]", x)
	}
	ts := TimestampGrid(x)
	t := &Tensor{Timestamps: ts}
	names := ext.Names()
	for range ts {
		t.Slices = append(t.Slices, &ml.Dataset{Names: names})
	}
	for i := range avails {
		a := &avails[i]
		if a.Status != domain.StatusClosed {
			continue
		}
		delay, err := a.Delay()
		if err != nil {
			return nil, err
		}
		eng, err := statusq.NewEngine(a, rccsByAvail[a.ID], kind)
		if err != nil {
			return nil, fmt.Errorf("features: avail %d: %w", a.ID, err)
		}
		t.Avails = append(t.Avails, *a)
		static := StaticVector(a)
		for k, tstar := range ts {
			vec := make([]float64, NumStatic+ext.NumDynamic())
			copy(vec, static)
			if err := ext.DynamicVectorScratch(vec[NumStatic:], eng, tstar); err != nil {
				return nil, fmt.Errorf("features: avail %d @%g: %w", a.ID, tstar, err)
			}
			t.Slices[k].X = append(t.Slices[k].X, vec)
			t.Slices[k].Y = append(t.Slices[k].Y, float64(delay))
		}
	}
	if len(t.Avails) == 0 {
		return nil, fmt.Errorf("features: no closed avails")
	}
	return t, nil
}
