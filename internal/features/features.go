// Package features implements Task 1 of the paper: the transformation
// function 𝒯 that turns an avail's static attributes and its RCC history at
// logical timestamp t* into the model-ready feature vector F_{i,t*}.
//
// Generated (dynamic) features enumerate the cross product
//
//	status {ACTIVE, SETTLED, CREATED} ×
//	type   {G, NW, NG, ALL} ×
//	SWLIN  {subsystem digit 0..9, ALL} ×
//	aggregate (11 kinds, package statusq)
//
// which yields 3 × 4 × 11 × 11 = 1452 named features such as
// "G4-SETTLED_AVG_SETTLED_AMT" — the paper's "G1-AVG_SETTLED_AMT" naming with
// an explicit status segment — close to the 1490 RCC-dependent features of
// §5.2.1. Static features are the 8 the paper lists (ship class, RMC id,
// ship age, planning attributes, …) and are always included; feature
// selection applies only to generated features (§3.2.1).
//
// Across avails and logical timestamps the output forms the paper's
// (avail × feature × t*) tensor; Tensor materializes the slices each
// per-timestamp model trains on.
package features

import (
	"fmt"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/ml"
	"domd/internal/statusq"
)

// Spec defines one generated feature.
type Spec struct {
	// Type restricts to one RCC type; nil means all.
	Type *domain.RCCType
	// Subsystem restricts to a SWLIN first digit; -1 means all.
	Subsystem int
	// Status is the temporal class.
	Status domain.RCCStatus
	// Agg is the aggregate.
	Agg statusq.Aggregate
}

// Name renders the feature's canonical name.
func (s Spec) Name() string {
	typ := "ALL"
	if s.Type != nil {
		typ = s.Type.String()
	}
	sub := "ALL"
	if s.Subsystem >= 0 {
		sub = fmt.Sprintf("%d", s.Subsystem)
	}
	return fmt.Sprintf("%s%s-%s_%s", typ, sub, s.Status, s.Agg)
}

// StaticNames are the 8 static features of §5.2.1 in vector order.
var StaticNames = []string{
	"SHIP_CLASS", "RMC_ID", "SHIP_AGE", "PLANNED_DURATION",
	"PLANNED_COST", "PRIOR_AVAILS", "DOCK_TYPE", "HOMEPORT_DIST",
}

// NumStatic is the static feature count.
const NumStatic = 8

// Extractor holds the generated-feature registry. It is immutable and safe
// for concurrent use.
type Extractor struct {
	specs []Spec
	names []string
}

var rccTypes = []domain.RCCType{domain.Growth, domain.NewWork, domain.NewGrowth}

// NewExtractor builds the full registry in deterministic order.
func NewExtractor() *Extractor {
	e := &Extractor{}
	statuses := []domain.RCCStatus{domain.Active, domain.SettledStatus, domain.Created}
	for _, st := range statuses {
		for t := -1; t < len(rccTypes); t++ {
			var typ *domain.RCCType
			if t >= 0 {
				typ = &rccTypes[t]
			}
			for sub := -1; sub < 10; sub++ {
				for agg := statusq.Aggregate(0); agg < statusq.NumAggregates; agg++ {
					s := Spec{Type: typ, Subsystem: sub, Status: st, Agg: agg}
					e.specs = append(e.specs, s)
					e.names = append(e.names, s.Name())
				}
			}
		}
	}
	return e
}

// NumDynamic is the generated-feature count (1452).
func (e *Extractor) NumDynamic() int { return len(e.specs) }

// DynamicNames returns the generated feature names in vector order. The
// slice is shared; do not mutate.
func (e *Extractor) DynamicNames() []string { return e.names }

// Names returns static followed by dynamic names (the full F_{i,t*} order).
func (e *Extractor) Names() []string {
	out := make([]string, 0, NumStatic+len(e.names))
	out = append(out, StaticNames...)
	return append(out, e.names...)
}

// Specs exposes the registry (shared; do not mutate).
func (e *Extractor) Specs() []Spec { return e.specs }

// StaticVector encodes the 8 static features of an avail.
func StaticVector(a *domain.Avail) []float64 {
	return []float64{
		float64(a.ShipClass),
		float64(a.RMC),
		a.ShipAge,
		float64(a.PlannedDuration()),
		a.PlannedCost,
		float64(a.PriorAvails),
		float64(a.DockType),
		a.HomeportDist,
	}
}

// DynamicVector evaluates every generated feature at ts using the engine's
// single-pass cell statistics.
func (e *Extractor) DynamicVector(eng *statusq.Engine, ts float64) ([]float64, error) {
	// One cell map per status class.
	cellsByStatus := make(map[domain.RCCStatus]map[statusq.GroupKey]statusq.CellStats, 3)
	for _, st := range []domain.RCCStatus{domain.Active, domain.SettledStatus, domain.Created} {
		cells, err := eng.CellStatsAt(ts, st)
		if err != nil {
			return nil, err
		}
		cellsByStatus[st] = cells
	}
	total := eng.CreatedCount(ts)
	out := make([]float64, len(e.specs))
	// Cache merged cells per (status, type, subsystem) selection to avoid
	// re-merging for each of the 11 aggregates.
	type selKey struct {
		st  domain.RCCStatus
		typ int // -1 all
		sub int // -1 all
	}
	merged := make(map[selKey]statusq.CellStats)
	for i, s := range e.specs {
		tcode := -1
		if s.Type != nil {
			tcode = int(*s.Type)
		}
		k := selKey{st: s.Status, typ: tcode, sub: s.Subsystem}
		cell, ok := merged[k]
		if !ok {
			for gk, c := range cellsByStatus[s.Status] {
				if tcode >= 0 && int(gk.Type) != tcode {
					continue
				}
				if s.Subsystem >= 0 && gk.Subsystem != s.Subsystem {
					continue
				}
				cell = cell.Merge(c)
			}
			merged[k] = cell
		}
		out[i] = cell.Aggregate(s.Agg, total, ts)
	}
	return out, nil
}

// Vector concatenates static and dynamic features for one avail at ts.
func (e *Extractor) Vector(eng *statusq.Engine, ts float64) ([]float64, error) {
	dyn, err := e.DynamicVector(eng, ts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, NumStatic+len(dyn))
	out = append(out, StaticVector(eng.Avail())...)
	return append(out, dyn...), nil
}

// Tensor is the (avail × feature × t*) feature tensor of §3.1: one
// ml.Dataset slice per logical timestamp, rows aligned with Avails.
type Tensor struct {
	// Timestamps are the logical times of the slices, ascending.
	Timestamps []float64
	// Slices[k] is the dataset at Timestamps[k]; Slices[k].Y is the delay
	// vector (nil entries impossible — only closed avails are included).
	Slices []*ml.Dataset
	// Avails are the closed avails the rows describe, in row order.
	Avails []domain.Avail
}

// BuildTensor extracts the tensor for the given avails over a t* grid with
// spacing x percent (the "model gap interval" of Problem 1): timestamps
// 0, x, 2x, …, 100. Only closed avails are included, since training needs
// the delay label. Engines are built with the given index kind.
func BuildTensor(ext *Extractor, avails []domain.Avail, rccsByAvail map[int][]domain.RCC, x float64, kind index.Kind) (*Tensor, error) {
	if x <= 0 || x > 100 {
		return nil, fmt.Errorf("features: gap interval %f outside (0,100]", x)
	}
	var ts []float64
	for v := 0.0; v < 100; v += x {
		ts = append(ts, v)
	}
	ts = append(ts, 100)

	t := &Tensor{Timestamps: ts}
	names := ext.Names()
	for range ts {
		t.Slices = append(t.Slices, &ml.Dataset{Names: names})
	}
	for i := range avails {
		a := &avails[i]
		if a.Status != domain.StatusClosed {
			continue
		}
		delay, err := a.Delay()
		if err != nil {
			return nil, err
		}
		eng, err := statusq.NewEngine(a, rccsByAvail[a.ID], kind)
		if err != nil {
			return nil, fmt.Errorf("features: avail %d: %w", a.ID, err)
		}
		t.Avails = append(t.Avails, *a)
		for k, tstar := range ts {
			vec, err := ext.Vector(eng, tstar)
			if err != nil {
				return nil, fmt.Errorf("features: avail %d @%g: %w", a.ID, tstar, err)
			}
			t.Slices[k].X = append(t.Slices[k].X, vec)
			t.Slices[k].Y = append(t.Slices[k].Y, float64(delay))
		}
	}
	if len(t.Avails) == 0 {
		return nil, fmt.Errorf("features: no closed avails")
	}
	return t, nil
}

// NumAvails reports the tensor's row count.
func (t *Tensor) NumAvails() int { return len(t.Avails) }
