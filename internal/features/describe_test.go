package features

import (
	"math"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/statusq"
)

// TestParseNameRoundTrip: every registry name must parse back to a spec
// that renders the identical name.
func TestParseNameRoundTrip(t *testing.T) {
	e := NewExtractor()
	for i, s := range e.Specs() {
		name := e.DynamicNames()[i]
		back, err := ParseName(name)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", name, err)
		}
		if back.Name() != name {
			t.Fatalf("round trip %q -> %q", name, back.Name())
		}
		if back.Subsystem != s.Subsystem || back.Status != s.Status || back.Agg != s.Agg {
			t.Fatalf("spec mismatch for %q", name)
		}
		if (back.Type == nil) != (s.Type == nil) {
			t.Fatalf("type presence mismatch for %q", name)
		}
		if back.Type != nil && *back.Type != *s.Type {
			t.Fatalf("type mismatch for %q", name)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	bad := []string{
		"",
		"SHIP_CLASS",           // static, not generated
		"Q4-SETTLED_COUNT",     // unknown type
		"G44-SETTLED_COUNT",    // bad subsystem
		"G4-PENDING_COUNT",     // unknown status
		"G4-SETTLED_GEOMEAN",   // unknown aggregate
		"G4_SETTLED_COUNT",     // missing dash
		"GALL-SETTLED_",        // empty aggregate
		"NGX-CREATED_COUNT",    // bad subsystem char
		"ALLALL-ACTIVE_WRONGO", // unknown aggregate
	}
	for _, name := range bad {
		if _, err := ParseName(name); err == nil {
			t.Errorf("ParseName(%q): want error", name)
		}
	}
}

func TestDescribe(t *testing.T) {
	cases := []struct {
		name     string
		contains []string
	}{
		{"G4-SETTLED_AVG_SETTLED_AMT", []string{"average settled dollars", "Growth", "subsystem 4", "already settled"}},
		{"NWALL-ACTIVE_COUNT", []string{"number of RCCs", "New Work", "anywhere", "currently active"}},
		{"ALLALL-CREATED_COUNT", []string{"number of RCCs", "any type", "created so far"}},
		{"SHIP_AGE", []string{"ship age"}},
		{"STATIC_PRED", []string{"static model"}},
	}
	for _, c := range cases {
		got, err := Describe(c.name)
		if err != nil {
			t.Fatalf("Describe(%q): %v", c.name, err)
		}
		for _, want := range c.contains {
			if !strings.Contains(got, want) {
				t.Errorf("Describe(%q) = %q, missing %q", c.name, got, want)
			}
		}
	}
	if _, err := Describe("NOT_A_FEATURE"); err == nil {
		t.Error("unknown name: want error")
	}
}

func TestDescribeCoversEveryRegistryName(t *testing.T) {
	e := NewExtractor()
	for _, name := range e.Names() {
		desc, err := Describe(name)
		if err != nil {
			t.Fatalf("Describe(%q): %v", name, err)
		}
		if desc == "" {
			t.Fatalf("Describe(%q) empty", name)
		}
	}
}

func TestParseNameSpecific(t *testing.T) {
	spec, err := ParseName("NG7-ACTIVE_MAX_DUR")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Type == nil || *spec.Type != domain.NewGrowth {
		t.Error("type wrong")
	}
	if spec.Subsystem != 7 || spec.Status != domain.Active || spec.Agg != statusq.MaxDuration {
		t.Errorf("spec = %+v", spec)
	}
}

// TestEvalFeatureMatchesVector: the single-feature path must agree with the
// batched vector for every generated feature.
func TestEvalFeatureMatchesVector(t *testing.T) {
	eng := fixture(t)
	e := NewExtractor()
	for _, ts := range []float64{0, 30, 100} {
		vec, err := e.Vector(eng, ts)
		if err != nil {
			t.Fatal(err)
		}
		names := e.Names()
		// Spot-check a spread of generated features (every 97th plus the
		// hand-picked ones from the vector tests).
		for j := NumStatic; j < len(names); j += 97 {
			got, err := EvalFeature(eng, names[j], ts)
			if err != nil {
				t.Fatalf("EvalFeature(%q): %v", names[j], err)
			}
			if math.Abs(got-vec[j]) > 1e-9 {
				t.Fatalf("ts=%g %s: EvalFeature %f vs vector %f", ts, names[j], got, vec[j])
			}
		}
	}
	if _, err := EvalFeature(eng, "SHIP_AGE", 10); err == nil {
		t.Error("static name should error (not a Status Query)")
	}
}
