package features

import (
	"fmt"
	"strings"

	"domd/internal/domain"
	"domd/internal/statusq"
)

// Describe renders a feature name as the sentence an SME reviews when
// validating the top-5 drivers of a prediction (paper §5.2.5). It accepts
// static names, generated names like "G4-SETTLED_AVG_SETTLED_AMT", and the
// stacked architecture's synthetic "STATIC_PRED" input.
func Describe(name string) (string, error) {
	if desc, ok := staticDescriptions[name]; ok {
		return desc, nil
	}
	if name == "STATIC_PRED" {
		return "base delay prediction from the static model (stacked architecture)", nil
	}
	spec, err := ParseName(name)
	if err != nil {
		return "", err
	}
	typ := "of any type"
	if spec.Type != nil {
		typ = map[domain.RCCType]string{
			domain.Growth:    "of type Growth (upgrades to existing systems)",
			domain.NewWork:   "of type New Work (newly created systems)",
			domain.NewGrowth: "of type New Growth (distinct added components)",
		}[*spec.Type]
	}
	where := "anywhere on the ship"
	if spec.Subsystem >= 0 {
		where = fmt.Sprintf("in SWLIN subsystem %d", spec.Subsystem)
	}
	status := map[domain.RCCStatus]string{
		domain.Active:        "currently active (created but not yet settled)",
		domain.SettledStatus: "already settled",
		domain.Created:       "created so far",
	}[spec.Status]
	agg := map[statusq.Aggregate]string{
		statusq.Count:       "number of RCCs",
		statusq.SumAmount:   "total settled dollars of RCCs",
		statusq.AvgAmount:   "average settled dollars per RCC",
		statusq.MaxAmount:   "largest settled amount among RCCs",
		statusq.MinAmount:   "smallest settled amount among RCCs",
		statusq.StdAmount:   "dollar-amount spread (std dev) of RCCs",
		statusq.SumDuration: "total open-days of RCCs",
		statusq.AvgDuration: "average open-days per RCC",
		statusq.MaxDuration: "longest open interval among RCCs",
		statusq.Pct:         "share of visible RCCs that are RCCs",
		statusq.Rate:        "RCC arrival rate (count per % of plan) for RCCs",
	}[spec.Agg]
	return fmt.Sprintf("%s %s %s, %s", agg, typ, where, status), nil
}

var staticDescriptions = map[string]string{
	"SHIP_CLASS":       "ship hull class",
	"RMC_ID":           "regional maintenance center",
	"SHIP_AGE":         "ship age at planned start (years)",
	"PLANNED_DURATION": "planned maintenance duration (days)",
	"PLANNED_COST":     "planned contract cost (dollars)",
	"PRIOR_AVAILS":     "number of prior availabilities for this hull",
	"DOCK_TYPE":        "dry dock (1) vs pier-side (0)",
	"HOMEPORT_DIST":    "distance from homeport to the maintenance center (nmi)",
}

// EvalFeature evaluates a single named generated feature at logical time ts
// — the ad-hoc inspection path for SMEs drilling into one driver without
// materializing the full vector.
func EvalFeature(eng *statusq.Engine, name string, ts float64) (float64, error) {
	spec, err := ParseName(name)
	if err != nil {
		return 0, err
	}
	q := statusq.Query{Type: spec.Type, Status: spec.Status, Agg: spec.Agg}
	if spec.Subsystem >= 0 {
		q.SWLINPrefix = []int{spec.Subsystem}
	}
	return eng.Eval(ts, q)
}

// ParseName inverts Spec.Name: "G4-SETTLED_AVG_SETTLED_AMT" → its Spec.
func ParseName(name string) (Spec, error) {
	dash := strings.IndexByte(name, '-')
	if dash < 0 {
		return Spec{}, fmt.Errorf("features: %q is not a generated feature name", name)
	}
	head, tail := name[:dash], name[dash+1:]

	spec := Spec{Subsystem: -1}
	// Head: type prefix (G | NW | NG | ALL) followed by subsystem (digit
	// or ALL).
	var rest string
	switch {
	case strings.HasPrefix(head, "ALL"):
		rest = head[3:]
	case strings.HasPrefix(head, "NW"):
		t := domain.NewWork
		spec.Type = &t
		rest = head[2:]
	case strings.HasPrefix(head, "NG"):
		t := domain.NewGrowth
		spec.Type = &t
		rest = head[2:]
	case strings.HasPrefix(head, "G"):
		t := domain.Growth
		spec.Type = &t
		rest = head[1:]
	default:
		return Spec{}, fmt.Errorf("features: unknown type prefix in %q", name)
	}
	switch {
	case rest == "ALL":
		spec.Subsystem = -1
	case len(rest) == 1 && rest[0] >= '0' && rest[0] <= '9':
		spec.Subsystem = int(rest[0] - '0')
	default:
		return Spec{}, fmt.Errorf("features: bad subsystem %q in %q", rest, name)
	}

	// Tail: STATUS_AGG.
	found := false
	for _, st := range []domain.RCCStatus{domain.Active, domain.SettledStatus, domain.Created} {
		prefix := st.String() + "_"
		if strings.HasPrefix(tail, prefix) {
			spec.Status = st
			tail = tail[len(prefix):]
			found = true
			break
		}
	}
	if !found {
		return Spec{}, fmt.Errorf("features: missing status in %q", name)
	}
	for agg := statusq.Aggregate(0); agg < statusq.NumAggregates; agg++ {
		if tail == agg.String() {
			spec.Agg = agg
			return spec, nil
		}
	}
	return Spec{}, fmt.Errorf("features: unknown aggregate %q in %q", tail, name)
}
