package features

import "domd/internal/obs"

// Tensor-build metrics, registered process-wide in obs.Default and
// exposed on GET /metrics (catalog: docs/OPERATIONS.md). Durations come
// from obs stopwatches because the walltime lint invariant bans direct
// time.Now calls in this package.
var (
	mTensorBuilds = obs.NewCounter("domd_tensor_builds_total",
		"Feature-tensor builds completed (BuildTensorOpt).")
	mTensorBuildSeconds = obs.NewHistogram("domd_tensor_build_duration_seconds",
		"Feature-tensor build latency in seconds.", obs.DefBuckets)
	mTensorRows = obs.NewCounter("domd_tensor_build_rows_total",
		"Feature vectors extracted across tensor builds (avail rows x timestamps).")
	mTensorWorkers = obs.NewGauge("domd_tensor_build_workers",
		"Worker-pool size of the most recent tensor build (utilization denominator).")
)
