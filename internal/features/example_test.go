package features_test

import (
	"fmt"

	"domd/internal/features"
)

// The generated-feature registry follows the paper's naming scheme
// ("G1-AVG_SETTLED_AMT" with an explicit status segment); Describe renders
// the SME-facing sentence for any feature.
func ExampleDescribe() {
	desc, err := features.Describe("G4-SETTLED_AVG_SETTLED_AMT")
	if err != nil {
		panic(err)
	}
	fmt.Println(desc)
	// Output: average settled dollars per RCC of type Growth (upgrades to existing systems) in SWLIN subsystem 4, already settled
}

func ExampleNewExtractor() {
	ext := features.NewExtractor()
	fmt.Println(len(features.StaticNames), ext.NumDynamic(), len(ext.Names()))
	// Output: 8 1452 1460
}
