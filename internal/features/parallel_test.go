package features

import (
	"math"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/statusq"
)

// assertTensorsBitwiseEqual compares two tensors slice by slice, value by
// value, with == (no tolerance): the sweep and scratch paths accumulate in
// the same canonical event order, so their float results must be identical
// bit patterns.
func assertTensorsBitwiseEqual(t *testing.T, label string, a, b *Tensor) {
	t.Helper()
	if len(a.Timestamps) != len(b.Timestamps) || len(a.Slices) != len(b.Slices) || len(a.Avails) != len(b.Avails) {
		t.Fatalf("%s: shape mismatch: %d/%d/%d vs %d/%d/%d", label,
			len(a.Timestamps), len(a.Slices), len(a.Avails),
			len(b.Timestamps), len(b.Slices), len(b.Avails))
	}
	for i := range a.Timestamps {
		if a.Timestamps[i] != b.Timestamps[i] {
			t.Fatalf("%s: timestamp %d: %v vs %v", label, i, a.Timestamps[i], b.Timestamps[i])
		}
	}
	for i := range a.Avails {
		if a.Avails[i].ID != b.Avails[i].ID {
			t.Fatalf("%s: row %d avail %d vs %d", label, i, a.Avails[i].ID, b.Avails[i].ID)
		}
	}
	for k := range a.Slices {
		sa, sb := a.Slices[k], b.Slices[k]
		if len(sa.X) != len(sb.X) || len(sa.Y) != len(sb.Y) {
			t.Fatalf("%s: slice %d row counts differ", label, k)
		}
		for r := range sa.X {
			if sa.Y[r] != sb.Y[r] {
				t.Fatalf("%s: slice %d row %d label %v vs %v", label, k, r, sa.Y[r], sb.Y[r])
			}
			for c := range sa.X[r] {
				va, vb := sa.X[r][c], sb.X[r][c]
				if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
					t.Fatalf("%s: slice %d row %d col %d (%s): %v (%x) vs %v (%x)",
						label, k, r, c, sa.Names[c],
						va, math.Float64bits(va), vb, math.Float64bits(vb))
				}
			}
		}
	}
}

// TestBuildTensorDifferential builds the tensor three ways on
// navsim-generated data — the old per-timestamp from-scratch path, the new
// sweep path serially, and the new sweep path in parallel — and asserts
// bitwise-equal slices. The fractional gap lands grid points inside empty
// windows, and navsim data includes avails whose groups are fully settled
// well before t*=100 (the Active min/max edge cases), plus the ts=0 and
// ts=100 boundaries present on every grid.
func TestBuildTensorDifferential(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 16, NumOngoing: 2, MeanRCCsPerAvail: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ext := NewExtractor()
	for _, gap := range []float64{12.5, 33} {
		scratch, err := BuildTensorScratch(ext, ds.Avails, ds.RCCsByAvail(), gap, index.KindAVL)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := BuildTensorOpt(ext, ds.Avails, ds.RCCsByAvail(), gap, index.KindAVL, TensorOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := BuildTensorOpt(ext, ds.Avails, ds.RCCsByAvail(), gap, index.KindAVL, TensorOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		assertTensorsBitwiseEqual(t, "scratch-vs-serial", scratch, serial)
		assertTensorsBitwiseEqual(t, "serial-vs-parallel", serial, parallel)
	}
}

// TestBuildTensorParallelDisjointRows drives the worker pool with more
// workers than rows and with contention (run under -race via the ci
// target): every (slice, row) cell must be written exactly once, by the
// worker owning that row.
func TestBuildTensorParallelDisjointRows(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 10, NumOngoing: 1, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ext := NewExtractor()
	tensor, err := BuildTensorOpt(ext, ds.Avails, ds.RCCsByAvail(), 10, index.KindAVL, TensorOptions{Workers: 32})
	if err != nil {
		t.Fatal(err)
	}
	for k, slice := range tensor.Slices {
		if err := slice.Validate(); err != nil {
			t.Fatalf("slice %d invalid: %v", k, err)
		}
		for r, vec := range slice.X {
			if vec == nil {
				t.Fatalf("slice %d row %d never written", k, r)
			}
			if len(vec) != NumStatic+ext.NumDynamic() {
				t.Fatalf("slice %d row %d len %d", k, r, len(vec))
			}
		}
	}
}

// TestDynamicVectorIntoMatchesScratch checks the zero-alloc sweep variant
// against the scratch variant at every grid point, and that the sweep
// rejects out-of-order timestamps while scratch accepts them.
func TestDynamicVectorIntoMatchesScratch(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 4, NumOngoing: 0, MeanRCCsPerAvail: 120, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ext := NewExtractor()
	byAvail := ds.RCCsByAvail()
	a := &ds.Avails[0]
	sw, err := statusq.NewCellSweep(a, byAvail[a.ID])
	if err != nil {
		t.Fatal(err)
	}
	eng, err := statusq.NewEngine(a, byAvail[a.ID], index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, ext.NumDynamic())
	want := make([]float64, ext.NumDynamic())
	for ts := 0.0; ts <= 100; ts += 5 {
		if err := ext.DynamicVectorInto(got, sw, ts); err != nil {
			t.Fatal(err)
		}
		if err := ext.DynamicVectorScratch(want, eng, ts); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ts=%g feature %s: sweep %v != scratch %v", ts, ext.DynamicNames()[i], got[i], want[i])
			}
		}
	}
	if err := ext.DynamicVectorInto(got, sw, 10); err == nil {
		t.Error("backwards sweep timestamp: want error")
	}
	if err := ext.DynamicVectorScratch(want, eng, 10); err != nil {
		t.Errorf("scratch path must accept arbitrary timestamp order: %v", err)
	}
	if err := ext.DynamicVectorInto(got[:5], sw, 100); err == nil {
		t.Error("short dst: want error")
	}
}

// TestBuildTensorScratchRejectsBadInput mirrors the error contract of the
// main build on the reference path.
func TestBuildTensorScratchRejectsBadInput(t *testing.T) {
	ext := NewExtractor()
	if _, err := BuildTensorScratch(ext, nil, nil, 0, index.KindAVL); err == nil {
		t.Error("gap 0: want error")
	}
	ongoing := []domain.Avail{{ID: 1, Status: domain.StatusOngoing, PlanStart: 0, PlanEnd: 10, ActStart: 0}}
	if _, err := BuildTensorScratch(ext, ongoing, nil, 10, index.KindAVL); err == nil {
		t.Error("no closed avails: want error")
	}
}

// TestBuildTensorUnknownKind: the index kind is still validated even though
// the sweep path materializes no per-avail index.
func TestBuildTensorUnknownKind(t *testing.T) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 4, NumOngoing: 0, MeanRCCsPerAvail: 10, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTensor(NewExtractor(), ds.Avails, ds.RCCsByAvail(), 20, index.Kind("bogus")); err == nil {
		t.Error("unknown index kind: want error")
	}
}

// TestTimestampGridNoDrift is the regression test for the float-accumulation
// grid bug: with fractional gaps, repeated `v += x` drifted so the loop
// emitted a near-duplicate point next to the appended 100. Integer stepping
// must yield exactly ⌈100/x⌉ interior points, strictly increasing, with no
// two points closer than half a gap.
func TestTimestampGridNoDrift(t *testing.T) {
	cases := []struct {
		x    float64
		want int // total grid points including the terminal 100
	}{
		{0.1, 1001},
		{0.2, 501},
		{5, 21},
		{10, 11},
		{33, 5},
		{100, 2},
	}
	for _, c := range cases {
		ts := TimestampGrid(c.x)
		if len(ts) != c.want {
			t.Errorf("x=%g: %d grid points, want %d (tail %v)", c.x, len(ts), c.want, ts[max(0, len(ts)-3):])
			continue
		}
		if ts[0] != 0 || ts[len(ts)-1] != 100 {
			t.Errorf("x=%g: grid must span [0,100], got [%g,%g]", c.x, ts[0], ts[len(ts)-1])
		}
		// Interior spacing is exactly i·x steps; the terminal gap to the
		// appended 100 may be shorter (e.g. 99 → 100 at x=33) but must
		// never collapse into the near-duplicate the drifting accumulator
		// produced (~1e-11 at x=0.1).
		for i := 1; i < len(ts); i++ {
			if d := ts[i] - ts[i-1]; d < 1e-6 {
				t.Errorf("x=%g: near-duplicate points %v and %v (gap %g)", c.x, ts[i-1], ts[i], d)
			}
		}
		for i := 1; i < len(ts)-1; i++ {
			if math.Abs(ts[i]-float64(i)*c.x) > 1e-9 {
				t.Errorf("x=%g: interior point %d drifted to %v, want %v", c.x, i, ts[i], float64(i)*c.x)
			}
		}
	}
}
