package features

import (
	"math"
	"testing"
)

// TestDeterministicOrdering is the detrange regression gate: the feature
// registry is built by nested slice loops (never a map sweep), so two
// independent builds must agree on name order, and two independent
// evaluations of the same avail must agree bitwise position-by-position.
// If registry construction ever regresses into ranging over a map, this
// fails on the first mismatched run.
func TestDeterministicOrdering(t *testing.T) {
	e1, e2 := NewExtractor(), NewExtractor()
	n1, n2 := e1.Names(), e2.Names()
	if len(n1) != len(n2) {
		t.Fatalf("name counts differ across builds: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("feature %d named %q in one build, %q in another", i, n1[i], n2[i])
		}
	}

	v1, err := e1.DynamicVector(fixture(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e2.DynamicVector(fixture(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != len(v2) {
		t.Fatalf("vector lengths differ: %d vs %d", len(v1), len(v2))
	}
	nonzero := 0
	for i := range v1 {
		if math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
			t.Fatalf("feature %d (%s) differs bitwise across identical builds: %v vs %v",
				i, e1.DynamicNames()[i], v1[i], v2[i])
		}
		if v1[i] != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("fixture produced an all-zero vector; the comparison proves nothing")
	}
}
