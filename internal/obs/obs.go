// Package obs is the serving system's observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), a Prometheus-text-format exposition endpoint, per-request
// trace spans, and the wall-clock helpers instrumented packages use so
// that pipeline code never calls time.Now directly (the walltime lint
// invariant — see DESIGN.md §7 — bans ambient clocks from pipeline
// packages; obs owns the clock instead).
//
// # Registry
//
// Metrics are registered once, typically in package-level var blocks of
// the instrumented package, against the process-wide Default registry:
//
//	var mBuilds = obs.NewCounter("domd_engine_builds_total",
//		"Status Query engine constructions.")
//
// and updated on hot paths with a single atomic operation (Inc, Add,
// Set, Observe). Labeled families (NewCounterVec, NewHistogramVec)
// resolve a label tuple to its series with With, which callers should do
// once per request, not per operation. Registering the same name twice
// panics: metric names are a process-wide API surface and a collision is
// a programming error, caught at init.
//
// # Exposition
//
// Handler (or Registry.WriteText) serves the registry in the Prometheus
// text format (version 0.0.4). Output is deterministic: families sort by
// name, series by label values, and histogram buckets are cumulative
// with a terminal +Inf — two scrapes with no traffic in between are
// byte-identical. ParseText is the matching minimal parser, used by the
// metrics test suites and available to callers that scrape themselves.
//
// # Tracing and timing
//
// Span (see trace.go) carries one request's trace — id, route, status,
// duration, plus handler-set attributes such as engine asOf/stale — and
// renders it as a single structured log line through whatever
// *log.Logger the server already owns. StartTimer returns a Stopwatch
// for measuring durations in packages where calling time.Now directly is
// banned by lint.
//
// The full metric catalog with meanings is docs/OPERATIONS.md.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricNameRe is the Prometheus metric-name grammar; label names use the
// same form without colons.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

var labelNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond index hits to multi-second cold builds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry holds metric families and renders deterministic snapshots.
// All methods are safe for concurrent use; the zero value is not usable —
// construct with NewRegistry.
type Registry struct {
	mu       sync.RWMutex // guards families
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code uses the process-wide
// Default instead; separate registries exist for tests that need
// isolation from process-global series.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every NewCounter/NewGauge/...
// package-level helper registers into, and the one Handler serves.
var Default = NewRegistry()

// family is one named metric with a fixed label schema and one series per
// observed label tuple.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex // guards series
	series map[string]*series
}

// series is one (family, label values) time series. Exactly one of the
// value/histogram fields is live, per the family kind.
type series struct {
	labelValues []string
	val         atomic.Int64   // counter, gauge
	bucketN     []atomic.Int64 // histogram: per-bucket (non-cumulative), last is +Inf
	sumBits     atomic.Uint64  // histogram: float64 bits of the running sum
}

// register installs a new family or panics on any collision or schema
// error; registration happens at package init, where a panic is an
// immediate, attributable build-time failure rather than silent aliasing.
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	if k == kindHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds must be sorted ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// with resolves (creating on first use) the series for one label tuple.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			s.bucketN = make([]atomic.Int64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing count of events. All methods are
// one atomic instruction and safe for concurrent use.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter Add with negative delta")
	}
	c.s.val.Add(n)
}

// Value reads the current count (test and snapshot hook).
func (c *Counter) Value() int64 { return c.s.val.Load() }

// Gauge is a value that can go up and down (in-flight requests, pool
// sizes). All methods are one atomic instruction.
type Gauge struct{ s *series }

// Inc adds one.
func (g *Gauge) Inc() { g.s.val.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.s.val.Add(-1) }

// Add adds n (negative deltas allowed).
func (g *Gauge) Add(n int64) { g.s.val.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.s.val.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.s.val.Load() }

// Histogram is a fixed-bucket distribution (latencies, sizes). Observe
// is lock-free: one atomic bucket increment plus a CAS loop on the sum.
type Histogram struct {
	f *family
	s *series
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v owns the observation; beyond every bound it lands
	// in the implicit +Inf bucket at the end.
	i := sort.SearchFloat64s(h.f.buckets, v)
	h.s.bucketN[i].Add(1)
	for {
		old := h.s.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.s.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// ObserveSince records the elapsed time of sw in seconds — the idiom for
// duration histograms in packages that must not call time.Now directly.
func (h *Histogram) ObserveSince(sw Stopwatch) { h.Observe(sw.Seconds()) }

// Count reports the total number of observations (test hook).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.s.bucketN {
		n += h.s.bucketN[i].Load()
	}
	return n
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (order matches the
// labels passed at registration), creating the series on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.with(values)}
}

// GaugeVec is a gauge family with labels; With resolves one series.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.with(values)}
}

// HistogramVec is a histogram family with labels; With resolves one
// series.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.with(values)}
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return &Counter{s: f.with(nil)}
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return &Gauge{s: f.with(nil)}
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// NewHistogram registers an unlabeled histogram with the given ascending
// bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	return &Histogram{f: f, s: f.with(nil)}
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// NewCounter registers an unlabeled counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewCounterVec registers a labeled counter family on the Default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// NewGauge registers an unlabeled gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeVec registers a labeled gauge family on the Default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labels...)
}

// NewHistogram registers an unlabeled histogram on the Default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.NewHistogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family on the Default
// registry.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, buckets, labels...)
}
