package obs_test

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"

	"domd/internal/obs"
)

var traceLineRe = regexp.MustCompile(
	`^trace id=[0-9a-f]{8}-\d{6} method=GET route=/query status=200 dur_ms=\d+\.\d{3}`)

// TestSpanLine pins the structured trace-line grammar handlers and
// operators grep for, including attribute ordering and quoting.
func TestSpanLine(t *testing.T) {
	s := obs.NewSpan("GET", "/query")
	s.SetInt("asOf", 3)
	s.SetBool("stale", true)
	s.Set("outcome", "engine build failed")
	line := s.Line(200)
	if !traceLineRe.MatchString(line) {
		t.Errorf("trace line %q does not match the documented grammar", line)
	}
	if !strings.Contains(line, " asOf=3 stale=true ") {
		t.Errorf("attributes missing or out of order: %q", line)
	}
	if !strings.Contains(line, `outcome="engine build failed"`) {
		t.Errorf("value with spaces not quoted: %q", line)
	}
}

// TestSpanIDsUnique: ids must differ between requests in one process.
func TestSpanIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := obs.NewSpan("GET", "/fleet").ID
		if seen[id] {
			t.Fatalf("duplicate span id %s", id)
		}
		seen[id] = true
	}
}

// TestSpanContextRoundTrip: WithSpan/FromContext carry the span, and an
// untraced context yields nil.
func TestSpanContextRoundTrip(t *testing.T) {
	if obs.FromContext(context.Background()) != nil {
		t.Error("untraced context returned a span")
	}
	s := obs.NewSpan("POST", "/rccs")
	ctx := obs.WithSpan(context.Background(), s)
	if got := obs.FromContext(ctx); got != s {
		t.Errorf("FromContext = %v, want the installed span", got)
	}
}

// TestSpanConcurrentAnnotation mirrors the /fleet fan-out: many
// goroutines annotating one span must be race-free (the -race gate) and
// lose no attribute.
func TestSpanConcurrentAnnotation(t *testing.T) {
	s := obs.NewSpan("GET", "/fleet")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.SetInt("row", int64(i))
		}(i)
	}
	wg.Wait()
	if got := strings.Count(s.Line(200), " row="); got != 32 {
		t.Errorf("%d row attributes, want 32", got)
	}
}

// TestStopwatchZero: the zero Stopwatch reads as zero rather than as a
// huge since-epoch duration.
func TestStopwatchZero(t *testing.T) {
	var sw obs.Stopwatch
	if sw.Seconds() != 0 || sw.Duration() != 0 {
		t.Errorf("zero stopwatch = %v / %v, want 0", sw.Seconds(), sw.Duration())
	}
	if obs.StartTimer().Seconds() < 0 {
		t.Error("running stopwatch went negative")
	}
}
