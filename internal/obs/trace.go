package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stopwatch measures a wall-clock duration on behalf of packages where
// the walltime lint invariant bans time.Now (statusq, features, …):
// obs owns the only ambient clock, and instrumented code deals in opaque
// stopwatches. The zero Stopwatch reads as a zero duration.
type Stopwatch struct{ start time.Time }

// StartTimer starts a stopwatch at the current wall-clock time.
func StartTimer() Stopwatch { return Stopwatch{start: time.Now()} }

// Seconds reports the elapsed time in seconds.
func (s Stopwatch) Seconds() float64 {
	if s.start.IsZero() {
		return 0
	}
	return time.Since(s.start).Seconds()
}

// Duration reports the elapsed time.
func (s Stopwatch) Duration() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	return time.Since(s.start)
}

// procID is a per-process random prefix baked into request ids so that
// ids from different processes (or restarts) never collide in aggregated
// logs; spanSeq distinguishes requests within the process.
var (
	procID  = newProcID()
	spanSeq atomic.Uint64
)

// newProcID draws four random bytes; on the (never observed) failure of
// the system randomness source it degrades to a fixed prefix rather than
// refusing to serve — ids are a log-correlation aid, not a security
// boundary.
func newProcID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// Attr is one key/value annotation on a Span.
type Attr struct {
	Key   string
	Value string
}

// Span is one request's trace: identity (id, method, route), outcome
// (status, duration), and handler-set attributes such as the answering
// engine's asOf/stale markers or a shed/panic outcome. Handlers retrieve
// the active span with FromContext and annotate it with Set*; the server
// middleware emits the finished span as one structured log line (Line)
// through the request logger. Attrs appends are safe for concurrent use
// (a /fleet fan-out annotates from many goroutines).
type Span struct {
	// ID is the request id: <process hex>-<per-process sequence>.
	ID string
	// Method and Route identify the request; Route is the bounded route
	// label, not the raw URL.
	Method string
	Route  string

	sw Stopwatch

	mu    sync.Mutex // guards attrs
	attrs []Attr
}

// NewSpan starts a span (and its stopwatch) for one request.
func NewSpan(method, route string) *Span {
	return &Span{
		ID:     fmt.Sprintf("%s-%06d", procID, spanSeq.Add(1)),
		Method: method,
		Route:  route,
		sw:     StartTimer(),
	}
}

// Elapsed reports the time since the span started — the same duration
// Line renders, exposed so callers can feed one consistent number into a
// latency histogram.
func (s *Span) Elapsed() time.Duration { return s.sw.Duration() }

// Set appends one string attribute. Keys repeat in emission order; the
// reader sees annotations in the order handlers made them.
func (s *Span) Set(key, value string) {
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt appends one integer attribute.
func (s *Span) SetInt(key string, v int64) { s.Set(key, strconv.FormatInt(v, 10)) }

// SetBool appends one boolean attribute.
func (s *Span) SetBool(key string, v bool) { s.Set(key, strconv.FormatBool(v)) }

// Line renders the finished span as one structured key=value log line:
//
//	trace id=3f2a9c1b-000042 method=GET route=/query status=200 dur_ms=1.234 asOf=3 stale=false
//
// Values containing spaces or quotes are rendered with %q so the line
// stays machine-splittable on spaces.
func (s *Span) Line(status int) string {
	var sb strings.Builder
	sb.WriteString("trace id=")
	sb.WriteString(s.ID)
	sb.WriteString(" method=")
	sb.WriteString(s.Method)
	sb.WriteString(" route=")
	sb.WriteString(s.Route)
	sb.WriteString(" status=")
	sb.WriteString(strconv.Itoa(status))
	sb.WriteString(" dur_ms=")
	sb.WriteString(strconv.FormatFloat(s.sw.Seconds()*1e3, 'f', 3, 64))
	s.mu.Lock()
	attrs := s.attrs
	s.mu.Unlock()
	for _, a := range attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		if strings.ContainsAny(a.Value, " \"\n") || a.Value == "" {
			sb.WriteString(strconv.Quote(a.Value))
		} else {
			sb.WriteString(a.Value)
		}
	}
	return sb.String()
}

// ctxKey keys the active span in a request context.
type ctxKey struct{}

// WithSpan returns ctx carrying the span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when the request is not
// traced (callers must nil-check or use the Set* helpers on a nil-safe
// wrapper of their own).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
