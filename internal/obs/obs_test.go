package obs_test

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"domd/internal/obs"
)

// TestHistogramBucketBoundaries pins the bucket semantics: an observation
// lands in the first bucket whose bound is >= the value (le is
// inclusive), rendered buckets are cumulative, and everything beyond the
// last bound lands only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := obs.NewRegistry()
	h := r.NewHistogram("h_seconds", "test", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.2, 1.0, 5, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`h_seconds_bucket{le="0.1"}`:  2, // 0.05 and the boundary value 0.1
		`h_seconds_bucket{le="1"}`:    4, // + 0.2, 1.0
		`h_seconds_bucket{le="10"}`:   5, // + 5
		`h_seconds_bucket{le="+Inf"}`: 6, // + 100
		`h_seconds_count`:             6,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %g, want %g", k, samples[k], v)
		}
	}
	wantSum := 0.05 + 0.1 + 0.2 + 1.0 + 5 + 100
	if math.Abs(samples["h_seconds_sum"]-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", samples["h_seconds_sum"], wantSum)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
}

// TestConcurrentIncrements hammers a counter, a gauge, and a histogram
// from many goroutines; run under -race this is the data-race gate, and
// the final values prove no increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := obs.NewRegistry()
	c := r.NewCounter("c_total", "test")
	g := r.NewGauge("g", "test")
	h := r.NewHistogram("h_seconds", "test", obs.DefBuckets)
	vec := r.NewCounterVec("v_total", "test", "route")

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(float64(i%7) * 0.001)
				vec.With("/query").Inc()
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("/query").Value(); got != workers*perWorker {
		t.Errorf("vec counter = %d, want %d", got, workers*perWorker)
	}
}

// TestTextFormatValid scrapes a registry with every metric kind and label
// shape through the ParseText checker: HELP/TYPE grammar, type-known
// families, well-formed samples, no duplicate series.
func TestTextFormatValid(t *testing.T) {
	r := obs.NewRegistry()
	r.NewCounter("a_total", "counts a").Add(3)
	r.NewGauge("b_inflight", "gauges b").Set(-2)
	r.NewCounterVec("c_total", "labeled counter", "route", "code").With("/fleet", "200").Inc()
	r.NewHistogramVec("d_seconds", `latency with "quotes" and \slashes`, []float64{0.5}, "route").
		With("/query").Observe(0.25)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	checks := map[string]float64{
		`a_total`:                            3,
		`b_inflight`:                         -2,
		`c_total{route="/fleet",code="200"}`: 1,
		`d_seconds_bucket{route="/query",le="0.5"}`:  1,
		`d_seconds_bucket{route="/query",le="+Inf"}`: 1,
		`d_seconds_count{route="/query"}`:            1,
	}
	for k, v := range checks {
		got, ok := samples[k]
		if !ok {
			t.Errorf("series %s missing from exposition", k)
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", k, got, v)
		}
	}
}

// TestSnapshotDeterminism: two scrapes with no traffic in between are
// byte-identical, regardless of the (map-ordered) registration and
// observation history.
func TestSnapshotDeterminism(t *testing.T) {
	r := obs.NewRegistry()
	vec := r.NewCounterVec("z_total", "test", "route")
	for _, route := range []string{"/c", "/a", "/b"} {
		vec.With(route).Inc()
	}
	r.NewHistogram("m_seconds", "test", []float64{1, 2}).Observe(1.5)
	r.NewGauge("a_gauge", "test").Set(7)

	var first, second bytes.Buffer
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("scrapes differ:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
	// Families must appear in sorted order so diffs between scrapes are
	// stable for operators, not just for this process.
	text := first.String()
	ia := strings.Index(text, "# TYPE a_gauge")
	im := strings.Index(text, "# TYPE m_seconds")
	iz := strings.Index(text, "# TYPE z_total")
	if !(ia >= 0 && ia < im && im < iz) {
		t.Errorf("families not sorted by name:\n%s", text)
	}
	// Series within a family sort by label value.
	if !(strings.Index(text, `z_total{route="/a"}`) < strings.Index(text, `z_total{route="/b"}`) &&
		strings.Index(text, `z_total{route="/b"}`) < strings.Index(text, `z_total{route="/c"}`)) {
		t.Errorf("series not sorted by label values:\n%s", text)
	}
}

// TestParseTextRejects covers the checker's own teeth: missing TYPE,
// unknown kind, malformed samples, duplicate series.
func TestParseTextRejects(t *testing.T) {
	bad := []string{
		"a_total 1",                                    // sample before TYPE
		"# TYPE a_total sparkline\na_total 1",          // unknown kind
		"# TYPE a_total counter\na_total one",          // non-numeric value
		"# TYPE a_total counter\na_total 1\na_total 1", // duplicate series
		"# HELPa_total x",                              // malformed comment
	}
	for _, text := range bad {
		if _, err := obs.ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("ParseText accepted invalid exposition %q", text)
		}
	}
	good := "# HELP a_total ok\n# TYPE a_total counter\na_total 41\n"
	samples, err := obs.ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseText rejected valid exposition: %v", err)
	}
	if samples["a_total"] != 41 {
		t.Errorf("a_total = %g, want 41", samples["a_total"])
	}
}

// TestRegistrationPanics: name collisions and malformed schemas are
// caught at registration (init) time, not at scrape time.
func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *obs.Registry){
		"duplicate name": func(r *obs.Registry) {
			r.NewCounter("x_total", "a")
			r.NewGauge("x_total", "b")
		},
		"bad metric name": func(r *obs.Registry) { r.NewCounter("0bad", "x") },
		"reserved le label": func(r *obs.Registry) {
			r.NewHistogramVec("h_seconds", "x", []float64{1}, "le")
		},
		"unsorted buckets": func(r *obs.Registry) {
			r.NewHistogram("h_seconds", "x", []float64{2, 1})
		},
		"label arity": func(r *obs.Registry) {
			r.NewCounterVec("x_total", "x", "route").With("a", "b").Inc()
		},
		"negative counter add": func(r *obs.Registry) {
			r.NewCounter("x_total", "x").Add(-1)
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(obs.NewRegistry())
		}()
	}
}
