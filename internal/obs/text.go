package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Label is one label name/value pair of a snapshot series.
type Label struct {
	Name  string
	Value string
}

// SeriesSnapshot is one series of a FamilySnapshot at scrape time.
// Counters and gauges fill Value; histograms fill Buckets (cumulative,
// ending with the +Inf bucket, whose bound is math.Inf(1)), Sum, and
// Count.
type SeriesSnapshot struct {
	Labels  []Label
	Value   float64
	Buckets []BucketCount
	Sum     float64
	Count   int64
}

// BucketCount is one cumulative histogram bucket: the number of
// observations less than or equal to UpperBound.
type BucketCount struct {
	UpperBound float64
	Count      int64
}

// FamilySnapshot is one metric family at scrape time: metadata plus its
// series sorted by label values.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   string // "counter", "gauge", or "histogram"
	Labels []string
	Series []SeriesSnapshot
}

// Snapshot captures every family deterministically: families sort by
// name, series by label-value tuple, histogram buckets are cumulative.
// Individual values are read atomically; a scrape concurrent with
// traffic may observe different series at slightly different instants,
// which Prometheus-style monitoring tolerates by design.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Type:   string(f.kind),
			Labels: append([]string(nil), f.labels...),
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{}
			for i, lv := range s.labelValues {
				ss.Labels = append(ss.Labels, Label{Name: f.labels[i], Value: lv})
			}
			if f.kind == kindHistogram {
				var cum int64
				for i := range s.bucketN {
					cum += s.bucketN[i].Load()
					bound := math.Inf(1)
					if i < len(f.buckets) {
						bound = f.buckets[i]
					}
					ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: bound, Count: cum})
				}
				ss.Count = cum
				ss.Sum = math.Float64frombits(s.sumBits.Load())
			} else {
				ss.Value = float64(s.val.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4). The rendering is deterministic — see Snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	for _, fs := range r.Snapshot() {
		if fs.Help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help))
		}
		fmt.Fprintf(&buf, "# TYPE %s %s\n", fs.Name, fs.Type)
		for _, s := range fs.Series {
			base := renderLabels(s.Labels)
			if fs.Type == string(kindHistogram) {
				for _, b := range s.Buckets {
					fmt.Fprintf(&buf, "%s_bucket%s %d\n",
						fs.Name, renderLabels(append(append([]Label(nil), s.Labels...),
							Label{Name: "le", Value: formatBound(b.UpperBound)})), b.Count)
				}
				fmt.Fprintf(&buf, "%s_sum%s %s\n", fs.Name, base, formatValue(s.Sum))
				fmt.Fprintf(&buf, "%s_count%s %d\n", fs.Name, base, s.Count)
			} else {
				fmt.Fprintf(&buf, "%s%s %s\n", fs.Name, base, formatValue(s.Value))
			}
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// renderLabels renders `{a="x",b="y"}`, or "" for an unlabeled series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the exposition-format label escapes.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp applies the exposition-format HELP escapes.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}

// formatBound renders a histogram bucket bound, "+Inf" for the terminal
// bucket.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// formatValue renders a sample value in the shortest exact form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as GET /metrics content.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			// Headers are out; nothing to send the client. The scrape is
			// simply short and the next one retries.
			return
		}
	})
}

// Handler serves the Default registry as GET /metrics content.
func Handler() http.Handler { return Default.Handler() }

var sampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+\-]+|\+Inf|-Inf|NaN)$`)

// ParseText parses Prometheus text-format exposition into a map from
// rendered series (name plus label block, exactly as exposed, e.g.
// `domd_http_requests_total{code="200",method="GET",route="/query"}`)
// to sample value. It validates the subset of the format WriteText
// emits — HELP/TYPE comment grammar, TYPE-before-samples ordering, known
// types, well-formed samples — and is the checker the metrics test
// suites scrape with.
func ParseText(rd io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	typed := map[string]string{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("obs: line %d: malformed comment %q", line, text)
			}
			if !metricNameRe.MatchString(fields[2]) {
				return nil, fmt.Errorf("obs: line %d: bad metric name %q", line, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: TYPE missing kind", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", line, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", line, text)
		}
		name := m[1]
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[fam]; !ok {
			if _, ok := typed[name]; !ok {
				return nil, fmt.Errorf("obs: line %d: sample %q precedes its TYPE line", line, name)
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", line, m[3], err)
		}
		key := name + m[2]
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate series %q", line, key)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan: %w", err)
	}
	return out, nil
}
