// Package obfuscate implements the CUI data-protection stage of the paper's
// deployment story (§1): the pipeline is developed against an obfuscated
// export of the Navy Maintenance Database and later "retrains on raw data in
// the Navy environment without human intervention". That only works if
// obfuscation preserves every relationship the pipeline learns from, so the
// transform here is structure-preserving and keyed:
//
//   - identifiers (avail, ship, RCC) are remapped through keyed permutations;
//   - all dates are shifted by a single global offset, preserving every
//     duration, delay and logical-time relationship exactly;
//   - dollar amounts are scaled by a single positive factor, preserving
//     ratios and correlations;
//   - SWLIN digits are remapped by a keyed digit permutation applied
//     per-level, preserving the hierarchy (equal prefixes stay equal).
//
// Holding the Key allows exact inversion, which is how results computed on
// obfuscated data are mapped back to real identifiers inside the enclave.
package obfuscate

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"domd/internal/domain"
	"domd/internal/swlin"
)

// Key holds the secret parameters of the transform.
type Key struct {
	// Seed drives the identifier and digit permutations.
	Seed int64
	// DateShift is added to every date (days).
	DateShift int
	// AmountScale multiplies every dollar amount; must be > 0.
	AmountScale float64
}

// NewKey derives a usable key from a seed.
func NewKey(seed int64) Key {
	rng := rand.New(rand.NewSource(seed))
	return Key{
		Seed:        seed,
		DateShift:   rng.Intn(20000) - 10000,
		AmountScale: 0.25 + rng.Float64()*3.75,
	}
}

// Validate rejects degenerate keys.
func (k Key) Validate() error {
	if k.AmountScale <= 0 {
		return fmt.Errorf("obfuscate: amount scale %f must be > 0", k.AmountScale)
	}
	return nil
}

// Obfuscator applies or inverts the keyed transform.
type Obfuscator struct {
	key Key
	// digit permutation per SWLIN position and its inverse.
	digitPerm [swlin.Digits][10]int
	digitInv  [swlin.Digits][10]int
	// id offsets (affine remap keeps uniqueness without storing maps).
	availIDOff, shipIDOff, rccIDOff int
}

// New builds an Obfuscator from a key.
func New(key Key) (*Obfuscator, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	o := &Obfuscator{key: key}
	rng := rand.New(rand.NewSource(key.Seed))
	for pos := 0; pos < swlin.Digits; pos++ {
		perm := rng.Perm(10)
		for i, p := range perm {
			o.digitPerm[pos][i] = p
			o.digitInv[pos][p] = i
		}
	}
	o.availIDOff = 10000 + rng.Intn(90000)
	o.shipIDOff = 10000 + rng.Intn(90000)
	o.rccIDOff = 100000 + rng.Intn(900000)
	return o, nil
}

// Apply obfuscates copies of the inputs; the originals are not modified.
func (o *Obfuscator) Apply(avails []domain.Avail, rccs []domain.RCC) ([]domain.Avail, []domain.RCC) {
	outA := make([]domain.Avail, len(avails))
	for i, a := range avails {
		a.ID += o.availIDOff
		a.ShipID += o.shipIDOff
		a.PlanStart += domain.Day(o.key.DateShift)
		a.PlanEnd += domain.Day(o.key.DateShift)
		a.ActStart += domain.Day(o.key.DateShift)
		if a.Status == domain.StatusClosed {
			a.ActEnd += domain.Day(o.key.DateShift)
		}
		a.PlannedCost *= o.key.AmountScale
		outA[i] = a
	}
	outR := make([]domain.RCC, len(rccs))
	for i, r := range rccs {
		r.ID += o.rccIDOff
		r.AvailID += o.availIDOff
		r.Created += domain.Day(o.key.DateShift)
		r.Settled += domain.Day(o.key.DateShift)
		r.Amount *= o.key.AmountScale
		r.SWLIN = o.mapSWLIN(r.SWLIN, false)
		outR[i] = r
	}
	return outA, outR
}

// Invert exactly reverses Apply.
func (o *Obfuscator) Invert(avails []domain.Avail, rccs []domain.RCC) ([]domain.Avail, []domain.RCC) {
	outA := make([]domain.Avail, len(avails))
	for i, a := range avails {
		a.ID -= o.availIDOff
		a.ShipID -= o.shipIDOff
		a.PlanStart -= domain.Day(o.key.DateShift)
		a.PlanEnd -= domain.Day(o.key.DateShift)
		a.ActStart -= domain.Day(o.key.DateShift)
		if a.Status == domain.StatusClosed {
			a.ActEnd -= domain.Day(o.key.DateShift)
		}
		a.PlannedCost /= o.key.AmountScale
		outA[i] = a
	}
	outR := make([]domain.RCC, len(rccs))
	for i, r := range rccs {
		r.ID -= o.rccIDOff
		r.AvailID -= o.availIDOff
		r.Created -= domain.Day(o.key.DateShift)
		r.Settled -= domain.Day(o.key.DateShift)
		r.Amount /= o.key.AmountScale
		r.SWLIN = o.mapSWLIN(r.SWLIN, true)
		outR[i] = r
	}
	return outA, outR
}

// mapSWLIN permutes each digit with the per-position permutation (or its
// inverse), preserving the prefix hierarchy: two codes share an obfuscated
// prefix iff they shared the original prefix.
func (o *Obfuscator) mapSWLIN(code int, invert bool) int {
	c := swlin.Code(code)
	out := 0
	for pos := 0; pos < swlin.Digits; pos++ {
		d := c.Digit(pos)
		if invert {
			d = o.digitInv[pos][d]
		} else {
			d = o.digitPerm[pos][d]
		}
		out = out*10 + d
	}
	return out
}

// SaveKey writes the key as JSON; the key never leaves the enclave in the
// deployed setting, but operators need to persist it across retraining runs
// to keep obfuscated identifiers stable.
func SaveKey(w io.Writer, k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(k)
}

// LoadKey reads a key written by SaveKey.
func LoadKey(r io.Reader) (Key, error) {
	var k Key
	if err := json.NewDecoder(r).Decode(&k); err != nil {
		return Key{}, fmt.Errorf("obfuscate: load key: %w", err)
	}
	if err := k.Validate(); err != nil {
		return Key{}, err
	}
	return k, nil
}
