package obfuscate

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/navsim"
	"domd/internal/swlin"
)

func dataset(t *testing.T) *navsim.Dataset {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 30, NumOngoing: 2, MeanRCCsPerAvail: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRoundTrip(t *testing.T) {
	ds := dataset(t)
	o, err := New(NewKey(42))
	if err != nil {
		t.Fatal(err)
	}
	obA, obR := o.Apply(ds.Avails, ds.RCCs)
	backA, backR := o.Invert(obA, obR)
	for i := range backA {
		if backA[i] != ds.Avails[i] {
			t.Fatalf("avail %d not restored:\n got %+v\nwant %+v", i, backA[i], ds.Avails[i])
		}
	}
	for i := range backR {
		got, want := backR[i], ds.RCCs[i]
		// Amounts go through multiply/divide; allow FP dust.
		if math.Abs(got.Amount-want.Amount) > 1e-9*math.Abs(want.Amount) {
			t.Fatalf("rcc %d amount not restored: %f vs %f", i, got.Amount, want.Amount)
		}
		got.Amount, want.Amount = 0, 0
		if got != want {
			t.Fatalf("rcc %d not restored:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestIdentifiersChange(t *testing.T) {
	ds := dataset(t)
	o, err := New(NewKey(7))
	if err != nil {
		t.Fatal(err)
	}
	obA, obR := o.Apply(ds.Avails, ds.RCCs)
	for i := range obA {
		if obA[i].ID == ds.Avails[i].ID || obA[i].ShipID == ds.Avails[i].ShipID {
			t.Fatal("identifiers must change")
		}
		if obA[i].PlanStart == ds.Avails[i].PlanStart {
			t.Fatal("dates must shift")
		}
	}
	for i := range obR {
		if obR[i].ID == ds.RCCs[i].ID {
			t.Fatal("rcc ids must change")
		}
	}
}

func TestDelaysPreserved(t *testing.T) {
	ds := dataset(t)
	o, err := New(NewKey(9))
	if err != nil {
		t.Fatal(err)
	}
	obA, _ := o.Apply(ds.Avails, ds.RCCs)
	for i := range obA {
		if obA[i].Status != domain.StatusClosed {
			continue
		}
		want, err1 := ds.Avails[i].Delay()
		got, err2 := obA[i].Delay()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got != want {
			t.Fatalf("avail %d: delay %d after obfuscation, want %d", i, got, want)
		}
		if obA[i].PlannedDuration() != ds.Avails[i].PlannedDuration() {
			t.Fatal("planned duration must be preserved")
		}
	}
}

func TestReferentialIntegrityPreserved(t *testing.T) {
	ds := dataset(t)
	o, err := New(NewKey(11))
	if err != nil {
		t.Fatal(err)
	}
	obA, obR := o.Apply(ds.Avails, ds.RCCs)
	ids := map[int]bool{}
	for i := range obA {
		ids[obA[i].ID] = true
	}
	for i := range obR {
		if !ids[obR[i].AvailID] {
			t.Fatalf("rcc %d references missing avail %d", obR[i].ID, obR[i].AvailID)
		}
	}
}

func TestSWLINHierarchyPreserved(t *testing.T) {
	ds := dataset(t)
	o, err := New(NewKey(13))
	if err != nil {
		t.Fatal(err)
	}
	_, obR := o.Apply(ds.Avails, ds.RCCs)
	// Two RCCs share an obfuscated prefix at level L iff they shared the
	// original prefix at level L.
	for i := 0; i < len(ds.RCCs) && i < 300; i++ {
		for j := i + 1; j < len(ds.RCCs) && j < 300; j++ {
			for _, level := range []int{1, 3, 5, 8} {
				orig := swlin.Code(ds.RCCs[i].SWLIN).Prefix(level) == swlin.Code(ds.RCCs[j].SWLIN).Prefix(level)
				ob := swlin.Code(obR[i].SWLIN).Prefix(level) == swlin.Code(obR[j].SWLIN).Prefix(level)
				if orig != ob {
					t.Fatalf("prefix equality at level %d broken for rccs %d,%d", level, i, j)
				}
			}
		}
	}
}

func TestAmountRatiosPreserved(t *testing.T) {
	ds := dataset(t)
	o, err := New(NewKey(17))
	if err != nil {
		t.Fatal(err)
	}
	_, obR := o.Apply(ds.Avails, ds.RCCs)
	r0 := ds.RCCs[0].Amount / ds.RCCs[1].Amount
	r1 := obR[0].Amount / obR[1].Amount
	if math.Abs(r0-r1) > 1e-9 {
		t.Errorf("amount ratio changed: %f vs %f", r0, r1)
	}
}

func TestKeyValidation(t *testing.T) {
	if _, err := New(Key{AmountScale: 0}); err == nil {
		t.Error("zero amount scale: want error")
	}
	if _, err := New(Key{AmountScale: -1}); err == nil {
		t.Error("negative amount scale: want error")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	ds := dataset(t)
	o1, err := New(NewKey(1))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := New(NewKey(2))
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := o1.Apply(ds.Avails, ds.RCCs)
	a2, _ := o2.Apply(ds.Avails, ds.RCCs)
	if a1[0].ID == a2[0].ID && a1[0].PlanStart == a2[0].PlanStart {
		t.Error("different keys should obfuscate differently")
	}
}

func TestKeySaveLoad(t *testing.T) {
	k := NewKey(99)
	var buf bytes.Buffer
	if err := SaveKey(&buf, k); err != nil {
		t.Fatal(err)
	}
	back, err := LoadKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatalf("key round trip: %+v vs %+v", back, k)
	}
	// A reloaded key must reproduce the same obfuscation exactly.
	ds := dataset(t)
	o1, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := New(back)
	if err != nil {
		t.Fatal(err)
	}
	a1, r1 := o1.Apply(ds.Avails, ds.RCCs)
	a2, r2 := o2.Apply(ds.Avails, ds.RCCs)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("avails differ under reloaded key")
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("rccs differ under reloaded key")
		}
	}
	// Corrupt inputs.
	if _, err := LoadKey(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := LoadKey(strings.NewReader(`{"Seed":1,"DateShift":0,"AmountScale":0}`)); err == nil {
		t.Error("invalid key: want error")
	}
	if err := SaveKey(&buf, Key{AmountScale: -1}); err == nil {
		t.Error("invalid key save: want error")
	}
}
