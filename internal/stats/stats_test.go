package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %f, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %f, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %f, want 2", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("empty/singleton cases should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %f,%f want -1,7", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) should panic")
		}
	}()
	MinMax(nil)
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Errorf("Pearson = %f, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if !almost(r, -1, 1e-12) {
		t.Errorf("Pearson = %f, want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed: x = [1 2 3 4], y = [1 3 2 5]
	// sxy = 5.5, sxx = 5, syy = 8.75 => r = 5.5/sqrt(43.75) ≈ 0.83152
	r, err := Pearson([]float64{1, 2, 3, 4}, []float64{1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := 5.5 / math.Sqrt(43.75)
	if !almost(r, want, 1e-12) {
		t.Errorf("Pearson = %f, want %f", r, want)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("Pearson(const, y) = %f,%v want 0,nil", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestQuickPearsonSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		rxy, err1 := Pearson(x, y)
		ryx, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(rxy, ryx, 1e-12) && rxy >= -1 && rxy <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is 1 for any strictly monotone relation, even non-linear.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // non-linear but monotone
	}
	r, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Errorf("Spearman of monotone relation = %f, want 1", r)
	}
	pr, _ := Pearson(x, y)
	if pr >= 0.999 {
		t.Errorf("Pearson of exp relation = %f; expected < 1 (sanity)", pr)
	}
}

func TestMutualInformationIndependentVsDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5000
	x := make([]float64, n)
	indep := make([]float64, n)
	dep := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		indep[i] = rng.Float64()
		dep[i] = x[i]*x[i] + 0.01*rng.NormFloat64()
	}
	miIndep, err := MutualInformation(x, indep, 16)
	if err != nil {
		t.Fatal(err)
	}
	miDep, err := MutualInformation(x, dep, 16)
	if err != nil {
		t.Fatal(err)
	}
	if miDep <= miIndep*2 {
		t.Errorf("MI(dep)=%f should clearly exceed MI(indep)=%f", miDep, miIndep)
	}
	if miIndep < 0 || miDep < 0 {
		t.Error("MI must be non-negative")
	}
}

func TestMutualInformationConstant(t *testing.T) {
	mi, err := MutualInformation([]float64{1, 1, 1}, []float64{1, 2, 3}, 4)
	if err != nil || mi != 0 {
		t.Errorf("MI(const, y) = %f,%v want 0,nil", mi, err)
	}
}

func TestMutualInformationErrors(t *testing.T) {
	if _, err := MutualInformation([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("bins < 2: want error")
	}
	if _, err := MutualInformation(nil, nil, 4); err == nil {
		t.Error("empty: want error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%f) = %f, want %f", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: counts %d edges %d", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	for _, c := range counts {
		if c != 2 {
			t.Errorf("uniform data should give equal bins, got %v", counts)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if _, _, err := Histogram(nil, 5); err == nil {
		t.Error("empty data: want error")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("zero bins: want error")
	}
	counts, _, err := Histogram([]float64{7, 7, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant data histogram total = %d, want 3", total)
	}
}
