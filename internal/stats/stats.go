// Package stats provides the descriptive and dependence statistics the DoMD
// pipeline builds on: means, variances, quantiles, ranks, Pearson and
// Spearman correlation, and a histogram estimator of mutual information.
// All functions are NaN-safe in the sense documented per function; slices are
// never mutated unless stated.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Pearson returns the Pearson product-moment correlation coefficient of x
// and y. It returns 0 when either series is constant (undefined correlation)
// and an error on length mismatch or empty input.
func Pearson(x, y []float64) (float64, error) {
	if err := sameLen(x, y); err != nil {
		return 0, err
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 { //lint:ignore floateq exactly zero variance means correlation is undefined
		return 0, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard FP drift outside [-1, 1].
	return math.Max(-1, math.Min(1, r)), nil
}

// Ranks returns fractional ranks (1-based, ties get the average rank), the
// convention Spearman correlation requires.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floateq fractional ranking ties are defined by exact equality
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation coefficient: the Pearson
// correlation of the fractional ranks, which handles ties correctly.
func Spearman(x, y []float64) (float64, error) {
	if err := sameLen(x, y); err != nil {
		return 0, err
	}
	return Pearson(Ranks(x), Ranks(y))
}

// MutualInformation estimates I(X;Y) in nats using an equal-width 2D
// histogram with the given number of bins per dimension. Degenerate
// (constant) variables yield 0. Errors mirror Pearson's.
func MutualInformation(x, y []float64, bins int) (float64, error) {
	if err := sameLen(x, y); err != nil {
		return 0, err
	}
	if bins < 2 {
		return 0, fmt.Errorf("stats: mutual information needs >= 2 bins, got %d", bins)
	}
	n := len(x)
	bx, okx := binIndices(x, bins)
	by, oky := binIndices(y, bins)
	if !okx || !oky {
		return 0, nil // constant variable carries no information
	}
	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	py := make([]float64, bins)
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		joint[bx[i]*bins+by[i]] += inv
		px[bx[i]] += inv
		py[by[i]] += inv
	}
	mi := 0.0
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			p := joint[i*bins+j]
			if p > 0 {
				mi += p * math.Log(p/(px[i]*py[j]))
			}
		}
	}
	if mi < 0 {
		mi = 0 // clamp FP noise
	}
	return mi, nil
}

// binIndices maps values to equal-width bin indices in [0, bins). The second
// result is false when the variable is constant.
func binIndices(xs []float64, bins int) ([]int, bool) {
	lo, hi := MinMax(xs)
	if hi == lo { //lint:ignore floateq exact min==max means the variable is constant
		return nil, false
	}
	w := (hi - lo) / float64(bins)
	out := make([]int, len(xs))
	for i, x := range xs {
		b := int((x - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		out[i] = b
	}
	return out, true
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation
// between order statistics (the "linear" method). The input is not mutated.
// It panics on empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %f outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram bins xs into the given number of equal-width bins between the
// data min and max, returning counts and bin edges (len(edges) = bins+1).
// Used to regenerate the paper's Fig. 2 delay distribution.
func Histogram(xs []float64, bins int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("stats: histogram of empty data")
	}
	if bins < 1 {
		return nil, nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	lo, hi := MinMax(xs)
	if hi == lo { //lint:ignore floateq exact min==max means the variable is constant
		hi = lo + 1
	}
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges, nil
}

func sameLen(x, y []float64) error {
	if len(x) == 0 {
		return fmt.Errorf("stats: empty input")
	}
	if len(x) != len(y) {
		return fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	return nil
}
