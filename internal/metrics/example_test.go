package metrics_test

import (
	"fmt"

	"domd/internal/metrics"
)

// The paper's MAE-80th trims to the best-predicted 80% of avails before
// averaging — the Navy SME milestone is MAE-80th ≤ 30 days.
func ExampleMAEPercentile() {
	truth := []float64{10, 20, 30, 40, 400}
	preds := []float64{12, 18, 33, 45, 100} // one badly-missed disaster
	full, err := metrics.MAE(truth, preds)
	if err != nil {
		panic(err)
	}
	trimmed, err := metrics.MAEPercentile(truth, preds, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("MAE %.1f, MAE-80th %.1f\n", full, trimmed)
	// Output: MAE 62.4, MAE-80th 3.0
}
