// Package metrics implements the regression quality measures of paper §5.2
// (evaluation measures): MAE including the percentile-trimmed MAE-80/90/100
// variants of Table 7, MSE, RMSE, and the coefficient of determination R².
package metrics

import (
	"fmt"
	"math"
	"sort"

	"domd/internal/stats"
)

// Report bundles every measure Table 7 reports for one logical timestamp.
type Report struct {
	MAE80 float64 // mean |err| over the 80% of avails with smallest |err|
	MAE90 float64
	MAE   float64 // all avails ("MAE 100th")
	MSE   float64
	RMSE  float64
	R2    float64
}

// Evaluate computes the full Report for predictions yhat against truth y.
func Evaluate(y, yhat []float64) (Report, error) {
	if err := check(y, yhat); err != nil {
		return Report{}, err
	}
	mae80, err := MAEPercentile(y, yhat, 0.8)
	if err != nil {
		return Report{}, err
	}
	mae90, err := MAEPercentile(y, yhat, 0.9)
	if err != nil {
		return Report{}, err
	}
	mae, err := MAE(y, yhat)
	if err != nil {
		return Report{}, err
	}
	mse, err := MSE(y, yhat)
	if err != nil {
		return Report{}, err
	}
	r2, err := R2(y, yhat)
	if err != nil {
		return Report{}, err
	}
	return Report{
		MAE80: mae80,
		MAE90: mae90,
		MAE:   mae,
		MSE:   mse,
		RMSE:  math.Sqrt(mse),
		R2:    r2,
	}, nil
}

// MAE returns the mean absolute error.
func MAE(y, yhat []float64) (float64, error) {
	if err := check(y, yhat); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range y {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(len(y)), nil
}

// MAEPercentile returns the MAE over the frac-portion of instances with the
// smallest absolute errors, the paper's "MAE 80th/90th" measure: MAE for the
// best-predicted 80%/90% of avails. frac must lie in (0, 1].
func MAEPercentile(y, yhat []float64, frac float64) (float64, error) {
	if err := check(y, yhat); err != nil {
		return 0, err
	}
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("metrics: percentile fraction %f outside (0,1]", frac)
	}
	errs := make([]float64, len(y))
	for i := range y {
		errs[i] = math.Abs(y[i] - yhat[i])
	}
	sort.Float64s(errs)
	k := int(math.Ceil(frac * float64(len(errs))))
	if k < 1 {
		k = 1
	}
	s := 0.0
	for _, e := range errs[:k] {
		s += e
	}
	return s / float64(k), nil
}

// MSE returns the mean squared error.
func MSE(y, yhat []float64) (float64, error) {
	if err := check(y, yhat); err != nil {
		return 0, err
	}
	s := 0.0
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return s / float64(len(y)), nil
}

// RMSE returns the root mean squared error.
func RMSE(y, yhat []float64) (float64, error) {
	mse, err := MSE(y, yhat)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(mse), nil
}

// R2 returns the coefficient of determination 1 - SS_res/SS_tot. When the
// truth is constant, R2 is 1 for exact predictions and 0 otherwise (the
// conventional degenerate handling).
func R2(y, yhat []float64) (float64, error) {
	if err := check(y, yhat); err != nil {
		return 0, err
	}
	mean := stats.Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		dr := y[i] - yhat[i]
		dt := y[i] - mean
		ssRes += dr * dr
		ssTot += dt * dt
	}
	if ssTot == 0 { //lint:ignore floateq a constant target sums to exactly zero; R² is defined piecewise there
		if ssRes == 0 { //lint:ignore floateq exact reproduction of a constant target scores R²=1
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

func check(y, yhat []float64) error {
	if len(y) == 0 {
		return fmt.Errorf("metrics: empty input")
	}
	if len(y) != len(yhat) {
		return fmt.Errorf("metrics: length mismatch %d vs %d", len(y), len(yhat))
	}
	return nil
}
