package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMAE(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	yhat := []float64{2, 2, 1, 8}
	got, err := MAE(y, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, (1+0+2+4)/4.0, 1e-12) {
		t.Errorf("MAE = %f, want 1.75", got)
	}
}

func TestMAEPercentile(t *testing.T) {
	y := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	yhat := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 100} // one gross outlier
	full, _ := MAE(y, yhat)
	p90, err := MAEPercentile(y, yhat, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p90, 1, 1e-12) {
		t.Errorf("MAE90 = %f, want 1 (outlier trimmed)", p90)
	}
	if p90 >= full {
		t.Errorf("MAE90 %f should be below full MAE %f", p90, full)
	}
	p100, _ := MAEPercentile(y, yhat, 1.0)
	if !almost(p100, full, 1e-12) {
		t.Errorf("MAE100 %f != MAE %f", p100, full)
	}
}

func TestMAEPercentileErrors(t *testing.T) {
	y := []float64{1, 2}
	if _, err := MAEPercentile(y, y, 0); err == nil {
		t.Error("frac=0: want error")
	}
	if _, err := MAEPercentile(y, y, 1.5); err == nil {
		t.Error("frac>1: want error")
	}
}

func TestMSERMSE(t *testing.T) {
	y := []float64{0, 0}
	yhat := []float64{3, 4}
	mse, _ := MSE(y, yhat)
	if !almost(mse, 12.5, 1e-12) {
		t.Errorf("MSE = %f, want 12.5", mse)
	}
	rmse, _ := RMSE(y, yhat)
	if !almost(rmse, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %f, want %f", rmse, math.Sqrt(12.5))
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	perfect, _ := R2(y, y)
	if perfect != 1 {
		t.Errorf("R2(perfect) = %f, want 1", perfect)
	}
	// Predicting the mean gives R2 = 0.
	mean := []float64{3, 3, 3, 3, 3}
	zero, _ := R2(y, mean)
	if !almost(zero, 0, 1e-12) {
		t.Errorf("R2(mean predictor) = %f, want 0", zero)
	}
	// Worse than the mean is negative.
	bad := []float64{5, 4, 3, 2, 1}
	neg, _ := R2(y, bad)
	if neg >= 0 {
		t.Errorf("R2(reversed) = %f, want < 0", neg)
	}
}

func TestR2ConstantTruth(t *testing.T) {
	y := []float64{2, 2, 2}
	if r, _ := R2(y, y); r != 1 {
		t.Errorf("R2(const, exact) = %f, want 1", r)
	}
	if r, _ := R2(y, []float64{1, 2, 3}); r != 0 {
		t.Errorf("R2(const, wrong) = %f, want 0", r)
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	funcs := map[string]func([]float64, []float64) (float64, error){
		"MAE": MAE, "MSE": MSE, "RMSE": RMSE, "R2": R2,
	}
	for name, fn := range funcs {
		if _, err := fn(nil, nil); err == nil {
			t.Errorf("%s(empty): want error", name)
		}
		if _, err := fn([]float64{1}, []float64{1, 2}); err == nil {
			t.Errorf("%s(mismatch): want error", name)
		}
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("Evaluate(empty): want error")
	}
}

func TestEvaluateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	y := make([]float64, n)
	yhat := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64() * 50
		yhat[i] = y[i] + rng.NormFloat64()*10
	}
	rep, err := Evaluate(y, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.MAE80 <= rep.MAE90 && rep.MAE90 <= rep.MAE) {
		t.Errorf("percentile MAEs must be monotone: %f %f %f", rep.MAE80, rep.MAE90, rep.MAE)
	}
	if !almost(rep.RMSE, math.Sqrt(rep.MSE), 1e-12) {
		t.Errorf("RMSE %f != sqrt(MSE %f)", rep.RMSE, rep.MSE)
	}
	if rep.RMSE < rep.MAE {
		t.Errorf("RMSE %f < MAE %f violates Jensen", rep.RMSE, rep.MAE)
	}
	if rep.R2 < 0.9 {
		t.Errorf("R2 = %f; noise is small relative to signal, expect > 0.9", rep.R2)
	}
}

// TestQuickMetricIdentities checks structural identities on random data:
// MAE >= 0, MSE >= MAE^2 is not generally true, but RMSE >= MAE always, and
// R2 <= 1 always.
func TestQuickMetricIdentities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		y := make([]float64, n)
		yhat := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 100
			yhat[i] = rng.NormFloat64() * 100
		}
		rep, err := Evaluate(y, yhat)
		if err != nil {
			return false
		}
		return rep.MAE >= 0 && rep.MSE >= 0 &&
			rep.RMSE >= rep.MAE-1e-9 &&
			rep.R2 <= 1+1e-9 &&
			rep.MAE80 <= rep.MAE90+1e-9 && rep.MAE90 <= rep.MAE+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
