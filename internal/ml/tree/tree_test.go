package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fitCART grows a classical regression tree on (X, y): g = -y, h = 1,
// lambda = 0 makes each leaf the mean of its targets.
func fitCART(t *testing.T, cfg Config, X [][]float64, y []float64) *Node {
	t.Helper()
	g := make([]float64, len(y))
	h := make([]float64, len(y))
	rows := make([]int, len(y))
	for i := range y {
		g[i] = -y[i]
		h[i] = 1
		rows[i] = i
	}
	features := make([]int, len(X[0]))
	for j := range features {
		features[j] = j
	}
	n, err := Build(cfg, X, g, h, rows, features)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSingleLeafIsMean(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{10, 20, 30}
	cfg := DefaultConfig()
	cfg.MaxDepth = 0
	cfg.Lambda = 0
	n := fitCART(t, cfg, X, y)
	if !n.IsLeaf() {
		t.Fatal("depth-0 tree must be a leaf")
	}
	if math.Abs(n.Weight-20) > 1e-12 {
		t.Errorf("leaf weight = %f, want mean 20", n.Weight)
	}
}

func TestPerfectStepFunction(t *testing.T) {
	// y = 0 for x<5, y = 100 for x>=5: one split suffices.
	var X [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		X = append(X, []float64{float64(i)})
		if i < 5 {
			y = append(y, 0)
		} else {
			y = append(y, 100)
		}
	}
	cfg := DefaultConfig()
	cfg.Lambda = 0
	cfg.MinChildWeight = 0
	n := fitCART(t, cfg, X, y)
	for i, row := range X {
		if got := n.Predict(row); math.Abs(got-y[i]) > 1e-9 {
			t.Errorf("Predict(%v) = %f, want %f", row, got, y[i])
		}
	}
	if n.IsLeaf() {
		t.Error("tree should have split")
	}
	if n.Feature != 0 || n.Threshold <= 4 || n.Threshold > 5 {
		t.Errorf("split = feature %d @ %f, want feature 0 in (4,5]", n.Feature, n.Threshold)
	}
}

func TestPicksInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		informative := rng.Float64()
		noise := rng.Float64()
		X[i] = []float64{noise, informative}
		if informative > 0.5 {
			y[i] = 50
		}
	}
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	root := fitCART(t, cfg, X, y)
	if root.IsLeaf() || root.Feature != 1 {
		t.Errorf("root split on feature %d, want informative feature 1", root.Feature)
	}
	imp := make([]float64, 2)
	root.AccumImportances(imp)
	if imp[1] <= imp[0] {
		t.Errorf("importances %v: informative feature should dominate", imp)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = rng.NormFloat64() * 10
	}
	for _, depth := range []int{1, 2, 3, 4} {
		cfg := DefaultConfig()
		cfg.MaxDepth = depth
		cfg.Gamma = 0
		root := fitCART(t, cfg, X, y)
		if d := root.Depth(); d > depth {
			t.Errorf("Depth() = %d, want <= %d", d, depth)
		}
		if l := root.NumLeaves(); l > 1<<depth {
			t.Errorf("NumLeaves() = %d, want <= %d", l, 1<<depth)
		}
	}
}

func TestGammaPrunesWeakSplits(t *testing.T) {
	// Nearly-constant target: any split gain is tiny, so a large gamma
	// must leave a single leaf.
	rng := rand.New(rand.NewSource(3))
	n := 100
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = 5 + 0.001*rng.NormFloat64()
	}
	cfg := DefaultConfig()
	cfg.Gamma = 100
	root := fitCART(t, cfg, X, y)
	if !root.IsLeaf() {
		t.Error("large gamma should suppress all splits")
	}
}

func TestMinChildWeightBlocksTinyLeaves(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 0, 100}
	cfg := DefaultConfig()
	cfg.Lambda = 0
	cfg.MinChildWeight = 2 // unit hessians: each child needs >= 2 rows
	root := fitCART(t, cfg, X, y)
	var walk func(n *Node, rows int)
	// With 4 rows and min 2 per child, only the middle split is legal.
	if !root.IsLeaf() && root.Threshold != 1.5 && root.Threshold != 2 {
		t.Errorf("split threshold %f should be the middle split", root.Threshold)
	}
	_ = walk
}

func TestLambdaShrinksLeaves(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{10, 10}
	cfg := DefaultConfig()
	cfg.MaxDepth = 0
	cfg.Lambda = 0
	unshrunk := fitCART(t, cfg, X, y)
	cfg.Lambda = 2
	shrunk := fitCART(t, cfg, X, y)
	if !(math.Abs(shrunk.Weight) < math.Abs(unshrunk.Weight)) {
		t.Errorf("lambda must shrink leaf: %f vs %f", shrunk.Weight, unshrunk.Weight)
	}
	// -G/(H+λ) = 20/(2+2) = 5.
	if math.Abs(shrunk.Weight-5) > 1e-12 {
		t.Errorf("shrunk weight = %f, want 5", shrunk.Weight)
	}
}

func TestBuildErrors(t *testing.T) {
	X := [][]float64{{1}}
	if _, err := Build(Config{MaxDepth: -1}, X, []float64{1}, []float64{1}, []int{0}, []int{0}); err == nil {
		t.Error("negative depth: want error")
	}
	if _, err := Build(DefaultConfig(), X, []float64{1, 2}, []float64{1}, []int{0}, []int{0}); err == nil {
		t.Error("gradient length mismatch: want error")
	}
	if _, err := Build(DefaultConfig(), X, []float64{1}, []float64{1}, nil, []int{0}); err == nil {
		t.Error("no rows: want error")
	}
	for _, bad := range []Config{{Lambda: -1}, {Gamma: -1}, {MinChildWeight: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", bad)
		}
	}
}

func TestConstantFeatureNeverSplits(t *testing.T) {
	X := [][]float64{{7}, {7}, {7}, {7}}
	y := []float64{1, 2, 3, 4}
	cfg := DefaultConfig()
	cfg.MinChildWeight = 0
	root := fitCART(t, cfg, X, y)
	if !root.IsLeaf() {
		t.Error("constant feature cannot be split")
	}
}

// TestQuickPredictionsWithinTargetRange: with lambda=0 every leaf is a mean
// of training targets, so predictions must lie within [min(y), max(y)].
func TestQuickPredictionsWithinTargetRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			y[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		g := make([]float64, n)
		h := make([]float64, n)
		rows := make([]int, n)
		for i := range y {
			g[i] = -y[i]
			h[i] = 1
			rows[i] = i
		}
		cfg := DefaultConfig()
		cfg.Lambda = 0
		cfg.MinChildWeight = 0
		root, err := Build(cfg, X, g, h, rows, []int{0, 1})
		if err != nil {
			return false
		}
		for _, row := range X {
			p := root.Predict(row)
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeeperTreeFitsBetter: training error is non-increasing in depth.
func TestDeeperTreeFitsBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		y[i] = math.Sin(a*6)*50 + b*b*30
	}
	var prev float64 = math.Inf(1)
	for _, depth := range []int{1, 3, 6} {
		cfg := DefaultConfig()
		cfg.Lambda = 0
		cfg.MinChildWeight = 0
		root := fitCART(t, cfg, X, y)
		cfg.MaxDepth = depth
		root = fitCART(t, cfg, X, y)
		mse := 0.0
		for i, row := range X {
			d := y[i] - root.Predict(row)
			mse += d * d
		}
		mse /= float64(n)
		if mse > prev+1e-9 {
			t.Errorf("depth %d: training MSE %f worse than shallower %f", depth, mse, prev)
		}
		prev = mse
	}
}
