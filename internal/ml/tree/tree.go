// Package tree implements the regularized Newton regression tree that
// underlies the framework's XGBoost-style booster (paper §3.2.2, citing Chen
// & Guestrin). A tree is grown by exact greedy split search on per-instance
// first and second loss derivatives (g, h); each leaf takes the closed-form
// weight w* = -G/(H+λ) and each split must improve the regularized objective
// by more than γ.
//
// Fitting a single tree with g_i = -y_i and h_i = 1 reproduces a classical
// CART regression tree (leaf = mean target, variance-reduction splits), which
// is how the package doubles as a standalone tree learner.
package tree

import (
	"fmt"
	"sort"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth limits tree depth; depth 0 means a single leaf.
	MaxDepth int
	// MinChildWeight is the minimum hessian sum per child (XGBoost's
	// min_child_weight); splits creating lighter children are rejected.
	MinChildWeight float64
	// Lambda is the L2 regularization on leaf weights.
	Lambda float64
	// Gamma is the minimum split gain (complexity penalty per leaf).
	Gamma float64
	// MinSamplesSplit rejects splitting nodes with fewer rows.
	MinSamplesSplit int
}

// DefaultConfig mirrors common XGBoost defaults.
func DefaultConfig() Config {
	return Config{
		MaxDepth:        6,
		MinChildWeight:  1,
		Lambda:          1,
		Gamma:           0,
		MinSamplesSplit: 2,
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.MaxDepth < 0 {
		return fmt.Errorf("tree: max depth %d < 0", c.MaxDepth)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("tree: lambda %f < 0", c.Lambda)
	}
	if c.Gamma < 0 {
		return fmt.Errorf("tree: gamma %f < 0", c.Gamma)
	}
	if c.MinChildWeight < 0 {
		return fmt.Errorf("tree: min child weight %f < 0", c.MinChildWeight)
	}
	return nil
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	// Feature is the split column, or -1 for a leaf.
	Feature int
	// Threshold: rows with x[Feature] < Threshold go left.
	Threshold float64
	// Weight is the leaf output value (only meaningful for leaves).
	Weight float64
	// Gain is the split's objective improvement (internal nodes).
	Gain        float64
	Left, Right *Node
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Predict routes x to a leaf and returns its weight.
func (n *Node) Predict(x []float64) float64 { return n.LeafFor(x).Weight }

// LeafFor routes x to its leaf node (useful for per-leaf re-estimation).
func (n *Node) LeafFor(x []float64) *Node {
	for !n.IsLeaf() {
		if x[n.Feature] < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// NumLeaves counts leaves.
func (n *Node) NumLeaves() int {
	if n.IsLeaf() {
		return 1
	}
	return n.Left.NumLeaves() + n.Right.NumLeaves()
}

// Depth returns the height of the tree (a lone leaf has depth 0).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// AccumImportances adds each split's gain to imp[feature]; imp must have one
// entry per feature column.
func (n *Node) AccumImportances(imp []float64) {
	if n.IsLeaf() {
		return
	}
	imp[n.Feature] += n.Gain
	n.Left.AccumImportances(imp)
	n.Right.AccumImportances(imp)
}

// Build grows a tree on rows (indices into X) using gradients g and
// hessians h. features lists the candidate split columns (column sampling is
// the caller's concern). X is row-major.
func Build(cfg Config, X [][]float64, g, h []float64, rows, features []int) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(g) != len(X) || len(h) != len(X) {
		return nil, fmt.Errorf("tree: %d rows but %d gradients / %d hessians", len(X), len(g), len(h))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("tree: no training rows")
	}
	b := &builder{cfg: cfg, X: X, g: g, h: h, features: features}
	// Reusable scratch for per-node sorting.
	b.order = make([]int, len(rows))
	return b.grow(append([]int(nil), rows...), 0), nil
}

type builder struct {
	cfg      Config
	X        [][]float64
	g, h     []float64
	features []int
	order    []int
}

// leaf computes the closed-form optimal weight -G/(H+λ).
func (b *builder) leaf(G, H float64) *Node {
	return &Node{Feature: -1, Weight: -G / (H + b.cfg.Lambda)}
}

type split struct {
	feature   int
	threshold float64
	gain      float64
	// left receives rows with value < threshold.
	leftRows, rightRows []int
}

func (b *builder) grow(rows []int, depth int) *Node {
	var G, H float64
	for _, i := range rows {
		G += b.g[i]
		H += b.h[i]
	}
	if depth >= b.cfg.MaxDepth || len(rows) < b.cfg.MinSamplesSplit {
		return b.leaf(G, H)
	}
	best := b.bestSplit(rows, G, H)
	if best == nil {
		return b.leaf(G, H)
	}
	n := &Node{
		Feature:   best.feature,
		Threshold: best.threshold,
		Gain:      best.gain,
	}
	n.Left = b.grow(best.leftRows, depth+1)
	n.Right = b.grow(best.rightRows, depth+1)
	return n
}

// bestSplit performs exact greedy search over every candidate feature and
// threshold, maximizing the regularized gain
//
//	½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ.
func (b *builder) bestSplit(rows []int, G, H float64) *split {
	lam := b.cfg.Lambda
	parentScore := G * G / (H + lam)
	var best *split
	order := b.order[:len(rows)]
	for _, f := range b.features {
		copy(order, rows)
		sort.Slice(order, func(a, c int) bool { return b.X[order[a]][f] < b.X[order[c]][f] })
		var GL, HL float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			GL += b.g[i]
			HL += b.h[i]
			v, next := b.X[i][f], b.X[order[k+1]][f]
			if v == next { //lint:ignore floateq duplicate sorted feature values admit no split point between them
				continue // can't split between equal values
			}
			GR, HR := G-GL, H-HL
			if HL < b.cfg.MinChildWeight || HR < b.cfg.MinChildWeight {
				continue
			}
			gain := 0.5*(GL*GL/(HL+lam)+GR*GR/(HR+lam)-parentScore) - b.cfg.Gamma
			if gain <= 0 {
				continue
			}
			if best == nil || gain > best.gain {
				mid := v + (next-v)/2
				//lint:ignore floateq adjacent floats: the midpoint rounds back onto v exactly
				if mid == v { // adjacent floats: fall back to next
					mid = next
				}
				if best == nil {
					best = &split{}
				}
				best.feature = f
				best.threshold = mid
				best.gain = gain
				best.leftRows = best.leftRows[:0]
				best.rightRows = best.rightRows[:0]
			}
		}
	}
	if best == nil {
		return nil
	}
	// Partition rows by the winning split.
	for _, i := range rows {
		if b.X[i][best.feature] < best.threshold {
			best.leftRows = append(best.leftRows, i)
		} else {
			best.rightRows = append(best.rightRows, i)
		}
	}
	if len(best.leftRows) == 0 || len(best.rightRows) == 0 {
		return nil
	}
	return best
}
