package tree

import (
	"math"
	"math/rand"
	"testing"
)

func TestBinnerBinsAreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64() * 100, rng.Float64()}
	}
	b, err := NewBinner(X, 32)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		if b.NumBins(f) < 2 || b.NumBins(f) > 32 {
			t.Errorf("feature %d: %d bins", f, b.NumBins(f))
		}
		// Larger values must never land in smaller bins.
		prevBin := -1
		vals := make([]float64, n)
		for i := range X {
			vals[i] = X[i][f]
		}
		for _, v := range []float64{-1e9, -50, 0, 50, 1e9} {
			bin := b.binOf(f, v)
			if bin < prevBin {
				t.Fatalf("feature %d: bin(%f) = %d < previous %d", f, v, bin, prevBin)
			}
			prevBin = bin
		}
	}
}

func TestBinnerConstantFeature(t *testing.T) {
	X := [][]float64{{7}, {7}, {7}}
	b, err := NewBinner(X, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A constant column collapses to a single bin => never splittable.
	if b.NumBins(0) > 2 {
		t.Errorf("constant column has %d bins", b.NumBins(0))
	}
}

func TestBinnerValidation(t *testing.T) {
	X := [][]float64{{1}}
	if _, err := NewBinner(X, 1); err == nil {
		t.Error("bins=1: want error")
	}
	if _, err := NewBinner(X, 1000); err == nil {
		t.Error("bins>256: want error")
	}
	if _, err := NewBinner(nil, 8); err == nil {
		t.Error("empty X: want error")
	}
}

// fitHist grows a CART-style tree with the histogram method.
func fitHist(t *testing.T, cfg Config, X [][]float64, y []float64, bins int) *Node {
	t.Helper()
	b, err := NewBinner(X, bins)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, len(y))
	h := make([]float64, len(y))
	rows := make([]int, len(y))
	for i := range y {
		g[i] = -y[i]
		h[i] = 1
		rows[i] = i
	}
	features := make([]int, len(X[0]))
	for j := range features {
		features[j] = j
	}
	n, err := BuildHist(cfg, b, g, h, rows, features)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestHistStepFunction(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		X = append(X, []float64{float64(i)})
		if i >= 50 {
			y = append(y, 100)
		} else {
			y = append(y, 0)
		}
	}
	cfg := DefaultConfig()
	cfg.Lambda = 0
	cfg.MinChildWeight = 0
	root := fitHist(t, cfg, X, y, 32)
	for i, row := range X {
		if got := root.Predict(row); math.Abs(got-y[i]) > 5 {
			t.Errorf("Predict(%v) = %f, want %f", row, got, y[i])
		}
	}
}

// TestHistCloseToExact: on smooth data the histogram tree's training fit
// should be close to the exact tree's.
func TestHistCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		y[i] = 50*math.Sin(a*5) + 30*b
	}
	cfg := DefaultConfig()
	cfg.Lambda = 0
	cfg.MinChildWeight = 0
	exact := fitCART(t, cfg, X, y)
	hist := fitHist(t, cfg, X, y, 64)
	mse := func(n *Node) float64 {
		s := 0.0
		for i, row := range X {
			d := y[i] - n.Predict(row)
			s += d * d
		}
		return s / float64(len(X))
	}
	me, mh := mse(exact), mse(hist)
	if mh > me*1.5+1 {
		t.Errorf("hist MSE %f too far above exact %f", mh, me)
	}
}

func TestBuildHistErrors(t *testing.T) {
	X := [][]float64{{1}, {2}}
	b, err := NewBinner(X, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildHist(DefaultConfig(), nil, []float64{1, 2}, []float64{1, 1}, []int{0, 1}, []int{0}); err == nil {
		t.Error("nil binner: want error")
	}
	if _, err := BuildHist(DefaultConfig(), b, []float64{1}, []float64{1, 1}, []int{0}, []int{0}); err == nil {
		t.Error("grad mismatch: want error")
	}
	if _, err := BuildHist(DefaultConfig(), b, []float64{1, 2}, []float64{1, 1}, nil, []int{0}); err == nil {
		t.Error("no rows: want error")
	}
	if _, err := BuildHist(Config{MaxDepth: -1}, b, []float64{1, 2}, []float64{1, 1}, []int{0}, []int{0}); err == nil {
		t.Error("bad config: want error")
	}
}
