package tree

import (
	"fmt"
	"math"
	"sort"
)

// Histogram-based split finding, the "approx/hist" tree method of XGBoost
// and LightGBM: feature values are pre-bucketed into quantile bins once per
// dataset, and each node scans per-bin gradient sums instead of sorting its
// rows per feature. Growth cost per node drops from O(rows·log rows) per
// feature to O(rows + bins), which is what makes boosting affordable on the
// x-fold-scaled RCC workloads.

// MaxHistBins bounds the per-feature bin count (bin ids are stored in a
// byte).
const MaxHistBins = 256

// Binner holds the quantile bin edges and the pre-binned design matrix.
// It is immutable after construction and safe to share across trees and
// goroutines.
type Binner struct {
	// edges[f] are ascending split candidates for feature f: bin b holds
	// values in (edges[b-1], edges[b]]; the last bin is unbounded.
	edges [][]float64
	// binned[i][f] is the bin index of X[i][f].
	binned [][]uint8
	cols   int
}

// NewBinner buckets every feature of X into at most maxBins quantile bins.
func NewBinner(X [][]float64, maxBins int) (*Binner, error) {
	if maxBins < 2 || maxBins > MaxHistBins {
		return nil, fmt.Errorf("tree: bins %d outside [2,%d]", maxBins, MaxHistBins)
	}
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, fmt.Errorf("tree: empty design matrix")
	}
	n, p := len(X), len(X[0])
	b := &Binner{edges: make([][]float64, p), cols: p}
	vals := make([]float64, n)
	for f := 0; f < p; f++ {
		for i := range X {
			vals[i] = X[i][f]
		}
		sort.Float64s(vals)
		// Quantile candidates, deduplicated.
		var edges []float64
		for k := 1; k < maxBins; k++ {
			q := vals[k*(n-1)/maxBins]
			if len(edges) == 0 || q > edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		b.edges[f] = edges
	}
	b.binned = make([][]uint8, n)
	for i := range X {
		row := make([]uint8, p)
		for f := 0; f < p; f++ {
			row[f] = uint8(b.binOf(f, X[i][f]))
		}
		b.binned[i] = row
	}
	return b, nil
}

// binOf locates the bin of value v for feature f: the first edge >= v, or
// the overflow bin.
func (b *Binner) binOf(f int, v float64) int {
	edges := b.edges[f]
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// NumBins reports the bin count of feature f (edges + overflow).
func (b *Binner) NumBins(f int) int { return len(b.edges[f]) + 1 }

// BuildHist grows a tree like Build but finds splits over the Binner's
// histogram buckets. Thresholds are real values (bin upper edges), so the
// resulting tree predicts on raw feature vectors exactly like an exact tree.
func BuildHist(cfg Config, b *Binner, g, h []float64, rows, features []int) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("tree: nil binner")
	}
	if len(g) != len(b.binned) || len(h) != len(b.binned) {
		return nil, fmt.Errorf("tree: %d binned rows but %d gradients / %d hessians", len(b.binned), len(g), len(h))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("tree: no training rows")
	}
	hb := &histBuilder{cfg: cfg, b: b, g: g, h: h, features: features}
	return hb.grow(append([]int(nil), rows...), 0), nil
}

type histBuilder struct {
	cfg      Config
	b        *Binner
	g, h     []float64
	features []int
}

func (hb *histBuilder) leaf(G, H float64) *Node {
	return &Node{Feature: -1, Weight: -G / (H + hb.cfg.Lambda)}
}

func (hb *histBuilder) grow(rows []int, depth int) *Node {
	var G, H float64
	for _, i := range rows {
		G += hb.g[i]
		H += hb.h[i]
	}
	if depth >= hb.cfg.MaxDepth || len(rows) < hb.cfg.MinSamplesSplit {
		return hb.leaf(G, H)
	}
	feature, bin, gain := hb.bestSplit(rows, G, H)
	if feature < 0 {
		return hb.leaf(G, H)
	}
	n := &Node{
		Feature: feature,
		// Split at the bin's upper edge: rows with value < edge go left
		// together with every lower bin. Using nextafter keeps the exact
		// edge value itself in the left branch, matching the bin
		// semantics (v <= edge).
		Threshold: math.Nextafter(hb.b.edges[feature][bin], math.Inf(1)),
		Gain:      gain,
	}
	var left, right []int
	for _, i := range rows {
		if int(hb.b.binned[i][feature]) <= bin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return hb.leaf(G, H)
	}
	n.Left = hb.grow(left, depth+1)
	n.Right = hb.grow(right, depth+1)
	return n
}

// bestSplit scans per-feature histograms. It returns feature -1 when no
// split clears the gain/weight constraints.
func (hb *histBuilder) bestSplit(rows []int, G, H float64) (feature, bin int, gain float64) {
	lam := hb.cfg.Lambda
	parentScore := G * G / (H + lam)
	feature = -1
	var sumG [MaxHistBins]float64
	var sumH [MaxHistBins]float64
	var cnt [MaxHistBins]int
	for _, f := range hb.features {
		nb := hb.b.NumBins(f)
		if nb < 2 {
			continue
		}
		for b := 0; b < nb; b++ {
			sumG[b], sumH[b], cnt[b] = 0, 0, 0
		}
		for _, i := range rows {
			b := hb.b.binned[i][f]
			sumG[b] += hb.g[i]
			sumH[b] += hb.h[i]
			cnt[b]++
		}
		var GL, HL float64
		cntL := 0
		for b := 0; b < nb-1; b++ {
			GL += sumG[b]
			HL += sumH[b]
			cntL += cnt[b]
			// Both children must be non-empty: a boundary with all rows
			// on one side is not a split (and divides by zero at λ = 0).
			if cntL == 0 || cntL == len(rows) {
				continue
			}
			GR, HR := G-GL, H-HL
			if HL < hb.cfg.MinChildWeight || HR < hb.cfg.MinChildWeight {
				continue
			}
			cand := 0.5*(GL*GL/(HL+lam)+GR*GR/(HR+lam)-parentScore) - hb.cfg.Gamma
			if cand <= 0 {
				continue
			}
			if feature < 0 || cand > gain {
				feature, bin, gain = f, b, cand
			}
		}
	}
	return feature, bin, gain
}
