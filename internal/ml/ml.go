// Package ml defines the shared contracts of the DoMD model zoo: a columnar
// regression dataset, the Model interface every trained regressor satisfies,
// and the Trainer interface the pipeline's base-model search (Task 3)
// iterates over.
package ml

import "fmt"

// Dataset is a dense regression design matrix with optional target vector
// and feature names. Rows are instances (avails), columns are features.
type Dataset struct {
	// X holds the feature matrix, one row per instance.
	X [][]float64
	// Y holds the regression target (delay in days); may be nil for
	// prediction-only datasets.
	Y []float64
	// Names holds one name per column, e.g. "G1-AVG_SETTLED_AMT"; may be
	// nil when names are unknown.
	Names []string
}

// NumRows returns the number of instances.
func (d *Dataset) NumRows() int { return len(d.X) }

// NumCols returns the number of features (0 for an empty dataset).
func (d *Dataset) NumCols() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks rectangularity and length agreement.
func (d *Dataset) Validate() error {
	p := d.NumCols()
	for i, row := range d.X {
		if len(row) != p {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), p)
		}
	}
	if d.Y != nil && len(d.Y) != len(d.X) {
		return fmt.Errorf("ml: %d targets for %d rows", len(d.Y), len(d.X))
	}
	if d.Names != nil && len(d.Names) != p {
		return fmt.Errorf("ml: %d names for %d features", len(d.Names), p)
	}
	return nil
}

// Column extracts column j as a fresh slice.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, len(d.X))
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

// Select returns a new dataset restricted to the given column indices.
// The rows are fresh slices; Y is shared.
func (d *Dataset) Select(cols []int) *Dataset {
	out := &Dataset{X: make([][]float64, len(d.X)), Y: d.Y}
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for k, j := range cols {
			nr[k] = row[j]
		}
		out.X[i] = nr
	}
	if d.Names != nil {
		out.Names = make([]string, len(cols))
		for k, j := range cols {
			out.Names[k] = d.Names[j]
		}
	}
	return out
}

// Subset returns a new dataset restricted to the given row indices; rows and
// targets are shared slices of the original.
func (d *Dataset) Subset(rows []int) *Dataset {
	out := &Dataset{X: make([][]float64, len(rows)), Names: d.Names}
	if d.Y != nil {
		out.Y = make([]float64, len(rows))
	}
	for k, i := range rows {
		out.X[k] = d.X[i]
		if d.Y != nil {
			out.Y[k] = d.Y[i]
		}
	}
	return out
}

// AppendColumn returns a new dataset with one extra trailing column (used by
// the stacked architecture to feed the static model's prediction into the
// timeline models). Rows are fresh slices.
func (d *Dataset) AppendColumn(name string, col []float64) (*Dataset, error) {
	if len(col) != len(d.X) {
		return nil, fmt.Errorf("ml: append column of %d values to %d rows", len(col), len(d.X))
	}
	out := &Dataset{X: make([][]float64, len(d.X)), Y: d.Y}
	for i, row := range d.X {
		nr := make([]float64, len(row)+1)
		copy(nr, row)
		nr[len(row)] = col[i]
		out.X[i] = nr
	}
	if d.Names != nil {
		out.Names = append(append([]string(nil), d.Names...), name)
	}
	return out, nil
}

// Model is a trained regressor.
type Model interface {
	// Predict returns the estimate for one feature row.
	Predict(x []float64) float64
	// Importances returns one non-negative relevance score per feature
	// column of the training data (gain for trees, |coefficient| for
	// linear models). Used by RFE and the top-5 attribution of §5.2.5.
	Importances() []float64
}

// PredictBatch applies m to every row.
func PredictBatch(m Model, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = m.Predict(row)
	}
	return out
}

// Trainer fits a Model to a dataset. Implementations carry their own
// hyperparameters.
type Trainer interface {
	// Name identifies the model family ("xgboost", "elasticnet", ...).
	Name() string
	// Fit trains on d (Y must be non-nil).
	Fit(d *Dataset) (Model, error)
}
