package linear

import (
	"math"
	"math/rand"
	"testing"

	"domd/internal/ml"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOLSRecoversExactLine(t *testing.T) {
	// y = 2 + 3x exactly.
	d := &ml.Dataset{
		X: [][]float64{{0}, {1}, {2}, {3}, {4}},
		Y: []float64{2, 5, 8, 11, 14},
	}
	m, err := Fit(OLSParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Coef[0], 3, 1e-6) || !almost(m.Intercept, 2, 1e-6) {
		t.Errorf("fit = %f + %f x, want 2 + 3x", m.Intercept, m.Coef[0])
	}
	if got := m.Predict([]float64{10}); !almost(got, 32, 1e-5) {
		t.Errorf("Predict(10) = %f, want 32", got)
	}
}

func TestOLSMultivariate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{a, b, c}
		d.Y[i] = 1.5 + 4*a - 2.5*b + 0.5*c
	}
	m, err := Fit(OLSParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, -2.5, 0.5}
	for j, w := range want {
		if !almost(m.Coef[j], w, 1e-4) {
			t.Errorf("coef[%d] = %f, want %f", j, m.Coef[j], w)
		}
	}
	if !almost(m.Intercept, 1.5, 1e-4) {
		t.Errorf("intercept = %f, want 1.5", m.Intercept)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		d.X[i] = []float64{a}
		d.Y[i] = 5 * a
	}
	ols, err := Fit(OLSParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Fit(Params{Alpha: 10, L1Ratio: 0, MaxIter: 1000, Tol: 1e-9}, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Errorf("ridge coef %f should shrink below OLS %f", ridge.Coef[0], ols.Coef[0])
	}
	if ridge.Coef[0] <= 0 {
		t.Errorf("ridge coef %f should keep sign", ridge.Coef[0])
	}
}

func TestLassoZeroesIrrelevantFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		signal := rng.NormFloat64()
		noise1, noise2 := rng.NormFloat64(), rng.NormFloat64()
		d.X[i] = []float64{signal, noise1, noise2}
		d.Y[i] = 10*signal + 0.05*rng.NormFloat64()
	}
	m, err := Fit(Params{Alpha: 1, L1Ratio: 1, MaxIter: 2000, Tol: 1e-9}, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Coef[1] != 0 || m.Coef[2] != 0 {
		t.Errorf("lasso should zero noise coefs, got %v", m.Coef)
	}
	if m.Coef[0] < 5 {
		t.Errorf("signal coef %f should survive", m.Coef[0])
	}
}

func TestElasticNetHandlesWideData(t *testing.T) {
	// p > n: OLS is degenerate but elastic net must stay stable.
	rng := rand.New(rand.NewSource(4))
	n, p := 30, 100
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		d.X[i] = row
		d.Y[i] = 5*row[0] - 3*row[1] + rng.NormFloat64()*0.1
	}
	m, err := Fit(Params{Alpha: 0.5, L1Ratio: 0.5, MaxIter: 2000, Tol: 1e-9}, d)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("coef[%d] = %f not finite", j, c)
		}
	}
	// The two informative features should carry the largest magnitudes.
	imp := m.Importances()
	big := math.Max(imp[0], imp[1])
	for j := 2; j < p; j++ {
		if imp[j] > big {
			t.Errorf("noise coef %d (%f) exceeds signal (%f)", j, imp[j], big)
		}
	}
}

func TestConstantColumnGetsZeroCoef(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1, 7}, {2, 7}, {3, 7}},
		Y: []float64{1, 2, 3},
	}
	m, err := Fit(OLSParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Coef[1] != 0 {
		t.Errorf("constant column coef = %f, want 0", m.Coef[1])
	}
	if !almost(m.Predict([]float64{2, 7}), 2, 1e-6) {
		t.Errorf("prediction wrong with constant column")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{Alpha: -1, L1Ratio: 0.5, MaxIter: 10, Tol: 1e-6},
		{Alpha: 1, L1Ratio: -0.1, MaxIter: 10, Tol: 1e-6},
		{Alpha: 1, L1Ratio: 1.1, MaxIter: 10, Tol: 1e-6},
		{Alpha: 1, L1Ratio: 0.5, MaxIter: 0, Tol: 1e-6},
		{Alpha: 1, L1Ratio: 0.5, MaxIter: 10, Tol: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(DefaultParams(), &ml.Dataset{}); err == nil {
		t.Error("empty dataset: want error")
	}
	noY := &ml.Dataset{X: [][]float64{{1}}}
	if _, err := Fit(DefaultParams(), noY); err == nil {
		t.Error("missing targets: want error")
	}
	ragged := &ml.Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if _, err := Fit(DefaultParams(), ragged); err == nil {
		t.Error("ragged: want error")
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr ml.Trainer = NewTrainer(OLSParams())
	if tr.Name() != "elasticnet" {
		t.Errorf("Name = %q", tr.Name())
	}
	d := &ml.Dataset{X: [][]float64{{0}, {1}, {2}}, Y: []float64{0, 1, 2}}
	m, err := tr.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Predict([]float64{3}), 3, 1e-5) {
		t.Error("trainer-fitted model mispredicts")
	}
}
