// Package linear implements the linear-regression base-model family of paper
// §3.2.2/§5.2.2: ordinary least squares and its regularized variants up to
// the Elastic-Net the paper tunes ("Linear Regression ... tuned with
// Elastic-Net, which uses both ℓ1 and ℓ2 for regularization").
//
// Fitting uses cyclic coordinate descent on standardized features with
// soft-thresholding, the standard Elastic-Net algorithm (Friedman et al.),
// implemented from scratch on the stdlib.
package linear

import (
	"fmt"
	"math"

	"domd/internal/ml"
)

// Params configure an elastic-net fit. The penalty is
//
//	Alpha * (L1Ratio * ||w||_1 + (1-L1Ratio)/2 * ||w||_2²)
//
// so Alpha = 0 recovers OLS, L1Ratio = 0 ridge, and L1Ratio = 1 the lasso.
type Params struct {
	// Alpha is the overall regularization strength (>= 0).
	Alpha float64
	// L1Ratio balances ℓ1 vs ℓ2 in [0, 1].
	L1Ratio float64
	// MaxIter bounds coordinate-descent sweeps.
	MaxIter int
	// Tol stops iteration once the largest coefficient update falls
	// below it.
	Tol float64
}

// DefaultParams is a lightly regularized elastic net suited to the paper's
// wide, small-sample regime.
func DefaultParams() Params {
	return Params{Alpha: 1.0, L1Ratio: 0.5, MaxIter: 1000, Tol: 1e-7}
}

// OLSParams disables regularization.
func OLSParams() Params { return Params{Alpha: 0, L1Ratio: 0, MaxIter: 1000, Tol: 1e-9} }

// Validate rejects out-of-range parameters.
func (p Params) Validate() error {
	if p.Alpha < 0 {
		return fmt.Errorf("linear: alpha %f < 0", p.Alpha)
	}
	if p.L1Ratio < 0 || p.L1Ratio > 1 {
		return fmt.Errorf("linear: l1 ratio %f outside [0,1]", p.L1Ratio)
	}
	if p.MaxIter < 1 {
		return fmt.Errorf("linear: max iter %d < 1", p.MaxIter)
	}
	if p.Tol <= 0 {
		return fmt.Errorf("linear: tol %f <= 0", p.Tol)
	}
	return nil
}

// Trainer fits elastic nets with fixed Params; it satisfies ml.Trainer.
type Trainer struct{ Params Params }

// NewTrainer wraps Params in an ml.Trainer.
func NewTrainer(p Params) *Trainer { return &Trainer{Params: p} }

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "elasticnet" }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(d *ml.Dataset) (ml.Model, error) { return Fit(t.Params, d) }

// Model is a fitted linear regressor in original (unstandardized) units.
type Model struct {
	// Intercept and Coef define yhat = Intercept + Coef · x.
	Intercept float64
	Coef      []float64
}

// Fit trains an elastic net on d via coordinate descent on standardized
// copies of the columns, then folds the scaling back into Coef/Intercept.
func Fit(p Params, d *ml.Dataset) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n, cols := d.NumRows(), d.NumCols()
	if n == 0 || cols == 0 {
		return nil, fmt.Errorf("linear: empty dataset")
	}
	if d.Y == nil {
		return nil, fmt.Errorf("linear: training requires targets")
	}

	// Standardize features; center target.
	mean := make([]float64, cols)
	scale := make([]float64, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < n; i++ {
			mean[j] += d.X[i][j]
		}
		mean[j] /= float64(n)
		for i := 0; i < n; i++ {
			dv := d.X[i][j] - mean[j]
			scale[j] += dv * dv
		}
		scale[j] = math.Sqrt(scale[j] / float64(n))
		if scale[j] == 0 { //lint:ignore floateq a constant column sums to exactly zero variance
			scale[j] = 1 // constant column: coefficient will stay 0
		}
	}
	yMean := 0.0
	for _, y := range d.Y {
		yMean += y
	}
	yMean /= float64(n)

	// Z is the standardized column-major design; r the residual.
	Z := make([][]float64, cols)
	for j := range Z {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = (d.X[i][j] - mean[j]) / scale[j]
		}
		Z[j] = col
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = d.Y[i] - yMean
	}

	w := make([]float64, cols)
	l1 := p.Alpha * p.L1Ratio
	l2 := p.Alpha * (1 - p.L1Ratio)
	nf := float64(n)

	for iter := 0; iter < p.MaxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < cols; j++ {
			col := Z[j]
			// rho = (1/n) Σ z_ij (r_i + z_ij w_j); z has unit variance so
			// the denominator is 1 + l2.
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += col[i] * (r[i] + col[i]*w[j])
			}
			rho /= nf
			wNew := softThreshold(rho, l1) / (1 + l2)
			if delta := wNew - w[j]; delta != 0 { //lint:ignore floateq exact zero delta means a no-op coordinate update
				for i := 0; i < n; i++ {
					r[i] -= delta * col[i]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = wNew
			}
		}
		if maxDelta < p.Tol {
			break
		}
	}

	// Unstandardize: coef_j = w_j / scale_j; intercept adjusts for means.
	m := &Model{Coef: make([]float64, cols)}
	m.Intercept = yMean
	for j := 0; j < cols; j++ {
		m.Coef[j] = w[j] / scale[j]
		m.Intercept -= m.Coef[j] * mean[j]
	}
	return m, nil
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}

// Predict implements ml.Model.
func (m *Model) Predict(x []float64) float64 {
	out := m.Intercept
	for j, c := range m.Coef {
		out += c * x[j]
	}
	return out
}

// Importances implements ml.Model: absolute coefficient magnitudes.
func (m *Model) Importances() []float64 {
	imp := make([]float64, len(m.Coef))
	for j, c := range m.Coef {
		imp[j] = math.Abs(c)
	}
	return imp
}
