package ml

import (
	"testing"
)

func sample() *Dataset {
	return &Dataset{
		X: [][]float64{
			{1, 10, 100},
			{2, 20, 200},
			{3, 30, 300},
		},
		Y:     []float64{1, 2, 3},
		Names: []string{"a", "b", "c"},
	}
}

func TestShapeAccessors(t *testing.T) {
	d := sample()
	if d.NumRows() != 3 || d.NumCols() != 3 {
		t.Errorf("shape = %dx%d, want 3x3", d.NumRows(), d.NumCols())
	}
	empty := &Dataset{}
	if empty.NumRows() != 0 || empty.NumCols() != 0 {
		t.Error("empty dataset shape should be 0x0")
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	ragged := &Dataset{X: [][]float64{{1, 2}, {3}}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged: want error")
	}
	badY := &Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}
	if err := badY.Validate(); err == nil {
		t.Error("target length mismatch: want error")
	}
	badNames := &Dataset{X: [][]float64{{1}}, Names: []string{"a", "b"}}
	if err := badNames.Validate(); err == nil {
		t.Error("names length mismatch: want error")
	}
}

func TestColumn(t *testing.T) {
	d := sample()
	col := d.Column(1)
	want := []float64{10, 20, 30}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Column(1) = %v, want %v", col, want)
		}
	}
	// Mutating the copy must not touch the dataset.
	col[0] = -1
	if d.X[0][1] != 10 {
		t.Error("Column should return a copy")
	}
}

func TestSelect(t *testing.T) {
	d := sample()
	s := d.Select([]int{2, 0})
	if s.NumCols() != 2 || s.NumRows() != 3 {
		t.Fatalf("selected shape %dx%d", s.NumRows(), s.NumCols())
	}
	if s.X[1][0] != 200 || s.X[1][1] != 2 {
		t.Errorf("Select reordered wrong: %v", s.X[1])
	}
	if s.Names[0] != "c" || s.Names[1] != "a" {
		t.Errorf("Select names = %v", s.Names)
	}
	// Fresh rows: mutating selection must not affect original.
	s.X[0][0] = -1
	if d.X[0][2] != 100 {
		t.Error("Select must copy rows")
	}
}

func TestSubset(t *testing.T) {
	d := sample()
	s := d.Subset([]int{2, 0})
	if s.NumRows() != 2 {
		t.Fatalf("subset rows = %d", s.NumRows())
	}
	if s.Y[0] != 3 || s.Y[1] != 1 {
		t.Errorf("subset targets = %v", s.Y)
	}
	if s.X[0][0] != 3 {
		t.Errorf("subset rows wrong: %v", s.X)
	}
	noY := &Dataset{X: [][]float64{{1}, {2}}}
	if s2 := noY.Subset([]int{0}); s2.Y != nil {
		t.Error("subset of target-less dataset should have nil Y")
	}
}

func TestAppendColumn(t *testing.T) {
	d := sample()
	out, err := d.AppendColumn("static_pred", []float64{7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 4 {
		t.Fatalf("cols = %d, want 4", out.NumCols())
	}
	if out.X[2][3] != 9 {
		t.Errorf("appended value = %f, want 9", out.X[2][3])
	}
	if out.Names[3] != "static_pred" {
		t.Errorf("appended name = %q", out.Names[3])
	}
	// Original untouched.
	if len(d.X[0]) != 3 || len(d.Names) != 3 {
		t.Error("AppendColumn mutated original")
	}
	if _, err := d.AppendColumn("bad", []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

type constModel float64

func (c constModel) Predict([]float64) float64 { return float64(c) }
func (c constModel) Importances() []float64    { return nil }

func TestPredictBatch(t *testing.T) {
	got := PredictBatch(constModel(5), [][]float64{{1}, {2}})
	if len(got) != 2 || got[0] != 5 || got[1] != 5 {
		t.Errorf("PredictBatch = %v", got)
	}
}
