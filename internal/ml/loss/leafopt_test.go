package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAbsoluteOptimalLeafIsNegMedian(t *testing.T) {
	cases := []struct {
		res  []float64
		want float64
	}{
		{[]float64{5}, -5},
		{[]float64{1, 3}, -2},
		{[]float64{-10, 0, 10}, 0},
		{[]float64{100, 1, 2}, -2},
	}
	ab := Absolute{}
	for _, c := range cases {
		if got := ab.OptimalLeaf(c.res); got != c.want {
			t.Errorf("OptimalLeaf(%v) = %f, want %f", c.res, got, c.want)
		}
	}
}

// TestQuickOptimalLeafMinimizes checks that OptimalLeaf's answer is at least
// as good as nearby perturbations for every loss implementing it.
func TestQuickOptimalLeafMinimizes(t *testing.T) {
	ph, err := NewPseudoHuber(18)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHuber(18)
	if err != nil {
		t.Fatal(err)
	}
	opts := []interface {
		Loss
		LeafOptimizer
	}{Absolute{}, ph, hb}

	total := func(l Loss, res []float64, w float64) float64 {
		s := 0.0
		for _, r := range res {
			s += l.Value(r + w)
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		res := make([]float64, n)
		for i := range res {
			res[i] = rng.NormFloat64() * 200
		}
		for _, l := range opts {
			w := l.OptimalLeaf(res)
			base := total(l, res, w)
			for _, d := range []float64{-25, -5, -1, 1, 5, 25} {
				if total(l, res, w+d) < base-1e-6*math.Abs(base)-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOptimalLeafReachesLargeTargets(t *testing.T) {
	// A leaf full of residuals near -600 (prediction far below truth) must
	// produce a weight near +600 — the behaviour the plain Newton step
	// cannot achieve for saturating losses.
	res := []float64{-580, -600, -620}
	ph, _ := NewPseudoHuber(18)
	if w := ph.OptimalLeaf(res); math.Abs(w-600) > 25 {
		t.Errorf("pseudo-huber leaf = %f, want ≈600", w)
	}
	if w := (Absolute{}).OptimalLeaf(res); w != 600 {
		t.Errorf("l1 leaf = %f, want 600", w)
	}
}

func TestOptimalLeafEmpty(t *testing.T) {
	if w := (Absolute{}).OptimalLeaf(nil); w != 0 {
		t.Errorf("empty leaf = %f, want 0", w)
	}
}
