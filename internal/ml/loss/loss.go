// Package loss implements the training loss functions of paper §3.2.3 with
// the first and second derivatives gradient boosting needs: squared (ℓ2),
// absolute (ℓ1), Huber, and the smooth pseudo-Huber the paper ultimately
// selects with δ = 18.
//
// All functions are expressed in terms of the residual r = prediction - truth
// so that Grad is the derivative of Value with respect to the prediction.
package loss

import (
	"fmt"
	"math"
	"sort"
)

// Loss exposes a pointwise training objective. Hess must return a strictly
// positive value so Newton boosting steps stay finite; non-smooth losses
// return a stabilized surrogate as XGBoost does.
type Loss interface {
	// Name identifies the loss (used in reports and CLI flags).
	Name() string
	// Value is the loss at residual r = yhat - y.
	Value(r float64) float64
	// Grad is dValue/dyhat at residual r.
	Grad(r float64) float64
	// Hess is d²Value/dyhat² at residual r (stabilized where needed).
	Hess(r float64) float64
}

// LeafOptimizer is implemented by losses whose Newton surrogate is too flat
// to fit large residuals in one step (ℓ1 and the Huber family: their
// Hessians vanish for large residuals). OptimalLeaf returns the constant w
// minimizing Σᵢ loss(rᵢ + w) over the leaf's residuals — the classical
// TreeBoost per-leaf line search. Boosters re-estimate leaf weights with it
// when available.
type LeafOptimizer interface {
	OptimalLeaf(residuals []float64) float64
}

// medianOf returns the median (input is not mutated).
func medianOf(rs []float64) float64 {
	s := append([]float64(nil), rs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// newtonLeaf refines w from a median start with a few damped Newton steps on
// the true loss.
func newtonLeaf(l Loss, residuals []float64, w float64) float64 {
	for iter := 0; iter < 5; iter++ {
		var g, h float64
		for _, r := range residuals {
			g += l.Grad(r + w)
			h += l.Hess(r + w)
		}
		if h < 1e-9 {
			break
		}
		step := g / h
		w -= step
		if math.Abs(step) < 1e-9 {
			break
		}
	}
	return w
}

// Squared is the ℓ2 loss ½r²; its gradient is the residual itself. Highly
// sensitive to outliers (paper §3.2.3).
type Squared struct{}

// Name implements Loss.
func (Squared) Name() string { return "l2" }

// Value implements Loss.
func (Squared) Value(r float64) float64 { return 0.5 * r * r }

// Grad implements Loss.
func (Squared) Grad(r float64) float64 { return r }

// Hess implements Loss.
func (Squared) Hess(r float64) float64 { return 1 }

// Absolute is the ℓ1 loss |r|. Its Hessian is zero almost everywhere, so a
// small constant is substituted to keep Newton steps bounded (the standard
// gradient-boosting treatment of non-smooth objectives).
type Absolute struct{}

// Name implements Loss.
func (Absolute) Name() string { return "l1" }

// Value implements Loss.
func (Absolute) Value(r float64) float64 { return math.Abs(r) }

// Grad implements Loss.
func (Absolute) Grad(r float64) float64 {
	switch {
	case r > 0:
		return 1
	case r < 0:
		return -1
	default:
		return 0
	}
}

// Hess implements Loss.
func (Absolute) Hess(r float64) float64 { return 1 } // surrogate: unit curvature

// OptimalLeaf implements LeafOptimizer: the ℓ1-optimal constant is the
// negated median of the residuals.
func (Absolute) OptimalLeaf(residuals []float64) float64 { return -medianOf(residuals) }

// Huber is the classical Huber loss of paper §3.2.3: quadratic within ±δ,
// linear beyond.
type Huber struct{ Delta float64 }

// NewHuber validates δ > 0.
func NewHuber(delta float64) (Huber, error) {
	if delta <= 0 {
		return Huber{}, fmt.Errorf("loss: huber delta %f must be > 0", delta)
	}
	return Huber{Delta: delta}, nil
}

// Name implements Loss.
func (h Huber) Name() string { return fmt.Sprintf("huber(%g)", h.Delta) }

// Value implements Loss.
func (h Huber) Value(r float64) float64 {
	a := math.Abs(r)
	if a <= h.Delta {
		return 0.5 * r * r
	}
	return h.Delta * (a - 0.5*h.Delta)
}

// Grad implements Loss.
func (h Huber) Grad(r float64) float64 {
	if math.Abs(r) <= h.Delta {
		return r
	}
	if r > 0 {
		return h.Delta
	}
	return -h.Delta
}

// Hess implements Loss.
func (h Huber) Hess(r float64) float64 {
	if math.Abs(r) <= h.Delta {
		return 1
	}
	return 1e-6 // stabilized: linear region has zero curvature
}

// OptimalLeaf implements LeafOptimizer: median start plus damped Newton.
func (h Huber) OptimalLeaf(residuals []float64) float64 {
	return newtonLeaf(h, residuals, -medianOf(residuals))
}

// PseudoHuber is the smooth approximation δ²(√(1+(r/δ)²)−1) the paper tunes
// to δ = 18 and adopts as the final loss. Unlike Huber it is twice
// continuously differentiable everywhere, which suits second-order boosting.
type PseudoHuber struct{ Delta float64 }

// NewPseudoHuber validates δ > 0.
func NewPseudoHuber(delta float64) (PseudoHuber, error) {
	if delta <= 0 {
		return PseudoHuber{}, fmt.Errorf("loss: pseudo-huber delta %f must be > 0", delta)
	}
	return PseudoHuber{Delta: delta}, nil
}

// PaperDelta is the δ the paper selects in §5.2.2.
const PaperDelta = 18.0

// Name implements Loss.
func (p PseudoHuber) Name() string { return fmt.Sprintf("pseudohuber(%g)", p.Delta) }

// Value implements Loss.
func (p PseudoHuber) Value(r float64) float64 {
	q := r / p.Delta
	return p.Delta * p.Delta * (math.Sqrt(1+q*q) - 1)
}

// Grad implements Loss.
func (p PseudoHuber) Grad(r float64) float64 {
	q := r / p.Delta
	return r / math.Sqrt(1+q*q)
}

// Hess implements Loss.
func (p PseudoHuber) Hess(r float64) float64 {
	q := r / p.Delta
	s := 1 + q*q
	return 1 / (s * math.Sqrt(s))
}

// OptimalLeaf implements LeafOptimizer: median start plus damped Newton.
func (p PseudoHuber) OptimalLeaf(residuals []float64) float64 {
	return newtonLeaf(p, residuals, -medianOf(residuals))
}

// Parse builds a Loss from its CLI name: "l2", "l1", "huber",
// "pseudohuber" (the latter two with the given δ, or the paper default) or
// "pinball" (delta reinterpreted as the quantile τ, default 0.5).
func Parse(name string, delta float64) (Loss, error) {
	switch name {
	case "l2", "squared":
		return Squared{}, nil
	case "l1", "absolute":
		return Absolute{}, nil
	case "huber":
		if delta == 0 { //lint:ignore floateq the zero value selects the paper default; no arithmetic precedes it
			delta = PaperDelta
		}
		return NewHuber(delta)
	case "pseudohuber", "pseudo-huber":
		if delta == 0 { //lint:ignore floateq the zero value selects the paper default; no arithmetic precedes it
			delta = PaperDelta
		}
		return NewPseudoHuber(delta)
	case "pinball", "quantile":
		if delta == 0 { //lint:ignore floateq the zero value selects the paper default; no arithmetic precedes it
			delta = 0.5
		}
		return NewPinball(delta)
	default:
		return nil, fmt.Errorf("loss: unknown loss %q", name)
	}
}
