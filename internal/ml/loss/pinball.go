package loss

import (
	"fmt"
	"sort"
)

// Pinball is the quantile-regression loss: training under Pinball(τ) makes
// the booster estimate the τ-quantile of delay instead of its center. This
// extends the paper's point estimates to risk bands — e.g. "the 90th-
// percentile completion date" — which is how a planner prices schedule risk
// (each day of delay costs ≈$250k, paper §1).
//
// With residual r = ŷ − y (so u = −r is the classical y − ŷ):
//
//	L_τ(r) = (1−τ)·r    for r ≥ 0  (over-prediction)
//	         −τ·r       for r < 0  (under-prediction)
type Pinball struct{ Tau float64 }

// NewPinball validates τ ∈ (0, 1).
func NewPinball(tau float64) (Pinball, error) {
	if tau <= 0 || tau >= 1 {
		return Pinball{}, fmt.Errorf("loss: pinball tau %f outside (0,1)", tau)
	}
	return Pinball{Tau: tau}, nil
}

// Name implements Loss.
func (p Pinball) Name() string { return fmt.Sprintf("pinball(%g)", p.Tau) }

// Value implements Loss.
func (p Pinball) Value(r float64) float64 {
	if r >= 0 {
		return (1 - p.Tau) * r
	}
	return -p.Tau * r
}

// Grad implements Loss.
func (p Pinball) Grad(r float64) float64 {
	if r > 0 {
		return 1 - p.Tau
	}
	if r < 0 {
		return -p.Tau
	}
	return 0
}

// Hess implements Loss (unit surrogate; the booster's TreeBoost path uses
// OptimalLeaf instead).
func (Pinball) Hess(float64) float64 { return 1 }

// OptimalLeaf implements LeafOptimizer: the constant minimizing the pinball
// loss over the leaf is the τ-quantile of (−residuals).
func (p Pinball) OptimalLeaf(residuals []float64) float64 {
	n := len(residuals)
	if n == 0 {
		return 0
	}
	// We want w minimizing Σ L_τ(r_i + w): w* = τ-quantile of {−r_i}.
	neg := make([]float64, n)
	for i, r := range residuals {
		neg[i] = -r
	}
	sort.Float64s(neg)
	// Lower empirical quantile (type-1): index ⌈τ·n⌉ − 1.
	idx := int(p.Tau*float64(n)+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return neg[idx]
}
