package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPinballValues(t *testing.T) {
	p, err := NewPinball(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Under-prediction (r = -10) costs τ·10 = 9; over-prediction costs 1.
	if v := p.Value(-10); math.Abs(v-9) > 1e-12 {
		t.Errorf("under-prediction cost = %f, want 9", v)
	}
	if v := p.Value(10); math.Abs(v-1) > 1e-12 {
		t.Errorf("over-prediction cost = %f, want 1", v)
	}
	if p.Value(0) != 0 || p.Grad(0) != 0 {
		t.Error("zero residual should cost nothing")
	}
	if g := p.Grad(-5); g != -0.9 {
		t.Errorf("grad(-5) = %f, want -0.9", g)
	}
	if g := p.Grad(5); math.Abs(g-0.1) > 1e-12 {
		t.Errorf("grad(5) = %f, want 0.1", g)
	}
}

func TestPinballValidation(t *testing.T) {
	for _, tau := range []float64{0, 1, -0.5, 2} {
		if _, err := NewPinball(tau); err == nil {
			t.Errorf("tau=%f: want error", tau)
		}
	}
}

func TestPinballOptimalLeafIsQuantile(t *testing.T) {
	// residuals = -y (prediction 0): optimal w is the τ-quantile of y.
	ys := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	res := make([]float64, len(ys))
	for i, y := range ys {
		res[i] = -y
	}
	p, _ := NewPinball(0.9)
	if w := p.OptimalLeaf(res); w != 90 {
		t.Errorf("0.9-quantile leaf = %f, want 90", w)
	}
	p5, _ := NewPinball(0.5)
	if w := p5.OptimalLeaf(res); w != 50 {
		t.Errorf("median leaf = %f, want 50", w)
	}
	p1, _ := NewPinball(0.1)
	if w := p1.OptimalLeaf(res); w != 10 {
		t.Errorf("0.1-quantile leaf = %f, want 10", w)
	}
	if w := p5.OptimalLeaf(nil); w != 0 {
		t.Errorf("empty leaf = %f", w)
	}
}

// TestQuickPinballLeafMinimizes: the returned leaf value must be a
// minimizer of the empirical pinball loss.
func TestQuickPinballLeafMinimizes(t *testing.T) {
	f := func(seed int64, tauRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := 0.05 + 0.9*float64(tauRaw)/255
		p, err := NewPinball(tau)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(40)
		res := make([]float64, n)
		for i := range res {
			res[i] = rng.NormFloat64() * 100
		}
		w := p.OptimalLeaf(res)
		total := func(w float64) float64 {
			s := 0.0
			for _, r := range res {
				s += p.Value(r + w)
			}
			return s
		}
		base := total(w)
		for _, d := range []float64{-20, -1, 1, 20} {
			if total(w+d) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParsePinball(t *testing.T) {
	l, err := Parse("pinball", 0.9)
	if err != nil || l.Name() != "pinball(0.9)" {
		t.Errorf("Parse(pinball, 0.9) = %v, %v", l, err)
	}
	l, err = Parse("quantile", 0)
	if err != nil || l.Name() != "pinball(0.5)" {
		t.Errorf("Parse(quantile, 0) = %v, %v", l, err)
	}
	if _, err := Parse("pinball", 2); err == nil {
		t.Error("tau=2: want error")
	}
}
