package loss

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func all(t *testing.T) []Loss {
	t.Helper()
	h, err := NewHuber(2)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := NewPseudoHuber(PaperDelta)
	if err != nil {
		t.Fatal(err)
	}
	return []Loss{Squared{}, Absolute{}, h, ph}
}

func TestValueAtZero(t *testing.T) {
	for _, l := range all(t) {
		if v := l.Value(0); v != 0 {
			t.Errorf("%s: Value(0) = %f, want 0", l.Name(), v)
		}
		if g := l.Grad(0); g != 0 {
			t.Errorf("%s: Grad(0) = %f, want 0", l.Name(), g)
		}
	}
}

func TestKnownValues(t *testing.T) {
	if v := (Squared{}).Value(4); v != 8 {
		t.Errorf("l2(4) = %f, want 8", v)
	}
	if v := (Absolute{}).Value(-3); v != 3 {
		t.Errorf("l1(-3) = %f, want 3", v)
	}
	h, _ := NewHuber(2)
	if v := h.Value(1); v != 0.5 {
		t.Errorf("huber(1) inside = %f, want 0.5", v)
	}
	// Outside: δ(|r| - δ/2) = 2*(5-1) = 8.
	if v := h.Value(5); v != 8 {
		t.Errorf("huber(5) outside = %f, want 8", v)
	}
	ph, _ := NewPseudoHuber(1)
	// δ=1: value(r) = sqrt(1+r²)-1; at r=0 it's 0, at large r ~ |r|-1.
	if v := ph.Value(0); v != 0 {
		t.Errorf("pseudohuber(0) = %f, want 0", v)
	}
	if v := ph.Value(1000); !almost(v, 999, 0.01) {
		t.Errorf("pseudohuber(1000) = %f, want ~999", v)
	}
}

func TestGradMatchesNumericalDerivative(t *testing.T) {
	// Skip the kink of ℓ1/Huber by testing at smooth points.
	points := []float64{-37.2, -5, -1.3, -0.4, 0.7, 1.9, 6.5, 42}
	const eps = 1e-6
	for _, l := range all(t) {
		for _, r := range points {
			want := (l.Value(r+eps) - l.Value(r-eps)) / (2 * eps)
			if got := l.Grad(r); !almost(got, want, 1e-4) {
				t.Errorf("%s: Grad(%f) = %f, numerical %f", l.Name(), r, got, want)
			}
		}
	}
}

func TestPseudoHuberHessMatchesNumerical(t *testing.T) {
	ph, _ := NewPseudoHuber(18)
	const eps = 1e-4
	for _, r := range []float64{-50, -18, -1, 0, 1, 18, 50, 200} {
		want := (ph.Grad(r+eps) - ph.Grad(r-eps)) / (2 * eps)
		if got := ph.Hess(r); !almost(got, want, 1e-5) {
			t.Errorf("Hess(%f) = %f, numerical %f", r, got, want)
		}
	}
}

func TestHessPositive(t *testing.T) {
	for _, l := range all(t) {
		for _, r := range []float64{-1000, -1, 0, 1, 1000} {
			if h := l.Hess(r); h <= 0 {
				t.Errorf("%s: Hess(%f) = %f, want > 0", l.Name(), r, h)
			}
		}
	}
}

// TestQuickLossProperties: losses are non-negative, even in r, and
// monotone in |r|.
func TestQuickLossProperties(t *testing.T) {
	losses := all(t)
	f := func(rRaw int16) bool {
		r := float64(rRaw) / 100
		for _, l := range losses {
			if l.Value(r) < 0 {
				return false
			}
			if !almost(l.Value(r), l.Value(-r), 1e-9) {
				return false
			}
			if l.Value(r*2) < l.Value(r)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOutlierSensitivityOrdering pins the paper's §3.2.3 claim: for large
// residuals ℓ2 penalizes hardest, pseudo-Huber/Huber grow linearly like ℓ1.
func TestOutlierSensitivityOrdering(t *testing.T) {
	ph, _ := NewPseudoHuber(18)
	h, _ := NewHuber(18)
	r := 500.0
	sq := Squared{}
	ab := Absolute{}
	l2 := sq.Value(r)
	l1 := ab.Value(r)
	if l2 <= ph.Value(r) || l2 <= h.Value(r) || l2 <= l1 {
		t.Errorf("ℓ2 (%f) must dominate robust losses at r=%f", l2, r)
	}
	// Pseudo-Huber grad saturates near δ for large residuals.
	if g := ph.Grad(1e6); !almost(g, 18, 0.01) {
		t.Errorf("pseudo-huber grad saturates at δ: got %f", g)
	}
	if g := sq.Grad(1e6); g != 1e6 {
		t.Errorf("ℓ2 grad unbounded: got %f", g)
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewHuber(0); err == nil {
		t.Error("NewHuber(0): want error")
	}
	if _, err := NewHuber(-1); err == nil {
		t.Error("NewHuber(-1): want error")
	}
	if _, err := NewPseudoHuber(0); err == nil {
		t.Error("NewPseudoHuber(0): want error")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"l2", "l2"},
		{"squared", "l2"},
		{"l1", "l1"},
		{"absolute", "l1"},
		{"huber", "huber(18)"},
		{"pseudohuber", "pseudohuber(18)"},
		{"pseudo-huber", "pseudohuber(18)"},
	}
	for _, c := range cases {
		l, err := Parse(c.name, 0)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.name, err)
		}
		if l.Name() != c.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.name, l.Name(), c.want)
		}
	}
	if l, err := Parse("huber", 5); err != nil || l.Name() != "huber(5)" {
		t.Errorf("Parse(huber, 5) = %v, %v", l, err)
	}
	if _, err := Parse("hinge", 0); err == nil {
		t.Error("Parse(hinge): want error")
	}
}
