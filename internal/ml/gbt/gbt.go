// Package gbt implements the eXtreme Gradient Boosting regressor used as the
// framework's primary base model (paper §3.2.2 / §5.2, citing XGBoost):
// second-order (Newton) gradient boosting of regularized regression trees
// with shrinkage, row subsampling and column subsampling. Any loss from
// package loss may drive training, including the pseudo-Huber(δ=18) the
// paper selects.
package gbt

import (
	"fmt"
	"math/rand"

	"domd/internal/ml"
	"domd/internal/ml/loss"
	"domd/internal/ml/tree"
)

// Params are the booster hyperparameters; they constitute the search space
// of the AutoHPT module (Task 5).
type Params struct {
	// NumRounds is the number of boosting rounds (trees).
	NumRounds int
	// LearningRate η shrinks each tree's contribution.
	LearningRate float64
	// MaxDepth bounds each tree.
	MaxDepth int
	// MinChildWeight is the minimum hessian mass per leaf child.
	MinChildWeight float64
	// Lambda is L2 regularization on leaf weights.
	Lambda float64
	// Gamma is the minimum split gain.
	Gamma float64
	// Subsample is the row sampling fraction per round in (0, 1].
	Subsample float64
	// ColsampleByTree is the feature sampling fraction per tree in (0, 1].
	ColsampleByTree float64
	// TreeMethod selects split finding: "exact" (default) sorts rows per
	// node; "hist" pre-buckets features into quantile bins (XGBoost's
	// approx method), much faster on large row counts.
	TreeMethod string
	// Bins is the histogram resolution for TreeMethod "hist" (default 64).
	Bins int
	// Seed drives the subsampling RNG.
	Seed int64
}

// DefaultParams mirror XGBoost defaults at a scale suited to ~200-row data.
func DefaultParams() Params {
	return Params{
		NumRounds:       100,
		LearningRate:    0.1,
		MaxDepth:        4,
		MinChildWeight:  1,
		Lambda:          1,
		Gamma:           0,
		Subsample:       1,
		ColsampleByTree: 1,
		Seed:            1,
	}
}

// Validate rejects out-of-range hyperparameters.
func (p Params) Validate() error {
	if p.NumRounds < 1 {
		return fmt.Errorf("gbt: num rounds %d < 1", p.NumRounds)
	}
	if p.LearningRate <= 0 || p.LearningRate > 1 {
		return fmt.Errorf("gbt: learning rate %f outside (0,1]", p.LearningRate)
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		return fmt.Errorf("gbt: subsample %f outside (0,1]", p.Subsample)
	}
	if p.ColsampleByTree <= 0 || p.ColsampleByTree > 1 {
		return fmt.Errorf("gbt: colsample %f outside (0,1]", p.ColsampleByTree)
	}
	switch p.TreeMethod {
	case "", "exact":
	case "hist":
		if p.Bins != 0 && (p.Bins < 2 || p.Bins > tree.MaxHistBins) {
			return fmt.Errorf("gbt: bins %d outside [2,%d]", p.Bins, tree.MaxHistBins)
		}
	default:
		return fmt.Errorf("gbt: unknown tree method %q", p.TreeMethod)
	}
	return tree.Config{
		MaxDepth:       p.MaxDepth,
		MinChildWeight: p.MinChildWeight,
		Lambda:         p.Lambda,
		Gamma:          p.Gamma,
	}.Validate()
}

// Trainer fits boosters with fixed Params and Loss; it satisfies ml.Trainer.
type Trainer struct {
	Params Params
	Loss   loss.Loss
}

// NewTrainer builds a Trainer, defaulting the loss to ℓ2.
func NewTrainer(p Params, l loss.Loss) *Trainer {
	if l == nil {
		l = loss.Squared{}
	}
	return &Trainer{Params: p, Loss: l}
}

// Name implements ml.Trainer.
func (t *Trainer) Name() string { return "xgboost" }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(d *ml.Dataset) (ml.Model, error) {
	return Fit(t.Params, t.Loss, d)
}

// Model is a trained boosted ensemble.
type Model struct {
	base     float64 // global bias (mean target)
	eta      float64
	trees    []*tree.Node
	nFeature int
}

// Fit trains a booster on d. d.Y must be set.
func Fit(p Params, l loss.Loss, d *ml.Dataset) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Y == nil || len(d.Y) == 0 {
		return nil, fmt.Errorf("gbt: training requires targets")
	}
	if l == nil {
		l = loss.Squared{}
	}
	n, pCols := d.NumRows(), d.NumCols()
	if pCols == 0 {
		return nil, fmt.Errorf("gbt: training requires at least one feature")
	}

	// Base score: the loss-optimal constant (mean for ℓ2, median-refined
	// for the robust losses).
	base := 0.0
	for _, y := range d.Y {
		base += y
	}
	base /= float64(n)
	if opt, ok := l.(loss.LeafOptimizer); ok {
		neg := make([]float64, n)
		for i, y := range d.Y {
			neg[i] = -y
		}
		base = opt.OptimalLeaf(neg)
	}

	m := &Model{base: base, eta: p.LearningRate, nFeature: pCols}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	g := make([]float64, n)
	h := make([]float64, n)
	rng := rand.New(rand.NewSource(p.Seed))

	cfg := tree.Config{
		MaxDepth:        p.MaxDepth,
		MinChildWeight:  p.MinChildWeight,
		Lambda:          p.Lambda,
		Gamma:           p.Gamma,
		MinSamplesSplit: 2,
	}

	// Robust losses (ℓ1, Huber family) pair TreeBoost-style: the tree is
	// grown on pure gradients with unit weights (so MinChildWeight means
	// rows, not vanishing Hessian mass), and leaf values are re-estimated
	// by per-leaf line search below. Smooth ℓ2 keeps exact Newton steps.
	_, treeBoost := l.(loss.LeafOptimizer)

	var binner *tree.Binner
	if p.TreeMethod == "hist" {
		bins := p.Bins
		if bins == 0 {
			bins = 64
		}
		var err error
		binner, err = tree.NewBinner(d.X, bins)
		if err != nil {
			return nil, err
		}
	}

	allRows := seq(n)
	allCols := seq(pCols)
	for round := 0; round < p.NumRounds; round++ {
		for i := range g {
			r := pred[i] - d.Y[i]
			g[i] = l.Grad(r)
			if treeBoost {
				h[i] = 1
			} else {
				h[i] = l.Hess(r)
			}
		}
		rows := sample(rng, allRows, p.Subsample)
		cols := sample(rng, allCols, p.ColsampleByTree)
		var tr *tree.Node
		var err error
		if binner != nil {
			tr, err = tree.BuildHist(cfg, binner, g, h, rows, cols)
		} else {
			tr, err = tree.Build(cfg, d.X, g, h, rows, cols)
		}
		if err != nil {
			return nil, fmt.Errorf("gbt: round %d: %w", round, err)
		}
		// TreeBoost leaf re-estimation: losses with vanishing Hessians
		// (ℓ1, Huber family) replace each leaf's Newton weight with the
		// loss-optimal constant over its residuals, so large targets are
		// reachable without losing robustness.
		if opt, ok := l.(loss.LeafOptimizer); ok {
			refitLeaves(tr, opt, d, pred, rows)
		}
		m.trees = append(m.trees, tr)
		for i, row := range d.X {
			pred[i] += p.LearningRate * tr.Predict(row)
		}
	}
	return m, nil
}

// Predict implements ml.Model.
func (m *Model) Predict(x []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.eta * t.Predict(x)
	}
	return out
}

// Importances implements ml.Model: total split gain per feature.
func (m *Model) Importances() []float64 {
	imp := make([]float64, m.nFeature)
	for _, t := range m.trees {
		t.AccumImportances(imp)
	}
	return imp
}

// NumTrees reports the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// refitLeaves assigns each training row (of this round's subsample) to its
// leaf and replaces the leaf weight with the loss-optimal constant for the
// residuals routed there.
func refitLeaves(root *tree.Node, opt loss.LeafOptimizer, d *ml.Dataset, pred []float64, rows []int) {
	byLeaf := make(map[*tree.Node][]float64)
	for _, i := range rows {
		leaf := root.LeafFor(d.X[i])
		byLeaf[leaf] = append(byLeaf[leaf], pred[i]-d.Y[i])
	}
	for leaf, residuals := range byLeaf {
		leaf.Weight = opt.OptimalLeaf(residuals)
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// sample returns a random fraction of xs without replacement (at least one
// element). frac == 1 returns xs itself.
func sample(rng *rand.Rand, xs []int, frac float64) []int {
	if frac >= 1 {
		return xs
	}
	k := int(frac * float64(len(xs)))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(len(xs))[:k]
	out := make([]int, k)
	for i, j := range perm {
		out[i] = xs[j]
	}
	return out
}
