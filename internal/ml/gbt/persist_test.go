package gbt

import (
	"encoding/json"
	"math/rand"
	"testing"

	"domd/internal/ml/loss"
)

func TestModelJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := synthNonlinear(rng, 150)
	p := DefaultParams()
	p.NumRounds = 40
	m, err := Fit(p, loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if m.Predict(d.X[i]) != back.Predict(d.X[i]) {
			t.Fatal("prediction changed after JSON round trip")
		}
	}
	if back.NumTrees() != m.NumTrees() {
		t.Errorf("trees %d vs %d", back.NumTrees(), m.NumTrees())
	}
	impA, impB := m.Importances(), back.Importances()
	for j := range impA {
		if impA[j] != impB[j] {
			t.Fatal("importances changed after round trip")
		}
	}
}

func TestModelUnmarshalRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":       `{{{`,
		"zero features":  `{"base":0,"eta":0.1,"num_features":0,"trees":[]}`,
		"null tree":      `{"base":0,"eta":0.1,"num_features":1,"trees":[null]}`,
		"missing child":  `{"base":0,"eta":0.1,"num_features":1,"trees":[{"Feature":0,"Threshold":1}]}`,
		"feature range":  `{"base":0,"eta":0.1,"num_features":1,"trees":[{"Feature":5,"Threshold":1,"Left":{"Feature":-1},"Right":{"Feature":-1}}]}`,
		"deep bad child": `{"base":0,"eta":0.1,"num_features":2,"trees":[{"Feature":0,"Threshold":1,"Left":{"Feature":1,"Threshold":2},"Right":{"Feature":-1}}]}`,
	}
	for name, raw := range cases {
		var m Model
		if err := json.Unmarshal([]byte(raw), &m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A healthy minimal model parses.
	ok := `{"base":3,"eta":0.1,"num_features":1,"trees":[{"Feature":-1,"Weight":2}]}`
	var m Model
	if err := json.Unmarshal([]byte(ok), &m); err != nil {
		t.Fatalf("minimal model rejected: %v", err)
	}
	if got := m.Predict([]float64{0}); got != 3.2 {
		t.Errorf("Predict = %f, want 3.2", got)
	}
}

func TestSubsampleEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := synthLinear(rng, 50)
	// Tiny subsample fraction still trains (at least one row per tree).
	p := DefaultParams()
	p.NumRounds = 5
	p.Subsample = 0.01
	p.ColsampleByTree = 0.01
	if _, err := Fit(p, loss.Squared{}, d); err != nil {
		t.Fatal(err)
	}
}
