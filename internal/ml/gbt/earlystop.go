package gbt

import (
	"fmt"
	"math"

	"domd/internal/ml"
	"domd/internal/ml/loss"
)

// FitEarlyStopping trains like Fit but monitors the mean loss on a held-out
// validation set after every round and stops once it has not improved for
// patience rounds, returning the model truncated at the best round. This is
// the standard defence against the over-tuning effect the paper observes in
// Fig. 6e (more optimization eventually hurting generalization).
func FitEarlyStopping(p Params, l loss.Loss, train, val *ml.Dataset, patience int) (*Model, int, error) {
	if patience < 1 {
		return nil, 0, fmt.Errorf("gbt: patience %d < 1", patience)
	}
	if err := val.Validate(); err != nil {
		return nil, 0, err
	}
	if val.Y == nil || len(val.Y) == 0 {
		return nil, 0, fmt.Errorf("gbt: early stopping requires validation targets")
	}
	if l == nil {
		l = loss.Squared{}
	}
	m, err := Fit(p, l, train)
	if err != nil {
		return nil, 0, err
	}
	// Replay the ensemble on the validation set round by round; this costs
	// one prediction pass total because contributions accumulate.
	preds := make([]float64, len(val.X))
	for i := range preds {
		preds[i] = m.base
	}
	bestRound, bestLoss := 0, valLoss(l, val, preds)
	for round, tr := range m.trees {
		for i, row := range val.X {
			preds[i] += m.eta * tr.Predict(row)
		}
		cur := valLoss(l, val, preds)
		if cur < bestLoss-1e-12 {
			bestLoss = cur
			bestRound = round + 1
		} else if round+1-bestRound >= patience {
			break
		}
	}
	m.trees = m.trees[:bestRound]
	return m, bestRound, nil
}

func valLoss(l loss.Loss, val *ml.Dataset, preds []float64) float64 {
	s := 0.0
	for i := range preds {
		s += l.Value(preds[i] - val.Y[i])
	}
	if len(preds) == 0 {
		return math.Inf(1)
	}
	return s / float64(len(preds))
}
