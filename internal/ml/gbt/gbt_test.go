package gbt

import (
	"math"
	"math/rand"
	"testing"

	"domd/internal/ml"
	"domd/internal/ml/loss"
)

func synthLinear(rng *rand.Rand, n int) *ml.Dataset {
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		d.X[i] = []float64{a, b}
		d.Y[i] = 3*a - 2*b + rng.NormFloat64()*0.1
	}
	return d
}

func synthNonlinear(rng *rand.Rand, n int) *ml.Dataset {
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		d.X[i] = []float64{a, b, c}
		d.Y[i] = 40*math.Sin(a*5) + 30*a*b + 10*c + rng.NormFloat64()
	}
	return d
}

func mse(m ml.Model, d *ml.Dataset) float64 {
	s := 0.0
	for i, row := range d.X {
		r := d.Y[i] - m.Predict(row)
		s += r * r
	}
	return s / float64(len(d.X))
}

func TestFitsLinearSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := synthLinear(rng, 300)
	test := synthLinear(rng, 100)
	p := DefaultParams()
	p.NumRounds = 200
	m, err := Fit(p, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	// Target variance is ~ (3*10)^2/12 + (2*10)^2/12 ≈ 108; demand R2-like fit.
	if e := mse(m, test); e > 10 {
		t.Errorf("test MSE = %f, want < 10", e)
	}
	if m.NumTrees() != 200 {
		t.Errorf("NumTrees = %d, want 200", m.NumTrees())
	}
}

func TestFitsNonlinearSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := synthNonlinear(rng, 500)
	test := synthNonlinear(rng, 200)
	p := DefaultParams()
	p.NumRounds = 300
	p.MaxDepth = 5
	m, err := Fit(p, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	// Mean-only baseline MSE is Var(y) ≈ 500; boosted model must crush it.
	meanY := 0.0
	for _, y := range test.Y {
		meanY += y
	}
	meanY /= float64(len(test.Y))
	varY := 0.0
	for _, y := range test.Y {
		varY += (y - meanY) * (y - meanY)
	}
	varY /= float64(len(test.Y))
	if e := mse(m, test); e > varY/5 {
		t.Errorf("test MSE = %f, want < var/5 = %f", e, varY/5)
	}
}

func TestMoreRoundsReduceTrainingError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := synthNonlinear(rng, 200)
	var prev = math.Inf(1)
	for _, rounds := range []int{5, 25, 100} {
		p := DefaultParams()
		p.NumRounds = rounds
		m, err := Fit(p, loss.Squared{}, d)
		if err != nil {
			t.Fatal(err)
		}
		e := mse(m, d)
		if e > prev+1e-9 {
			t.Errorf("rounds %d: training MSE %f worse than fewer rounds %f", rounds, e, prev)
		}
		prev = e
	}
}

func TestRobustLossResistsOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Clean linear signal plus gross target outliers in training only.
	train := synthLinear(rng, 300)
	for i := 0; i < 20; i++ {
		train.Y[rng.Intn(len(train.Y))] += 2000
	}
	test := synthLinear(rng, 150)

	p := DefaultParams()
	p.NumRounds = 150
	ph, err := loss.NewPseudoHuber(18)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := Fit(p, ph, train)
	if err != nil {
		t.Fatal(err)
	}
	squared, err := Fit(p, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	er, es := mse(robust, test), mse(squared, test)
	if er >= es {
		t.Errorf("pseudo-huber test MSE %f should beat ℓ2 %f under outliers", er, es)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := synthNonlinear(rng, 150)
	p := DefaultParams()
	p.Subsample = 0.7
	p.ColsampleByTree = 0.7
	p.NumRounds = 30
	m1, err := Fit(p, loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(p, loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := d.X[i]
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatal("same seed must reproduce identical models")
		}
	}
	p.Seed = 999
	m3, err := Fit(p, loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < len(d.X); i++ {
		if m1.Predict(d.X[i]) != m3.Predict(d.X[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds with subsampling should differ")
	}
}

func TestImportancesIdentifyInformativeFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 400
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		signal := rng.Float64()
		noise1, noise2 := rng.Float64(), rng.Float64()
		d.X[i] = []float64{noise1, signal, noise2}
		d.Y[i] = 100*signal*signal + rng.NormFloat64()*0.5
	}
	p := DefaultParams()
	p.NumRounds = 50
	m, err := Fit(p, loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Importances()
	if len(imp) != 3 {
		t.Fatalf("importances len = %d, want 3", len(imp))
	}
	if imp[1] <= imp[0]*5 || imp[1] <= imp[2]*5 {
		t.Errorf("informative feature should dominate importances: %v", imp)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{NumRounds: 0, LearningRate: 0.1, Subsample: 1, ColsampleByTree: 1},
		{NumRounds: 1, LearningRate: 0, Subsample: 1, ColsampleByTree: 1},
		{NumRounds: 1, LearningRate: 1.5, Subsample: 1, ColsampleByTree: 1},
		{NumRounds: 1, LearningRate: 0.1, Subsample: 0, ColsampleByTree: 1},
		{NumRounds: 1, LearningRate: 0.1, Subsample: 1, ColsampleByTree: 2},
		{NumRounds: 1, LearningRate: 0.1, Subsample: 1, ColsampleByTree: 1, Lambda: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v): want error", i, p)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestFitErrors(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	if _, err := Fit(Params{}, nil, d); err == nil {
		t.Error("invalid params: want error")
	}
	noY := &ml.Dataset{X: [][]float64{{1}}}
	if _, err := Fit(DefaultParams(), nil, noY); err == nil {
		t.Error("missing targets: want error")
	}
	ragged := &ml.Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if _, err := Fit(DefaultParams(), nil, ragged); err == nil {
		t.Error("ragged matrix: want error")
	}
	empty := &ml.Dataset{X: [][]float64{}, Y: []float64{}}
	if _, err := Fit(DefaultParams(), nil, empty); err == nil {
		t.Error("empty dataset: want error")
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr ml.Trainer = NewTrainer(DefaultParams(), nil)
	if tr.Name() != "xgboost" {
		t.Errorf("Name = %q", tr.Name())
	}
	rng := rand.New(rand.NewSource(7))
	d := synthLinear(rng, 100)
	m, err := tr.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Importances()); got != 2 {
		t.Errorf("importances len = %d, want 2", got)
	}
}

func TestConstantTargetPredictsConstant(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}, {2}, {3}, {4}}, Y: []float64{7, 7, 7, 7}}
	m, err := Fit(DefaultParams(), loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 2.5, 100} {
		if got := m.Predict([]float64{x}); math.Abs(got-7) > 1e-9 {
			t.Errorf("Predict(%f) = %f, want 7", x, got)
		}
	}
}

func TestHistMethodMatchesExactQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	train := synthNonlinear(rng, 400)
	test := synthNonlinear(rng, 150)
	exact := DefaultParams()
	exact.NumRounds = 120
	hist := exact
	hist.TreeMethod = "hist"
	hist.Bins = 64
	me, err := Fit(exact, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Fit(hist, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	ee, eh := mse(me, test), mse(mh, test)
	if eh > ee*1.5+1 {
		t.Errorf("hist test MSE %f too far above exact %f", eh, ee)
	}
}

func TestHistMethodValidation(t *testing.T) {
	p := DefaultParams()
	p.TreeMethod = "approx"
	if err := p.Validate(); err == nil {
		t.Error("unknown tree method: want error")
	}
	p.TreeMethod = "hist"
	p.Bins = 1
	if err := p.Validate(); err == nil {
		t.Error("bins=1: want error")
	}
	p.Bins = 64
	if err := p.Validate(); err != nil {
		t.Errorf("valid hist params rejected: %v", err)
	}
}

func TestHistWithRobustLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := synthLinear(rng, 300)
	p := DefaultParams()
	p.TreeMethod = "hist"
	p.NumRounds = 120
	ph, err := loss.NewPseudoHuber(18)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(p, ph, d)
	if err != nil {
		t.Fatal(err)
	}
	if e := mse(m, d); e > 20 {
		t.Errorf("hist+pseudohuber training MSE = %f, want < 20", e)
	}
}

func TestQuantileModelsBracketTheCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Heteroscedastic data: spread grows with x.
	n := 600
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()
		d.X[i] = []float64{x}
		d.Y[i] = 100*x + rng.NormFloat64()*40*x
	}
	p := DefaultParams()
	p.NumRounds = 80
	fit := func(tau float64) *Model {
		l, err := loss.NewPinball(tau)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Fit(p, l, d)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	lo, mid, hi := fit(0.1), fit(0.5), fit(0.9)
	// Quantile ordering must hold across the feature range, and the band
	// must widen with x (heteroscedasticity).
	var width25, width75 float64
	for _, x := range []float64{0.25, 0.5, 0.75} {
		ql := lo.Predict([]float64{x})
		qm := mid.Predict([]float64{x})
		qh := hi.Predict([]float64{x})
		if !(ql <= qm+5 && qm <= qh+5) {
			t.Errorf("x=%.2f: quantiles not ordered: %f %f %f", x, ql, qm, qh)
		}
		if x == 0.25 {
			width25 = qh - ql
		}
		if x == 0.75 {
			width75 = qh - ql
		}
	}
	if width75 <= width25 {
		t.Errorf("band should widen with x: %f vs %f", width25, width75)
	}
	// Coverage: ~80% of points inside [q10, q90].
	inside := 0
	for i := range d.X {
		ql, qh := lo.Predict(d.X[i]), hi.Predict(d.X[i])
		if d.Y[i] >= ql-1e-9 && d.Y[i] <= qh+1e-9 {
			inside++
		}
	}
	cov := float64(inside) / float64(n)
	if cov < 0.65 || cov > 0.95 {
		t.Errorf("q10-q90 coverage = %.2f, want ≈0.8", cov)
	}
}
