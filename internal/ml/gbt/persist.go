package gbt

import (
	"encoding/json"
	"fmt"

	"domd/internal/ml/tree"
)

// modelJSON is the serialized form of a trained booster. Trees marshal
// directly: tree.Node is an exported recursive struct.
type modelJSON struct {
	Base        float64      `json:"base"`
	Eta         float64      `json:"eta"`
	NumFeatures int          `json:"num_features"`
	Trees       []*tree.Node `json:"trees"`
}

// MarshalJSON implements json.Marshaler so trained boosters can be persisted
// and reloaded (the deployed pipeline retrains in its enclave and ships the
// fitted model bank to the serving tier).
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		Base:        m.base,
		Eta:         m.eta,
		NumFeatures: m.nFeature,
		Trees:       m.trees,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("gbt: unmarshal model: %w", err)
	}
	if mj.NumFeatures < 1 {
		return fmt.Errorf("gbt: unmarshal model: invalid feature count %d", mj.NumFeatures)
	}
	for i, t := range mj.Trees {
		if t == nil {
			return fmt.Errorf("gbt: unmarshal model: tree %d is null", i)
		}
		if err := validateTree(t, mj.NumFeatures); err != nil {
			return fmt.Errorf("gbt: unmarshal model: tree %d: %w", i, err)
		}
	}
	m.base = mj.Base
	m.eta = mj.Eta
	m.nFeature = mj.NumFeatures
	m.trees = mj.Trees
	return nil
}

// validateTree rejects structurally broken trees (missing children, split
// feature out of range) so a corrupt file cannot panic Predict.
func validateTree(n *tree.Node, numFeatures int) error {
	if n.IsLeaf() {
		return nil
	}
	if n.Feature >= numFeatures {
		return fmt.Errorf("split feature %d out of range [0,%d)", n.Feature, numFeatures)
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("internal node missing children")
	}
	if err := validateTree(n.Left, numFeatures); err != nil {
		return err
	}
	return validateTree(n.Right, numFeatures)
}
