package gbt

import (
	"math/rand"
	"testing"

	"domd/internal/ml"
	"domd/internal/ml/loss"
)

// noisySmall yields a tiny, noisy dataset where a long boosting run overfits.
func noisySmall(rng *rand.Rand, n int) *ml.Dataset {
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()
		d.X[i] = []float64{x, rng.Float64(), rng.Float64()}
		d.Y[i] = 10*x + rng.NormFloat64()*5
	}
	return d
}

func TestEarlyStoppingTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := noisySmall(rng, 60)
	val := noisySmall(rng, 60)
	p := DefaultParams()
	p.NumRounds = 400
	p.LearningRate = 0.3 // aggressive: overfits quickly
	m, best, err := FitEarlyStopping(p, loss.Squared{}, train, val, 15)
	if err != nil {
		t.Fatal(err)
	}
	if best >= 400 {
		t.Errorf("best round = %d, expected early stop before 400", best)
	}
	if m.NumTrees() != best {
		t.Errorf("model has %d trees, best round %d", m.NumTrees(), best)
	}
}

func TestEarlyStoppingBeatsFullRunOnVal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := noisySmall(rng, 60)
	val := noisySmall(rng, 120)
	p := DefaultParams()
	p.NumRounds = 400
	p.LearningRate = 0.3
	full, err := Fit(p, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	stopped, _, err := FitEarlyStopping(p, loss.Squared{}, train, val, 15)
	if err != nil {
		t.Fatal(err)
	}
	ef, es := mse(full, val), mse(stopped, val)
	if es > ef+1e-9 {
		t.Errorf("early-stopped val MSE %f should be <= full run %f", es, ef)
	}
}

func TestEarlyStoppingErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := noisySmall(rng, 30)
	if _, _, err := FitEarlyStopping(DefaultParams(), nil, d, d, 0); err == nil {
		t.Error("patience 0: want error")
	}
	noY := &ml.Dataset{X: d.X}
	if _, _, err := FitEarlyStopping(DefaultParams(), nil, d, noY, 5); err == nil {
		t.Error("val without targets: want error")
	}
	if _, _, err := FitEarlyStopping(Params{}, nil, d, d, 5); err == nil {
		t.Error("bad params: want error")
	}
}

func TestEarlyStoppingPredictionMatchesTruncatedEnsemble(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := noisySmall(rng, 50)
	val := noisySmall(rng, 50)
	p := DefaultParams()
	p.NumRounds = 100
	m, best, err := FitEarlyStopping(p, loss.Squared{}, train, val, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Refit with exactly best rounds: predictions must agree (deterministic
	// training, identical prefix of trees).
	p2 := p
	if best == 0 {
		t.Skip("degenerate: stopped at base score")
	}
	p2.NumRounds = best
	ref, err := Fit(p2, loss.Squared{}, train)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if m.Predict(val.X[i]) != ref.Predict(val.X[i]) {
			t.Fatal("truncated ensemble must equal refit prefix")
		}
	}
}
