package gbt_test

import (
	"fmt"
	"math"
	"math/rand"

	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/ml/loss"
)

// Train the paper's base model family on a non-linear signal the linear
// family cannot express.
func ExampleFit() {
	rng := rand.New(rand.NewSource(1))
	d := &ml.Dataset{}
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 100*math.Sin(6*x))
	}
	params := gbt.DefaultParams()
	params.NumRounds = 150
	ph, err := loss.NewPseudoHuber(18)
	if err != nil {
		panic(err)
	}
	m, err := gbt.Fit(params, ph, d)
	if err != nil {
		panic(err)
	}
	pred := m.Predict([]float64{0.25}) // truth: 100·sin(1.5) ≈ 99.7
	fmt.Println(math.Abs(pred-100*math.Sin(1.5)) < 10)
	// Output: true
}
