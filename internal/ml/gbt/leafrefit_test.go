package gbt

import (
	"math"
	"math/rand"
	"testing"

	"domd/internal/ml"
	"domd/internal/ml/loss"
)

// TestRobustLossesFitLargeTargets pins the TreeBoost leaf re-estimation: a
// clean step function with a 600-unit jump must be learnable under ℓ1 and
// pseudo-Huber, whose raw Newton steps saturate at ±δ per round.
func TestRobustLossesFitLargeTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()
		d.X[i] = []float64{x}
		if x > 0.5 {
			d.Y[i] = 600
		}
	}
	ph, err := loss.NewPseudoHuber(18)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []loss.Loss{loss.Absolute{}, ph} {
		p := DefaultParams()
		p.NumRounds = 60
		m, err := Fit(p, l, d)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		lo := m.Predict([]float64{0.2})
		hi := m.Predict([]float64{0.8})
		if math.Abs(lo) > 30 || math.Abs(hi-600) > 30 {
			t.Errorf("%s: predicts %.1f / %.1f, want ≈0 / ≈600", l.Name(), lo, hi)
		}
	}
}

// TestLeafRefitKeepsRobustness: gross target outliers must still not drag
// the robust fit the way they drag ℓ2.
func TestLeafRefitKeepsRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := rng.Float64()
		d.X[i] = []float64{x}
		d.Y[i] = 10 * x
		if rng.Float64() < 0.05 {
			d.Y[i] += 5000 // gross corruption
		}
	}
	p := DefaultParams()
	p.NumRounds = 80
	p.MaxDepth = 3
	ph, _ := loss.NewPseudoHuber(18)
	robust, err := Fit(p, ph, d)
	if err != nil {
		t.Fatal(err)
	}
	squared, err := Fit(p, loss.Squared{}, d)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate against the clean signal.
	var errRobust, errSq float64
	for x := 0.05; x < 1; x += 0.1 {
		clean := 10 * x
		errRobust += math.Abs(robust.Predict([]float64{x}) - clean)
		errSq += math.Abs(squared.Predict([]float64{x}) - clean)
	}
	if errRobust >= errSq {
		t.Errorf("robust clean-signal error %.1f should beat ℓ2's %.1f", errRobust, errSq)
	}
}

// TestBaseScoreIsMedianForL1: with no informative features the model should
// predict close to the median, not the mean, under ℓ1.
func TestBaseScoreIsMedianForL1(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1}, {1}, {1}, {1}, {1}},
		Y: []float64{0, 0, 0, 0, 1000}, // mean 200, median 0
	}
	p := DefaultParams()
	p.NumRounds = 5
	m, err := Fit(p, loss.Absolute{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1}); math.Abs(got) > 50 {
		t.Errorf("l1 prediction = %f, want near median 0", got)
	}
}
