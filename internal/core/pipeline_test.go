package core

import (
	"math"
	"testing"

	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/metrics"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
	"domd/internal/split"
)

// testTensor builds a small but realistic tensor with train/val/test splits.
func testTensor(t *testing.T, nAvails int, seed int64) (*features.Tensor, split.Splits) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: nAvails, NumOngoing: 0, MeanRCCsPerAvail: 60, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 20, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		t.Fatal(err)
	}
	return tensor, sp
}

// fastConfig keeps tests quick: small booster, no tuning.
func fastConfig() Config {
	cfg := BaselineConfig()
	p := gbt.DefaultParams()
	p.NumRounds = 25
	p.LearningRate = 0.2
	cfg.GBTParams = &p
	return cfg
}

func TestTrainAndEvaluate(t *testing.T) {
	tensor, sp := testTensor(t, 100, 1)
	cfg := fastConfig()
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Timestamps()) != 6 { // 0,20,40,60,80,100
		t.Fatalf("timestamps = %v", p.Timestamps())
	}
	reports, err := p.EvaluateRows(tensor, sp.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 6 {
		t.Fatalf("%d reports", len(reports))
	}
	// Sanity: by mid-timeline the model beats the train-mean baseline on
	// the trimmed MAE (R2 on a 18-row test set is dominated by whether a
	// disaster avail landed there, so it is too noisy to assert on).
	meanY := 0.0
	for _, r := range sp.Train {
		meanY += tensor.Slices[0].Y[r]
	}
	meanY /= float64(len(sp.Train))
	baseErrs := make([]float64, len(sp.Test))
	yTest := make([]float64, len(sp.Test))
	for i, r := range sp.Test {
		yTest[i] = tensor.Slices[0].Y[r]
		baseErrs[i] = meanY
	}
	baseline, err := metrics.MAEPercentile(yTest, baseErrs, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if reports[3].MAE80 >= baseline {
		t.Errorf("MAE80 @60%% = %f, want better than mean baseline %f", reports[3].MAE80, baseline)
	}
	// Training rows should fit much better than chance.
	trainReports, err := p.EvaluateRows(tensor, sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	if trainReports[5].R2 < 0.5 {
		t.Errorf("train R2 @100%% = %f, want > 0.5", trainReports[5].R2)
	}
}

func TestDynamicFeaturesImproveOverTimeline(t *testing.T) {
	tensor, sp := testTensor(t, 80, 2)
	cfg := fastConfig()
	cfg.Fusion = fusion.MethodAverage
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := p.EvaluateRows(tensor, sp.Test)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's "effective temporal estimation": error at later logical
	// times should not blow up versus the static-only start; expect the
	// best mid/late-timeline MAE to beat the 0% MAE.
	bestLater := math.Inf(1)
	for _, r := range reports[1:] {
		if r.MAE < bestLater {
			bestLater = r.MAE
		}
	}
	if bestLater >= reports[0].MAE*1.25 {
		t.Errorf("later timeline MAE %f much worse than static-only %f", bestLater, reports[0].MAE)
	}
}

func TestStackedArchitecture(t *testing.T) {
	tensor, sp := testTensor(t, 50, 3)
	cfg := fastConfig()
	cfg.Stacked = true
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	if p.staticModel == nil {
		t.Fatal("stacked pipeline must have a static base model")
	}
	if _, err := p.EvaluateRows(tensor, sp.Test); err != nil {
		t.Fatal(err)
	}
	// Slots must not include raw static columns (they flow in via the
	// static prediction instead).
	for k, s := range p.slots {
		for _, c := range s.cols {
			if c < features.NumStatic {
				t.Errorf("slot %d includes raw static column %d", k, c)
			}
		}
	}
}

func TestNonStackedIncludesStatics(t *testing.T) {
	tensor, sp := testTensor(t, 50, 4)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range p.slots {
		statics := 0
		for _, c := range s.cols {
			if c < features.NumStatic {
				statics++
			}
		}
		if statics != features.NumStatic {
			t.Errorf("slot %d has %d static columns, want %d", k, statics, features.NumStatic)
		}
		if len(s.cols) != features.NumStatic+fastConfig().K {
			t.Errorf("slot %d has %d columns, want %d", k, len(s.cols), features.NumStatic+fastConfig().K)
		}
	}
}

func TestElasticNetFamily(t *testing.T) {
	tensor, sp := testTensor(t, 50, 5)
	cfg := fastConfig()
	cfg.Family = FamilyElasticNet
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EvaluateRows(tensor, sp.Test); err != nil {
		t.Fatal(err)
	}
}

func TestHPTTrainsTunedModels(t *testing.T) {
	tensor, sp := testTensor(t, 40, 6)
	cfg := fastConfig()
	cfg.HPTTrials = 5
	cfg.HPTMethod = "random"
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range p.slots {
		if s.params == nil {
			t.Errorf("slot %d untuned despite HPTTrials > 0", k)
		}
	}
	if _, err := Train(Config{
		Selector: featsel.MethodPearson, K: 10, Family: FamilyXGBoost,
		Loss: "l2", Fusion: fusion.MethodNone, HPTTrials: 5,
	}, tensor, sp.Train, nil); err == nil {
		t.Error("HPT without validation rows: want error")
	}
}

func TestTrajectoryAndFusion(t *testing.T) {
	tensor, sp := testTensor(t, 40, 7)
	cfg := fastConfig()
	cfg.Fusion = fusion.MethodAverage
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	row := sp.Test[0]
	fulls := make([][]float64, len(tensor.Timestamps))
	for k := range fulls {
		fulls[k] = tensor.Slices[k].X[row]
	}
	raw, fused, err := p.Trajectory(fulls, len(fulls)-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(fulls) || len(fused) != len(fulls) {
		t.Fatalf("trajectory lengths %d/%d", len(raw), len(fused))
	}
	// Average fusion at step k equals the running mean of raw[0..k].
	sum := 0.0
	for k := range raw {
		sum += raw[k]
		want := sum / float64(k+1)
		if math.Abs(fused[k]-want) > 1e-9 {
			t.Errorf("fused[%d] = %f, want running mean %f", k, fused[k], want)
		}
	}
	// Errors.
	if _, _, err := p.Trajectory(fulls, len(fulls)); err == nil {
		t.Error("upto out of range: want error")
	}
	if _, _, err := p.Trajectory(fulls[:2], 3); err == nil {
		t.Error("missing vectors: want error")
	}
}

func TestTopFeatures(t *testing.T) {
	tensor, sp := testTensor(t, 50, 8)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	atts, err := p.TopFeatures(3, tensor.Slices[3].X[sp.Test[0]], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(atts) != 5 {
		t.Fatalf("%d attributions, want 5", len(atts))
	}
	for i := 1; i < len(atts); i++ {
		if atts[i].Score > atts[i-1].Score {
			t.Error("attributions must be sorted descending")
		}
	}
	for _, a := range atts {
		if a.Name == "" {
			t.Error("attribution with empty name")
		}
	}
	if _, err := p.TopFeatures(99, tensor.Slices[0].X[0], 5); err == nil {
		t.Error("slot out of range: want error")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Family: FamilyXGBoost, Loss: "l2", Fusion: "none"},
		{K: 10, Family: "svm", Loss: "l2", Fusion: "none"},
		{K: 10, Family: FamilyXGBoost, Loss: "hinge", Fusion: "none"},
		{K: 10, Family: FamilyXGBoost, Loss: "l2", Fusion: "mode"},
		{K: 10, Family: FamilyXGBoost, Loss: "l2", Fusion: "none", HPTTrials: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := BaselineConfig().Validate(); err != nil {
		t.Errorf("BaselineConfig invalid: %v", err)
	}
}

func TestTrainErrors(t *testing.T) {
	tensor, sp := testTensor(t, 40, 9)
	if _, err := Train(fastConfig(), tensor, nil, sp.Val); err == nil {
		t.Error("no training rows: want error")
	}
	bad := fastConfig()
	bad.K = 0
	if _, err := Train(bad, tensor, sp.Train, sp.Val); err == nil {
		t.Error("invalid config: want error")
	}
}

func TestEvaluateRowsErrors(t *testing.T) {
	tensor, sp := testTensor(t, 40, 10)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EvaluateRows(tensor, nil); err == nil {
		t.Error("no rows: want error")
	}
}

func TestDeterministicTraining(t *testing.T) {
	tensor, sp := testTensor(t, 40, 11)
	p1, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Slices[2].X[sp.Test[0]]
	a, _ := p1.PredictAt(2, x)
	b, _ := p2.PredictAt(2, x)
	if a != b {
		t.Error("same config and data must reproduce identical pipelines")
	}
}

func TestGlobalImportances(t *testing.T) {
	tensor, sp := testTensor(t, 50, 61)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	imp := p.GlobalImportances()
	if len(imp) == 0 {
		t.Fatal("no importances")
	}
	sum := 0.0
	for name, v := range imp {
		if v < 0 {
			t.Errorf("negative importance for %q", name)
		}
		if name == "" {
			t.Error("empty feature name")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %f, want 1", sum)
	}
	// Static features should appear (they're in every non-stacked model).
	foundStatic := false
	for _, name := range features.StaticNames {
		if imp[name] > 0 {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Error("no static feature carries importance")
	}
}
