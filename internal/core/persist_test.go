package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tensor, sp := testTensor(t, 50, 41)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions everywhere.
	for k := range tensor.Timestamps {
		for _, r := range sp.Test {
			a, err := p.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("slot %d row %d: %f vs %f after reload", k, r, a, b)
			}
		}
	}
	// Fused evaluation identical too.
	ra, err := p.EvaluateRows(tensor, sp.Test)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := back.EvaluateRows(tensor, sp.Test)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ra {
		if ra[k] != rb[k] {
			t.Fatalf("report %d differs after reload", k)
		}
	}
	// Attribution survives (train stats persisted).
	aa, err := p.TopFeatures(2, tensor.Slices[2].X[sp.Test[0]], 3)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := back.TopFeatures(2, tensor.Slices[2].X[sp.Test[0]], 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aa {
		if aa[i] != ab[i] {
			t.Fatalf("attribution %d differs after reload", i)
		}
	}
}

func TestSaveLoadStacked(t *testing.T) {
	tensor, sp := testTensor(t, 40, 42)
	cfg := fastConfig()
	cfg.Stacked = true
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.staticModel == nil {
		t.Fatal("stacked pipeline lost its static model")
	}
	x := tensor.Slices[1].X[sp.Test[0]]
	a, _ := p.PredictAt(1, x)
	b, _ := back.PredictAt(1, x)
	if a != b {
		t.Fatalf("stacked prediction differs: %f vs %f", a, b)
	}
}

func TestSaveLoadElasticNet(t *testing.T) {
	tensor, sp := testTensor(t, 40, 43)
	cfg := fastConfig()
	cfg.Family = FamilyElasticNet
	p, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Slices[0].X[sp.Test[0]]
	a, _ := p.PredictAt(0, x)
	b, _ := back.PredictAt(0, x)
	if a != b {
		t.Fatal("elastic-net prediction differs after reload")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"not json":        "not json at all",
		"empty object":    "{}",
		"slot mismatch":   `{"config":{"Selector":"pearson","K":10,"Family":"xgboost","Loss":"l2","Fusion":"none"},"timestamps":[0,50],"slots":[],"train_stats":[]}`,
		"stacked missing": `{"config":{"Selector":"pearson","K":10,"Family":"xgboost","Stacked":true,"Loss":"l2","Fusion":"none"},"timestamps":[0],"slots":[{"cols":[0],"model":{"base":0,"eta":0.1,"num_features":1,"trees":[]}}],"train_stats":[{"mean":[0],"std":[1]}]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestLoadRejectsCorruptTree(t *testing.T) {
	// An internal node (feature >= 0) without children must be rejected
	// rather than panicking at predict time.
	in := `{"config":{"Selector":"pearson","K":10,"Family":"xgboost","Loss":"l2","Fusion":"none"},
		"timestamps":[0],
		"slots":[{"cols":[0],"model":{"base":0,"eta":0.1,"num_features":1,
			"trees":[{"Feature":0,"Threshold":1,"Weight":0,"Gain":1}]}}],
		"train_stats":[{"mean":[0],"std":[1]}]}`
	if _, err := Load(strings.NewReader(in)); err == nil {
		t.Error("corrupt tree: want error")
	}
	// Split feature out of range.
	in2 := strings.Replace(in, `"Feature":0`, `"Feature":7`, 1)
	if _, err := Load(strings.NewReader(in2)); err == nil {
		t.Error("out-of-range feature: want error")
	}
}
