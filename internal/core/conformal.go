package core

import (
	"fmt"
	"math"
	"sort"

	"domd/internal/features"
)

// Conformal wraps a trained pipeline with split-conformal prediction
// intervals: the calibration set's absolute fused-prediction residuals at
// each logical timestamp give a distribution-free error quantile, so
// "estimated delay 42 ± 31 days (90%)" carries a finite-sample coverage
// guarantee — a complementary route to schedule-risk bands alongside the
// quantile-loss models of examples/riskbands.
type Conformal struct {
	pipeline *Pipeline
	// residuals[k] holds the calibration |fused - truth| values at grid
	// index k, ascending.
	residuals [][]float64
}

// NewConformal calibrates intervals on calibRows — rows the pipeline was
// not fitted on. Note that if the same rows also drove hyperparameter
// tuning, the margins are mildly optimistic; for strict guarantees hold out
// a fresh calibration split.
func NewConformal(p *Pipeline, tensor *features.Tensor, calibRows []int) (*Conformal, error) {
	if len(calibRows) < 2 {
		return nil, fmt.Errorf("core: conformal calibration needs >= 2 rows, got %d", len(calibRows))
	}
	if len(tensor.Timestamps) != len(p.timestamps) {
		return nil, fmt.Errorf("core: tensor has %d timestamps, pipeline %d", len(tensor.Timestamps), len(p.timestamps))
	}
	c := &Conformal{pipeline: p, residuals: make([][]float64, len(p.timestamps))}
	trajs := make([][]float64, len(calibRows))
	for i := range trajs {
		trajs[i] = make([]float64, 0, len(p.timestamps))
	}
	for k := range p.timestamps {
		c.residuals[k] = make([]float64, len(calibRows))
		for i, r := range calibRows {
			raw, err := p.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				return nil, err
			}
			trajs[i] = append(trajs[i], raw)
			fused, err := p.fuser.Fuse(trajs[i])
			if err != nil {
				return nil, err
			}
			c.residuals[k][i] = math.Abs(fused - tensor.Slices[k].Y[r])
		}
		sort.Float64s(c.residuals[k])
	}
	return c, nil
}

// Residuals exposes the calibration state for model-artifact persistence:
// Residuals()[k] holds the ascending |fused − truth| values at grid index
// k. The returned slices alias the Conformal's state — callers serialize
// them, they must not mutate them.
func (c *Conformal) Residuals() [][]float64 { return c.residuals }

// NewConformalFromResiduals reconstructs a calibrated Conformal from a
// residual matrix produced by Residuals — the deserialization half of
// model-artifact persistence (internal/modelserve). The matrix must carry
// one ascending row of at least two residuals per pipeline grid slot,
// mirroring the NewConformal calibration minimum.
func NewConformalFromResiduals(p *Pipeline, residuals [][]float64) (*Conformal, error) {
	if len(residuals) != len(p.timestamps) {
		return nil, fmt.Errorf("core: %d residual rows for %d pipeline slots", len(residuals), len(p.timestamps))
	}
	for k, rs := range residuals {
		if len(rs) < 2 {
			return nil, fmt.Errorf("core: residual row %d has %d values, need >= 2", k, len(rs))
		}
		if !sort.Float64sAreSorted(rs) {
			return nil, fmt.Errorf("core: residual row %d is not ascending", k)
		}
	}
	return &Conformal{pipeline: p, residuals: residuals}, nil
}

// Margin returns the conformal half-width at grid index k for miscoverage
// alpha (e.g. 0.1 → 90% interval): the ⌈(n+1)(1−α)⌉-th smallest calibration
// residual. alpha must lie in (0, 1).
func (c *Conformal) Margin(k int, alpha float64) (float64, error) {
	if k < 0 || k >= len(c.residuals) {
		return 0, fmt.Errorf("core: slot %d out of range [0,%d)", k, len(c.residuals))
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("core: alpha %f outside (0,1)", alpha)
	}
	rs := c.residuals[k]
	n := len(rs)
	rank := int(math.Ceil(float64(n+1) * (1 - alpha)))
	if rank > n {
		// Not enough calibration data for this coverage level: be
		// conservative and return the max residual.
		rank = n
	}
	return rs[rank-1], nil
}

// Interval returns the fused estimate with its conformal band at grid index
// k, given the per-timestamp raw predictions so far (chronological, length
// >= k+1).
func (c *Conformal) Interval(rawTrajectory []float64, k int, alpha float64) (lo, mid, hi float64, err error) {
	if len(rawTrajectory) <= k {
		return 0, 0, 0, fmt.Errorf("core: %d raw predictions for slot %d", len(rawTrajectory), k)
	}
	mid, err = c.pipeline.fuser.Fuse(rawTrajectory[:k+1])
	if err != nil {
		return 0, 0, 0, err
	}
	m, err := c.Margin(k, alpha)
	if err != nil {
		return 0, 0, 0, err
	}
	return mid - m, mid, mid + m, nil
}
