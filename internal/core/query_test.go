package core

import (
	"sync"
	"testing"

	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/statusq"
)

// trainService builds a trained pipeline plus the ongoing avails to query.
func trainService(t *testing.T) (*QueryService, *navsim.Dataset) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: 60, NumOngoing: 4, MeanRCCsPerAvail: 60, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 20, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	return NewQueryService(p, ext, index.KindAVL), ds
}

func ongoingAvail(t *testing.T, ds *navsim.Dataset) *domain.Avail {
	t.Helper()
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			return &ds.Avails[i]
		}
	}
	t.Fatal("no ongoing avail in dataset")
	return nil
}

func TestQueryOngoingAvail(t *testing.T) {
	svc, ds := trainService(t)
	a := ongoingAvail(t, ds)
	rccs := ds.RCCsByAvail()[a.ID]
	// Query mid-execution: t* = 50%.
	at := a.PhysicalTime(50)
	res, err := svc.Query(a, rccs, at)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvailID != a.ID {
		t.Errorf("avail id = %d", res.AvailID)
	}
	if res.LogicalTime < 49 || res.LogicalTime > 51 {
		t.Errorf("t* = %f, want ≈50", res.LogicalTime)
	}
	// Grid 0,20,40 are <= 50: three estimates.
	if len(res.Estimates) != 3 {
		t.Fatalf("%d estimates, want 3 (0,20,40)", len(res.Estimates))
	}
	for i, e := range res.Estimates {
		if e.Timestamp != []float64{0, 20, 40}[i] {
			t.Errorf("estimate %d at t*=%f", i, e.Timestamp)
		}
	}
	if len(res.TopDrivers) != 5 {
		t.Errorf("%d top drivers, want 5", len(res.TopDrivers))
	}
	if res.Final() != res.Estimates[2].Fused {
		t.Error("Final() must be the last fused estimate")
	}
}

func TestQueryAtStartUsesStaticModelOnly(t *testing.T) {
	svc, ds := trainService(t)
	a := ongoingAvail(t, ds)
	res, err := svc.Query(a, ds.RCCsByAvail()[a.ID], a.ActStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 1 || res.Estimates[0].Timestamp != 0 {
		t.Fatalf("estimates at start = %+v, want single t*=0", res.Estimates)
	}
	if res.Estimates[0].Raw != res.Estimates[0].Fused {
		t.Error("single estimate must fuse to itself")
	}
}

func TestQueryBeforeStartErrors(t *testing.T) {
	svc, ds := trainService(t)
	a := ongoingAvail(t, ds)
	if _, err := svc.Query(a, ds.RCCsByAvail()[a.ID], a.ActStart-10); err == nil {
		t.Error("query before start: want error")
	}
}

func TestQueryPastPlanCapsAt100(t *testing.T) {
	svc, ds := trainService(t)
	a := ongoingAvail(t, ds)
	at := a.PhysicalTime(130)
	res, err := svc.Query(a, ds.RCCsByAvail()[a.ID], at)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Estimates[len(res.Estimates)-1]
	if last.Timestamp != 100 {
		t.Errorf("last estimate at t*=%f, want 100", last.Timestamp)
	}
	if res.LogicalTime < 125 {
		t.Errorf("logical time = %f, want > 125", res.LogicalTime)
	}
}

func TestQueryRejectsForeignRCCs(t *testing.T) {
	svc, ds := trainService(t)
	a := ongoingAvail(t, ds)
	foreign := []domain.RCC{{ID: 1, AvailID: a.ID + 1, Created: a.ActStart, Settled: a.ActStart + 5}}
	if _, err := svc.Query(a, foreign, a.PhysicalTime(10)); err == nil {
		t.Error("foreign rccs: want error")
	}
}

// TestQueryEngineMatchesQuery pins the cached serving path: answering via a
// prebuilt (catalog-cached) engine must be indistinguishable from the
// one-shot Query path that re-indexes per call.
func TestQueryEngineMatchesQuery(t *testing.T) {
	svc, ds := trainService(t)
	a := ongoingAvail(t, ds)
	rccs := ds.RCCsByAvail()[a.ID]
	at := a.PhysicalTime(50)
	fresh, err := svc.Query(a, rccs, at)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := statusq.NewEngine(a, rccs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := svc.QueryEngine(eng, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Estimates) != len(fresh.Estimates) {
		t.Fatalf("estimates %d != %d", len(cached.Estimates), len(fresh.Estimates))
	}
	for k := range fresh.Estimates {
		if cached.Estimates[k] != fresh.Estimates[k] {
			t.Errorf("estimate %d: cached %+v != fresh %+v", k, cached.Estimates[k], fresh.Estimates[k])
		}
	}
	if cached.LogicalTime != fresh.LogicalTime || cached.Final() != fresh.Final() {
		t.Errorf("cached (t*=%f, final=%f) != fresh (t*=%f, final=%f)",
			cached.LogicalTime, cached.Final(), fresh.LogicalTime, fresh.Final())
	}
	// A shared engine must answer concurrent queries race-free (see the
	// index.TimeIndex concurrency contract); run with -race.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := svc.QueryEngine(eng, a.PhysicalTime(float64(30+w*10))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Not-started avails are rejected the same way on both paths.
	if _, err := svc.QueryEngine(eng, a.ActStart-10); err == nil {
		t.Error("QueryEngine before start: want error")
	}
}
