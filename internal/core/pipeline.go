// Package core implements the paper's primary contribution: the DoMD
// estimation pipeline ℳ(x̂) of Problem 2 and the DoMD query answering of
// Problem 1.
//
// A trained Pipeline holds one supervised model per logical timestamp of the
// t* grid (0, x, 2x, …, 100). Each model sees the 8 static features plus the
// top-k generated features chosen by the configured selection method;
// predictions along the timeline are combined by the configured fusion
// technique. The stacked architecture of Fig. 4 (a static "base" model whose
// prediction feeds the timeline models) is available as an option, though
// the paper's experiments favour the non-stacked form.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/hpt"
	"domd/internal/metrics"
	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/ml/linear"
	"domd/internal/ml/loss"
)

// ModelFamily names a base model family m ∈ M (Task 3).
type ModelFamily string

// The two families evaluated in §5.2.2.
const (
	FamilyXGBoost    ModelFamily = "xgboost"
	FamilyElasticNet ModelFamily = "elasticnet"
)

// Config is the pipeline parameter vector x = (s, m, l, p, f) of Problem 2
// plus the operational knobs (k, gap interval, seeds).
type Config struct {
	// Selector is the feature-selection method ŝ (featsel.Method*).
	Selector string
	// K is the generated-feature budget (paper: 60).
	K int
	// Family is the base model family m̂.
	Family ModelFamily
	// Stacked selects the Fig. 4 architecture (static base model feeding
	// timeline models) instead of the flat one.
	Stacked bool
	// Loss is the training loss l̂ ("l2", "l1", "huber", "pseudohuber").
	Loss string
	// LossDelta is the (pseudo-)Huber δ (paper: 18); 0 uses the default.
	LossDelta float64
	// HPTTrials is the AutoHPT budget per timeline model; 0 disables
	// tuning and uses defaults (the f⁰/H⁰ of the greedy design stages).
	HPTTrials int
	// HPTMethod selects the tuner ("tpe" or "random").
	HPTMethod string
	// Fusion is the ensembling technique f̂ ("none", "min", "average").
	Fusion string
	// Workers bounds concurrent per-timestamp model training; values <= 1
	// train serially. Training is deterministic either way.
	Workers int
	// Seed drives all stochastic components.
	Seed int64
	// GBTParams are the booster defaults used when HPTTrials == 0 (and as
	// the starting point otherwise). Zero value means gbt.DefaultParams.
	GBTParams *gbt.Params
	// ElasticNet parameters for the linear family.
	ENParams *linear.Params
}

// DefaultConfig is the paper's selected configuration (§5.2.2): Pearson
// k=60, XGBoost, non-stacked, pseudo-Huber(18), 30 TPE trials, average
// fusion.
func DefaultConfig() Config {
	return Config{
		Selector:  featsel.MethodPearson,
		K:         60,
		Family:    FamilyXGBoost,
		Stacked:   false,
		Loss:      "pseudohuber",
		LossDelta: loss.PaperDelta,
		HPTTrials: 30,
		HPTMethod: "tpe",
		Fusion:    fusion.MethodAverage,
		Seed:      1,
	}
}

// BaselineConfig is the default configuration the greedy design process
// starts from: default model (XGBoost defaults), ℓ2 loss, no tuning, no
// fusion — the m⁰, l⁰, H⁰, f⁰ of Tasks 2-6.
func BaselineConfig() Config {
	return Config{
		Selector: featsel.MethodPearson,
		K:        60,
		Family:   FamilyXGBoost,
		Loss:     "l2",
		Fusion:   fusion.MethodNone,
		Seed:     1,
	}
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: k = %d < 1", c.K)
	}
	switch c.Family {
	case FamilyXGBoost, FamilyElasticNet:
	default:
		return fmt.Errorf("core: unknown model family %q", c.Family)
	}
	if _, err := loss.Parse(c.Loss, c.LossDelta); err != nil {
		return err
	}
	if _, err := fusion.New(c.Fusion); err != nil {
		return err
	}
	if c.HPTTrials < 0 {
		return fmt.Errorf("core: negative HPT trials %d", c.HPTTrials)
	}
	return nil
}

// slot is the trained model at one logical timestamp.
type slot struct {
	// cols are the columns of the full feature vector this model reads
	// (statics + selected dynamics), ascending.
	cols  []int
	model ml.Model
	// params records tuned booster hyperparameters (nil when untuned or
	// linear).
	params *gbt.Params
}

// Pipeline is a trained DoMD estimator.
type Pipeline struct {
	cfg        Config
	timestamps []float64
	slots      []slot
	// static base model of the stacked architecture (nil when flat).
	staticModel ml.Model
	fuser       fusion.Fuser
	names       []string
	// colMean/colStd of the training slice per t*, for attribution.
	trainStats []colStats
}

type colStats struct {
	mean, std []float64
}

// Timestamps returns the trained t* grid.
func (p *Pipeline) Timestamps() []float64 { return p.timestamps }

// WithFusion returns a copy of the pipeline that fuses with the named
// technique instead. The model bank is shared (fusion affects only how the
// per-timestamp predictions are combined), which is how Task 6 evaluates
// ensembling methods without retraining.
func (p *Pipeline) WithFusion(name string) (*Pipeline, error) {
	fuser, err := fusion.New(name)
	if err != nil {
		return nil, err
	}
	cp := *p
	cp.fuser = fuser
	cp.cfg.Fusion = name
	return &cp, nil
}

// Config returns the configuration the pipeline was trained with.
func (p *Pipeline) Config() Config { return p.cfg }

// trainerFor builds the ml.Trainer for the configured family/loss/params.
func trainerFor(cfg Config, params *gbt.Params) (ml.Trainer, error) {
	switch cfg.Family {
	case FamilyXGBoost:
		l, err := loss.Parse(cfg.Loss, cfg.LossDelta)
		if err != nil {
			return nil, err
		}
		gp := gbt.DefaultParams()
		if cfg.GBTParams != nil {
			gp = *cfg.GBTParams
		}
		if params != nil {
			gp = *params
		}
		gp.Seed = cfg.Seed
		return gbt.NewTrainer(gp, l), nil
	case FamilyElasticNet:
		ep := linear.DefaultParams()
		if cfg.ENParams != nil {
			ep = *cfg.ENParams
		}
		return linear.NewTrainer(ep), nil
	default:
		return nil, fmt.Errorf("core: unknown family %q", cfg.Family)
	}
}

// selectorFor builds the configured feature selector. RFE refits the base
// model once per elimination round over up to ~1500 features, so it gets a
// reduced-round booster for its internal refits (the ranking, not the final
// model, is what RFE needs).
func selectorFor(cfg Config) (featsel.Selector, error) {
	rfeCfg := cfg
	if cfg.Family == FamilyXGBoost {
		p := gbt.DefaultParams()
		if cfg.GBTParams != nil {
			p = *cfg.GBTParams
		}
		if p.NumRounds > 15 {
			p.NumRounds = 15
		}
		if p.MaxDepth > 3 {
			p.MaxDepth = 3
		}
		rfeCfg.GBTParams = &p
	}
	tr, err := trainerFor(rfeCfg, nil)
	if err != nil {
		return nil, err
	}
	return featsel.New(cfg.Selector, featsel.Options{Trainer: tr, Seed: cfg.Seed, RFEStep: 0.5})
}

// Train fits the pipeline on the tensor rows listed in trainRows. valRows,
// when non-empty, drive hyperparameter tuning (ignored when HPTTrials == 0).
func Train(cfg Config, tensor *features.Tensor, trainRows, valRows []int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(trainRows) == 0 {
		return nil, fmt.Errorf("core: no training rows")
	}
	if cfg.HPTTrials > 0 && len(valRows) == 0 {
		return nil, fmt.Errorf("core: HPT requires validation rows")
	}
	fuser, err := fusion.New(cfg.Fusion)
	if err != nil {
		return nil, err
	}
	sel, err := selectorFor(cfg)
	if err != nil {
		return nil, err
	}

	p := &Pipeline{
		cfg:        cfg,
		timestamps: tensor.Timestamps,
		fuser:      fuser,
		names:      tensor.Slices[0].Names,
	}

	// Static columns are always included (selection applies to generated
	// features only, §3.2.1).
	staticCols := make([]int, features.NumStatic)
	for j := range staticCols {
		staticCols[j] = j
	}

	// Stacked architecture: fit the base model on statics only, once
	// (statics are time-invariant, so any slice works).
	var staticPredTrain, staticPredVal []float64
	if cfg.Stacked {
		base := tensor.Slices[0].Subset(trainRows).Select(staticCols)
		tr, err := trainerFor(cfg, nil)
		if err != nil {
			return nil, err
		}
		p.staticModel, err = tr.Fit(base)
		if err != nil {
			return nil, fmt.Errorf("core: static base model: %w", err)
		}
		staticPredTrain = predictStatic(p.staticModel, tensor.Slices[0], trainRows, staticCols)
		staticPredVal = predictStatic(p.staticModel, tensor.Slices[0], valRows, staticCols)
	}

	// Per-timestamp models are independent given the (precomputed) static
	// predictions, so they train concurrently when Workers > 1. Results
	// land in position k regardless of completion order, keeping training
	// fully deterministic.
	nSlots := len(tensor.Timestamps)
	p.slots = make([]slot, nSlots)
	p.trainStats = make([]colStats, nSlots)
	errs := make([]error, nSlots)

	trainSlot := func(k int) {
		ts := tensor.Timestamps[k]
		slice := tensor.Slices[k]
		train := slice.Subset(trainRows)

		// Task 2: score generated features on the training slice.
		dynCols := make([]int, slice.NumCols()-features.NumStatic)
		for j := range dynCols {
			dynCols[j] = features.NumStatic + j
		}
		dynTrain := train.Select(dynCols)
		selected, err := sel.Select(dynTrain, cfg.K)
		if err != nil {
			errs[k] = fmt.Errorf("core: feature selection @%g: %w", ts, err)
			return
		}
		cols := make([]int, 0, features.NumStatic+len(selected))
		if !cfg.Stacked {
			cols = append(cols, staticCols...)
		}
		for _, j := range selected {
			cols = append(cols, features.NumStatic+j)
		}
		sort.Ints(cols)

		fitSet := train.Select(cols)
		if cfg.Stacked {
			fitSet, err = fitSet.AppendColumn("STATIC_PRED", staticPredTrain)
			if err != nil {
				errs[k] = err
				return
			}
		}

		var tuned *gbt.Params
		if cfg.HPTTrials > 0 && cfg.Family == FamilyXGBoost {
			valSet := slice.Subset(valRows).Select(cols)
			if cfg.Stacked {
				valSet, err = valSet.AppendColumn("STATIC_PRED", staticPredVal)
				if err != nil {
					errs[k] = err
					return
				}
			}
			tuned, err = tuneGBT(cfg, fitSet, valSet, int64(k))
			if err != nil {
				errs[k] = fmt.Errorf("core: tuning @%g: %w", ts, err)
				return
			}
		}

		tr, err := trainerFor(cfg, tuned)
		if err != nil {
			errs[k] = err
			return
		}
		model, err := tr.Fit(fitSet)
		if err != nil {
			errs[k] = fmt.Errorf("core: fit @%g: %w", ts, err)
			return
		}
		p.slots[k] = slot{cols: cols, model: model, params: tuned}
		p.trainStats[k] = newColStats(fitSet)
	}

	workers := cfg.Workers
	if workers <= 1 {
		for k := 0; k < nSlots; k++ {
			trainSlot(k)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for k := 0; k < nSlots; k++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(k int) {
				defer wg.Done()
				defer func() { <-sem }()
				trainSlot(k)
			}(k)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

func predictStatic(m ml.Model, slice *ml.Dataset, rows []int, staticCols []int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		x := make([]float64, len(staticCols))
		for j, c := range staticCols {
			x[j] = slice.X[r][c]
		}
		out[i] = m.Predict(x)
	}
	return out
}

// tuneGBT runs AutoHPT for one timeline model: minimize val MAE over the
// XGBoost space.
func tuneGBT(cfg Config, train, val *ml.Dataset, saltSeed int64) (*gbt.Params, error) {
	l, err := loss.Parse(cfg.Loss, cfg.LossDelta)
	if err != nil {
		return nil, err
	}
	obj := func(c hpt.Config) (float64, error) {
		params := paramsFromConfig(c, cfg.Seed)
		m, err := gbt.Fit(params, l, train)
		if err != nil {
			return 0, err
		}
		mae, err := metrics.MAE(val.Y, ml.PredictBatch(m, val.X))
		if err != nil {
			return 0, err
		}
		return mae, nil
	}
	var tuner hpt.Tuner
	switch cfg.HPTMethod {
	case "", "tpe":
		tuner = &hpt.TPE{Seed: cfg.Seed + saltSeed}
	case "random":
		tuner = &hpt.RandomSearch{Seed: cfg.Seed + saltSeed}
	default:
		return nil, fmt.Errorf("core: unknown HPT method %q", cfg.HPTMethod)
	}
	res, err := tuner.Optimize(hpt.XGBoostSpace(), obj, cfg.HPTTrials)
	if err != nil {
		return nil, err
	}
	best := paramsFromConfig(res.Best.Config, cfg.Seed)
	return &best, nil
}

func paramsFromConfig(c hpt.Config, seed int64) gbt.Params {
	return gbt.Params{
		NumRounds:       int(c["num_rounds"]),
		LearningRate:    c["learning_rate"],
		MaxDepth:        int(c["max_depth"]),
		MinChildWeight:  c["min_child_weight"],
		Lambda:          c["lambda"],
		Gamma:           c["gamma"],
		Subsample:       c["subsample"],
		ColsampleByTree: c["colsample"],
		Seed:            seed,
	}
}

func newColStats(d *ml.Dataset) colStats {
	p := d.NumCols()
	cs := colStats{mean: make([]float64, p), std: make([]float64, p)}
	n := float64(d.NumRows())
	for j := 0; j < p; j++ {
		for i := range d.X {
			cs.mean[j] += d.X[i][j]
		}
		cs.mean[j] /= n
		for i := range d.X {
			dv := d.X[i][j] - cs.mean[j]
			cs.std[j] += dv * dv
		}
		cs.std[j] = math.Sqrt(cs.std[j] / n)
	}
	return cs
}

// slotInput assembles the model input for the slot at position k from a
// full feature vector.
func (p *Pipeline) slotInput(k int, full []float64) []float64 {
	s := &p.slots[k]
	x := make([]float64, 0, len(s.cols)+1)
	for _, c := range s.cols {
		x = append(x, full[c])
	}
	if p.cfg.Stacked {
		x = append(x, p.staticPred(full))
	}
	return x
}

func (p *Pipeline) staticPred(full []float64) float64 {
	return p.staticModel.Predict(full[:features.NumStatic])
}

// PredictAt estimates delay at the grid timestamp index k from the full
// feature vector at that timestamp (no fusion).
func (p *Pipeline) PredictAt(k int, full []float64) (float64, error) {
	if k < 0 || k >= len(p.slots) {
		return 0, fmt.Errorf("core: slot %d out of range [0,%d)", k, len(p.slots))
	}
	return p.slots[k].model.Predict(p.slotInput(k, full)), nil
}

// Trajectory answers a DoMD query (Problem 1): given the full feature
// vectors observed at grid timestamps 0..upto (inclusive, indices into
// Timestamps), it returns the raw per-timestamp estimates and the
// progressively fused estimates (fusing predictions 0..j at each j).
func (p *Pipeline) Trajectory(fulls [][]float64, upto int) (raw, fused []float64, err error) {
	if upto < 0 || upto >= len(p.slots) {
		return nil, nil, fmt.Errorf("core: upto %d out of range [0,%d)", upto, len(p.slots))
	}
	if len(fulls) <= upto {
		return nil, nil, fmt.Errorf("core: %d feature vectors for %d timestamps", len(fulls), upto+1)
	}
	raw = make([]float64, upto+1)
	fused = make([]float64, upto+1)
	for k := 0; k <= upto; k++ {
		raw[k], err = p.PredictAt(k, fulls[k])
		if err != nil {
			return nil, nil, err
		}
		fused[k], err = p.fuser.Fuse(raw[:k+1])
		if err != nil {
			return nil, nil, err
		}
	}
	return raw, fused, nil
}

// EvaluateRows computes the Table 7 quality metrics per logical timestamp
// over the given tensor rows, using progressively fused predictions.
// The returned slice aligns with Timestamps.
func (p *Pipeline) EvaluateRows(tensor *features.Tensor, rows []int) ([]metrics.Report, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no rows to evaluate")
	}
	if len(tensor.Timestamps) != len(p.timestamps) {
		return nil, fmt.Errorf("core: tensor has %d timestamps, pipeline %d", len(tensor.Timestamps), len(p.timestamps))
	}
	n := len(rows)
	// fusedAt[k][i]: fused prediction at timestamp k for row i.
	preds := make([][]float64, len(p.timestamps))
	trajs := make([][]float64, n) // raw predictions per row
	for i := range trajs {
		trajs[i] = make([]float64, 0, len(p.timestamps))
	}
	for k := range p.timestamps {
		preds[k] = make([]float64, n)
		for i, r := range rows {
			raw, err := p.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				return nil, err
			}
			trajs[i] = append(trajs[i], raw)
			fused, err := p.fuser.Fuse(trajs[i])
			if err != nil {
				return nil, err
			}
			preds[k][i] = fused
		}
	}
	y := make([]float64, n)
	for i, r := range rows {
		y[i] = tensor.Slices[0].Y[r]
	}
	reports := make([]metrics.Report, len(p.timestamps))
	for k := range p.timestamps {
		rep, err := metrics.Evaluate(y, preds[k])
		if err != nil {
			return nil, err
		}
		reports[k] = rep
	}
	return reports, nil
}

// SumValMAE is the greedy design objective of Problem 2: the sum over the
// timeline of validation MAE (with this pipeline's fusion applied).
func (p *Pipeline) SumValMAE(tensor *features.Tensor, rows []int) (float64, error) {
	reports, err := p.EvaluateRows(tensor, rows)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, r := range reports {
		sum += r.MAE
	}
	return sum, nil
}

// GlobalImportances aggregates gain importances across every timeline
// model, mapping them back to feature names — the fleet-level "what drives
// delay" view SMEs review, complementing the per-avail TopFeatures.
// The result maps feature name to summed gain, normalized to 1.
func (p *Pipeline) GlobalImportances() map[string]float64 {
	out := make(map[string]float64)
	total := 0.0
	add := func(name string, v float64) {
		out[name] += v
		total += v
	}
	for k := range p.slots {
		s := &p.slots[k]
		imp := s.model.Importances()
		for j, v := range imp {
			if v == 0 { //lint:ignore floateq zero is the exact "feature unused" sentinel from Importances
				continue
			}
			if j < len(s.cols) {
				add(p.names[s.cols[j]], v)
			} else {
				add("STATIC_PRED", v)
			}
		}
	}
	if p.staticModel != nil {
		for j, v := range p.staticModel.Importances() {
			if v != 0 && j < features.NumStatic { //lint:ignore floateq zero is the exact "feature unused" sentinel from Importances
				add(p.names[j], v)
			}
		}
	}
	if total > 0 {
		for name := range out {
			out[name] /= total
		}
	}
	return out
}

// Attribution is one entry of the top-k contributing features of §5.2.5.
type Attribution struct {
	Name string
	// Score is the model's gain importance weighted by how unusual this
	// avail's value is (|z-score| against the training distribution).
	Score float64
	// Value is the avail's raw feature value.
	Value float64
}

// TopFeatures explains the prediction at grid index k for the given full
// feature vector: the n features with the highest importance × |z| scores.
func (p *Pipeline) TopFeatures(k int, full []float64, n int) ([]Attribution, error) {
	if k < 0 || k >= len(p.slots) {
		return nil, fmt.Errorf("core: slot %d out of range", k)
	}
	s := &p.slots[k]
	x := p.slotInput(k, full)
	imp := s.model.Importances()
	stats := p.trainStats[k]
	atts := make([]Attribution, 0, len(imp))
	for j, im := range imp {
		z := 0.0
		if j < len(stats.std) && stats.std[j] > 0 {
			z = math.Abs(x[j]-stats.mean[j]) / stats.std[j]
		}
		name := "STATIC_PRED"
		if j < len(s.cols) {
			name = p.names[s.cols[j]]
		}
		atts = append(atts, Attribution{Name: name, Score: im * (0.5 + z), Value: x[j]})
	}
	sort.SliceStable(atts, func(a, b int) bool { return atts[a].Score > atts[b].Score })
	if n > len(atts) {
		n = len(atts)
	}
	return atts[:n], nil
}
