package core

import (
	"fmt"

	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/statusq"
)

// QueryService answers DoMD Queries (Problem 1) against a trained Pipeline:
// given an avail (ongoing or future), its RCC history, and a physical
// timestamp t, it produces delay estimates at every grid point of planned
// duration from 0% up to the avail's current logical time.
type QueryService struct {
	pipeline *Pipeline
	ext      *features.Extractor
	kind     index.Kind
}

// NewQueryService wires a trained pipeline to the feature extractor it was
// trained with. kind selects the Status Query index backend.
func NewQueryService(p *Pipeline, ext *features.Extractor, kind index.Kind) *QueryService {
	return &QueryService{pipeline: p, ext: ext, kind: kind}
}

// Estimate is one point of the DoMD trajectory.
type Estimate struct {
	// Timestamp is the logical time t* (percent of planned duration).
	Timestamp float64
	// Raw is the per-timestamp model's estimate; Fused folds in all
	// estimates up to this timestamp with the pipeline's fusion method.
	Raw, Fused float64
}

// Result is the answer to one DoMD query.
type Result struct {
	AvailID int
	// At is the physical query date; LogicalTime its t* (may exceed 100
	// when the avail is running past plan — estimates stop at 100).
	At          domain.Day
	LogicalTime float64
	// Estimates cover grid points 0 … min(t*, 100).
	Estimates []Estimate
	// TopDrivers are the §5.2.5 top-5 contributing features at the most
	// recent grid point.
	TopDrivers []Attribution
}

// Final returns the latest fused estimate.
func (r *Result) Final() float64 {
	if len(r.Estimates) == 0 {
		return 0
	}
	return r.Estimates[len(r.Estimates)-1].Fused
}

// Query answers a DoMD query at physical time at, building a throwaway
// engine over the given RCC history — the one-shot CLI/example path. The
// avail must have started (t* >= 0); only RCC history up to the query time
// influences the estimates (later RCCs are invisible to earlier grid
// points by construction of the Status Query predicates).
//
// Serving tiers answering repeated queries should not pay this per-call
// re-index: build (or cache) the engine once — e.g. via statusq.Catalog —
// and call QueryEngine.
func (s *QueryService) Query(a *domain.Avail, rccs []domain.RCC, at domain.Day) (*Result, error) {
	ts, err := a.LogicalTime(at)
	if err != nil {
		return nil, err
	}
	if ts < 0 {
		return nil, fmt.Errorf("core: avail %d has not started at %v (t* = %.1f%%)", a.ID, at, ts)
	}
	eng, err := statusq.NewEngine(a, rccs, s.kind)
	if err != nil {
		return nil, err
	}
	return s.QueryEngine(eng, at)
}

// QueryEngine answers a DoMD query against a prebuilt Status Query engine.
// This is the cached serving path: the engine is read-only here, so one
// engine may be shared by any number of concurrent QueryEngine calls (see
// the index.TimeIndex concurrency contract).
func (s *QueryService) QueryEngine(eng *statusq.Engine, at domain.Day) (*Result, error) {
	a := eng.Avail()
	ts, err := a.LogicalTime(at)
	if err != nil {
		return nil, err
	}
	if ts < 0 {
		return nil, fmt.Errorf("core: avail %d has not started at %v (t* = %.1f%%)", a.ID, at, ts)
	}
	grid := s.pipeline.Timestamps()
	upto := 0
	for k, g := range grid {
		if g <= ts {
			upto = k
		}
	}
	fulls := make([][]float64, upto+1)
	for k := 0; k <= upto; k++ {
		fulls[k], err = s.ext.Vector(eng, grid[k])
		if err != nil {
			return nil, err
		}
	}
	raw, fused, err := s.pipeline.Trajectory(fulls, upto)
	if err != nil {
		return nil, err
	}
	res := &Result{AvailID: a.ID, At: at, LogicalTime: ts}
	for k := 0; k <= upto; k++ {
		res.Estimates = append(res.Estimates, Estimate{Timestamp: grid[k], Raw: raw[k], Fused: fused[k]})
	}
	res.TopDrivers, err = s.pipeline.TopFeatures(upto, fulls[upto], 5)
	if err != nil {
		return nil, err
	}
	return res, nil
}
