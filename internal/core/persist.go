package core

import (
	"encoding/json"
	"fmt"
	"io"

	"domd/internal/fusion"
	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/ml/linear"
)

// Trained pipelines serialize to JSON so the model bank fitted inside the
// training enclave can be shipped to a serving tier without retraining (the
// paper's deployment splits training and the SMDII front end).

type slotJSON struct {
	Cols   []int           `json:"cols"`
	Params *gbt.Params     `json:"params,omitempty"`
	Model  json.RawMessage `json:"model"`
}

type colStatsJSON struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type pipelineJSON struct {
	Config      Config          `json:"config"`
	Timestamps  []float64       `json:"timestamps"`
	Names       []string        `json:"names"`
	Slots       []slotJSON      `json:"slots"`
	StaticModel json.RawMessage `json:"static_model,omitempty"`
	TrainStats  []colStatsJSON  `json:"train_stats"`
}

func marshalModel(cfg Config, m ml.Model) (json.RawMessage, error) {
	switch cfg.Family {
	case FamilyXGBoost:
		gm, ok := m.(*gbt.Model)
		if !ok {
			return nil, fmt.Errorf("core: model is %T, want *gbt.Model", m)
		}
		return json.Marshal(gm)
	case FamilyElasticNet:
		lm, ok := m.(*linear.Model)
		if !ok {
			return nil, fmt.Errorf("core: model is %T, want *linear.Model", m)
		}
		return json.Marshal(lm)
	default:
		return nil, fmt.Errorf("core: cannot serialize family %q", cfg.Family)
	}
}

func unmarshalModel(cfg Config, raw json.RawMessage) (ml.Model, error) {
	switch cfg.Family {
	case FamilyXGBoost:
		m := &gbt.Model{}
		if err := json.Unmarshal(raw, m); err != nil {
			return nil, err
		}
		return m, nil
	case FamilyElasticNet:
		m := &linear.Model{}
		if err := json.Unmarshal(raw, m); err != nil {
			return nil, err
		}
		if len(m.Coef) == 0 {
			return nil, fmt.Errorf("core: linear model has no coefficients")
		}
		return m, nil
	default:
		return nil, fmt.Errorf("core: cannot deserialize family %q", cfg.Family)
	}
}

// Save writes the trained pipeline as JSON.
func (p *Pipeline) Save(w io.Writer) error {
	pj := pipelineJSON{
		Config:     p.cfg,
		Timestamps: p.timestamps,
		Names:      p.names,
	}
	for _, s := range p.slots {
		raw, err := marshalModel(p.cfg, s.model)
		if err != nil {
			return err
		}
		pj.Slots = append(pj.Slots, slotJSON{Cols: s.cols, Params: s.params, Model: raw})
	}
	if p.staticModel != nil {
		raw, err := marshalModel(p.cfg, p.staticModel)
		if err != nil {
			return err
		}
		pj.StaticModel = raw
	}
	for _, cs := range p.trainStats {
		pj.TrainStats = append(pj.TrainStats, colStatsJSON{Mean: cs.mean, Std: cs.std})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(pj)
}

// Load reconstructs a pipeline saved with Save.
func Load(r io.Reader) (*Pipeline, error) {
	var pj pipelineJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: load pipeline: %w", err)
	}
	if err := pj.Config.Validate(); err != nil {
		return nil, fmt.Errorf("core: load pipeline: %w", err)
	}
	if len(pj.Slots) == 0 || len(pj.Slots) != len(pj.Timestamps) {
		return nil, fmt.Errorf("core: load pipeline: %d slots for %d timestamps", len(pj.Slots), len(pj.Timestamps))
	}
	if len(pj.TrainStats) != len(pj.Slots) {
		return nil, fmt.Errorf("core: load pipeline: %d train stats for %d slots", len(pj.TrainStats), len(pj.Slots))
	}
	fuser, err := fusion.New(pj.Config.Fusion)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:        pj.Config,
		timestamps: pj.Timestamps,
		names:      pj.Names,
		fuser:      fuser,
	}
	for i, sj := range pj.Slots {
		m, err := unmarshalModel(pj.Config, sj.Model)
		if err != nil {
			return nil, fmt.Errorf("core: load slot %d: %w", i, err)
		}
		p.slots = append(p.slots, slot{cols: sj.Cols, model: m, params: sj.Params})
	}
	if pj.Config.Stacked {
		if pj.StaticModel == nil {
			return nil, fmt.Errorf("core: load pipeline: stacked config without static model")
		}
		p.staticModel, err = unmarshalModel(pj.Config, pj.StaticModel)
		if err != nil {
			return nil, fmt.Errorf("core: load static model: %w", err)
		}
	}
	for _, cs := range pj.TrainStats {
		p.trainStats = append(p.trainStats, colStats{mean: cs.Mean, std: cs.Std})
	}
	return p, nil
}
