package core

import (
	"testing"
)

func TestConformalCoverage(t *testing.T) {
	tensor, sp := testTensor(t, 120, 71)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConformal(p, tensor, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical coverage on the untouched test rows at every timestamp.
	const alpha = 0.2
	covered, total := 0, 0
	for _, r := range sp.Test {
		var traj []float64
		for k := range tensor.Timestamps {
			raw, err := p.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				t.Fatal(err)
			}
			traj = append(traj, raw)
			lo, mid, hi, err := c.Interval(traj, k, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !(lo <= mid && mid <= hi) {
				t.Fatalf("interval not ordered: %f %f %f", lo, mid, hi)
			}
			y := tensor.Slices[k].Y[r]
			if y >= lo && y <= hi {
				covered++
			}
			total++
		}
	}
	cov := float64(covered) / float64(total)
	// Finite-sample guarantee is >= 1-alpha in expectation over splits;
	// allow sampling slack on a ~30-row test set.
	if cov < 1-alpha-0.15 {
		t.Errorf("coverage %.2f below target %.2f", cov, 1-alpha)
	}
}

func TestConformalMarginsShrinkWithAlpha(t *testing.T) {
	tensor, sp := testTensor(t, 60, 72)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConformal(p, tensor, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	for k := range tensor.Timestamps {
		m10, err := c.Margin(k, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		m50, err := c.Margin(k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if m50 > m10 {
			t.Errorf("slot %d: 50%% margin %f exceeds 90%% margin %f", k, m50, m10)
		}
		if m10 < 0 {
			t.Errorf("negative margin %f", m10)
		}
	}
}

func TestConformalErrors(t *testing.T) {
	tensor, sp := testTensor(t, 40, 73)
	p, err := Train(fastConfig(), tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConformal(p, tensor, nil); err == nil {
		t.Error("no calibration rows: want error")
	}
	c, err := NewConformal(p, tensor, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Margin(99, 0.1); err == nil {
		t.Error("slot out of range: want error")
	}
	if _, err := c.Margin(0, 0); err == nil {
		t.Error("alpha 0: want error")
	}
	if _, err := c.Margin(0, 1); err == nil {
		t.Error("alpha 1: want error")
	}
	if _, _, _, err := c.Interval([]float64{1}, 3, 0.1); err == nil {
		t.Error("short trajectory: want error")
	}
}
