package core

import (
	"testing"
)

// TestParallelTrainingMatchesSerial pins determinism: the same config
// trained with 1 worker and with 4 workers must yield identical pipelines.
func TestParallelTrainingMatchesSerial(t *testing.T) {
	tensor, sp := testTensor(t, 50, 51)
	serialCfg := fastConfig()
	serial, err := Train(serialCfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := fastConfig()
	parCfg.Workers = 4
	parallel, err := Train(parCfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	for k := range tensor.Timestamps {
		for _, r := range sp.Test {
			a, err := serial.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				t.Fatal(err)
			}
			b, err := parallel.PredictAt(k, tensor.Slices[k].X[r])
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("slot %d row %d: serial %f vs parallel %f", k, r, a, b)
			}
		}
	}
}

// TestParallelTrainingWithTuning exercises the HPT path under concurrency
// (each slot tunes with its own salted seed).
func TestParallelTrainingWithTuning(t *testing.T) {
	tensor, sp := testTensor(t, 40, 52)
	cfg := fastConfig()
	cfg.Workers = 3
	cfg.HPTTrials = 4
	cfg.HPTMethod = "random"
	a, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Slices[1].X[sp.Test[0]]
	pa, _ := a.PredictAt(1, x)
	pb, _ := b.PredictAt(1, x)
	if pa != pb {
		t.Error("tuned parallel training must stay deterministic")
	}
}

// TestParallelTrainingPropagatesErrors: a failing slot must surface its
// error rather than panic or silently produce a broken pipeline.
func TestParallelTrainingPropagatesErrors(t *testing.T) {
	tensor, sp := testTensor(t, 40, 53)
	cfg := fastConfig()
	cfg.Workers = 4
	cfg.K = 10_000_000 // forces the selector to return all columns; fine
	if _, err := Train(cfg, tensor, sp.Train, sp.Val); err != nil {
		t.Fatalf("huge k should clamp, not fail: %v", err)
	}
	bad := fastConfig()
	bad.Workers = 4
	bad.HPTTrials = 3
	// HPT with empty validation rows must error before training starts.
	if _, err := Train(bad, tensor, sp.Train, nil); err == nil {
		t.Error("want error for HPT without validation rows")
	}
}
