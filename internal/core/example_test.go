package core_test

import (
	"fmt"

	"domd/internal/core"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
	"domd/internal/split"
)

// End-to-end: generate a fleet, train the pipeline, answer one DoMD query.
// (A reduced configuration keeps the example fast; core.DefaultConfig is
// the paper's selected pipeline.)
func Example() {
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: 40, NumOngoing: 1, MeanRCCsPerAvail: 40, Seed: 8,
	})
	if err != nil {
		panic(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		panic(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		panic(err)
	}

	cfg := core.BaselineConfig()
	params := gbt.DefaultParams()
	params.NumRounds = 20
	params.LearningRate = 0.3
	cfg.GBTParams = &params
	cfg.Fusion = "average"
	pipe, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		panic(err)
	}

	svc := core.NewQueryService(pipe, ext, index.KindAVL)
	ongoing := &ds.Avails[40] // the one ongoing avail
	res, err := svc.Query(ongoing, ds.RCCsByAvail()[ongoing.ID], ongoing.PhysicalTime(50))
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimates up to t*=%.0f%%: %d points, %d top drivers\n",
		res.LogicalTime, len(res.Estimates), len(res.TopDrivers))
	// Output: estimates up to t*=50%: 3 points, 5 top drivers
}

// Conformal bands: wrap the trained pipeline with split-conformal intervals
// calibrated on the validation rows.
func ExampleConformal() {
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: 40, NumOngoing: 0, MeanRCCsPerAvail: 40, Seed: 8,
	})
	if err != nil {
		panic(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		panic(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		panic(err)
	}
	cfg := core.BaselineConfig()
	params := gbt.DefaultParams()
	params.NumRounds = 20
	params.LearningRate = 0.3
	cfg.GBTParams = &params
	pipe, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		panic(err)
	}
	conf, err := core.NewConformal(pipe, tensor, sp.Val)
	if err != nil {
		panic(err)
	}
	// 80% band at the 50% timestamp for one test avail.
	row := sp.Test[0]
	var traj []float64
	for k := 0; k <= 2; k++ {
		raw, err := pipe.PredictAt(k, tensor.Slices[k].X[row])
		if err != nil {
			panic(err)
		}
		traj = append(traj, raw)
	}
	lo, mid, hi, err := conf.Interval(traj, 2, 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Println(lo < mid && mid < hi)
	// Output: true
}
