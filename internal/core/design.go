package core

import (
	"fmt"

	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/ml/gbt"
)

// DesignOptions parameterize the greedy sequential optimization of Problem
// 2. Zero-value fields take the paper's §5.2.1 grids.
type DesignOptions struct {
	// Selectors to compare (default: the paper's five).
	Selectors []string
	// Ks is the feature-budget grid (default 20..100 step 10).
	Ks []int
	// Families to compare (default XGBoost, ElasticNet).
	Families []ModelFamily
	// Losses to compare (default l2, l1, pseudohuber).
	Losses []string
	// TrialGrid is the AutoHPT budget grid (default the paper's
	// [10,20,30,40,50,100,200]).
	TrialGrid []int
	// Fusions to compare (default none, min, average).
	Fusions []string
	// DesignGBT overrides the default booster used while searching (a
	// lighter configuration keeps the search affordable; the final
	// pipeline is tuned properly regardless). Nil uses a 40-round booster.
	DesignGBT *gbt.Params
	// Seed drives stochastic components.
	Seed int64
}

func (o *DesignOptions) defaults() {
	if len(o.Selectors) == 0 {
		o.Selectors = featsel.Methods()
	}
	if len(o.Ks) == 0 {
		for k := 20; k <= 100; k += 10 {
			o.Ks = append(o.Ks, k)
		}
	}
	if len(o.Families) == 0 {
		o.Families = []ModelFamily{FamilyXGBoost, FamilyElasticNet}
	}
	if len(o.Losses) == 0 {
		o.Losses = []string{"l2", "l1", "pseudohuber"}
	}
	if len(o.TrialGrid) == 0 {
		o.TrialGrid = []int{10, 20, 30, 40, 50, 100, 200}
	}
	if len(o.Fusions) == 0 {
		o.Fusions = fusion.Methods()
	}
	if o.DesignGBT == nil {
		p := gbt.DefaultParams()
		p.NumRounds = 40
		p.LearningRate = 0.15
		o.DesignGBT = &p
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// StageResult records one evaluated option of a design stage.
type StageResult struct {
	// Option names the evaluated choice ("pearson", "xgboost", "stacked",
	// "l1", "30", "average", ...).
	Option string
	// K is the feature budget (feature-selection stage only).
	K int
	// SumValMAE is the Problem 2 objective: validation MAE summed over
	// the timeline.
	SumValMAE float64
}

// DesignReport is the full trace of the greedy design: every stage's
// evaluations (the data behind Figs. 6a–6f) and the winning configuration.
type DesignReport struct {
	FeatureSelection []StageResult
	BaseModel        []StageResult
	Stacking         []StageResult
	Loss             []StageResult
	HPTTrials        []StageResult
	Fusion           []StageResult
	// Final is the selected configuration x̂ = (ŝ, m̂, l̂, p̂, f̂).
	Final Config
}

// evalConfig trains cfg on trainRows and returns the summed validation MAE.
func evalConfig(cfg Config, tensor *features.Tensor, trainRows, valRows []int) (float64, error) {
	p, err := Train(cfg, tensor, trainRows, valRows)
	if err != nil {
		return 0, err
	}
	return p.SumValMAE(tensor, valRows)
}

// Design runs the greedy sequential optimization of Problem 2 on the given
// tensor: each stage fixes one coordinate of x̂ by minimizing the summed
// validation MAE with all later coordinates at their defaults.
func Design(tensor *features.Tensor, trainRows, valRows []int, opts DesignOptions) (*DesignReport, error) {
	opts.defaults()
	if len(valRows) == 0 {
		return nil, fmt.Errorf("core: design requires validation rows")
	}
	rep := &DesignReport{}

	cfg := BaselineConfig()
	cfg.Seed = opts.Seed
	cfg.GBTParams = opts.DesignGBT

	// --- Task 2: feature selection method and k.
	best := StageResult{SumValMAE: inf()}
	for _, sel := range opts.Selectors {
		for _, k := range opts.Ks {
			c := cfg
			c.Selector = sel
			c.K = k
			mae, err := evalConfig(c, tensor, trainRows, valRows)
			if err != nil {
				return nil, fmt.Errorf("core: design selector %s k=%d: %w", sel, k, err)
			}
			r := StageResult{Option: sel, K: k, SumValMAE: mae}
			rep.FeatureSelection = append(rep.FeatureSelection, r)
			if mae < best.SumValMAE {
				best = r
			}
		}
	}
	cfg.Selector = best.Option
	cfg.K = best.K

	// --- Task 3a: base model family.
	best = StageResult{SumValMAE: inf()}
	for _, fam := range opts.Families {
		c := cfg
		c.Family = fam
		mae, err := evalConfig(c, tensor, trainRows, valRows)
		if err != nil {
			return nil, fmt.Errorf("core: design family %s: %w", fam, err)
		}
		r := StageResult{Option: string(fam), SumValMAE: mae}
		rep.BaseModel = append(rep.BaseModel, r)
		if mae < best.SumValMAE {
			best = r
		}
	}
	cfg.Family = ModelFamily(best.Option)

	// --- Task 3b: stacked vs non-stacked architecture.
	best = StageResult{SumValMAE: inf()}
	for _, stacked := range []bool{false, true} {
		c := cfg
		c.Stacked = stacked
		name := "non-stacked"
		if stacked {
			name = "stacked"
		}
		mae, err := evalConfig(c, tensor, trainRows, valRows)
		if err != nil {
			return nil, fmt.Errorf("core: design %s: %w", name, err)
		}
		r := StageResult{Option: name, SumValMAE: mae}
		rep.Stacking = append(rep.Stacking, r)
		if mae < best.SumValMAE {
			best = r
		}
	}
	cfg.Stacked = best.Option == "stacked"

	// --- Task 4: loss function (meaningful for the boosted family only).
	if cfg.Family == FamilyXGBoost {
		best = StageResult{SumValMAE: inf()}
		for _, l := range opts.Losses {
			c := cfg
			c.Loss = l
			if l == "pseudohuber" || l == "huber" {
				c.LossDelta = 18
			}
			mae, err := evalConfig(c, tensor, trainRows, valRows)
			if err != nil {
				return nil, fmt.Errorf("core: design loss %s: %w", l, err)
			}
			r := StageResult{Option: l, SumValMAE: mae}
			rep.Loss = append(rep.Loss, r)
			if mae < best.SumValMAE {
				best = r
			}
		}
		cfg.Loss = best.Option
		if cfg.Loss == "pseudohuber" || cfg.Loss == "huber" {
			cfg.LossDelta = 18
		}
	} else {
		rep.Loss = append(rep.Loss, StageResult{Option: cfg.Loss, SumValMAE: -1})
	}

	// --- Task 5: hyperparameter budget.
	if cfg.Family == FamilyXGBoost {
		best = StageResult{SumValMAE: inf()}
		bestTrials := 0
		for _, trials := range opts.TrialGrid {
			c := cfg
			c.HPTTrials = trials
			c.HPTMethod = "tpe"
			mae, err := evalConfig(c, tensor, trainRows, valRows)
			if err != nil {
				return nil, fmt.Errorf("core: design trials %d: %w", trials, err)
			}
			r := StageResult{Option: fmt.Sprintf("%d", trials), SumValMAE: mae}
			rep.HPTTrials = append(rep.HPTTrials, r)
			if mae < best.SumValMAE {
				best = r
				bestTrials = trials
			}
		}
		cfg.HPTTrials = bestTrials
		cfg.HPTMethod = "tpe"
	}

	// --- Task 6: fusion.
	best = StageResult{SumValMAE: inf()}
	for _, f := range opts.Fusions {
		c := cfg
		c.Fusion = f
		mae, err := evalConfig(c, tensor, trainRows, valRows)
		if err != nil {
			return nil, fmt.Errorf("core: design fusion %s: %w", f, err)
		}
		r := StageResult{Option: f, SumValMAE: mae}
		rep.Fusion = append(rep.Fusion, r)
		if mae < best.SumValMAE {
			best = r
		}
	}
	cfg.Fusion = best.Option

	rep.Final = cfg
	return rep, nil
}

func inf() float64 { return 1e308 }
