package core

import (
	"testing"

	"domd/internal/featsel"
	"domd/internal/ml/gbt"
)

// tinyDesignOptions shrinks every grid so the full greedy design runs in
// test time while still exercising all six stages.
func tinyDesignOptions() DesignOptions {
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	return DesignOptions{
		Selectors: []string{featsel.MethodPearson, featsel.MethodRandom},
		Ks:        []int{20, 40},
		Losses:    []string{"l2", "pseudohuber"},
		TrialGrid: []int{4},
		DesignGBT: &p,
		Seed:      1,
	}
}

func TestDesignRunsAllStages(t *testing.T) {
	tensor, sp := testTensor(t, 50, 21)
	rep, err := Design(tensor, sp.Train, sp.Val, tinyDesignOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FeatureSelection) != 4 { // 2 selectors × 2 ks
		t.Errorf("feature selection results = %d, want 4", len(rep.FeatureSelection))
	}
	if len(rep.BaseModel) != 2 {
		t.Errorf("base model results = %d, want 2", len(rep.BaseModel))
	}
	if len(rep.Stacking) != 2 {
		t.Errorf("stacking results = %d, want 2", len(rep.Stacking))
	}
	if rep.Final.Family == FamilyXGBoost {
		if len(rep.Loss) != 2 {
			t.Errorf("loss results = %d, want 2", len(rep.Loss))
		}
		if len(rep.HPTTrials) != 1 {
			t.Errorf("trial results = %d, want 1", len(rep.HPTTrials))
		}
	}
	if len(rep.Fusion) != 3 {
		t.Errorf("fusion results = %d, want 3", len(rep.Fusion))
	}
	if err := rep.Final.Validate(); err != nil {
		t.Errorf("final config invalid: %v", err)
	}
	// The final selector/k must be the argmin of stage 1.
	best := rep.FeatureSelection[0]
	for _, r := range rep.FeatureSelection[1:] {
		if r.SumValMAE < best.SumValMAE {
			best = r
		}
	}
	if rep.Final.Selector != best.Option || rep.Final.K != best.K {
		t.Errorf("final selector %s/%d, stage-1 best %s/%d",
			rep.Final.Selector, rep.Final.K, best.Option, best.K)
	}
}

func TestDesignPearsonBeatsRandom(t *testing.T) {
	tensor, sp := testTensor(t, 80, 22)
	rep, err := Design(tensor, sp.Train, sp.Val, tinyDesignOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Average the stage-1 objective per method: informative selection must
	// beat the random control on signal-bearing data.
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rep.FeatureSelection {
		sums[r.Option] += r.SumValMAE
		counts[r.Option]++
	}
	pearson := sums[featsel.MethodPearson] / float64(counts[featsel.MethodPearson])
	random := sums[featsel.MethodRandom] / float64(counts[featsel.MethodRandom])
	if pearson >= random {
		t.Errorf("pearson mean objective %f should beat random %f", pearson, random)
	}
}

func TestDesignRequiresValidation(t *testing.T) {
	tensor, sp := testTensor(t, 40, 23)
	if _, err := Design(tensor, sp.Train, nil, tinyDesignOptions()); err == nil {
		t.Error("design without validation rows: want error")
	}
}

func TestDesignDefaultsFillGrids(t *testing.T) {
	var o DesignOptions
	o.defaults()
	if len(o.Selectors) != 5 {
		t.Errorf("default selectors = %d, want 5", len(o.Selectors))
	}
	if len(o.Ks) != 9 || o.Ks[0] != 20 || o.Ks[8] != 100 {
		t.Errorf("default ks = %v", o.Ks)
	}
	if len(o.TrialGrid) != 7 {
		t.Errorf("default trial grid = %v, want the paper's 7 budgets", o.TrialGrid)
	}
	if o.DesignGBT == nil || o.Seed == 0 {
		t.Error("defaults must fill booster and seed")
	}
}
