package domain_test

import (
	"fmt"

	"domd/internal/domain"
)

// The avail of the paper's Table 1 row 2: planned 2019-05-07 → 2020-04-11,
// actually finished 2021-05-21 — a 405-day delay.
func ExampleAvail_Delay() {
	mustDay := func(s string) domain.Day {
		d, err := domain.ParseDay(s)
		if err != nil {
			panic(err)
		}
		return d
	}
	a := domain.Avail{
		ID: 2, Status: domain.StatusClosed,
		PlanStart: mustDay("2019-05-07"),
		PlanEnd:   mustDay("2020-04-11"),
		ActStart:  mustDay("2019-05-07"),
		ActEnd:    mustDay("2021-05-21"),
	}
	delay, err := a.Delay()
	if err != nil {
		panic(err)
	}
	fmt.Println(delay)
	// Output: 405
}

func ExampleAvail_LogicalTime() {
	mustDay := func(s string) domain.Day {
		d, err := domain.ParseDay(s)
		if err != nil {
			panic(err)
		}
		return d
	}
	a := domain.Avail{
		ID: 2, Status: domain.StatusOngoing,
		PlanStart: mustDay("2019-05-07"),
		PlanEnd:   mustDay("2020-04-11"),
		ActStart:  mustDay("2019-05-07"),
	}
	// Paper §2: 2019-07-06 is ≈18% of the planned duration.
	ts, err := a.LogicalTime(mustDay("2019-07-06"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f%%\n", ts)
	// Output: 18%
}
