package domain

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayRoundTrip(t *testing.T) {
	cases := []string{"2000-01-01", "2019-05-07", "2021-05-21", "1999-12-31", "2024-02-29"}
	for _, s := range cases {
		d, err := ParseDay(s)
		if err != nil {
			t.Fatalf("ParseDay(%q): %v", s, err)
		}
		if got := d.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseDayRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "not-a-date", "2020-13-01", "01/02/2020"} {
		if _, err := ParseDay(s); err == nil {
			t.Errorf("ParseDay(%q): want error", s)
		}
	}
}

func TestFromTimeTruncates(t *testing.T) {
	noon := time.Date(2020, 3, 4, 12, 30, 0, 0, time.UTC)
	midnight := time.Date(2020, 3, 4, 0, 0, 0, 0, time.UTC)
	if FromTime(noon) != FromTime(midnight) {
		t.Errorf("FromTime should truncate to date: %v vs %v", FromTime(noon), FromTime(midnight))
	}
}

func TestDayQuickRoundTrip(t *testing.T) {
	f := func(n int16) bool {
		d := Day(n)
		return FromTime(d.Time()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mustDay parses a date or fails the test.
func mustDay(t *testing.T, s string) Day {
	t.Helper()
	d, err := ParseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// paperAvail2 reconstructs avail ID 2 from the paper's Table 1, whose delay
// the paper computes as 405 = 745 - 340.
func paperAvail2(t *testing.T) *Avail {
	return &Avail{
		ID: 2, ShipID: 246, Status: StatusClosed,
		PlanStart: mustDay(t, "2019-05-07"),
		PlanEnd:   mustDay(t, "2020-04-11"),
		ActStart:  mustDay(t, "2019-05-07"),
		ActEnd:    mustDay(t, "2021-05-21"),
	}
}

func TestPaperTable1Delays(t *testing.T) {
	a2 := paperAvail2(t)
	if got := a2.PlannedDuration(); got != 340 {
		t.Errorf("avail 2 planned duration = %d, want 340", got)
	}
	act, err := a2.ActualDuration()
	if err != nil {
		t.Fatal(err)
	}
	if act != 745 {
		t.Errorf("avail 2 actual duration = %d, want 745", act)
	}
	d, err := a2.Delay()
	if err != nil {
		t.Fatal(err)
	}
	if d != 405 {
		t.Errorf("avail 2 delay = %d, want 405", d)
	}

	// Avail 5 from Table 1: started late but ended on the planned date;
	// delay is negative (-27) because delay ignores the late start.
	a5 := &Avail{
		ID: 5, ShipID: 1547, Status: StatusClosed,
		PlanStart: mustDay(t, "2020-01-31"),
		PlanEnd:   mustDay(t, "2020-08-19"),
		ActStart:  mustDay(t, "2020-02-27"),
		ActEnd:    mustDay(t, "2020-08-19"),
	}
	d5, err := a5.Delay()
	if err != nil {
		t.Fatal(err)
	}
	if d5 != -27 {
		t.Errorf("avail 5 delay = %d, want -27", d5)
	}

	// Avail 4 from Table 1: delay 39.
	a4 := &Avail{
		ID: 4, ShipID: 1565, Status: StatusClosed,
		PlanStart: mustDay(t, "2021-03-01"),
		PlanEnd:   mustDay(t, "2022-11-08"),
		ActStart:  mustDay(t, "2021-03-01"),
		ActEnd:    mustDay(t, "2022-12-17"),
	}
	if d4, _ := a4.Delay(); d4 != 39 {
		t.Errorf("avail 4 delay = %d, want 39", d4)
	}

	// Avail 3 finished exactly on plan: zero delay.
	a3 := &Avail{
		ID: 3, ShipID: 202, Status: StatusClosed,
		PlanStart: mustDay(t, "2018-07-18"),
		PlanEnd:   mustDay(t, "2019-06-11"),
		ActStart:  mustDay(t, "2018-07-18"),
		ActEnd:    mustDay(t, "2019-06-11"),
	}
	if d3, _ := a3.Delay(); d3 != 0 {
		t.Errorf("avail 3 delay = %d, want 0", d3)
	}
}

func TestOngoingAvailHasNoDelay(t *testing.T) {
	a := &Avail{ID: 1, Status: StatusOngoing,
		PlanStart: 0, PlanEnd: 100, ActStart: 0}
	if _, err := a.Delay(); err == nil {
		t.Error("Delay on ongoing avail: want error")
	}
	if _, err := a.ActualDuration(); err == nil {
		t.Error("ActualDuration on ongoing avail: want error")
	}
}

func TestLogicalTimePaperExample(t *testing.T) {
	// Paper §2: for avail 2, t = 2019-07-06 corresponds to t* = 18%
	// ((60 days elapsed)/340 ≈ 17.6%, which the paper rounds to 18%).
	a2 := paperAvail2(t)
	ts, err := a2.LogicalTime(mustDay(t, "2019-07-06"))
	if err != nil {
		t.Fatal(err)
	}
	if ts < 17.5 || ts > 18.0 {
		t.Errorf("logical time = %.2f, want ~17.6 (paper rounds to 18)", ts)
	}
}

func TestLogicalTimeBounds(t *testing.T) {
	a2 := paperAvail2(t)
	start, _ := a2.LogicalTime(a2.ActStart)
	if start != 0 {
		t.Errorf("t* at actual start = %f, want 0", start)
	}
	end, _ := a2.LogicalTime(a2.ActStart + Day(a2.PlannedDuration()))
	if end != 100 {
		t.Errorf("t* at planned-duration mark = %f, want 100", end)
	}
	past, _ := a2.LogicalTime(a2.ActEnd)
	if past <= 100 {
		t.Errorf("avail 2 ran past plan; t* at actual end = %f, want > 100", past)
	}
}

func TestLogicalTimeZeroPlanErrors(t *testing.T) {
	a := &Avail{ID: 9, PlanStart: 10, PlanEnd: 10}
	if _, err := a.LogicalTime(12); err == nil {
		t.Error("want error for zero planned duration")
	}
}

func TestPhysicalTimeInvertsLogicalTime(t *testing.T) {
	a2 := paperAvail2(t)
	f := func(pct uint8) bool {
		ts := float64(pct % 101)
		day := a2.PhysicalTime(ts)
		back, err := a2.LogicalTime(day)
		if err != nil {
			return false
		}
		// Rounding to integer days loses < 1 day = 100/340 % precision.
		return back <= ts+1e-9 && ts-back < 100.0/float64(a2.PlannedDuration())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvailValidate(t *testing.T) {
	bad := &Avail{ID: 1, PlanStart: 10, PlanEnd: 5}
	if err := bad.Validate(); err == nil {
		t.Error("want error for inverted plan window")
	}
	badAct := &Avail{ID: 2, PlanStart: 0, PlanEnd: 10, Status: StatusClosed, ActStart: 5, ActEnd: 1}
	if err := badAct.Validate(); err == nil {
		t.Error("want error for inverted actual window")
	}
	good := &Avail{ID: 3, PlanStart: 0, PlanEnd: 10, Status: StatusClosed, ActStart: 0, ActEnd: 12}
	if err := good.Validate(); err != nil {
		t.Errorf("valid avail rejected: %v", err)
	}
}

func TestRCCTypeStringAndParse(t *testing.T) {
	for _, tt := range []RCCType{Growth, NewWork, NewGrowth} {
		got, err := ParseRCCType(tt.String())
		if err != nil {
			t.Fatalf("ParseRCCType(%q): %v", tt.String(), err)
		}
		if got != tt {
			t.Errorf("round trip %v -> %v", tt, got)
		}
	}
	if _, err := ParseRCCType("X"); err == nil {
		t.Error("ParseRCCType(X): want error")
	}
}

func TestRCCStatusAt(t *testing.T) {
	r := &RCC{ID: 1, Created: 10, Settled: 20}
	cases := []struct {
		t       Day
		want    RCCStatus
		visible bool
	}{
		{5, 0, false},
		{9, 0, false},
		{10, Active, true},
		{15, Active, true},
		{19, Active, true},
		{20, SettledStatus, true},
		{100, SettledStatus, true},
	}
	for _, c := range cases {
		got, vis := r.StatusAt(c.t)
		if vis != c.visible || (vis && got != c.want) {
			t.Errorf("StatusAt(%d) = %v,%v, want %v,%v", c.t, got, vis, c.want, c.visible)
		}
	}
}

func TestRCCDurationAndValidate(t *testing.T) {
	r := &RCC{ID: 1, Created: mustDay(t, "2020-03-22"), Settled: mustDay(t, "2020-06-16"), Amount: 8000}
	if got := r.Duration(); got != 86 {
		t.Errorf("paper RCC 1G duration = %d days, want 86", got)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid RCC rejected: %v", err)
	}
	bad := &RCC{ID: 2, Created: 10, Settled: 5}
	if err := bad.Validate(); err == nil {
		t.Error("want error for settled before created")
	}
	neg := &RCC{ID: 3, Created: 0, Settled: 1, Amount: -5}
	if err := neg.Validate(); err == nil {
		t.Error("want error for negative amount")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusOngoing.String() != "ongoing" || StatusClosed.String() != "closed" {
		t.Error("AvailStatus strings wrong")
	}
	if Active.String() != "ACTIVE" || SettledStatus.String() != "SETTLED" || Created.String() != "CREATED" {
		t.Error("RCCStatus strings wrong")
	}
}
