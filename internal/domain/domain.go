// Package domain defines the core data model of the DoMD framework: ship
// maintenance availabilities ("avails"), Requests for Contract Change (RCCs),
// and the logical-time arithmetic that relates physical timestamps to the
// fraction of planned maintenance duration elapsed (paper §2, Eq. 1).
//
// All dates are represented as integer day numbers (days since an arbitrary
// epoch). Delay is expressed in days, logical time in percent of planned
// duration.
package domain

import (
	"errors"
	"fmt"
	"time"
)

// Day is a calendar date expressed as a day number since the epoch
// (2000-01-01). Integer day arithmetic keeps delay computation exact and
// avoids timezone pitfalls; the raw Navy tables only carry date resolution.
type Day int

// Epoch is the calendar date corresponding to Day(0).
var Epoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// FromTime converts a wall-clock time to a Day, truncating to UTC midnight.
func FromTime(t time.Time) Day {
	return Day(t.UTC().Truncate(24*time.Hour).Sub(Epoch) / (24 * time.Hour))
}

// Time converts a Day back to a UTC midnight time.Time.
func (d Day) Time() time.Time { return Epoch.AddDate(0, 0, int(d)) }

// String renders the day as an ISO date.
func (d Day) String() string { return d.Time().Format("2006-01-02") }

// ParseDay parses an ISO "2006-01-02" date into a Day.
func ParseDay(s string) (Day, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("domain: parse day %q: %w", s, err)
	}
	return FromTime(t), nil
}

// AvailStatus describes whether a maintenance period has concluded.
type AvailStatus int

const (
	// StatusOngoing marks an avail whose actual end date is not yet known.
	StatusOngoing AvailStatus = iota
	// StatusClosed marks a completed avail with a measurable delay.
	StatusClosed
)

// String implements fmt.Stringer.
func (s AvailStatus) String() string {
	switch s {
	case StatusOngoing:
		return "ongoing"
	case StatusClosed:
		return "closed"
	default:
		return fmt.Sprintf("AvailStatus(%d)", int(s))
	}
}

// Avail is one ship maintenance period
// a_i = <i, t_planS, t_planE, t_actS, t_actE> (paper §2, Table 1), plus the
// static ship attributes used by the static model.
type Avail struct {
	ID     int
	ShipID int
	Status AvailStatus

	PlanStart Day
	PlanEnd   Day
	ActStart  Day
	// ActEnd is only meaningful when Status == StatusClosed.
	ActEnd Day

	// Static attributes F^S (paper §2): time-invariant features known
	// before execution begins. The paper cites ship class, maintenance
	// center (RMC), ship age and planning features among its 8 statics.
	ShipClass    int     // hull class code
	RMC          int     // Regional Maintenance Center id
	ShipAge      float64 // years since commissioning at planned start
	PlannedCost  float64 // contract planning dollars
	CrewSize     int     // assigned maintenance crew size
	PriorAvails  int     // number of prior availabilities for this hull
	DockType     int     // 0 pier-side, 1 dry dock
	HomeportDist float64 // distance from homeport to RMC (nmi)
}

// PlannedDuration returns s^plan = planE - planS in days.
func (a *Avail) PlannedDuration() int { return int(a.PlanEnd - a.PlanStart) }

// ActualDuration returns s^act = actE - actS in days. It returns an error for
// ongoing avails, whose actual end is undefined.
func (a *Avail) ActualDuration() (int, error) {
	if a.Status != StatusClosed {
		return 0, fmt.Errorf("domain: avail %d: %w", a.ID, ErrOngoing)
	}
	return int(a.ActEnd - a.ActStart), nil
}

// Delay returns d = s^act - s^plan in days (paper §2). Positive means tardy,
// zero on time, negative early. Ongoing avails have no delay yet.
func (a *Avail) Delay() (int, error) {
	act, err := a.ActualDuration()
	if err != nil {
		return 0, err
	}
	return act - a.PlannedDuration(), nil
}

// ErrOngoing is returned when a measurement requires a closed avail.
var ErrOngoing = errors.New("avail is ongoing")

// LogicalTime computes t* for physical time t (paper Eq. 1):
//
//	t* = (t - t_actS) / s_plan × 100
//
// The result may be negative (before actual start) or exceed 100 (running
// past plan). An error is returned for a degenerate zero-length plan.
func (a *Avail) LogicalTime(t Day) (float64, error) {
	plan := a.PlannedDuration()
	if plan <= 0 {
		return 0, fmt.Errorf("domain: avail %d has non-positive planned duration %d", a.ID, plan)
	}
	return float64(t-a.ActStart) / float64(plan) * 100, nil
}

// PhysicalTime inverts LogicalTime: the Day at which the avail reaches
// logical time ts (percent). Fractional days round toward zero.
func (a *Avail) PhysicalTime(ts float64) Day {
	return a.ActStart + Day(ts/100*float64(a.PlannedDuration()))
}

// Validate checks internal consistency of the avail record.
func (a *Avail) Validate() error {
	if a.PlanEnd <= a.PlanStart {
		return fmt.Errorf("domain: avail %d: plan end %v not after plan start %v", a.ID, a.PlanEnd, a.PlanStart)
	}
	if a.Status == StatusClosed && a.ActEnd < a.ActStart {
		return fmt.Errorf("domain: avail %d: actual end %v before actual start %v", a.ID, a.ActEnd, a.ActStart)
	}
	return nil
}

// RCCType categorizes a Request for Contract Change (paper §2): Growth
// upgrades existing systems, New Work creates new ones, New Growth adds
// distinct components.
type RCCType int

const (
	// Growth (G) work upgrades existing ship systems.
	Growth RCCType = iota
	// NewWork (NW) creates new systems.
	NewWork
	// NewGrowth (NG) adds distinct components.
	NewGrowth

	// NumRCCTypes is the number of concrete RCC types.
	NumRCCTypes = 3
)

// String returns the paper's abbreviation for the type.
func (t RCCType) String() string {
	switch t {
	case Growth:
		return "G"
	case NewWork:
		return "NW"
	case NewGrowth:
		return "NG"
	default:
		return fmt.Sprintf("RCCType(%d)", int(t))
	}
}

// ParseRCCType parses the paper's abbreviations G, NW, NG.
func ParseRCCType(s string) (RCCType, error) {
	switch s {
	case "G":
		return Growth, nil
	case "NW":
		return NewWork, nil
	case "NG":
		return NewGrowth, nil
	}
	return 0, fmt.Errorf("domain: unknown RCC type %q", s)
}

// RCC is one Request for Contract Change
// r_j = <j, a_i, w_j, t_s, t_e, m_j> (paper §2, Table 3).
type RCC struct {
	ID      int
	AvailID int
	Type    RCCType
	// SWLIN is the 8-digit hierarchical Ship Work List Number packed as an
	// integer (see package swlin for structure and formatting).
	SWLIN int
	// Created is the creation date t_s; Settled the settlement date t_e.
	Created Day
	Settled Day
	// Amount m_j is the settled dollar amount.
	Amount float64
}

// Duration returns the RCC's open interval length in days.
func (r *RCC) Duration() int { return int(r.Settled - r.Created) }

// Validate checks internal consistency of the RCC record.
func (r *RCC) Validate() error {
	if r.Settled < r.Created {
		return fmt.Errorf("domain: rcc %d: settled %v before created %v", r.ID, r.Settled, r.Created)
	}
	if r.Amount < 0 {
		return fmt.Errorf("domain: rcc %d: negative amount %f", r.ID, r.Amount)
	}
	return nil
}

// RCCStatus classifies an RCC relative to a logical timestamp t* (paper
// §3.1): an RCC is Active when it has been created but not yet settled,
// Settled once its settlement date has passed, and Created if either holds.
type RCCStatus int

const (
	// Active: created <= t* < settled.
	Active RCCStatus = iota
	// SettledStatus: settled <= t*.
	SettledStatus
	// Created: created <= t* (union of Active and Settled).
	Created

	// NumRCCStatuses counts the classification buckets above.
	NumRCCStatuses = 3
)

// String implements fmt.Stringer.
func (s RCCStatus) String() string {
	switch s {
	case Active:
		return "ACTIVE"
	case SettledStatus:
		return "SETTLED"
	case Created:
		return "CREATED"
	default:
		return fmt.Sprintf("RCCStatus(%d)", int(s))
	}
}

// StatusAt classifies the RCC at logical day t (both in the same logical or
// physical scale as Created/Settled). The boolean reports whether the RCC is
// visible at all (created by t).
func (r *RCC) StatusAt(t Day) (RCCStatus, bool) {
	if t < r.Created {
		return 0, false
	}
	if t < r.Settled {
		return Active, true
	}
	return SettledStatus, true
}
