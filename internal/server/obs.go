package server

import (
	"domd/internal/obs"
)

// Endpoint is one row of the API surface table: the single source of
// truth shared by the route mux (New registers exactly these patterns),
// the `domd serve -h` usage text (UsageText), and docs/OPERATIONS.md
// (whose cross-check script and the cmd/domd usage test both verify
// against this table, so the three cannot drift).
type Endpoint struct {
	// Method and Path form the mux pattern ("GET /query").
	Method string
	Path   string
	// Params documents the query parameters ("" when none).
	Params string
	// Doc is the one-line operator description.
	Doc string
}

// Endpoints returns the served API surface in presentation order.
func Endpoints() []Endpoint {
	return []Endpoint{
		{"GET", "/healthz", "", "liveness probe: 200 while the process is up (bypasses load shedding)"},
		{"GET", "/readyz", "", "readiness probe: per-shard health + replication lag JSON; 503 when unready or any shard is failed with no promotable replica (bypasses load shedding)"},
		{"GET", "/avails", "", "list every avail: id, ship, status, planned/actual dates, realized delay"},
		{"GET", "/query", "avail=ID&date=YYYY-MM-DD", "DoMD estimate for one avail, with stale/asOf degraded-answer markers"},
		{"GET", "/fleet", "date=YYYY-MM-DD", "DoMD estimates for every ongoing avail, bounded-parallel, per-avail error isolation"},
		{"POST", "/query/batch", "", "many DoMD queries in one JSON body; one engine lookup per distinct avail, bounded-parallel, per-row error isolation"},
		{"GET", "/predict", "avail=ID&date=YYYY-MM-DD&alpha=0.1", "predicted delay with conformal band and model version; degraded answers carry prediction_unavailable, never a 5xx"},
		{"POST", "/predict", "", "many predictions in one JSON body; one engine lookup per distinct avail, bounded-parallel, per-row error isolation"},
		{"GET", "/models", "", "model registry listing: every manifest version with window coverage and artifact digests, plus the active version and any load error"},
		{"POST", "/models/reload", "", "hot-swap the model registry from -model-dir: atomic snapshot swap, in-flight requests finish on the old version, a failed load keeps the old version serving"},
		{"POST", "/rccs", "", "ingest one RCC JSON body; WAL-backed acknowledgment when serving durably (Idempotency-Key dedups retries)"},
		{"GET", "/metrics", "", "Prometheus text-format metrics; the full catalog is docs/OPERATIONS.md (bypasses load shedding)"},
	}
}

// UsageText renders the endpoint table for `domd serve -h` and other
// operator-facing help output.
func UsageText() string {
	out := "endpoints:\n"
	for _, e := range Endpoints() {
		pattern := e.Method + " " + e.Path
		if e.Params != "" {
			pattern += "?" + e.Params
		}
		out += "  " + pattern + "\n        " + e.Doc + "\n"
	}
	return out
}

// knownRoutes bounds the route label cardinality: every served path maps
// to itself, anything else (scans, typos) collapses to "other" so a URL
// fuzzer cannot mint unbounded metric series.
var knownRoutes = func() map[string]bool {
	m := make(map[string]bool, len(Endpoints()))
	for _, e := range Endpoints() {
		m[e.Path] = true
	}
	return m
}()

// routeLabel maps a request path to its bounded metric/trace label.
func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// probeBypass reports whether the path must skip load shedding: a
// saturated server still answers its probes honestly and stays
// scrapeable, or operators lose exactly the signal that explains the
// saturation.
func probeBypass(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics"
}

// HTTP serving metrics (full catalog: docs/OPERATIONS.md).
var (
	mRequests = obs.NewCounterVec("domd_http_requests_total",
		"HTTP requests completed, by route, method, and status code.",
		"route", "method", "code")
	mLatency = obs.NewHistogramVec("domd_http_request_duration_seconds",
		"End-to-end request handling latency, by route.",
		obs.DefBuckets, "route")
	mInFlight = obs.NewGauge("domd_http_in_flight_requests",
		"Requests currently inside the handler stack.")
	mShed = obs.NewCounter("domd_http_shed_total",
		"Requests shed with 503 by the concurrency limiter.")
	mPanics = obs.NewCounter("domd_http_panics_total",
		"Handler panics recovered by the middleware (process kept serving).")
	mPredictUnavailable = obs.NewCounter("domd_predict_unavailable_total",
		"Prediction requests and fleet rows answered prediction_unavailable (no registry configured, empty registry, or model failure) instead of a 5xx.")
)
