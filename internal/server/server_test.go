package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"testing"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/statusq"
)

// trainTestPipeline trains one small pipeline per test binary; the trained
// pipeline and extractor are read-only and shared by every test server.
var trainTestPipeline = sync.OnceValues(func() (*core.Pipeline, *features.Extractor) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		panic(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		panic(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		panic(err)
	}
	cfg := core.BaselineConfig()
	cfg.Fusion = fusion.MethodAverage
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	cfg.GBTParams = &p
	pipe, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		panic(err)
	}
	return pipe, ext
})

// newTestServer trains a small pipeline and serves the dataset's fleet.
func newTestServer(t *testing.T) (*httptest.Server, *navsim.Dataset, *statusq.Catalog) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	catalog, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(pipe, ext, catalog, Options{}))
	t.Cleanup(srv.Close)
	return srv, ds, catalog
}

func get(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
}

func TestHealth(t *testing.T) {
	srv, _, _ := newTestServer(t)
	var body map[string]string
	get(t, srv.URL+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("health = %v", body)
	}
}

func TestAvailsList(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	var rows []map[string]any
	get(t, srv.URL+"/avails", http.StatusOK, &rows)
	if len(rows) != len(ds.Avails) {
		t.Fatalf("%d avails, want %d", len(rows), len(ds.Avails))
	}
	closed, ongoing := 0, 0
	for _, r := range rows {
		switch r["status"] {
		case "closed":
			closed++
			if _, ok := r["delay_days"]; !ok {
				t.Error("closed avail missing delay_days")
			}
		case "ongoing":
			ongoing++
			if _, ok := r["actual_end"]; ok {
				t.Error("ongoing avail has actual_end")
			}
		}
	}
	if closed != 40 || ongoing != 3 {
		t.Errorf("closed/ongoing = %d/%d", closed, ongoing)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	var target int
	for i := range ds.Avails {
		if ds.Avails[i].Status.String() == "ongoing" {
			target = ds.Avails[i].ID
			break
		}
	}
	a := ds.Avails[target-1]
	date := a.PhysicalTime(60).String()
	var view struct {
		AvailID    int     `json:"avail_id"`
		TStar      float64 `json:"t_star"`
		Final      float64 `json:"estimated_delay_days"`
		Estimates  []any   `json:"estimates"`
		TopDrivers []any   `json:"top_drivers"`
	}
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, target, date), http.StatusOK, &view)
	if view.AvailID != target {
		t.Errorf("avail id = %d", view.AvailID)
	}
	if view.TStar < 55 || view.TStar > 65 {
		t.Errorf("t* = %f, want ≈60", view.TStar)
	}
	if len(view.Estimates) == 0 || len(view.TopDrivers) != 5 {
		t.Errorf("estimates %d drivers %d", len(view.Estimates), len(view.TopDrivers))
	}
}

func TestQueryErrors(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	var e map[string]string
	get(t, srv.URL+"/query?avail=xyz&date=2020-01-01", http.StatusBadRequest, &e)
	get(t, srv.URL+"/query?avail=1&date=garbage", http.StatusBadRequest, &e)
	get(t, srv.URL+"/query?avail=999999&date=2020-01-01", http.StatusNotFound, &e)
	// Query before the avail started: unprocessable.
	a := ds.Avails[0]
	early := (a.ActStart - 100).String()
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, early), http.StatusUnprocessableEntity, &e)
	if e["error"] == "" {
		t.Error("error body missing")
	}
}

func TestFleetEndpoint(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	// Pick a date where at least one ongoing avail is executing.
	var date string
	for i := range ds.Avails {
		if ds.Avails[i].Status.String() == "ongoing" {
			date = ds.Avails[i].PhysicalTime(50).String()
			break
		}
	}
	var rows []struct {
		AvailID int             `json:"avail_id"`
		Result  json.RawMessage `json:"result"`
		Error   string          `json:"error"`
	}
	get(t, srv.URL+"/fleet?date="+date, http.StatusOK, &rows)
	if len(rows) != 3 {
		t.Fatalf("fleet rows = %d, want 3 ongoing", len(rows))
	}
	answered := 0
	for _, r := range rows {
		if r.Error == "" && len(r.Result) > 0 {
			answered++
		}
	}
	if answered == 0 {
		t.Error("no fleet rows answered")
	}
	get(t, srv.URL+"/fleet?date=bad", http.StatusBadRequest, new(map[string]string))
}

func TestMethodRouting(t *testing.T) {
	srv, _, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /query = %d, want 405", resp.StatusCode)
	}
}

// TestQueryAvailIDParsing pins the strconv.Atoi regression: fmt.Sscanf
// accepted trailing junk ("12abc" parsed as 12), silently answering for the
// wrong resource. Any non-integer avail parameter must be a 400.
func TestQueryAvailIDParsing(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	var e map[string]string
	for _, bad := range []string{"12abc", "1.5", " 7", "7 ", "0x10", "", "++3"} {
		get(t, srv.URL+"/query?avail="+url.QueryEscape(bad)+"&date=2020-01-01", http.StatusBadRequest, &e)
	}
	// Sanity: a well-formed id still routes (404 — the id is parsed, just unknown).
	get(t, srv.URL+"/query?avail=999999&date=2020-01-01", http.StatusNotFound, &e)
	// And a real id still works end to end.
	a := ds.Avails[0]
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(50)), http.StatusOK, nil)
}

// rawBody fetches a URL and returns the trimmed response body.
func rawBody(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(b))
}

// TestEmptyCollectionsEncodeAsArrays pins the nil-slice regression: /avails
// on an empty catalog and /fleet with no ongoing avails must encode [] —
// JSON clients treat null and [] very differently.
func TestEmptyCollectionsEncodeAsArrays(t *testing.T) {
	pipe, ext := trainTestPipeline()

	empty, err := statusq.NewCatalog(nil, nil, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(pipe, ext, empty, Options{}))
	defer srv.Close()
	if body := rawBody(t, srv.URL+"/avails", http.StatusOK); body != "[]" {
		t.Errorf("/avails on empty catalog = %q, want []", body)
	}
	if body := rawBody(t, srv.URL+"/fleet?date=2023-01-01", http.StatusOK); body != "[]" {
		t.Errorf("/fleet with no ongoing avails = %q, want []", body)
	}

	// A fleet of exclusively closed avails must also yield [].
	ds, err := navsim.Generate(navsim.Config{NumClosed: 5, NumOngoing: 0, MeanRCCsPerAvail: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	closedOnly, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(New(pipe, ext, closedOnly, Options{}))
	defer srv2.Close()
	if body := rawBody(t, srv2.URL+"/fleet?date=2023-01-01", http.StatusOK); body != "[]" {
		t.Errorf("/fleet over closed-only catalog = %q, want []", body)
	}
}

// TestRouteStatusCodes pins every route's status contract: 400 on bad
// params, 404 on unknown avail, 422 on an avail not started at the date,
// 200 on the happy path, 405 on wrong method.
func TestRouteStatusCodes(t *testing.T) {
	srv, ds, _ := newTestServer(t)
	a := ds.Avails[0]
	cases := []struct {
		name, path string
		want       int
	}{
		{"healthz ok", "/healthz", http.StatusOK},
		{"avails ok", "/avails", http.StatusOK},
		{"query ok", fmt.Sprintf("/query?avail=%d&date=%s", a.ID, a.PhysicalTime(50)), http.StatusOK},
		{"query missing avail", "/query?date=2020-01-01", http.StatusBadRequest},
		{"query junk avail", "/query?avail=12abc&date=2020-01-01", http.StatusBadRequest},
		{"query bad date", fmt.Sprintf("/query?avail=%d&date=garbage", a.ID), http.StatusBadRequest},
		{"query missing date", fmt.Sprintf("/query?avail=%d", a.ID), http.StatusBadRequest},
		{"query unknown avail", "/query?avail=999999&date=2020-01-01", http.StatusNotFound},
		{"query not started", fmt.Sprintf("/query?avail=%d&date=%s", a.ID, a.ActStart-100), http.StatusUnprocessableEntity},
		{"fleet ok", "/fleet?date=" + ds.Avails[len(ds.Avails)-1].PhysicalTime(50).String(), http.StatusOK},
		{"fleet bad date", "/fleet?date=nope", http.StatusBadRequest},
		{"fleet missing date", "/fleet", http.StatusBadRequest},
		{"unknown route", "/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(srv.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
			}
		})
	}
	for _, route := range []string{"/healthz", "/avails", "/query", "/fleet"} {
		resp, err := http.Post(srv.URL+route, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", route, resp.StatusCode)
		}
	}

	// POST /query/batch status grid: 405 on GET, 400 malformed/empty, 422
	// oversized batch, 200 otherwise (row errors are carried inline).
	resp, err := http.Get(srv.URL + "/query/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query/batch = %d, want 405", resp.StatusCode)
	}
	batchCases := []struct {
		name, body string
		want       int
	}{
		{"batch malformed", `{"queries":`, http.StatusBadRequest},
		{"batch unknown field", `{"quarries":[]}`, http.StatusBadRequest},
		{"batch empty", `{"queries":[]}`, http.StatusBadRequest},
		{"batch too many", batchBody(a, MaxBatchQueries+1), http.StatusUnprocessableEntity},
		{"batch ok", batchBody(a, 3), http.StatusOK},
	}
	for _, tc := range batchCases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/query/batch", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("POST /query/batch %s = %d, want %d", tc.name, resp.StatusCode, tc.want)
			}
		})
	}

	// 503 responses advertise a pressure-derived Retry-After, not a
	// hardcoded 1s: expected backlog drain time = EWMA latency × depth /
	// capacity, rounded up and clamped to [1, 60].
	t.Run("retry-after derivation", func(t *testing.T) {
		s := &Server{inflight: make(chan struct{}, 4)}
		if got := s.retryAfterSeconds(); got != "1" {
			t.Errorf("idle server Retry-After = %q, want 1", got)
		}
		for i := 0; i < 4; i++ {
			s.inflight <- struct{}{}
		}
		s.latEWMA.Store(math.Float64bits(10.0))
		if got := s.retryAfterSeconds(); got != "10" {
			t.Errorf("saturated server (10s EWMA, 4/4 slots) Retry-After = %q, want 10", got)
		}
		s.latEWMA.Store(math.Float64bits(0.5))
		if got := s.retryAfterSeconds(); got != "1" {
			t.Errorf("fast-request saturation Retry-After = %q, want floor of 1", got)
		}
		s.latEWMA.Store(math.Float64bits(120.0))
		if got := s.retryAfterSeconds(); got != "60" {
			t.Errorf("pathological backlog Retry-After = %q, want 60 cap", got)
		}
		noShed := &Server{}
		if got := noShed.retryAfterSeconds(); got != "1" {
			t.Errorf("shedding-disabled Retry-After = %q, want 1", got)
		}
	})
}

// batchBody builds a /query/batch payload with n copies of one valid query.
func batchBody(a domain.Avail, n int) string {
	q := fmt.Sprintf(`{"avail":%d,"date":%q}`, a.ID, a.PhysicalTime(50).String())
	items := make([]string, n)
	for i := range items {
		items[i] = q
	}
	return `{"queries":[` + strings.Join(items, ",") + `]}`
}

// TestQueryBatch pins the batch contract: answers arrive in request order
// and bitwise-match the single-query endpoint, the engine lookup is
// amortized to one build per distinct avail, and a bad row (unknown avail,
// bad date, pre-start date) fails alone without failing the batch.
func TestQueryBatch(t *testing.T) {
	srv, ds, catalog := newTestServer(t)
	a, b := ds.Avails[0], ds.Avails[1]

	var single queryView
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(50)), http.StatusOK, &single)
	builds := catalog.EngineBuilds()

	body := fmt.Sprintf(`{"queries":[
		{"avail":%d,"date":%q},
		{"avail":%d,"date":%q},
		{"avail":999999,"date":%q},
		{"avail":%d,"date":"garbage"},
		{"avail":%d,"date":%q},
		{"avail":%d,"date":%q}
	]}`,
		a.ID, a.PhysicalTime(50).String(),
		b.ID, b.PhysicalTime(50).String(),
		a.PhysicalTime(50).String(),
		a.ID,
		a.ID, a.PhysicalTime(70).String(),
		a.ID, (a.ActStart - 100).String())

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/query/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query/batch = %d, want 200", resp.StatusCode)
	}
	var rows []struct {
		AvailID int        `json:"avail_id"`
		Result  *queryView `json:"result"`
		Error   string     `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("batch returned %d rows, want 6", len(rows))
	}
	// Row 0 matches the single-query endpoint exactly.
	if rows[0].Error != "" || rows[0].Result == nil {
		t.Fatalf("row 0 failed: %+v", rows[0])
	}
	if rows[0].Result.FinalDays != single.FinalDays || rows[0].Result.AsOf != single.AsOf {
		t.Errorf("batch row 0 = (%v, asOf %d), single query = (%v, asOf %d)",
			rows[0].Result.FinalDays, rows[0].Result.AsOf, single.FinalDays, single.AsOf)
	}
	// Rows 1 and 4 succeed; rows 2, 3, and 5 fail alone.
	for _, i := range []int{1, 4} {
		if rows[i].Error != "" || rows[i].Result == nil {
			t.Errorf("row %d failed: %+v", i, rows[i])
		}
	}
	for _, i := range []int{2, 3, 5} {
		if rows[i].Error == "" || rows[i].Result != nil {
			t.Errorf("row %d did not fail: %+v", i, rows[i])
		}
	}
	// Amortization: three queries against avail a resolved its cached
	// engine once; only avail b cost a build.
	if got := catalog.EngineBuilds(); got != builds+1 {
		t.Errorf("batch performed %d engine builds, want 1 (avail %d only)", got-builds, b.ID)
	}
}

// TestRequestLogging checks the Options.Logger wiring: one structured
// trace line per request carrying request id, method, route, status, and
// duration (the grammar docs/OPERATIONS.md documents for incident
// diagnosis), with the raw URI attached when it differs from the route.
func TestRequestLogging(t *testing.T) {
	pipe, ext := trainTestPipeline()
	catalog, err := statusq.NewCatalog(nil, nil, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	srv := httptest.NewServer(New(pipe, ext, catalog, Options{Logger: log.New(&buf, "", 0)}))
	defer srv.Close()
	rawBody(t, srv.URL+"/avails", http.StatusOK)
	rawBody(t, srv.URL+"/query?avail=junk&date=x", http.StatusBadRequest)
	logged := buf.String()
	okRe := regexp.MustCompile(`trace id=[0-9a-f]{8}-\d{6} method=GET route=/avails status=200 dur_ms=\d+\.\d{3}`)
	if !okRe.MatchString(logged) {
		t.Errorf("missing 200 trace line in %q", logged)
	}
	badRe := regexp.MustCompile(`trace id=[0-9a-f]{8}-\d{6} method=GET route=/query status=400 dur_ms=\d+\.\d{3} uri=/query\?avail=junk&date=x`)
	if !badRe.MatchString(logged) {
		t.Errorf("missing 400 trace line with uri attribute in %q", logged)
	}
	// Distinct requests carry distinct ids.
	ids := regexp.MustCompile(`id=([0-9a-f]{8}-\d{6})`).FindAllStringSubmatch(logged, -1)
	if len(ids) != 2 || ids[0][1] == ids[1][1] {
		t.Errorf("expected two distinct request ids, got %v", ids)
	}
}
