package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"domd/internal/core"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/statusq"
)

// newTestServer trains a small pipeline and serves the dataset's fleet.
func newTestServer(t *testing.T) (*httptest.Server, *navsim.Dataset) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.BaselineConfig()
	cfg.Fusion = fusion.MethodAverage
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	cfg.GBTParams = &p
	pipe, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(pipe, ext, catalog, index.KindAVL))
	t.Cleanup(srv.Close)
	return srv, ds
}

func get(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	var body map[string]string
	get(t, srv.URL+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("health = %v", body)
	}
}

func TestAvailsList(t *testing.T) {
	srv, ds := newTestServer(t)
	var rows []map[string]any
	get(t, srv.URL+"/avails", http.StatusOK, &rows)
	if len(rows) != len(ds.Avails) {
		t.Fatalf("%d avails, want %d", len(rows), len(ds.Avails))
	}
	closed, ongoing := 0, 0
	for _, r := range rows {
		switch r["status"] {
		case "closed":
			closed++
			if _, ok := r["delay_days"]; !ok {
				t.Error("closed avail missing delay_days")
			}
		case "ongoing":
			ongoing++
			if _, ok := r["actual_end"]; ok {
				t.Error("ongoing avail has actual_end")
			}
		}
	}
	if closed != 40 || ongoing != 3 {
		t.Errorf("closed/ongoing = %d/%d", closed, ongoing)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, ds := newTestServer(t)
	var target int
	for i := range ds.Avails {
		if ds.Avails[i].Status.String() == "ongoing" {
			target = ds.Avails[i].ID
			break
		}
	}
	a := ds.Avails[target-1]
	date := a.PhysicalTime(60).String()
	var view struct {
		AvailID    int     `json:"avail_id"`
		TStar      float64 `json:"t_star"`
		Final      float64 `json:"estimated_delay_days"`
		Estimates  []any   `json:"estimates"`
		TopDrivers []any   `json:"top_drivers"`
	}
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, target, date), http.StatusOK, &view)
	if view.AvailID != target {
		t.Errorf("avail id = %d", view.AvailID)
	}
	if view.TStar < 55 || view.TStar > 65 {
		t.Errorf("t* = %f, want ≈60", view.TStar)
	}
	if len(view.Estimates) == 0 || len(view.TopDrivers) != 5 {
		t.Errorf("estimates %d drivers %d", len(view.Estimates), len(view.TopDrivers))
	}
}

func TestQueryErrors(t *testing.T) {
	srv, ds := newTestServer(t)
	var e map[string]string
	get(t, srv.URL+"/query?avail=xyz&date=2020-01-01", http.StatusBadRequest, &e)
	get(t, srv.URL+"/query?avail=1&date=garbage", http.StatusBadRequest, &e)
	get(t, srv.URL+"/query?avail=999999&date=2020-01-01", http.StatusNotFound, &e)
	// Query before the avail started: unprocessable.
	a := ds.Avails[0]
	early := (a.ActStart - 100).String()
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, early), http.StatusUnprocessableEntity, &e)
	if e["error"] == "" {
		t.Error("error body missing")
	}
}

func TestFleetEndpoint(t *testing.T) {
	srv, ds := newTestServer(t)
	// Pick a date where at least one ongoing avail is executing.
	var date string
	for i := range ds.Avails {
		if ds.Avails[i].Status.String() == "ongoing" {
			date = ds.Avails[i].PhysicalTime(50).String()
			break
		}
	}
	var rows []struct {
		AvailID int             `json:"avail_id"`
		Result  json.RawMessage `json:"result"`
		Error   string          `json:"error"`
	}
	get(t, srv.URL+"/fleet?date="+date, http.StatusOK, &rows)
	if len(rows) != 3 {
		t.Fatalf("fleet rows = %d, want 3 ongoing", len(rows))
	}
	answered := 0
	for _, r := range rows {
		if r.Error == "" && len(r.Result) > 0 {
			answered++
		}
	}
	if answered == 0 {
		t.Error("no fleet rows answered")
	}
	get(t, srv.URL+"/fleet?date=bad", http.StatusBadRequest, new(map[string]string))
}

func TestMethodRouting(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /query = %d, want 405", resp.StatusCode)
	}
}
