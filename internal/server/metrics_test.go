package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/obs"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// scrapeMetrics GETs /metrics and parses the exposition through the
// same validating parser the obs unit tests use, so every end-to-end
// scrape doubles as a format check.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics: invalid exposition: %v", err)
	}
	return m
}

// delta returns after[key] - before[key], treating an absent series as 0
// (counters only materialize on first increment).
func delta(before, after map[string]float64, key string) float64 {
	return after[key] - before[key]
}

// TestMetricsEndToEnd is the acceptance check for the observability
// layer: run real traffic — queries (fresh, cached, degraded under an
// injected engine-build fault, recovered), a fleet sweep, durable
// ingests (ack, duplicate, mid-apply panic), and a shed request — then
// assert the scraped counters moved accordingly. All metrics are
// process-global, so everything is asserted as a before/after delta.
func TestMetricsEndToEnd(t *testing.T) {
	defer faultinject.Reset()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	// SyncAlways + CompactEvery:1 so every acknowledged ingest moves the
	// WAL sync and compaction counters, not just the append counter.
	dc, _, err := statusq.OpenDurable(t.TempDir(), ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncAlways}, CompactEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	srv := httptest.NewServer(New(pipe, ext, dc.Catalog, Options{Ingester: dc}))
	defer srv.Close()

	a := ongoingAvail(t, ds)
	queryURL := fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(60))

	before := scrapeMetrics(t, srv.URL)

	// Two fresh queries: the first builds the engine, the second hits the
	// single-flight cache.
	get(t, queryURL, http.StatusOK, nil)
	get(t, queryURL, http.StatusOK, nil)

	// Two acknowledged ingests plus a duplicate replay of the first.
	body := rccBody(950101, a)
	if status, _, _ := postJSON(t, srv.URL+"/rccs", body, nil); status != http.StatusCreated {
		t.Fatalf("ingest = %d, want 201", status)
	}
	if status, _, _ := postJSON(t, srv.URL+"/rccs", body, nil); status != http.StatusOK {
		t.Fatalf("duplicate ingest = %d, want 200", status)
	}
	if status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(950102, a), nil); status != http.StatusCreated {
		t.Fatalf("second ingest = %d, want 201", status)
	}

	// A third ingest forced down the invalidation path (the armed delta
	// failpoint suppresses the in-place apply); the injected build fault
	// then makes the rebuild fail, so this query is served stale from the
	// last good engine (still 200).
	faultinject.EnableTimes(statusq.FailDeltaApply, errors.New("chaos: force rebuild path"), 1)
	if status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(950110, a), nil); status != http.StatusCreated {
		t.Fatalf("third ingest = %d, want 201", status)
	}
	faultinject.Enable(statusq.FailEngineBuild, errors.New("chaos: engine build down"))
	var view struct {
		Stale bool `json:"stale"`
	}
	get(t, queryURL, http.StatusOK, &view)
	if !view.Stale {
		t.Fatal("query under engine-build fault was not served stale")
	}
	faultinject.Reset()

	// Recovery rebuild, then a fleet sweep over every ongoing avail.
	get(t, queryURL, http.StatusOK, &view)
	if view.Stale {
		t.Fatal("query after fault cleared still stale")
	}
	get(t, fmt.Sprintf("%s/fleet?date=%s", srv.URL, a.PhysicalTime(60)), http.StatusOK, nil)

	// A handler panic: the armed hook fires between WAL append and apply,
	// the middleware recovers it into a 500 and keeps serving.
	faultinject.Arm(statusq.FailDurableApply, func() error { panic("metrics: injected handler panic") })
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/rccs", strings.NewReader(rccBody(950103, a)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking ingest = %d, want 500", resp.StatusCode)
	}
	faultinject.Reset()

	// A shed request: park one request inside an engine build on a
	// MaxInFlight:1 server so the next non-probe request gets 503. The
	// shed server needs its own catalog — the shared one already has a
	// cached engine, so its queries would never enter a build to park in.
	shedCat, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	shedSrv := httptest.NewServer(New(pipe, ext, shedCat, Options{MaxInFlight: 1}))
	defer shedSrv.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	faultinject.Arm(statusq.FailEngineBuild, func() error {
		close(entered)
		<-release
		return nil
	})
	parked := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/query?avail=%d&date=%s", shedSrv.URL, a.ID, a.PhysicalTime(60)))
		if err == nil {
			resp.Body.Close()
		}
		parked <- err
	}()
	<-entered
	resp, err = http.Get(shedSrv.URL + "/avails")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request at capacity = %d, want 503 shed", resp.StatusCode)
	}
	close(release)
	if err := <-parked; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
	faultinject.Reset()

	after := scrapeMetrics(t, srv.URL)

	// Per-route request counts. The /query route saw 4 successful GETs.
	wantAtLeast := map[string]float64{
		`domd_http_requests_total{route="/query",method="GET",code="200"}`:  4,
		`domd_http_requests_total{route="/fleet",method="GET",code="200"}`:  1,
		`domd_http_requests_total{route="/rccs",method="POST",code="201"}`:  2,
		`domd_http_requests_total{route="/rccs",method="POST",code="200"}`:  1,
		`domd_http_requests_total{route="/rccs",method="POST",code="500"}`:  1,
		`domd_http_requests_total{route="/avails",method="GET",code="503"}`: 1,

		// Latency histogram, by route: every /query answer was observed.
		`domd_http_request_duration_seconds_count{route="/query"}`: 4,

		// Shed and recovered-panic outcomes.
		`domd_http_shed_total`:   1,
		`domd_http_panics_total`: 1,

		// Engine lifecycle: initial build + recovery build succeeded, the
		// injected fault counted one failure and one stale serve, and the
		// back-to-back queries produced at least one cache hit.
		`domd_engine_builds_total`:                 2,
		`domd_engine_build_failures_total`:         1,
		`domd_engine_stale_serves_total`:           1,
		`domd_engine_cache_hits_total`:             1,
		`domd_engine_build_duration_seconds_count`: 2,

		// The first two ingests folded into the live cached engine in
		// place; the third was forced down the invalidation path by the
		// armed delta failpoint.
		`domd_engine_delta_applies_total`:                       2,
		`domd_engine_delta_fallbacks_total{reason="failpoint"}`: 1,

		// Ingestion: two acks, one duplicate, one failure (the injected
		// mid-apply panic after the record was already on the log).
		`domd_ingest_acks_total`:       2,
		`domd_ingest_duplicates_total`: 1,

		// WAL: three appends reached the log (two acks + the panicked
		// apply), each fsynced under SyncAlways; each ack compacted under
		// CompactEvery:1.
		`domd_wal_appends_total`:               3,
		`domd_wal_syncs_total`:                 3,
		`domd_wal_sync_duration_seconds_count`: 3,
		`domd_wal_compactions_total`:           2,
	}
	for key, want := range wantAtLeast {
		if got := delta(before, after, key); got < want {
			t.Errorf("delta %s = %v, want >= %v", key, got, want)
		}
	}

	// The in-flight gauge counts the scrape itself and nothing else once
	// traffic has drained.
	if got := after["domd_http_in_flight_requests"]; got != 1 {
		t.Errorf("domd_http_in_flight_requests during scrape = %v, want 1", got)
	}
}
