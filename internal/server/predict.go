package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"domd/internal/domain"
	"domd/internal/obs"
	"domd/internal/statusq"
)

// The /predict, /models, and /models/reload handlers: the serving face of
// internal/modelserve. Read-path degradation mirrors /query and /fleet —
// a missing or broken model registry annotates answers instead of
// failing them; only the admin write path (/models/reload) may 5xx.

// windowView is the trained logical-time window a prediction came from.
type windowView struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// predictRow is the /predict response (and one POST /predict row). The
// prediction fields are pointers so an unavailable answer omits them
// instead of serving zeros; Stale and AsOf are the same engine
// provenance markers as /query.
type predictRow struct {
	AvailID               int         `json:"avail_id"`
	At                    string      `json:"at"`
	LogicalTime           float64     `json:"t_star"`
	PredictedDelay        *float64    `json:"predicted_delay,omitempty"`
	BandLo                *float64    `json:"band_lo,omitempty"`
	BandHi                *float64    `json:"band_hi,omitempty"`
	Alpha                 float64     `json:"alpha,omitempty"`
	ModelVersion          string      `json:"model_version,omitempty"`
	Window                *windowView `json:"window,omitempty"`
	WindowFallback        bool        `json:"window_fallback,omitempty"`
	PredictionUnavailable bool        `json:"prediction_unavailable,omitempty"`
	UnavailableReason     string      `json:"unavailable_reason,omitempty"`
	Stale                 bool        `json:"stale"`
	AsOf                  int64       `json:"asOf"`
}

// renderPredict evaluates one prediction against an already-resolved
// engine. Date/avail problems (not started, invalid t*) are errors — the
// request itself is unanswerable, same contract as /query. Model
// problems are not: they annotate the row prediction_unavailable.
func (s *Server) renderPredict(eng *statusq.Engine, asOf int64, stale bool, at domain.Day, alpha float64) (*predictRow, error) {
	a := eng.Avail()
	ts, err := eng.LogicalTime(at)
	if err != nil {
		return nil, err
	}
	if ts < 0 {
		return nil, fmt.Errorf("avail %d has not started at %v (t* = %.1f%%)", a.ID, at, ts)
	}
	row := &predictRow{AvailID: a.ID, At: at.String(), LogicalTime: ts, Stale: stale, AsOf: asOf}
	if s.models == nil {
		row.PredictionUnavailable = true
		row.UnavailableReason = "no model registry configured (serve -model-dir)"
		mPredictUnavailable.Inc()
		return row, nil
	}
	pred, err := s.models.Predict(eng, at, alpha)
	if err != nil {
		row.PredictionUnavailable = true
		row.UnavailableReason = err.Error()
		mPredictUnavailable.Inc()
		return row, nil
	}
	row.PredictedDelay = &pred.Delay
	row.BandLo = &pred.Lo
	row.BandHi = &pred.Hi
	row.Alpha = pred.Alpha
	row.ModelVersion = pred.Version
	row.Window = &windowView{Lo: pred.Window.Lo, Hi: pred.Window.Hi}
	row.WindowFallback = pred.WindowFallback
	return row, nil
}

// predictOne resolves the avail's cached engine and renders a prediction.
func (s *Server) predictOne(ctx context.Context, id int, at domain.Day, alpha float64) (*predictRow, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng, asOf, stale, err := s.catalog.EngineAsOf(id)
	if err != nil {
		return nil, err
	}
	return s.renderPredict(eng, asOf, stale, at, alpha)
}

// parseAlpha reads an optional ?alpha= parameter; absent defers to the
// server default (Options.PredictAlpha, else the model version's level).
func (s *Server) parseAlpha(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("alpha")
	if raw == "" {
		return s.alpha, nil
	}
	alpha, err := strconv.ParseFloat(raw, 64)
	if err != nil || alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("alpha must be a number in (0,1), got %q", raw)
	}
	return alpha, nil
}

// handlePredict is GET /predict. Status contract: 400 bad parameters,
// 404 unknown avail, 422 avail not started at the date, 200 otherwise —
// including model-side degradation, which annotates the body instead.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("avail"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing or invalid avail parameter"))
		return
	}
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	alpha, err := s.parseAlpha(r)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	row, err := s.predictOne(r.Context(), id, at, alpha)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, statusq.ErrUnknownAvail) {
			status = http.StatusNotFound
		}
		s.writeErr(w, r, status, err)
		return
	}
	if sp := obs.FromContext(r.Context()); sp != nil {
		sp.SetBool("stale", row.Stale)
		sp.SetBool("unavailable", row.PredictionUnavailable)
		if row.ModelVersion != "" {
			sp.Set("model", row.ModelVersion)
		}
	}
	s.writeJSON(w, r, http.StatusOK, row)
}

// predictBatchIn is the POST /predict request body; Alpha <= 0 defers to
// the server default.
type predictBatchIn struct {
	Queries []batchQueryIn `json:"queries"`
	Alpha   float64        `json:"alpha,omitempty"`
}

// predictBatchRow is one POST /predict result, request order; failures
// carry an error message so one bad entry doesn't fail the batch.
type predictBatchRow struct {
	AvailID int         `json:"avail_id"`
	Result  *predictRow `json:"result,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// handlePredictBatch is POST /predict: many predictions in one request,
// with the /query/batch amortization (one engine lookup per distinct
// avail) and status contract — 400 malformed or empty body, 413
// oversized, 422 over MaxBatchQueries or bad alpha, 200 with per-row
// errors inline.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var in predictBatchIn
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
		return
	}
	if len(in.Queries) == 0 {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("empty batch: provide at least one query"))
		return
	}
	if len(in.Queries) > MaxBatchQueries {
		s.writeErr(w, r, http.StatusUnprocessableEntity,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", len(in.Queries), MaxBatchQueries))
		return
	}
	alpha := in.Alpha
	if alpha == 0 { //lint:ignore floateq exactly zero is the JSON omitted-field sentinel
		alpha = s.alpha
	}
	if alpha < 0 || alpha >= 1 {
		s.writeErr(w, r, http.StatusUnprocessableEntity, fmt.Errorf("alpha must lie in (0,1), got %g", in.Alpha))
		return
	}

	// One engine resolution per distinct avail, same as /query/batch.
	type resolved struct {
		eng   *statusq.Engine
		asOf  int64
		stale bool
		err   error
	}
	engines := make(map[int]*resolved)
	for _, q := range in.Queries {
		if _, ok := engines[q.Avail]; ok {
			continue
		}
		res := &resolved{}
		res.eng, res.asOf, res.stale, res.err = s.catalog.EngineAsOf(q.Avail)
		engines[q.Avail] = res
	}

	rows := make([]predictBatchRow, len(in.Queries))
	sem := make(chan struct{}, s.fleetPar)
	var wg sync.WaitGroup
	for i, q := range in.Queries {
		rows[i].AvailID = q.Avail
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := r.Context().Err(); err != nil {
				rows[i].Error = err.Error()
				return
			}
			at, err := domain.ParseDay(q.Date)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			res := engines[q.Avail]
			if res.err != nil {
				rows[i].Error = res.err.Error()
				return
			}
			row, err := s.renderPredict(res.eng, res.asOf, res.stale, at, alpha)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].Result = row
		}()
	}
	wg.Wait()
	if sp := obs.FromContext(r.Context()); sp != nil {
		failed, unavailable := 0, 0
		for i := range rows {
			if rows[i].Error != "" {
				failed++
			} else if rows[i].Result != nil && rows[i].Result.PredictionUnavailable {
				unavailable++
			}
		}
		sp.SetInt("rows", int64(len(rows)))
		sp.SetInt("avails", int64(len(engines)))
		sp.SetInt("failedRows", int64(failed))
		sp.SetInt("unavailablePredictions", int64(unavailable))
	}
	s.writeJSON(w, r, http.StatusOK, rows)
}

// modelsView is the GET /models body: enabled reports whether a registry
// is wired at all; the rest is the registry's own status listing.
type modelsView struct {
	Enabled   bool   `json:"enabled"`
	Dir       string `json:"dir,omitempty"`
	Active    string `json:"active,omitempty"`
	LoadError string `json:"load_error,omitempty"`
	Versions  any    `json:"versions"`
}

// handleModels is GET /models: the registry listing operators check
// before and after a rollout. Always 200 — an unconfigured or degraded
// registry is a fact to report, not a failure.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if s.models == nil {
		s.writeJSON(w, r, http.StatusOK, modelsView{Enabled: false, Versions: []struct{}{}})
		return
	}
	st := s.models.RegistryStatus()
	s.writeJSON(w, r, http.StatusOK, modelsView{
		Enabled: true, Dir: st.Dir, Active: st.Active, LoadError: st.LoadError, Versions: st.Versions,
	})
}

// reloadView is the POST /models/reload acknowledgment.
type reloadView struct {
	Active   string `json:"active,omitempty"`
	Swapped  bool   `json:"swapped"`
	Versions int    `json:"versions"`
	Windows  int    `json:"windows"`
	Error    string `json:"error,omitempty"`
}

// handleModelsReload is POST /models/reload, the hot-swap trigger: 200
// with the swap report on success (swapped:false when the manifest still
// names the serving version), 503 when no registry is configured or the
// reload failed — in the latter case the previous version keeps serving,
// so a bad rollout degrades the admin path, never the read path.
func (s *Server) handleModelsReload(w http.ResponseWriter, r *http.Request) {
	if s.models == nil {
		s.writeErr(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("model serving disabled: start serve with -model-dir"))
		return
	}
	rep, err := s.models.Reload()
	view := reloadView{Active: rep.Active, Swapped: rep.Swapped, Versions: rep.Versions, Windows: rep.Windows}
	if sp := obs.FromContext(r.Context()); sp != nil {
		sp.SetBool("swapped", rep.Swapped)
		if rep.Active != "" {
			sp.Set("model", rep.Active)
		}
	}
	if err != nil {
		view.Error = err.Error()
		s.writeJSON(w, r, http.StatusServiceUnavailable, view)
		return
	}
	s.writeJSON(w, r, http.StatusOK, view)
}
